#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md: paper-vs-measured for every experiment.

Runs a compact version of each benchmark (E1–E12, A1–A3) and writes the
results table.  Deterministic; finishes in a couple of minutes.

Usage:  python scripts/generate_experiments.py [output-path]
"""

from __future__ import annotations

import io
import sys

from repro.core import GhostBuster, check_mass_hiding, disinfect
from repro.core.crosstime import CrossTimeDiffer
from repro.core.injection_ext import injected_scan
from repro.core.vmscan import vm_outside_scan
from repro.ghostware import (AdvancedHideFolders, Aphex, Berbew,
                             FileFolderProtector, FuRootkit,
                             GhostBusterAwareGhost, HackerDefender,
                             HideFiles, HideFoldersXP,
                             LowLevelInterferenceGhost, Mersting,
                             ProBotSE, Urbin, UtilityTargetedGhost,
                             Vanquish)
from repro.machine import APPINIT_KEY, Machine
from repro.registry.hive import RegType
from repro.unixsim import (Darkside, Superkit, Synapsis, T0rnkit,
                           UnixMachine, unix_cross_view_scan)
from repro.workloads import (PAPER_MACHINES, SignatureScanner,
                             attach_standard_services, build_machine,
                             populate_machine)
from repro.workloads.background import CcmService
from repro.workloads.machines import SMALL_MACHINES, WORKSTATION

OUT = io.StringIO()


def emit(text: str = "") -> None:
    OUT.write(text + "\n")


def fresh(name="exp", files=120):
    machine = Machine(name, disk_mb=512, max_records=8192)
    populate_machine(machine, file_count=files, registry_scale=400,
                     seed=42)
    machine.boot()
    return machine


def fmt_minutes(seconds: float) -> str:
    if seconds >= 90:
        return f"{seconds / 60:.1f} min"
    return f"{seconds:.0f} s"


# ---------------------------------------------------------------- E1

def e1() -> None:
    emit("## E1 — Figure 3: hidden-file detection (10 programs)\n")
    emit("| ghostware | paper | measured hidden files |")
    emit("|---|---|---|")
    cases = [
        (Urbin, "1 (msvsres.dll)"),
        (Mersting, "1 (kbddfl.dll)"),
        (Vanquish, "3+ (*vanquish*)"),
        (Aphex, "configurable prefix"),
        (HackerDefender, "3+ (hxdef*)"),
        (ProBotSE, "4 (random names)"),
    ]
    for ghost_cls, paper in cases:
        machine = fresh()
        ghost_cls().install(machine)
        report = GhostBuster(machine).inside_scan(resources=("files",))
        files = [finding.entry.path for finding in report.hidden_files()]
        emit(f"| {ghost_cls.__name__} | {paper} | "
             f"{len(files)}: {', '.join(f.rsplit(chr(92), 1)[-1] for f in files)} |")
    for hider_cls in (HideFiles, HideFoldersXP, AdvancedHideFolders,
                      FileFolderProtector):
        machine = fresh()
        machine.volume.create_directories("\\Secret")
        machine.volume.create_file("\\Secret\\diary.txt", b"")
        hider_cls(hidden_paths=["\\Secret"]).install(machine)
        report = GhostBuster(machine).inside_scan(resources=("files",))
        emit(f"| {hider_cls.__name__} | user-selected files | "
             f"{len(report.hidden_files())} (the selected tree) |")
    emit()


# ---------------------------------------------------------------- E2/E3

def e2_e3() -> None:
    emit("## E2 — Section 2 timing: inside-the-box file detection\n")
    emit("| machine | hardware | paper | measured (simulated) |")
    emit("|---|---|---|---|")
    for profile in SMALL_MACHINES:
        machine = build_machine(profile, seed=3)
        report = GhostBuster(machine).inside_scan(resources=("files",))
        emit(f"| {profile.ident} | {profile.cpu_mhz} MHz, "
             f"{profile.disk_used_gb} GB used | 30 s – 7 min | "
             f"{fmt_minutes(report.durations['files'])} |")
    machine = build_machine(WORKSTATION, seed=3)
    report = GhostBuster(machine).inside_scan(resources=("files",))
    emit(f"| {WORKSTATION.ident} | dual 3 GHz, 95 GB used | 38 min | "
         f"{fmt_minutes(report.durations['files'])} |")
    emit()

    emit("## E3 — Section 2 false positives\n")
    emit("| scenario | paper | measured |")
    emit("|---|---|---|")
    machine = fresh("fp-inside")
    attach_standard_services(machine)
    machine.run_background(300)
    inside = GhostBuster(machine, advanced=True).inside_scan()
    emit(f"| inside-the-box FPs | 0 | {len(inside.findings)} |")

    machine = fresh("fp-typical")
    attach_standard_services(machine)
    outside = GhostBuster(machine).outside_scan(resources=("files",),
                                                background_gap=120)
    emit(f"| outside-the-box FPs, typical machine | two or less | "
         f"{len(outside.findings)} (all classified benign) |")

    machine = fresh("fp-ccm")
    services = attach_standard_services(machine, with_ccm=True)
    before = GhostBuster(machine).outside_scan(resources=("files",),
                                               background_gap=120)
    ccm = next(s for s in services if isinstance(s, CcmService))
    ccm.enabled = False
    after = GhostBuster(machine).outside_scan(resources=("files",),
                                              background_gap=120)
    emit(f"| CCM-managed machine | 7 | {len(before.findings)} |")
    emit(f"| ...after disabling CCM | 2 | {len(after.findings)} |")
    emit()


# ---------------------------------------------------------------- E4/E5

def e4_e5() -> None:
    emit("## E4 — Figure 4: hidden ASEP hook detection (6 programs)\n")
    emit("| ghostware | paper hooks | measured |")
    emit("|---|---|---|")
    for ghost_cls, paper in ((Urbin, "AppInit_DLLs → msvsres.dll"),
                             (Mersting, "AppInit_DLLs → kbddfl.dll"),
                             (HackerDefender, "2 Services hooks"),
                             (Vanquish, "Services\\Vanquish"),
                             (ProBotSE, "2 Services + 1 Run"),
                             (Aphex, "Run hook")):
        machine = fresh()
        ghost_cls().install(machine)
        report = GhostBuster(machine).inside_scan(resources=("registry",))
        hooks = [finding.entry.describe()
                 for finding in report.hidden_hooks()]
        emit(f"| {ghost_cls.__name__} | {paper} | {len(hooks)}: "
             f"{'; '.join(hooks)} |")
    emit()

    emit("## E5 — Section 3 timing and the corrupted-AppInit FP\n")
    emit("| machine | paper | measured (simulated) |")
    emit("|---|---|---|")
    for profile in PAPER_MACHINES:
        machine = build_machine(profile, seed=5)
        report = GhostBuster(machine).inside_scan(resources=("registry",))
        emit(f"| {profile.ident} | 18 – 63 s | "
             f"{report.durations['registry']:.0f} s |")
    machine = fresh("corrupt")
    machine.volume.create_file("\\Windows\\System32\\legit.dll", b"MZ")
    corrupted = "legit.dll\x00GARBAGE".encode("utf-16-le")
    machine.registry.set_value(APPINIT_KEY, "AppInit_DLLs", "legit.dll",
                               RegType.SZ, raw_override=corrupted)
    report = GhostBuster(machine).inside_scan(resources=("registry",))
    emit(f"| corrupted AppInit_DLLs FP | 1 on one machine | "
         f"{len(report.hidden_hooks())} (export/delete/re-import clears "
         f"it) |")
    emit()


# ---------------------------------------------------------------- E6/E7

def e6_e7() -> None:
    emit("## E6 — Figure 6: hidden process/module detection\n")
    emit("| ghostware | paper | measured |")
    emit("|---|---|---|")
    for ghost_cls in (Aphex, HackerDefender, Berbew):
        machine = fresh()
        ghost_cls().install(machine)
        report = GhostBuster(machine).inside_scan(resources=("processes",))
        names = sorted(finding.entry.name
                       for finding in report.hidden_processes())
        emit(f"| {ghost_cls.__name__} | detected via Active Process List |"
             f" {', '.join(names)} |")
    machine = fresh()
    fu = FuRootkit()
    fu.install(machine)
    victim = machine.start_process("\\Windows\\explorer.exe",
                                   name="fu_hidden.exe")
    fu.hide_process(machine, victim.pid)
    std = GhostBuster(machine, advanced=False).inside_scan(
        resources=("processes",))
    adv = GhostBuster(machine, advanced=True).inside_scan(
        resources=("processes",))
    emit(f"| FU (DKOM) | advanced mode only | standard: "
         f"{len(std.hidden_processes())} found; advanced: "
         f"{sorted(f.entry.name for f in adv.hidden_processes())} |")
    machine = fresh()
    Vanquish().install(machine)
    report = GhostBuster(machine).inside_scan(resources=("modules",))
    vanquish_rows = [finding for finding in report.hidden_modules()
                     if "vanquish" in finding.entry.module_path.casefold()]
    emit(f"| Vanquish (module) | vanquish.dll in many processes | "
         f"hidden in {len(vanquish_rows)} processes |")
    emit()

    emit("## E7 — Section 4 timing\n")
    emit("| machine | process+module scan (paper 1–5 s) | "
         "crash dump (paper 15–45 s) |")
    emit("|---|---|---|")
    for profile in PAPER_MACHINES:
        machine = build_machine(profile, seed=7)
        report = GhostBuster(machine, advanced=True).inside_scan(
            resources=("processes", "modules"))
        combined = report.durations["processes"] + \
            report.durations["modules"]
        before = machine.clock.now()
        GhostBuster(machine).write_crash_dump()
        dump_seconds = machine.clock.now() - before
        emit(f"| {profile.ident} | {combined:.1f} s | "
             f"{dump_seconds:.0f} s |")
    emit()


# ---------------------------------------------------------------- E8–E12, A1–A3

def e8_to_a3() -> None:
    emit("## E8 — Figures 2/5: technique coverage\n")
    emit("All six file-hiding techniques (IAT, inline call, kernel32 "
         "detour, ntdll detour, SSDT, filter driver), the hook-free "
         "naming exploits, the three process-hiding interceptions, and "
         "DKOM are each detected by the same cross-view diff "
         "(`benchmarks/test_fig2_fig5_technique_matrix.py`).  The "
         "mechanism-scanner baseline sees nothing for the naming-exploit "
         "and DKOM strains — the paper's coverage-gap argument.\n")

    emit("## E9 — Section 5: targeting and the DLL-injection extension\n")
    emit("| strain | standalone GhostBuster | injected GhostBuster |")
    emit("|---|---|---|")
    for ghost_cls in (UtilityTargetedGhost, GhostBusterAwareGhost):
        machine = fresh()
        machine.start_process("\\Windows\\explorer.exe",
                              name="taskmgr.exe")
        ghost_cls().install(machine)
        standalone = GhostBuster(machine).inside_scan(
            resources=("files", "processes"))
        injected = injected_scan(machine)
        emit(f"| {ghost_cls.__name__} | "
             f"{'detected' if not standalone.is_clean else 'evaded'} | "
             f"{'detected by ' + str(len(injected.detecting_processes)) + ' processes' if not injected.is_clean else 'evaded'} |")
    machine = fresh()
    HackerDefender().install(machine)
    scanner = SignatureScanner()
    blind = scanner.on_demand_scan(machine)
    inoc = scanner.ensure_process(machine)
    revealed = GhostBuster(machine, scanner_process=inoc).inside_scan(
        resources=("files",))
    hits = scanner.scan_hidden_candidates(
        machine, [finding.entry.path
                  for finding in revealed.hidden_files()])
    emit(f"| eTrust demo | signatures alone: {len(blind)} hits | "
         f"with GhostBuster in InocIT.exe: "
         f"{sorted({hit.malware for hit in hits})} |")
    emit()

    emit("## E10 — Section 5: VM-based outside scan\n")
    machine = fresh("vm")
    HackerDefender().install(machine)
    report = vm_outside_scan(machine, power_up_after=False)
    clean_machine = fresh("vm-clean")
    clean_report = vm_outside_scan(clean_machine, power_up_after=False)
    emit(f"- infected VM: {len(report.hidden_files())} hidden files + "
         f"{len(report.hidden_hooks())} hidden hooks found from the host")
    emit(f"- clean VM false positives: {len(clean_report.findings)} "
         f"(paper: zero, same drive image)\n")

    emit("## E11 — Section 5: Unix rootkits\n")
    emit("| rootkit | platform | hidden paths found | FPs (paper ≤ 4) |")
    emit("|---|---|---|---|")
    for kit_cls in (Darkside, Superkit, Synapsis, T0rnkit):
        unix_machine = UnixMachine(flavor=getattr(kit_cls, "flavor",
                                                  "linux"))
        unix_machine.populate(200, seed=13)
        kit = kit_cls()
        kit.install(unix_machine)
        report = unix_cross_view_scan(unix_machine, daemon_churn_files=4)
        emit(f"| {kit.name} | {unix_machine.flavor} | "
             f"{len(report.hidden)} | {report.false_positive_count} |")
    emit()

    emit("## E12 — Section 6: Hacker Defender end-to-end\n")
    machine = fresh("killchain")
    HackerDefender().install(machine)
    ghostbuster = GhostBuster(machine, advanced=True)
    t0 = machine.clock.now()
    proc_report = ghostbuster.inside_scan(resources=("processes",
                                                     "modules"))
    detect_seconds = machine.clock.now() - t0
    t1 = machine.clock.now()
    reg_report = ghostbuster.inside_scan(resources=("registry",))
    locate_seconds = machine.clock.now() - t1
    log = disinfect(machine)
    emit(f"- detect hidden process: {detect_seconds:.1f} s "
         f"(paper: within 5 s)")
    emit(f"- locate {len(reg_report.hidden_hooks())} hidden ASEP keys: "
         f"{locate_seconds:.1f} s (paper: within 1 min)")
    emit(f"- removal: {log.summary()}")
    emit(f"- process findings at stage 1: "
         f"{len(proc_report.hidden_processes())}\n")

    emit("## A1 — ablation: cross-view vs cross-time\n")
    machine = fresh("a1")
    attach_standard_services(machine)
    differ = CrossTimeDiffer(machine)
    checkpoint = differ.checkpoint()
    for __ in range(7):
        machine.run_background(3600)
    HackerDefender().install(machine)
    crosstime = differ.diff(checkpoint, differ.checkpoint())
    crossview = GhostBuster(machine).inside_scan(resources=("files",))
    emit(f"- cross-time findings: {len(crosstime)} "
         f"(3 ghostware + {len(crosstime) - 3} legitimate churn)")
    emit(f"- cross-view findings: {len(crossview.hidden_files())} "
         f"(all ghostware, zero noise)\n")

    emit("## A2 — ablation: mass innocent-file hiding\n")
    machine = fresh("a2")
    HackerDefender().install(machine)
    hider = HideFiles()
    hider.install(machine)
    machine.volume.create_directories("\\chaff")
    for index in range(100):
        path = f"\\chaff\\innocent{index:04d}.txt"
        machine.volume.create_file(path, b"")
        hider.hide_path(machine, path)
    report = GhostBuster(machine).inside_scan(resources=("files",))
    alert = check_mass_hiding(report)
    emit(f"- {len(report.hidden_files())} hidden files → anomaly alert: "
         f"{alert.describe() if alert else 'none'}\n")

    emit("## A3 — ablation: low-level-scan interference\n")
    machine = fresh("a3")
    LowLevelInterferenceGhost().install(machine)
    inside = GhostBuster(machine).inside_scan(
        resources=("files", "registry"))
    outside = GhostBuster(machine).outside_scan(
        resources=("files", "registry"), reboot_after=False)
    inside_verdict = ("DETECTED" if not inside.is_clean
                      else "evaded (as the paper warns)")
    outside_verdict = (f"DETECTED ({len(outside.findings)} findings)"
                       if not outside.is_clean else "evaded")
    emit(f"- inside-the-box: {inside_verdict}")
    emit(f"- outside-the-box: {outside_verdict}\n")

    emit("## A4 — ablation: Gatekeeper (cross-time ASEP) × GhostBuster\n")
    from repro.core import GatekeeperMonitor
    from repro.ghostware import Berbew
    machine = fresh("a4")
    monitor = GatekeeperMonitor(machine)
    changes = monitor.watch(lambda: (Berbew().install(machine),
                                     HackerDefender().install(machine)))
    report = GhostBuster(machine).inside_scan(resources=("registry",))
    gatekeeper_names = sorted(change.name for change in changes)
    ghostbuster_names = sorted(finding.entry.name for finding in
                               report.hidden_hooks())
    emit(f"- Gatekeeper saw the *visible* hook-planting: "
         f"{gatekeeper_names}")
    emit(f"- GhostBuster saw the *hidden* hooks: {ghostbuster_names}")
    emit("- union: full coverage of hiding and non-hiding malware\n")

    emit("## X1 — future work built: ADS, RIS, registry callbacks\n")
    from repro.core import (RisServer, executable_streams,
                            scan_alternate_streams)
    from repro.ghostware import AdsGhost, CmCallbackGhost
    machine = fresh("x1-ads")
    ghost = AdsGhost()
    ghost.install(machine)
    file_diff = GhostBuster(machine).inside_scan(resources=("files",))
    streams = executable_streams(scan_alternate_streams(machine))
    emit(f"- ADS: regular file diff "
         f"{'clean' if file_diff.is_clean else 'detected'}; ADS scanner "
         f"found {[entry.qualified_name for entry in streams]}")
    machine = fresh("x1-cm")
    CmCallbackGhost().install(machine)
    report = GhostBuster(machine).inside_scan(resources=("registry",))
    emit(f"- kernel registry callback: "
         f"{len(report.hidden_hooks())} hidden hook(s) exposed by the "
         f"raw hive parse")
    fleet = []
    for index in range(3):
        client = Machine(f"x1-client-{index}", disk_mb=256,
                         max_records=8192)
        client.boot()
        fleet.append(client)
    HackerDefender().install(fleet[1])
    sweep = RisServer().sweep(fleet)
    emit(f"- RIS sweep: {len(sweep.reports)} clients network-booted, "
         f"infected = {sweep.infected_machines}\n")


def main() -> None:
    emit("# EXPERIMENTS — paper vs. measured")
    emit()
    emit("Generated by `python scripts/generate_experiments.py` against "
         "the simulated substrate")
    emit("(seeded and deterministic; timing values are simulated-clock "
         "seconds from the")
    emit("calibrated cost model — see DESIGN.md §5).  Each section's "
         "benchmark in")
    emit("`benchmarks/` asserts these shapes on every run.")
    emit()
    e1()
    e2_e3()
    e4_e5()
    e6_e7()
    e8_to_a3()

    output_path = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md"
    with open(output_path, "w") as handle:
        handle.write(OUT.getvalue())
    print(f"wrote {output_path} ({len(OUT.getvalue().splitlines())} lines)")


if __name__ == "__main__":
    main()
