#!/usr/bin/env python3
"""CI smoke for the operator console: boot it for real, curl everything.

End-to-end through the actual CLI surfaces, not the Python API:

1. ``python -m repro sweep --epochs N --fleet-dir D`` builds a real
   fleet directory (journals, queue WAL, baselines, sidecar index);
2. ``python -m repro serve`` boots the console as a subprocess on an
   ephemeral port;
3. every HTTP endpoint is fetched and asserted — status code AND the
   shape of the response (the JSON keys an operator's tooling would
   script against), including the 401s a missing/bad token must earn;
4. ``python -m repro fleet-status --json`` must report
   index-vs-replay agreement over the same directory.

Run:  PYTHONPATH=src python scripts/console_smoke.py [--epochs 2]
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ENV = dict(os.environ, PYTHONPATH=str(REPO / "src"))
TOKEN = "ci-smoke-token"

FAILURES = []


def check(label: str, passed: bool, detail: str = "") -> None:
    print(f"  [{'PASS' if passed else 'FAIL'}] {label}"
          + (f" ({detail})" if detail and not passed else ""))
    if not passed:
        FAILURES.append(label)


def fetch(url: str, token: str = TOKEN):
    """(status, parsed-or-text body) for one GET, token via header."""
    request = urllib.request.Request(url)
    if token is not None:
        request.add_header("Authorization", f"Bearer {token}")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            status = response.status
            content_type = response.headers.get("Content-Type", "")
            body = response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        status = error.code
        content_type = error.headers.get("Content-Type", "")
        body = error.read().decode("utf-8")
    if content_type.startswith("application/json"):
        return status, json.loads(body)
    return status, body


def cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args], cwd=REPO, env=ENV,
        capture_output=True, text=True, timeout=600)


def boot_console(fleet_dir: str) -> subprocess.Popen:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--fleet-dir", fleet_dir,
         "--port", "0", "--token", TOKEN], cwd=REPO, env=ENV,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    deadline = time.time() + 30
    while time.time() < deadline:
        line = process.stdout.readline()
        if not line and process.poll() is not None:
            raise RuntimeError("console exited before announcing itself")
        match = re.search(r"console at (http://[\w.:]+)", line)
        if match:
            return process, match.group(1)
    raise RuntimeError("console never announced its URL")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--fleet-dir", default=None)
    args = parser.parse_args()

    fleet_dir = args.fleet_dir or tempfile.mkdtemp(prefix="gb-console-ci-")
    print(f"building {args.epochs}-epoch fleet in {fleet_dir} ...")
    sweep = cli("sweep", "--epochs", str(args.epochs), "--escalate",
                "winpe", "--fleet-dir", fleet_dir, "--json")
    check("fleet sweep exits 0", sweep.returncode == 0, sweep.stderr[-300:])
    epochs = json.loads(sweep.stdout)["epochs"]
    check(f"sweep ran {args.epochs} epochs", len(epochs) == args.epochs)

    process, base = boot_console(fleet_dir)
    print(f"console up at {base}")
    try:
        status, body = fetch(f"{base}/healthz", token=None)
        check("/healthz 200 unauthenticated",
              status == 200 and body.get("ok") is True)
        status, body = fetch(f"{base}/api/status", token=None)
        check("/api/status without token is 401",
              status == 401 and body.get("error") == "missing token")
        status, body = fetch(f"{base}/api/status", token="wrong")
        check("/api/status with bad token is 401",
              status == 401 and body.get("error") == "bad token")

        status, body = fetch(f"{base}/api/status")
        check("/api/status 200 + schema",
              status == 200
              and body.get("epochs_completed") == args.epochs
              and "outbreaks" in body and "last_summary" in body)

        status, machines = fetch(f"{base}/api/machines")
        check("/api/machines 200 + roster",
              status == 200 and machines.get("machines")
              and set(machines["latest"]) == set(machines["machines"]))
        name = machines["machines"][0]

        status, detail = fetch(f"{base}/api/machines/{name}")
        check(f"/api/machines/{name} 200 + drill-down",
              status == 200
              and len(detail.get("history", [])) == args.epochs
              and detail.get("latest", {}).get("machine") == name
              and "confidence" in (detail.get("baseline") or {}))
        status, body = fetch(f"{base}/api/machines/no-such-box")
        check("unknown machine is 404", status == 404)

        status, body = fetch(f"{base}/api/epochs")
        check("/api/epochs 200 + extents",
              status == 200
              and [e["epoch"] for e in body.get("epochs", [])]
              == list(range(1, args.epochs + 1))
              and all(e.get("summary") for e in body["epochs"]))

        status, body = fetch(f"{base}/api/outbreaks")
        check("/api/outbreaks 200 + list",
              status == 200 and isinstance(body.get("outbreaks"), list))

        status, body = fetch(f"{base}/api/query?verdict=infected")
        check("/api/query 200 + filtered results",
              status == 200 and body.get("count") == len(body["results"])
              and all(r["verdict"] == "infected" for r in body["results"]))

        status, body = fetch(f"{base}/api/index")
        check("/api/index 200 + stats",
              status == 200 and body.get("machines", 0) > 0
              and body.get("torn_skipped") == 0)

        status, body = fetch(f"{base}/api/metrics")
        check("/api/metrics 200 + counters",
              status == 200 and "counters" in body)
        status, body = fetch(f"{base}/metrics")
        check("/metrics 200 + prometheus text",
              status == 200 and "console" in body)

        status, body = fetch(f"{base}/")
        check("dashboard HTML renders",
              status == 200 and "fleet console" in body and name in body)
        status, body = fetch(f"{base}/machine/{name}")
        check("machine HTML renders", status == 200 and name in body)
    finally:
        process.terminate()
        process.wait(timeout=10)

    fstatus = cli("fleet-status", "--fleet-dir", fleet_dir, "--json")
    agreement = json.loads(fstatus.stdout).get("index_replay_agreement",
                                               {})
    check("fleet-status index agrees with replay",
          fstatus.returncode == 0 and agreement.get("agree") is True,
          json.dumps(agreement))

    if FAILURES:
        print(f"FAILED: {FAILURES}", file=sys.stderr)
        return 1
    print("console smoke: all endpoints healthy")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
