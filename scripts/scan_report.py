#!/usr/bin/env python
"""Render a fleet sweep's telemetry JSONL as an operator report.

Usage::

    PYTHONPATH=src python scripts/scan_report.py SWEEP.jsonl
    PYTHONPATH=src python scripts/scan_report.py --demo [--out SWEEP.jsonl]

``--demo`` runs a small telemetry-collecting sweep (one infected client)
to produce a JSONL file and then renders it — useful for seeing the
format without a real fleet.

The JSONL format is written by
:meth:`repro.telemetry.health.FleetHealth.write_jsonl`: one record per
line, ``type`` in {``sweep``, ``machine``, ``span``, ``audit``,
``delta``, ``metrics``}.  Delta sweeps add one ``delta`` record with
the incremental provenance (baseline ids, skipped machines, repair
counters); ``--demo --delta`` produces one.

A ``repro.fleet`` epochs journal (``epochs.jsonl``: ``epoch-start``,
``fleet-machine``, ``fleet-outbreak``, ``fleet-campaign``,
``epoch-end`` records) is auto-detected and rendered as an
epoch-by-epoch report with escalation provenance, outbreak alerts, and
the cross-epoch campaign timeline.  A ``BENCH_PR10.json`` (full bench
or ``--stealth-campaign`` artifact) is also accepted and rendered as
the per-stealth-level detection columns (docs/adversary.md).
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.telemetry.health import load_jsonl   # noqa: E402


def render(records: dict) -> str:
    lines = []
    sweeps = records.get("sweep", [])
    if sweeps:
        sweep = sweeps[0]
        lines.append(f"sweep: {sweep['machines']} machines, "
                     f"{sweep['workers']} worker(s), "
                     f"{sweep['wall_s']:.2f}s wall")
    machines = records.get("machine", [])
    if machines:
        header = (f"{'machine':<14} {'status':<9} {'wall(s)':>8} "
                  f"{'sim(s)':>8} {'findings':>8} {'audit':>6}")
        lines += [header, "-" * len(header)]
        for machine in machines:
            lines.append(
                f"{machine['machine']:<14} {machine['status']:<9} "
                f"{machine['wall_s']:>8.3f} {machine['sim_s']:>8.1f} "
                f"{machine['findings']:>8d} "
                f"{machine['audit_event_count']:>6d}")
        errors = Counter(machine["error_kind"] for machine in machines
                         if machine.get("error_kind"))
        if errors:
            lines.append("errors: " + ", ".join(
                f"{kind} x{count}" for kind, count in sorted(
                    errors.items())))
        interposed = sorted({api for machine in machines
                             for api in machine.get("interposed_apis", [])})
        if interposed:
            lines.append("interposed APIs observed fleet-wide:")
            lines += [f"  {api}" for api in interposed]
    spans = records.get("span", [])
    if spans:
        slowest = sorted((span for span in spans
                          if span.get("parent_id") is not None),
                         key=lambda span: -span.get("wall_s", 0.0))[:5]
        lines.append("slowest spans:")
        for span in slowest:
            lines.append(f"  {span['machine']:<14} {span['name']:<28} "
                         f"{span['wall_s'] * 1000:8.2f}ms")
    audits = records.get("audit", [])
    if audits:
        counted = Counter((event["layer"], event["api"], event["owner"])
                          for event in audits)
        lines.append("interceptions:")
        for (layer, api, owner), count in counted.most_common(10):
            lines.append(f"  {layer:<14} {api:<34} by {owner} x{count}")
    deltas = records.get("delta", [])
    if deltas:
        delta = deltas[0]
        skipped = delta.get("skipped", [])
        stats = delta.get("stats", {})
        baseline_ids = delta.get("baseline_ids", {})
        patched = int(stats.get("journal.records_patched", 0))
        reparsed = int(stats.get("hive.delta.bins_reparsed", 0))
        fallbacks = int(stats.get("journal.patch_fallback", 0)
                        + stats.get("journal.overflow", 0)
                        + stats.get("hive.delta.fallback", 0))
        lines.append(f"delta sweep: {len(skipped)} machine(s) served "
                     f"from baseline, {patched} MFT record(s) patched, "
                     f"{reparsed} hive bin(s) reparsed, "
                     f"{fallbacks} full-reparse fallback(s)")
        if skipped:
            lines.append("  skipped (verdict from baseline):")
            for name in skipped:
                lines.append(f"    {name:<14} "
                             f"{baseline_ids.get(name, '?')}")
        rescanned = sorted(set(baseline_ids) - set(skipped))
        if rescanned:
            lines.append("  re-scanned (baseline advanced):")
            for name in rescanned:
                lines.append(f"    {name:<14} "
                             f"{baseline_ids.get(name, '?')}")
    metrics = records.get("metrics", [])
    if metrics:
        counters = metrics[0].get("counters", {})
        if counters:
            lines.append("counters:")
            for name in sorted(counters):
                lines.append(f"  {name} = {counters[name]:g}")
    return "\n".join(lines)


def render_fleet(records: dict) -> str:
    """Render a fleet epochs journal (``repro.fleet`` coordinator)."""
    lines = []
    for start in records.get("epoch-start", []):
        lines.append(f"epoch {start.get('epoch', '?')} opened over "
                     f"{start.get('machines', '?')} machine(s) at "
                     f"t={start.get('at', 0.0):.1f}s")
    verdicts = records.get("fleet-machine", [])
    if verdicts:
        header = (f"{'machine':<14} {'ep':>3} {'verdict':<9} "
                  f"{'mode':<8} {'findings':>8} {'sim(s)':>8} escalation")
        lines += [header, "-" * len(header)]
        for verdict in verdicts:
            if verdict.get("skipped"):
                mode = "skip"
            elif verdict.get("sampling_escalated"):
                mode = "sam>full"
            elif verdict.get("sampled"):
                coverage = verdict.get("coverage", 1.0)
                mode = f"samp{round(coverage * 100):>3d}%"
            else:
                mode = "scan"
            escalation = ""
            if verdict.get("escalated"):
                escalation = (f"confirmed by {verdict['confirmed_by']}"
                              if verdict.get("confirmed")
                              else "escalated, unconfirmed")
            if verdict.get("error"):
                escalation = verdict["error"]
            lines.append(
                f"{verdict.get('machine', '?'):<14} "
                f"{verdict.get('epoch', 0):>3d} "
                f"{verdict.get('verdict', '?'):<9} {mode:<8} "
                f"{verdict.get('findings', 0):>8d} "
                f"{verdict.get('scan_seconds', 0.0):>8.1f} {escalation}")
    outbreaks = records.get("fleet-outbreak", [])
    for outbreak in outbreaks:
        lines.append(f"OUTBREAK epoch {outbreak.get('epoch', '?')}: "
                     f"{outbreak.get('identity')!r} on "
                     f"{len(outbreak.get('machines', []))} machine(s): "
                     + ", ".join(outbreak.get("machines", [])))
    # Campaign timeline: cross-epoch correlation over rotation-tolerant
    # fuzzy fingerprints — one line per underlying campaign, however
    # many exact identities it rotated through (docs/adversary.md).
    for campaign in records.get("fleet-campaign", []):
        lines.append(
            f"CAMPAIGN {campaign.get('fingerprint')!r}: "
            f"{len(campaign.get('machines', []))} machine(s) since "
            f"epoch {campaign.get('first_epoch', '?')}, "
            f"{len(campaign.get('identities', []))} rotated "
            f"identity(ies): " + ", ".join(campaign.get("machines", [])))
    agents = {}
    for record in records.get("fleet-agent", []):
        agents[record.get("agent", "?")] = record
    if agents:
        lines.append("agents (distributed mode, last state):")
        for name in sorted(agents):
            agent = agents[name]
            lines.append(
                f"  {name:<14} {agent.get('state', '?'):<9} "
                f"acks={agent.get('acks', 0)} "
                f"reconnects={agent.get('reconnects', 0)} "
                f"last={agent.get('event', '?')}"
                + (f" reclaimed={','.join(agent['reclaimed'])}"
                   if agent.get("reclaimed") else ""))
    ends = records.get("epoch-end", [])
    if ends:
        lines.append("epochs:")
        for end in ends:
            late = end.get("late_acks", 0)
            sampled = end.get("sampled", 0)
            sampling = ""
            if sampled:
                recall = end.get("estimated_recall", 1.0)
                sampling = (f", {sampled} sampled "
                            f"({end.get('sampling_escalations', 0)} "
                            f"escalated by sampling, "
                            f"est. recall {recall * 100:.1f}%)")
            lines.append(
                f"  epoch {end.get('epoch', '?')}: "
                f"{end.get('machines', 0)} machine(s), "
                f"{end.get('scanned', 0)} scanned / "
                f"{end.get('skipped', 0)} skipped, "
                f"{end.get('infected', 0)} infected, "
                f"{end.get('escalated', 0)} escalated "
                f"({end.get('confirmed', 0)} confirmed), "
                f"{end.get('errors', 0)} error(s), "
                f"{end.get('outbreaks', 0)} outbreak(s), "
                f"{end.get('scan_seconds', 0.0):.1f}s of scanning"
                + sampling
                + (f", {late} late ack(s) dropped" if late else ""))
    return "\n".join(lines)


def is_fleet_journal(records: dict) -> bool:
    return bool(records.get("fleet-machine") or records.get("epoch-end")
                or records.get("epoch-start"))


def render_stealth_curve(payload: dict) -> str:
    """Per-stealth-level detection columns from a ``BENCH_PR10.json``.

    Accepts either a full bench result or a ``--stealth-campaign``
    artifact; both carry the curve under ``stealth_campaign``.
    """
    stealth = payload.get("stealth_campaign") or payload.get(
        "timings", {}).get("stealth_campaign")
    if not stealth:
        return "no stealth_campaign section in this bench file"
    lines = [f"stealth campaign curve ({stealth.get('fleet_size', '?')} "
             f"machines x {stealth.get('epochs', '?')} epochs)"]
    header = (f"{'level':<9} {'naive P':>8} {'naive R':>8} "
              f"{'def P':>6} {'def R':>6} {'outbreaks':>9} "
              f"{'campaigns':>9} {'probe':>6}")
    lines += [header, "-" * len(header)]
    for point in stealth.get("curve", []):
        naive, defended = point.get("naive", {}), point.get("defended", {})
        probe = defended.get("probe_hit_rate")
        lines.append(
            f"{point.get('level', '?'):<9} "
            f"{naive.get('precision', 0.0):>8.2f} "
            f"{naive.get('recall', 0.0):>8.2f} "
            f"{defended.get('precision', 0.0):>6.2f} "
            f"{defended.get('recall', 0.0):>6.2f} "
            f"{defended.get('outbreak_alerts', 0):>9d} "
            f"{defended.get('campaign_alerts', 0):>9d} "
            + (f"{probe:>6.2f}" if probe is not None else f"{'n/a':>6}"))
    determinism = stealth.get("determinism", {})
    if determinism:
        lines.append(
            f"determinism: reruns identical "
            f"{determinism.get('runs_identical')}, "
            f"{determinism.get('other_backend', 'other')} backend "
            f"identical {determinism.get('backends_identical')}")
    return "\n".join(lines)


def run_demo(out_path: Path, delta: bool = False) -> Path:
    import tempfile

    from repro.core.baseline import BaselineStore
    from repro.core.risboot import RisServer
    from repro.ghostware import HackerDefender
    from repro.machine import Machine
    from repro.telemetry.metrics import reset_global_metrics

    reset_global_metrics()
    machines = []
    for index in range(3):
        machine = Machine(f"client-{index}", disk_mb=256, max_records=8192)
        machine.boot()
        machines.append(machine)
    HackerDefender().install(machines[1])
    server = RisServer()
    if delta:
        store = BaselineStore(tempfile.mkdtemp(prefix="gb-baselines-"))
        server.sweep(machines, mode="full", baseline_store=store)
        machines[2].volume.create_file("\\Temp\\dropped.txt", b"payload")
        result = server.sweep(machines, max_workers=3,
                              collect_telemetry=True, mode="delta",
                              baseline_store=store)
    else:
        result = server.sweep(machines, max_workers=3,
                              collect_telemetry=True)
    result.health.write_jsonl(out_path)
    return out_path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Render fleet-sweep telemetry JSONL")
    parser.add_argument("jsonl", nargs="?", help="telemetry JSONL file")
    parser.add_argument("--demo", action="store_true",
                        help="generate a demo sweep first")
    parser.add_argument("--delta", action="store_true",
                        help="make --demo run a baseline-seeded delta "
                             "sweep (adds the delta provenance record)")
    parser.add_argument("--out", default="SWEEP_DEMO.jsonl",
                        help="where --demo writes its JSONL")
    options = parser.parse_args(argv)

    if options.demo:
        path = run_demo(Path(options.out), delta=options.delta)
        print(f"wrote {path}\n")
    elif options.jsonl:
        path = Path(options.jsonl)
    else:
        parser.error("give a JSONL file or --demo")
    text = path.read_text()
    if text.lstrip().startswith("{") and "\n{" not in text:
        # A bench JSON artifact, not a journal: render the per-level
        # stealth detection columns (docs/adversary.md).
        import json
        print(render_stealth_curve(json.loads(text)))
        return 0
    records = load_jsonl(path)
    if is_fleet_journal(records):
        print(render_fleet(records))
    else:
        print(render(records))
    return 0


if __name__ == "__main__":
    sys.exit(main())
