#!/usr/bin/env python3
"""Substrate hot-path benchmark: the trajectory future PRs must beat.

Measures the hot paths and writes the timings to ``BENCH_PR6.json``:

1. **raw MFT parse (cold)** — one full namespace parse of a 1000-file
   disk with every cache cleared;
2. **repeated ``read_file_content``** — N content reads through one
   parser, against a faithful emulation of the pre-caching code (a full
   MFT re-parse per lookup);
3. **raw ASEP scan (multi-hive)** — repeated low-level registry scans,
   against the pre-caching behaviour (full MFT re-parse per hive file
   plus an unmemoized hive parse per scan);
4. **RIS fleet sweep** — 50 clients cloned from one golden image, serial
   vs 8 workers, with a per-client wait modelling the PXE/TFTP transfer
   and client-side I/O the server spends its time on in a real
   deployment (the simulated scan itself is in-process compute, which
   the GIL serializes; the latency-dominated regime is where a real RIS
   server lives and where parallel sweeps pay off);
5. **10k-entry cross-view diff** — the detection engine's inner loop;
6. **telemetry overhead** — the repeated-read loop with the default
   no-op telemetry vs a fully nulled-out registry, gating the cost of
   the (inactive) instrumentation at <= 5%;
7. **chaos sweep** — the same fleet swept fault-free and then under a
   5% deterministic fault plan, gating that recall is unchanged (same
   infected machines, same finding identities), nothing errors or
   quarantines, and the plan actually fired faults;
8. **delta rescan** — the low-level truth re-derivation (full MFT
   namespace plus every raw hive parse) on a 1000-file machine, cold vs
   warm after K small mutations, where the warm arm repairs its caches
   through the change journal instead of re-walking the volume — gated
   at >= 10x with byte-identical findings;
9. **delta fleet sweep** — the 50-machine fleet swept ``mode="delta"``
   against a seeded :class:`BaselineStore` with 3 machines changed,
   vs a full re-sweep — gated at >= 5x with identical
   ``infected_machines``;
10. **fleet epoch** — a checkpointed :mod:`repro.fleet` coordinator
    epoch over the 50-machine fleet: the seed epoch scans everything,
    the steady-state epoch rides the baselines — gated at >= 5x over a
    naive serial full sweep;
11. **fleet escalation** — a twelve-strain fleet (one corpus member per
    machine plus clean controls) run through the inside→outside
    escalation policy — gated at precision 1.0 (no clean machine ever
    pays for a confirmation boot) with ``confirmed_by`` provenance on
    every confirmed detection;
12. **cold zero-copy parse** — one cold MFT+hive truth derivation at
    Machine-default scale (65536 MFT slots) through the flat backend's
    batched ``memoryview`` walk, against the seed's per-record read
    loop — gated at >= 5x with an identical parsed namespace and
    byte-identical detection reports;
13. **memory ceiling** — machines-per-GB of a copy-on-write fleet
    (every clone sharing one sealed golden extent) vs deep-copied
    clones — gated at >= 4x density with element-identical sweep
    verdicts after clone-divergence writes;
14. **console query** — per-machine point lookups against a
    50-machine x 20-epoch journal, answered through the console's
    sidecar :class:`~repro.console.index.JournalIndex` (p50/p95) vs a
    full journal replay per lookup — gated at >= 10x on the median
    with record-identical answers and an index ``fleet_status`` that
    matches the replayed one;
15. **index overhead** — the steady-state fleet epoch re-run with the
    coordinator's write-time index hooks enabled vs disabled — gated
    at <= 5% added wall clock (the console must be free to leave on);
16. **distributed sweep** — the parse-heavy corpus swept by
    ``run_distributed`` (a controller plus forked scan-agent
    processes) vs the single-process coordinator at equal worker
    count: the GIL serializes in-process parse workers, the agent
    processes do not — gated at >= 2x on hosts with >= 4 cores (a
    single-core host can only time-slice the agents, so there the gate
    is bounded overhead instead), always with element-identical
    verdicts and finding identities, plus a partition-chaos arm (5% of
    wire frames dropped/delayed/duplicated/torn) that must lose zero
    machines and change zero verdicts.

17. **sampled sweep** — a 200-machine profiled fleet under a seeded
    HackerDefender infection wave, swept in full and then with the
    stratified :class:`~repro.workloads.sampling.SamplingPolicy` at
    three file-sampling rates; steady-state (post-cold-start)
    simulated scan-seconds and measured recall against the planted
    ground truth form the recall-vs-cost curve — gated at an
    operating point with >= 5x reduction at recall >= 0.95 (the ASEP
    stratum is never sampled, which is the paper's persistence
    argument doing the recall work);
18. **trace replay** — a recorded 20-machine sweep trace replayed on
    both disk backends — gated on element-identical verdicts and
    byte-identical ``epochs.jsonl`` journals across the backends.

``--fleet-soak`` ignores the benchmarks and instead runs the CI soak:
N epochs over a fleet under a deterministic fault plan, gating that no
machine is ever lost (every epoch yields a verdict for every machine).

``--distributed-soak`` is the distributed-mode counterpart: N epochs
over the fleet with forked agents, one of which ``kill -9``s itself
mid-lease in the first epoch — gated on element-identical verdicts vs
an uninterrupted single-process reference and zero lost machines.

Every cached benchmark also reports the cache hit/miss counters the
telemetry registry recorded while it ran, so the JSON shows *why* the
cached numbers are fast, not just that they are.

Run:  PYTHONPATH=src python scripts/bench.py [--smoke] [--out FILE]
                                             [--telemetry-out DIR]

``--telemetry-out DIR`` additionally runs a tiny telemetry-collecting
sweep and writes ``sweep_telemetry.jsonl`` + ``metrics_snapshot.json``
there (CI uploads them as artifacts).

``--workload-replay`` runs only the CI workload-replay smoke: record a
2-epoch x 20-machine trace, replay it twice, and gate element-identical
verdicts plus identical trace and journal digests.  ``--trace FILE``
records that reference workload's trace to FILE and exits;
``--replay FILE`` replays an existing trace and prints its digests and
verdict summary.

``--smoke`` shrinks every profile for CI (no speedup gates, no default
output file); the full run enforces the PR-1 acceptance floors and
fails loudly if a regression drops below them.
"""

from __future__ import annotations

import argparse
import gc
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import BaselineStore, GhostBuster, RisServer  # noqa: E402
from repro.core.diff import DetectionReport, cross_view_diff  # noqa: E402
from repro.core.scanners.registry import low_level_asep_scan  # noqa: E402
from repro.core.snapshot import (FileEntry, ResourceType,     # noqa: E402
                                 ScanSnapshot)
from repro.disk import Disk, DiskGeometry                   # noqa: E402
from repro.fleet import clone_fleet, fleet_storage_stats    # noqa: E402
from repro.ghostware import HackerDefender                  # noqa: E402
from repro.machine import HIVE_FILES, Machine               # noqa: E402
from repro.ntfs import MftParser, NtfsVolume                # noqa: E402
from repro.registry import hive_parser                      # noqa: E402
from repro.telemetry.metrics import (NullMetrics,           # noqa: E402
                                     global_metrics,
                                     reset_global_metrics,
                                     set_global_metrics)
from repro.workloads import populate_machine                # noqa: E402

OUT_DEFAULT = Path(__file__).resolve().parent.parent / "BENCH_PR10.json"


def clear_caches(*disks) -> None:
    hive_parser.clear_hive_cache()
    for disk in disks:
        disk.raw_cache.clear()


def timed(action, repeat: int = 3) -> float:
    """Best-of-N wall-clock seconds for ``action()``."""
    samples = []
    for __ in range(repeat):
        start = time.perf_counter()
        action()
        samples.append(time.perf_counter() - start)
    return min(samples)


def cache_counters() -> dict:
    """The registry's cache hit/miss counters, for bench attribution."""
    counters = global_metrics().snapshot()["counters"]
    return {name: counters[name] for name in sorted(counters)
            if "cache" in name or "memo" in name}


def delta_counters() -> dict:
    """The journal / bin-delta repair counters, for bench attribution."""
    counters = global_metrics().snapshot()["counters"]
    return {name: counters[name] for name in sorted(counters)
            if name.startswith(("journal.", "hive.delta.", "ris.delta."))}


def finding_identities(report) -> str:
    """Canonical JSON of a report's non-noise findings, for byte equality."""
    return json.dumps(sorted(
        (f.resource_type.value, str(f.entry.identity))
        for f in report.findings if not f.is_noise))


# -- profiles -----------------------------------------------------------------


def populated_disk(file_count: int) -> Disk:
    disk = Disk(DiskGeometry.from_megabytes(256))
    volume = NtfsVolume.format(disk, max_records=file_count * 2 + 64)
    volume.create_directories("\\data")
    for index in range(file_count):
        volume.create_file(f"\\data\\file{index:05d}.bin", b"x" * 100)
    return disk


def golden_machine(file_count: int) -> Machine:
    machine = Machine("golden", disk_mb=512, max_records=8192)
    populate_machine(machine, file_count=file_count, registry_scale=200,
                     seed=7)
    return machine


def cloned_fleet(golden: Machine, count: int, infected=()):
    return clone_fleet(golden, count, infected=infected,
                       infect=lambda machine:
                       HackerDefender().install(machine),
                       max_records=8192)


# -- hot paths ----------------------------------------------------------------


def bench_raw_mft_parse(file_count: int) -> float:
    disk = populated_disk(file_count)

    def cold_parse():
        clear_caches(disk)
        entries = MftParser(disk.read_bytes).parse()
        assert len(entries) == file_count + 1

    return timed(cold_parse)


def bench_read_file_content(file_count: int, reads: int) -> dict:
    disk = populated_disk(file_count)
    paths = [f"\\data\\file{i:05d}.bin" for i in range(reads)]

    def legacy():
        # Pre-caching behaviour: find_by_path fully re-parsed the MFT on
        # every call; emulated with a cache-cleared fresh parser per read.
        for path in paths:
            clear_caches(disk)
            assert MftParser(disk.read_bytes).read_file_content(path)

    def cached():
        clear_caches(disk)
        parser = MftParser(disk.read_bytes)
        for path in paths:
            assert parser.read_file_content(path)

    legacy_s = timed(legacy, repeat=1)
    reset_global_metrics()
    cached_s = timed(cached)
    return {"legacy_s": legacy_s, "cached_s": cached_s,
            "speedup": legacy_s / cached_s,
            "cache_counters": cache_counters()}


def bench_raw_asep_scan(file_count: int, scans: int) -> dict:
    machine = golden_machine(file_count)
    machine.boot()
    port = machine.kernel.disk_port

    def legacy_once():
        # Pre-caching RawHiveReader: one full MFT parse per hive file
        # (find_by_path scanned the whole namespace) and an unmemoized
        # hive parse per scan.
        for hive_file in HIVE_FILES.values():
            clear_caches(machine.disk)
            blob = MftParser(port.read_bytes).read_file_content(hive_file)
            hive_parser.HiveParser(blob).parse()

    def legacy():
        for __ in range(scans):
            legacy_once()

    def cached():
        clear_caches(machine.disk)
        for __ in range(scans):
            low_level_asep_scan(machine)

    legacy_s = timed(legacy, repeat=1)
    reset_global_metrics()
    cached_s = timed(cached)
    return {"legacy_s": legacy_s, "cached_s": cached_s,
            "speedup": legacy_s / cached_s,
            "cache_counters": cache_counters()}


def bench_ris_sweep(fleet_size: int, workers: int, client_wait: float,
                    file_count: int) -> dict:
    golden = golden_machine(file_count)
    infected = tuple(range(0, fleet_size, max(1, fleet_size // 3)))[:3]
    server = RisServer(client_wait_seconds=client_wait)

    def finding_key(result):
        return sorted(
            (name, sorted((f.resource_type.value, str(f.entry.identity))
                          for f in report.findings if not f.is_noise))
            for name, report in result.reports.items())

    serial_fleet = cloned_fleet(golden, fleet_size, infected)
    serial = server.sweep(serial_fleet, max_workers=1)
    parallel_fleet = cloned_fleet(golden, fleet_size, infected)
    parallel = server.sweep(parallel_fleet, max_workers=workers)

    identical = finding_key(serial) == finding_key(parallel)
    return {
        "fleet_size": fleet_size,
        "workers": workers,
        "client_wait_s": client_wait,
        "serial_s": serial.wall_seconds,
        "parallel_s": parallel.wall_seconds,
        "speedup": serial.wall_seconds / parallel.wall_seconds,
        "findings_identical": identical,
        "infected_machines": parallel.infected_machines,
        "simulated_seconds": parallel.simulated_seconds,
    }


def bench_diff_10k(entry_count: int) -> float:
    def snapshot(view, count, offset=0):
        entries = [FileEntry(f"\\f{i + offset}", f"f{i + offset}", False, 0)
                   for i in range(count)]
        return ScanSnapshot(ResourceType.FILE, view=view, entries=entries)

    lie = snapshot("lie", entry_count)
    truth = snapshot("truth", entry_count, offset=5)

    def diff_and_merge():
        report = DetectionReport("bench", mode="inside")
        for __ in range(5):
            report.add_findings(cross_view_diff(lie, truth))
        assert len(report.findings) == 5

    return timed(diff_and_merge)


def bench_telemetry_overhead(file_count: int, reads: int) -> dict:
    """Cost of inactive instrumentation on the repeated-reads benchmark.

    ``default``: the shipped configuration — no-op tracer (no telemetry
    context activated) and the real global :class:`MetricsRegistry`
    taking counter increments.  ``nulled``: every telemetry call swapped
    for a pure no-op via :class:`NullMetrics`.  The measured loop is the
    same shape as the ``read_file_content`` benchmark's cached arm: one
    cold namespace parse, then N reads through the same parser.

    ``warm_read_overhead_ns`` additionally reports the absolute per-read
    cost on an already-warm parser (a counter increment plus a memo
    lookup; sub-microsecond).  That synthetic worst case is
    informational — the gate applies to the benchmark loop, where a
    single scan's real work amortizes it.

    Samples for the two arms are interleaved (default, nulled, default,
    ...) so that slow drift on a shared CI runner biases both arms
    equally instead of landing wholly on whichever ran second; each
    arm's figure is the min of its samples.
    """
    disk = populated_disk(file_count)
    paths = [f"\\data\\file{i % file_count:05d}.bin" for i in range(reads)]

    def loop():
        clear_caches(disk)
        parser = MftParser(disk.read_bytes)
        for path in paths:
            assert parser.read_file_content(path)

    def warm_loop(parser):
        for path in paths:
            assert parser.read_file_content(path)

    def nulled(action):
        previous = set_global_metrics(NullMetrics())
        try:
            return action()
        finally:
            set_global_metrics(previous)

    loop()   # first call primes interpreter-level state for both arms
    # The warm parsers resolve their counter handles at construction, so
    # each arm needs one built under its own registry.
    default_warm = MftParser(disk.read_bytes)
    default_warm.read_file_content(paths[0])
    nulled_warm = nulled(lambda: MftParser(disk.read_bytes))
    nulled_warm.read_file_content(paths[0])
    default_samples, nulled_samples = [], []
    default_warm_samples, nulled_warm_samples = [], []
    gc_was_enabled = gc.isenabled()
    gc.disable()   # collector pauses dwarf the per-read delta under test
    try:
        for round_no in range(10):
            arms = [
                (default_samples, lambda: timed(loop, repeat=1)),
                (nulled_samples, lambda: nulled(
                    lambda: timed(loop, repeat=1))),
                (default_warm_samples,
                 lambda: timed(lambda: warm_loop(default_warm), repeat=1)),
                (nulled_warm_samples, lambda: nulled(
                    lambda: timed(lambda: warm_loop(nulled_warm),
                                  repeat=1))),
            ]
            # Alternate which arm leads so any state left by the
            # preceding collect() penalizes both arms equally.
            if round_no % 2:
                arms.reverse()
            for samples, measure in arms:
                samples.append(measure())
            gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
    default_s = min(default_samples)
    nulled_s = min(nulled_samples)
    # Each round's two arm samples are adjacent in time, so their ratio
    # cancels drift; the median across rounds discards spike-corrupted
    # pairs that a min-of-N over independent arms cannot.
    overhead = statistics.median(
        d / n - 1.0 for d, n in zip(default_samples, nulled_samples))
    warm_delta_ns = statistics.median(
        d - n for d, n in zip(default_warm_samples,
                              nulled_warm_samples)) / len(paths) * 1e9
    return {"default_s": default_s, "nulled_s": nulled_s,
            "overhead_pct": round(overhead * 100.0, 3),
            "warm_read_overhead_ns": round(warm_delta_ns, 1)}


def bench_chaos_sweep(fleet_size: int, workers: int, file_count: int,
                      rate: float = 0.05, seed: int = 2026) -> dict:
    """Recall under chaos: the PR-3 acceptance sweep.

    The same cloned fleet is swept twice — fault-free, then with a
    deterministic :class:`FaultPlan` firing at ``rate`` across every
    instrumented site — and the two sweeps must convict exactly the
    same machines on exactly the same evidence, with zero unhandled
    errors and zero quarantines.
    """
    from repro.faults.plan import FaultPlan

    golden = golden_machine(file_count)
    infected = tuple(range(0, fleet_size, max(1, fleet_size // 3)))[:3]

    def identities(result):
        return sorted(
            (name, sorted((f.resource_type.value, str(f.entry.identity))
                          for f in report.findings if not f.is_noise))
            for name, report in result.reports.items())

    baseline_fleet = cloned_fleet(golden, fleet_size, infected)
    baseline = RisServer().sweep(baseline_fleet, max_workers=workers)

    plan = FaultPlan.default(seed=seed, rate=rate)
    chaos_fleet = cloned_fleet(golden, fleet_size, infected)
    started = time.perf_counter()
    chaotic = RisServer(fault_plan=plan).sweep(chaos_fleet,
                                               max_workers=workers)
    chaos_wall = time.perf_counter() - started

    return {
        "fleet_size": fleet_size,
        "fault_rate": rate,
        "seed": seed,
        "faults_fired": plan.fired_count(),
        "fault_sites": sorted({f.site for f in plan.fired()}),
        "sequence_digest": plan.sequence_digest(),
        "baseline_infected": baseline.infected_machines,
        "chaos_infected": chaotic.infected_machines,
        "recall_unchanged": identities(baseline) == identities(chaotic),
        "errors": dict(chaotic.errors),
        "quarantined": dict(chaotic.quarantined),
        "retries": dict(chaotic.retry_counts),
        "baseline_wall_s": baseline.wall_seconds,
        "chaos_wall_s": chaos_wall,
    }


def bench_delta_rescan(file_count: int, mutations: int) -> dict:
    """Warm journal-patched rescan vs cold full scan after K mutations.

    The cold arm is what every rescan paid before the change journal: a
    full MFT namespace parse plus a cold parse of every registry hive.
    The warm arm applies ``mutations`` small changes per round (file
    create, content rewrite, ADS add, one registry value edit, filler
    creates) and re-derives the same truth through the journal-patch /
    bin-delta path.  Both arms then run a full inside detection at the
    same disk state and their findings must serialize identically.
    """
    machine = golden_machine(file_count)
    machine.boot()
    HackerDefender().install(machine)
    machine.registry.create_key("HKLM\\SOFTWARE\\BenchDelta")
    disk = machine.disk
    port = machine.kernel.disk_port

    def derive_truth():
        # The low-level truth re-derivation a scan's cache miss pays:
        # the full MFT namespace plus every raw hive parse off it.
        parser = MftParser(port.read_bytes)
        entries = parser.parse()
        for hive_file in HIVE_FILES.values():
            hive_parser.parse_hive(parser.read_file_content(hive_file))
        return entries

    def mutate(round_no: int) -> None:
        volume = machine.volume
        base = f"\\Temp\\delta{round_no:02d}"
        volume.create_file(f"{base}-new.bin", b"fresh")
        volume.write_file(f"{base}-new.bin", b"rewritten")
        volume.write_stream(f"{base}-new.bin", "marker", b"ads")
        machine.registry.set_value("HKLM\\SOFTWARE\\BenchDelta",
                                   "round", str(round_no))
        for extra in range(max(0, mutations - 4)):
            volume.create_file(f"{base}-extra{extra}.bin", b"x")

    def cold():
        clear_caches(disk)
        derive_truth()

    cold_s = timed(cold)

    reset_global_metrics()
    derive_truth()              # warm the caches at the current generation
    warm_samples = []
    for round_no in range(3):
        mutate(round_no)
        warm_samples.append(timed(derive_truth, repeat=1))
    warm_s = min(warm_samples)

    warm_report = GhostBuster(machine).detect()
    clear_caches(disk)
    cold_report = GhostBuster(machine).detect()
    identical = (finding_identities(warm_report)
                 == finding_identities(cold_report))
    return {
        "file_count": file_count,
        "mutations_per_round": mutations,
        "cold_s": cold_s,
        "warm_delta_s": warm_s,
        "speedup": cold_s / warm_s,
        "findings_identical": identical,
        "delta_counters": delta_counters(),
    }


def bench_delta_sweep(fleet_size: int, workers: int, client_wait: float,
                      file_count: int, changed: int) -> dict:
    """Delta sweep against seeded baselines vs a full re-sweep.

    A golden-image fleet is swept once in full with a
    :class:`BaselineStore` attached (seeding one baseline per machine),
    ``changed`` machines then receive one small write each, and the
    fleet is swept again in ``mode="delta"`` — which must skip every
    unchanged machine — and once more in full for the reference wall
    clock and verdict.
    """
    golden = golden_machine(file_count)
    infected = tuple(range(0, fleet_size, max(1, fleet_size // 3)))[:3]
    fleet = cloned_fleet(golden, fleet_size, infected)
    server = RisServer(client_wait_seconds=client_wait)

    def identities(result):
        return sorted((name, finding_identities(report))
                      for name, report in result.reports.items())

    with tempfile.TemporaryDirectory(prefix="gb-bench-baselines-") as tmp:
        store = BaselineStore(tmp)
        seed = server.sweep(fleet, max_workers=workers, mode="full",
                            baseline_store=store)
        step = max(1, fleet_size // max(1, changed))
        changed_names = []
        for index in range(changed):
            machine = fleet[(index * step + 1) % fleet_size]
            machine.volume.create_file(
                f"\\Temp\\delta-{machine.name}.bin", b"delta payload")
            changed_names.append(machine.name)
        delta = server.sweep(fleet, max_workers=workers, mode="delta",
                             baseline_store=store)
        full = server.sweep(fleet, max_workers=workers)

    return {
        "fleet_size": fleet_size,
        "workers": workers,
        "client_wait_s": client_wait,
        "changed_machines": changed_names,
        "seed_full_s": seed.wall_seconds,
        "delta_s": delta.wall_seconds,
        "full_s": full.wall_seconds,
        "speedup": full.wall_seconds / delta.wall_seconds,
        "skipped": len(delta.delta_skipped),
        "rescanned": fleet_size - len(delta.delta_skipped),
        "infected_identical":
            delta.infected_machines == full.infected_machines,
        "findings_identical": identities(delta) == identities(full),
        "infected_machines": delta.infected_machines,
        "delta_stats": delta.delta_stats,
    }


def bench_fleet_epoch(fleet_size: int, file_count: int,
                      workers: int) -> dict:
    """Checkpointed fleet epochs vs a naive serial full sweep.

    The naive arm scans every machine with a fresh
    :class:`GhostBuster`, serially, every time — the cost an epoch
    would pay with no baselines, no delta skips, no queue.  The
    coordinator arm seeds its baselines in epoch 1 and then runs a
    steady-state epoch 2 in which every unchanged machine rides its
    stored verdict.  The steady-state epoch is the service's recurring
    cost and must be >= 5x cheaper than the naive sweep.
    """
    from repro.fleet import FleetCoordinator

    golden = golden_machine(file_count)
    infected = tuple(range(0, fleet_size, max(1, fleet_size // 3)))[:3]

    naive_fleet = cloned_fleet(golden, fleet_size, infected)

    def naive_sweep():
        for machine in naive_fleet:
            GhostBuster(machine, advanced=True).inside_scan(
                resources=("files", "registry"))

    naive_s = timed(naive_sweep, repeat=1)

    fleet = cloned_fleet(golden, fleet_size, infected)
    with tempfile.TemporaryDirectory(prefix="gb-bench-fleet-") as tmp:
        coordinator = FleetCoordinator(tmp, fleet, workers=workers,
                                       compact_every=2)
        started = time.perf_counter()
        seeded = coordinator.run_epoch()
        seed_s = time.perf_counter() - started
        started = time.perf_counter()
        steady = coordinator.run_epoch()
        steady_s = time.perf_counter() - started

    return {
        "fleet_size": fleet_size,
        "workers": workers,
        "naive_serial_s": naive_s,
        "seed_epoch_s": seed_s,
        "steady_epoch_s": steady_s,
        "speedup": naive_s / steady_s,
        "seed_summary": seeded.summary.to_dict(),
        "steady_summary": steady.summary.to_dict(),
        "steady_all_skipped":
            steady.summary.skipped == steady.summary.machines,
        "verdicts_stable": ({v.machine: v.verdict for v in seeded.verdicts}
                            == {v.machine: v.verdict
                                for v in steady.verdicts}),
    }


def bench_fleet_escalation(file_count: int, clean_controls: int = 4,
                           strains: int = 12) -> dict:
    """Escalation precision over the twelve-strain corpus.

    One corpus member per machine, plus ``clean_controls`` uninfected
    machines.  Every machine whose inside scan finds something pays for
    an outside-the-box confirmation; precision 1.0 means no clean
    machine ever escalated (the paper's cost model only works if the
    expensive tier is reserved for real suspects).
    """
    from repro.fleet import EscalationPolicy, FleetCoordinator
    from repro.ghostware import (AdsGhost, Aphex, Berbew, CmCallbackGhost,
                                 FuRootkit, Mersting, NamingExploitGhost,
                                 ProBotSE, RegistryNamingGhost, Urbin,
                                 Vanquish)

    corpus = (HackerDefender, Urbin, Mersting, Vanquish, Aphex, ProBotSE,
              Berbew, NamingExploitGhost, RegistryNamingGhost,
              CmCallbackGhost, AdsGhost, FuRootkit)[:max(1, strains)]
    golden = golden_machine(file_count)
    fleet = cloned_fleet(golden, len(corpus) + clean_controls)
    infected_names = []
    for machine, ghost_cls in zip(fleet, corpus):
        ghost = ghost_cls()
        ghost.install(machine)
        if isinstance(ghost, FuRootkit):
            victim = machine.start_process("\\Windows\\explorer.exe",
                                           name="dkom_victim.exe")
            ghost.hide_process(machine, victim.pid)
        infected_names.append(machine.name)

    with tempfile.TemporaryDirectory(prefix="gb-bench-escal-") as tmp:
        coordinator = FleetCoordinator(
            tmp, fleet, workers=2,
            policy=EscalationPolicy(confirm_with="winpe"),
            resources=("files", "registry", "processes"))
        aggregate = coordinator.run_epoch()

    escalated = sorted(v.machine for v in aggregate.verdicts
                       if v.escalated)
    confirmed = sorted(v.machine for v in aggregate.verdicts
                       if v.confirmed)
    true_escalations = [name for name in escalated
                        if name in infected_names]
    precision = (len(true_escalations) / len(escalated)
                 if escalated else 0.0)
    provenance_ok = all(v.confirmed_by == "winpe"
                        for v in aggregate.verdicts if v.confirmed)
    return {
        "strains": len(corpus),
        "clean_controls": clean_controls,
        "infected": infected_names,
        "escalated": escalated,
        "confirmed": confirmed,
        "precision": precision,
        "recall": len(true_escalations) / len(infected_names),
        "confirmed_by_provenance_ok": provenance_ok,
        "summary": aggregate.summary.to_dict(),
    }


def bench_cold_parse_zero_copy(file_count: int) -> dict:
    """Batched zero-copy cold parse vs the seed's per-record read loop.

    Two machines are built identically at Machine defaults — a 512 MB
    disk whose MFT zone holds 65536 record slots — one on each backend.
    The legacy arm parses through a bare read callable, which the parser
    cannot resolve to a disk, so it issues one ``read_bytes`` round-trip
    per record slot (the seed behaviour on the seed backend).  The
    zero-copy arm parses the flat-backed twin through the disk itself:
    one batched region view, ``struct.unpack_from`` all the way down.
    Both arms finish with cold parses of every registry hive, so the
    figure is the full truth re-derivation a cache miss pays.
    """
    def build(backend: str) -> Machine:
        machine = Machine("zc-" + backend,
                          disk=Disk(DiskGeometry.from_megabytes(512),
                                    backend=backend))
        populate_machine(machine, file_count=file_count,
                         registry_scale=200, seed=7)
        return machine

    legacy_machine = build("sparse")
    zero_machine = build("flat")
    legacy_disk = legacy_machine.disk
    zero_disk = zero_machine.disk

    def cold_derivation(parser) -> None:
        parser.parse()
        for hive_file in HIVE_FILES.values():
            hive_parser.parse_hive(parser.read_file_content(hive_file))

    def legacy_cold():
        clear_caches(legacy_disk)
        cold_derivation(MftParser(
            lambda offset, length: legacy_disk.read_bytes(offset, length)))

    def zero_copy_cold():
        clear_caches(zero_disk)
        cold_derivation(MftParser(zero_disk.read_bytes))

    # Best-of-7: the zero-copy arm is tens of milliseconds, so scheduler
    # jitter dominates best-of-3 on a busy runner.
    legacy_s = timed(legacy_cold, repeat=7)
    zero_s = timed(zero_copy_cold, repeat=7)

    by_record = (lambda item: item.record_no)
    legacy_parsed = sorted(MftParser(
        lambda offset, length: legacy_disk.read_bytes(offset, length)
    ).parse(), key=by_record)
    zero_parsed = sorted(MftParser(zero_disk.read_bytes).parse(),
                         key=by_record)
    namespace_identical = legacy_parsed == zero_parsed

    for machine in (legacy_machine, zero_machine):
        machine.boot()
        HackerDefender().install(machine)
    reports_identical = (
        finding_identities(GhostBuster(legacy_machine).detect())
        == finding_identities(GhostBuster(zero_machine).detect()))

    return {
        "file_count": file_count,
        "mft_slots": zero_machine.volume.max_records,
        "legacy_cold_s": legacy_s,
        "zero_copy_cold_s": zero_s,
        "speedup": legacy_s / zero_s,
        "namespace_identical": namespace_identical,
        "reports_identical": reports_identical,
    }


def bench_memory_ceiling(fleet_size: int, file_count: int) -> dict:
    """Machines-per-GB: COW fleet vs deep-copied clones, same verdicts.

    Both fleets are imaged from identically built goldens (one per
    backend), infect the same indices, and diverge the same two clean
    clones with private writes.  Physical cost is
    :func:`fleet_storage_stats` — on the flat backend every clone
    shares one sealed golden extent and pays only its divergence, on
    the sparse backend every clone deep-copies the sector dict.  The
    sweeps over the two fleets must convict the same machines on the
    same evidence.
    """
    def build(backend: str) -> Machine:
        machine = Machine("ceil-" + backend,
                          disk=Disk(DiskGeometry.from_megabytes(512),
                                    backend=backend),
                          max_records=8192)
        # A content-heavy golden image and modest hives: every clone's
        # unavoidable divergence is its registry remount, so the density
        # a COW fleet can reach is golden footprint over hive churn.
        populate_machine(machine, file_count=file_count,
                         registry_scale=20, seed=7)
        for index in range(file_count):
            machine.volume.create_file(
                f"\\Program Files\\image{index:04d}.bin",
                bytes([index % 251]) * 4096)
        return machine

    infected = tuple(range(0, fleet_size, max(1, fleet_size // 3)))[:3]

    def provision(golden: Machine):
        fleet = clone_fleet(golden, fleet_size, infected=infected,
                            infect=lambda machine:
                            HackerDefender().install(machine))
        for machine in fleet[1:3]:
            machine.volume.create_file(
                f"\\Temp\\diverge-{machine.name}.bin", b"D" * 4096)
        return fleet

    cow_fleet = provision(build("flat"))
    cow = fleet_storage_stats(cow_fleet)
    deep_fleet = provision(build("sparse"))
    deep = fleet_storage_stats(deep_fleet)

    gb = float(1 << 30)
    cow_per_gb = fleet_size / (cow["total_bytes"] / gb)
    deep_per_gb = fleet_size / (deep["total_bytes"] / gb)

    def verdict_key(result):
        return (result.infected_machines,
                sorted((name, finding_identities(report))
                       for name, report in result.reports.items()))

    server = RisServer()
    cow_sweep = server.sweep(cow_fleet, max_workers=4)
    deep_sweep = server.sweep(deep_fleet, max_workers=4)

    return {
        "fleet_size": fleet_size,
        "file_count": file_count,
        "cow_stats": cow,
        "deep_copy_stats": deep,
        "cow_machines_per_gb": cow_per_gb,
        "deep_copy_machines_per_gb": deep_per_gb,
        "density_ratio": cow_per_gb / deep_per_gb,
        "infected_machines": cow_sweep.infected_machines,
        "verdicts_identical": verdict_key(cow_sweep)
        == verdict_key(deep_sweep),
    }


def bench_console_query(fleet_size: int, epochs: int,
                        lookups: int) -> dict:
    """Console point lookups: sidecar index vs full journal replay.

    A synthetic coordinator-shaped journal (``fleet_size`` machines x
    ``epochs`` epochs of verdicts, summaries, and a few outbreaks) is
    queried for "machine X's latest full verdict record".  The indexed
    arm pays one no-op :meth:`JournalIndex.update` (the O(changes)
    staleness check a live console pays per request) plus an in-memory
    map hit plus one ``seek`` for the record bytes; the replay arm
    re-reads the whole journal per lookup, which is what
    ``fleet_status`` and every pre-console reader did.  Both arms must
    return byte-identical records, and the indexed ``fleet_status``
    document must equal the replayed one.
    """
    from repro.console import JournalIndex, fleet_status_from_index
    from repro.fleet import fleet_status
    from repro.telemetry.journal_io import append_journal, iter_journal

    def percentile(samples, fraction):
        ranked = sorted(samples)
        return ranked[min(len(ranked) - 1,
                          int(fraction * (len(ranked) - 1)))]

    machines = [f"cq-{index:03d}" for index in range(fleet_size)]
    with tempfile.TemporaryDirectory(prefix="gb-bench-console-") as tmp:
        epochs_path = str(Path(tmp) / "epochs.jsonl")
        clock = 0.0
        for epoch in range(1, epochs + 1):
            clock += 1.0
            append_journal(epochs_path, {
                "type": "epoch-start", "epoch": epoch, "at": clock,
                "machines": machines})
            for number, name in enumerate(machines):
                clock += 0.01
                infected = (number + epoch) % 7 == 0
                append_journal(epochs_path, {
                    "type": "fleet-machine", "epoch": epoch,
                    "machine": name,
                    "verdict": "infected" if infected else "clean",
                    "findings": 2 if infected else 0,
                    "scanned": True, "skipped": False,
                    "escalated": infected,
                    "finding_ids": (["file:hxdef100.exe"]
                                    if infected else []),
                    "scan_seconds": 0.25, "at": clock})
            if epoch % 5 == 0:
                append_journal(epochs_path, {
                    "type": "fleet-outbreak", "epoch": epoch,
                    "identity": "file:hxdef100.exe",
                    "machines": machines[:3], "threshold": 3,
                    "at": clock})
            append_journal(epochs_path, {
                "type": "epoch-end", "epoch": epoch, "at": clock,
                "machines": fleet_size, "infected": fleet_size // 7})

        journal_bytes = Path(epochs_path).stat().st_size
        index = JournalIndex(tmp)
        started = time.perf_counter()
        index.update()
        build_s = time.perf_counter() - started

        def indexed_lookup(name):
            index.update()   # the per-request staleness check, no-op
            history = index.machine_history(name)
            return index.machine_record(history[-1])

        def replay_lookup(name):
            latest = None
            for line in iter_journal(epochs_path):
                if (line.record.get("type") == "fleet-machine"
                        and line.record.get("machine") == name):
                    latest = line.record
            return latest

        targets = [machines[i % fleet_size] for i in range(lookups)]
        identical = True
        indexed_samples, replay_samples = [], []
        for name in targets:
            started = time.perf_counter()
            indexed = indexed_lookup(name)
            indexed_samples.append(time.perf_counter() - started)
            started = time.perf_counter()
            replayed = replay_lookup(name)
            replay_samples.append(time.perf_counter() - started)
            identical = identical and indexed == replayed

        status_identical = (fleet_status_from_index(tmp, index=index)
                            == fleet_status(tmp))

    indexed_p50 = percentile(indexed_samples, 0.50)
    replay_p50 = percentile(replay_samples, 0.50)
    return {
        "fleet_size": fleet_size,
        "epochs": epochs,
        "lookups": lookups,
        "journal_bytes": journal_bytes,
        "index_build_s": build_s,
        "indexed_p50_us": indexed_p50 * 1e6,
        "indexed_p95_us": percentile(indexed_samples, 0.95) * 1e6,
        "replay_p50_us": replay_p50 * 1e6,
        "replay_p95_us": percentile(replay_samples, 0.95) * 1e6,
        "speedup": replay_p50 / indexed_p50,
        "answers_identical": identical,
        "status_identical": status_identical,
    }


def bench_index_overhead(fleet_size: int, file_count: int,
                         workers: int) -> dict:
    """Write-time index maintenance cost on the steady fleet epoch.

    Two identical fleets run a seed epoch each (hooks on / hooks off),
    then their steady-state epochs — the service's recurring cost — are
    sampled in *paired interleaved rounds* (off then on, repeatedly)
    and the overhead is the **median of the per-round ratios**: pairing
    cancels machine-wide drift (page cache, CPU frequency, growing
    journals slow both arms alike), and the median resists the rare
    epochs where the index flushes its batched sidecar lines.  The
    hooks fold one in-memory entry per journal record, which must stay
    within 5% of the epoch's wall clock or the console stops being
    free to leave enabled.
    """
    from repro.fleet import FleetCoordinator

    golden = golden_machine(file_count)
    infected = tuple(range(0, fleet_size, max(1, fleet_size // 3)))[:3]

    def steady_epoch_s(coordinator) -> float:
        started = time.perf_counter()
        coordinator.run_epoch()
        return time.perf_counter() - started

    with tempfile.TemporaryDirectory(prefix="gb-bench-idx-off-") as off_dir, \
            tempfile.TemporaryDirectory(prefix="gb-bench-idx-on-") as on_dir:
        off = FleetCoordinator(off_dir,
                               cloned_fleet(golden, fleet_size, infected),
                               workers=workers, console_index=False)
        on = FleetCoordinator(on_dir,
                              cloned_fleet(golden, fleet_size, infected),
                              workers=workers, console_index=True)
        for __ in range(2):       # seed epoch, then one warm-up each
            off.run_epoch()
            on.run_epoch()
        without_samples, with_samples, ratios = [], [], []
        for __ in range(11):
            without_s = steady_epoch_s(off)
            with_s = steady_epoch_s(on)
            without_samples.append(without_s)
            with_samples.append(with_s)
            ratios.append(with_s / without_s)

    median_ratio = sorted(ratios)[len(ratios) // 2]
    return {
        "fleet_size": fleet_size,
        "rounds": len(ratios),
        "steady_without_index_s": min(without_samples),
        "steady_with_index_s": min(with_samples),
        "overhead_pct": round((median_ratio - 1.0) * 100.0, 2),
    }


def _fleet_clone_factory(golden, infected, max_records=8192):
    """A by-name machine factory matching :func:`cloned_fleet`'s output.

    Used by the distributed arms: the roster travels as ``fleet-NN``
    names and each forked agent rebuilds exactly the clone the
    single-process arm holds (``fork`` shares the golden image
    copy-on-write, so per-agent clones stay cheap).
    """
    infected = frozenset(infected)

    def factory(name):
        index = int(name.rsplit("-", 1)[1])
        machine = Machine(name, disk=golden.disk.clone(),
                          max_records=max_records)
        machine.boot()
        if index in infected:
            HackerDefender().install(machine)
        return machine

    return factory


def _fleet_verdict_key(aggregate) -> dict:
    """Element identity for a fleet epoch, finding identities included."""
    return {v.machine: (v.verdict, v.findings, v.confirmed,
                        v.confirmed_by, tuple(sorted(v.finding_ids)))
            for v in aggregate.verdicts}


def bench_distributed_sweep(fleet_size: int, file_count: int,
                            agents: int) -> dict:
    """Forked scan agents vs the same coordinator's in-process threads.

    Both arms start from the same pre-built golden image and time
    clone + boot + scan of the whole fleet (one seed epoch).  The
    single-process arm runs ``agents`` worker *threads*, which the GIL
    serializes on the parse-heavy corpus; the distributed arm runs
    ``agents`` forked processes against the wire controller.  A third
    arm repeats the distributed run under 5% transport chaos and must
    change nothing.

    The >= 2x speedup gate only makes sense with cores to parallelize
    onto: on a single-core host (CI containers, typically) forked
    agents time-slice one CPU and the wire is pure overhead, so the
    gate degrades to a bounded-overhead check.  ``cpu_count`` rides in
    the result so the report stays honest about which was applied.
    """
    import os as _os

    from repro.fleet import FleetCoordinator

    golden = golden_machine(file_count)
    infected = tuple(range(0, fleet_size, max(1, fleet_size // 3)))[:3]
    factory = _fleet_clone_factory(golden, infected)
    roster = [f"fleet-{index:02d}" for index in range(fleet_size)]

    with tempfile.TemporaryDirectory(prefix="gb-bench-dist-sp-") as tmp:
        started = time.perf_counter()
        single = FleetCoordinator(
            tmp, cloned_fleet(golden, fleet_size, infected),
            workers=agents).run_epoch()
        single_s = time.perf_counter() - started

    with tempfile.TemporaryDirectory(prefix="gb-bench-dist-mp-") as tmp:
        started = time.perf_counter()
        distributed = FleetCoordinator(
            tmp, roster, workers=agents).run_distributed(
                1, factory, agents=agents)[0]
        distributed_s = time.perf_counter() - started

    with tempfile.TemporaryDirectory(prefix="gb-bench-dist-ch-") as tmp:
        chaotic = FleetCoordinator(
            tmp, roster, workers=agents).run_distributed(
                1, factory, agents=agents, agent_timeout_seconds=10.0,
                transport_seed=2026, transport_rate=0.05)[0]

    single_key = _fleet_verdict_key(single)
    distributed_key = _fleet_verdict_key(distributed)
    chaos_key = _fleet_verdict_key(chaotic)
    return {
        "fleet_size": fleet_size,
        "file_count": file_count,
        "agents": agents,
        "cpu_count": _os.cpu_count() or 1,
        "single_process_s": single_s,
        "distributed_s": distributed_s,
        "speedup": single_s / distributed_s,
        "verdicts_identical": distributed_key == single_key,
        "chaos_fault_rate": 0.05,
        "chaos_zero_lost": set(chaos_key) == set(roster),
        "chaos_verdicts_identical": chaos_key == distributed_key,
    }


def run_distributed_soak(epochs: int, fleet_size: int, agents: int,
                         file_count: int = 120,
                         kill_after_leases: int = 3) -> int:
    """The distributed CI soak: kill -9 an agent mid-lease, lose nothing.

    Epoch 1 murders agent 0 right after it takes its
    ``kill_after_leases``-th lease (the in-process analogue of yanking
    a worker's power cord); the controller's liveness reaper reclaims
    the orphaned lease and the surviving agents finish the fleet.
    Every epoch is gated element-identical against an uninterrupted
    single-process reference over the same golden image.
    """
    from repro.fleet import FleetCoordinator, fleet_status
    from repro.fleet.controller import AGENT_DEAD

    golden = golden_machine(file_count)
    infected = tuple(range(0, fleet_size, max(1, fleet_size // 3)))[:3]
    factory = _fleet_clone_factory(golden, infected)
    roster = [f"fleet-{index:02d}" for index in range(fleet_size)]

    with tempfile.TemporaryDirectory(prefix="gb-dist-soak-ref-") as tmp:
        reference = FleetCoordinator(
            tmp, cloned_fleet(golden, fleet_size, infected),
            workers=4).run(epochs)
    reference_keys = [_fleet_verdict_key(agg) for agg in reference]

    failures = []
    with tempfile.TemporaryDirectory(prefix="gb-dist-soak-") as tmp:
        coordinator = FleetCoordinator(tmp, roster, workers=agents,
                                       compact_every=0)
        aggregates = coordinator.run_distributed(
            epochs, factory, agents=agents, agent_timeout_seconds=2.0,
            kill_after_leases={0: kill_after_leases})
        for aggregate, reference_key in zip(aggregates, reference_keys):
            summary = aggregate.summary
            key = _fleet_verdict_key(aggregate)
            print(f"soak epoch {summary.epoch}: "
                  f"{summary.machines}/{fleet_size} machines "
                  f"({summary.scanned} scanned, {summary.skipped} "
                  f"skipped), {summary.infected} infected, "
                  f"{summary.errors} error(s), "
                  f"{summary.late_acks} late ack(s)")
            if set(key) != set(roster):
                failures.append(f"epoch {summary.epoch} lost machines: "
                                f"{sorted(set(roster) - set(key))}")
            if key != reference_key:
                differing = sorted(machine for machine in key
                                   if key.get(machine)
                                   != reference_key.get(machine))
                failures.append(f"epoch {summary.epoch} verdicts differ "
                                f"from reference on {differing}")
        agents_status = fleet_status(tmp)["agents"]
        dead = sorted(agent for agent, info in agents_status.items()
                      if info["state"] == AGENT_DEAD)
        print(f"soak agents: " + ", ".join(
            f"{agent}={info['state']}(acks={info['acks']})"
            for agent, info in sorted(agents_status.items())))
        if "agent-0" not in dead:
            failures.append("murdered agent-0 was never declared dead")
    for failure in failures:
        print(f"  [FAIL] {failure}", file=sys.stderr)
    if not failures:
        print(f"  [PASS] {epochs} epochs x {fleet_size} machines "
              f"element-identical to the single-process reference "
              f"with agent-0 killed mid-lease")
    return 1 if failures else 0


def run_fleet_soak(epochs: int, fleet_size: int, rate: float,
                   seed: int, file_count: int = 120) -> int:
    """The CI soak: epochs under chaos, gated on zero lost machines."""
    from repro.faults import context as faults_context
    from repro.faults.plan import FaultPlan
    from repro.fleet import FleetCoordinator

    golden = golden_machine(file_count)
    infected = tuple(range(0, fleet_size, max(1, fleet_size // 3)))[:3]
    fleet = cloned_fleet(golden, fleet_size, infected)
    plan = FaultPlan.default(seed=seed, rate=rate)
    failures = []
    with tempfile.TemporaryDirectory(prefix="gb-fleet-soak-") as tmp:
        coordinator = FleetCoordinator(tmp, fleet, workers=4,
                                       fault_plan=plan, compact_every=2)
        previous = faults_context.install_global_plan(plan)
        try:
            for __ in range(epochs):
                aggregate = coordinator.run_epoch()
                summary = aggregate.summary
                print(f"soak epoch {summary.epoch}: "
                      f"{summary.machines}/{fleet_size} machines "
                      f"({summary.scanned} scanned, "
                      f"{summary.skipped} skipped), "
                      f"{summary.infected} infected, "
                      f"{summary.errors} error(s)")
                if summary.machines != fleet_size:
                    failures.append(
                        f"epoch {summary.epoch} lost machines: "
                        f"{summary.machines}/{fleet_size}")
        finally:
            faults_context.install_global_plan(previous)
    fired = plan.fired_count()
    print(f"soak: {fired} fault(s) fired across "
          f"{len({f.site for f in plan.fired()})} site(s)")
    if fired == 0 and rate > 0:
        failures.append("soak fired no faults (plan not wired?)")
    for failure in failures:
        print(f"  [FAIL] {failure}", file=sys.stderr)
    if not failures:
        print(f"  [PASS] zero lost machines across {epochs} epochs "
              f"@ {rate:.0%} faults")
    return 1 if failures else 0


def _sweep_profile(fleet_size: int, epochs: int):
    """The recall-vs-cost fleet: file-heavy machines, ASEP-hooking wave.

    File costs dominate registry costs here (small hives, many virtual
    files), so the sampled pass's floor — the always-full registry
    stratum — stays cheap relative to the full file scan it avoids.
    The wave is HackerDefender: a persistent ghost that must hook ASEPs
    to survive reboot, which is exactly the stratum sampling never
    skips — the paper's persistence argument is what holds recall up
    while the file-sampling rate drops.
    """
    from repro.workloads import FleetProfile, InfectionWave

    return FleetProfile(
        name="swp", size=fleet_size, seed=97,
        file_count=(240, 340), virtual_files=(80_000, 200_000),
        registry_kb=(6, 12), churn_files=(2, 5), churn_registry=(0, 1),
        disk_mb=64, max_records=2048,
        waves=(InfectionWave("hackerdefender", onset_epoch=2,
                             initial=2, spread=0.4),))


def _sweep_run(profile, epochs: int, sampling, workers: int = 4) -> dict:
    """Run one sweep arm (full or sampled) and account it honestly."""
    from repro.fleet import FleetCoordinator
    from repro.workloads import FleetWorkload

    workload = FleetWorkload(profile)
    summaries = []
    reported = set()
    with tempfile.TemporaryDirectory(prefix="gb-bench-sweep-") as tmp:
        coordinator = FleetCoordinator(tmp, workload.machines.values(),
                                       workers=workers, sampling=sampling,
                                       console_index=False,
                                       lease_seconds=1e6)
        for epoch in range(1, epochs + 1):
            workload.apply_epoch(epoch)
            aggregate = coordinator.run_epoch()
            summaries.append(aggregate.summary)
            reported.update(v.machine for v in aggregate.verdicts
                            if v.verdict == "infected")
    truth = workload.infected_machines(epochs)
    recall = (len(reported & truth) / len(truth)) if truth else 1.0
    return {
        "per_epoch_scan_s": [round(s.scan_seconds, 3) for s in summaries],
        # Epoch 1 is the cold start: never-scanned staleness forces a
        # full scan in BOTH arms, so the comparison is steady state.
        "steady_scan_s": round(sum(s.scan_seconds
                                   for s in summaries[1:]), 3),
        "recall": recall,
        "truth": sorted(truth),
        "false_positives": sorted(reported - truth),
        "sampled_scans": sum(s.sampled for s in summaries),
        "sampling_escalations": sum(s.sampling_escalations
                                    for s in summaries),
        "estimated_recall_last": summaries[-1].estimated_recall,
    }


def bench_sampled_sweep(fleet_size: int, epochs: int,
                        rates=(0.05, 0.15, 0.35),
                        workers: int = 4) -> dict:
    """The recall-vs-cost curve: full sweep vs sampled at several rates."""
    from repro.workloads import SamplingPolicy

    profile = _sweep_profile(fleet_size, epochs)
    full = _sweep_run(profile, epochs, None, workers=workers)
    curve = []
    for rate in rates:
        sampling = SamplingPolicy(seed=5, file_rate=rate, full_every=64)
        point = _sweep_run(profile, epochs, sampling, workers=workers)
        point["file_rate"] = rate
        point["reduction"] = (full["steady_scan_s"]
                              / max(point["steady_scan_s"], 1e-9))
        curve.append(point)
    eligible = [point for point in curve if point["recall"] >= 0.95]
    operating = (max(eligible, key=lambda point: point["reduction"])
                 if eligible else None)
    return {
        "fleet_size": fleet_size, "epochs": epochs,
        "full": full, "curve": curve,
        "full_recall": full["recall"],
        "operating_rate": operating["file_rate"] if operating else None,
        "operating_reduction": (operating["reduction"]
                                if operating else 0.0),
        "operating_recall": operating["recall"] if operating else 0.0,
        "false_positive_free": not any(point["false_positives"]
                                       for point in curve),
    }


def _trace_profile(fleet_size: int):
    from repro.workloads import FleetProfile, InfectionWave

    return FleetProfile(
        name="trb", size=fleet_size, seed=53,
        file_count=(40, 80), virtual_files=(5_000, 20_000),
        registry_kb=(20, 40), churn_files=(1, 4), churn_registry=(0, 2),
        disk_mb=64, max_records=2048,
        waves=(InfectionWave("hackerdefender", onset_epoch=2,
                             initial=1, spread=0.0),))


def _traced_sweep(action) -> object:
    """Run a record/replay under a scratch fleet dir."""
    with tempfile.TemporaryDirectory(prefix="gb-bench-trace-") as tmp:
        return action(tmp)


def bench_trace_replay(fleet_size: int, epochs: int) -> dict:
    """Record a sweep trace, replay it on both disk backends, compare."""
    import os

    from repro.workloads import (SamplingPolicy, record_sweep,
                                 replay_sweep)

    profile = _trace_profile(fleet_size)
    sampling = SamplingPolicy(seed=3, file_rate=0.25, full_every=4)
    with tempfile.TemporaryDirectory(prefix="gb-bench-tracedir-") as tdir:
        trace_path = str(Path(tdir) / "sweep.trace.jsonl")
        recorded = _traced_sweep(
            lambda tmp: record_sweep(trace_path, profile, tmp, epochs,
                                     sampling=sampling, workers=2))
        replays = {}
        saved = os.environ.get("REPRO_DISK_BACKEND")
        try:
            for backend in ("flat", "sparse"):
                os.environ["REPRO_DISK_BACKEND"] = backend
                replays[backend] = _traced_sweep(
                    lambda tmp: replay_sweep(trace_path, tmp))
        finally:
            if saved is None:
                os.environ.pop("REPRO_DISK_BACKEND", None)
            else:
                os.environ["REPRO_DISK_BACKEND"] = saved
    flat, sparse = replays["flat"], replays["sparse"]
    return {
        "fleet_size": fleet_size, "epochs": epochs,
        "trace_digest": recorded.trace_digest,
        "trace_digests_identical": (
            recorded.trace_digest == flat.trace_digest
            == sparse.trace_digest),
        "verdicts_identical": (
            recorded.verdicts == flat.verdicts == sparse.verdicts),
        "journal_digests_identical": (
            recorded.journal_digest == flat.journal_digest
            == sparse.journal_digest),
        "infected": recorded.infected,
        "infected_identical": (
            recorded.infected == flat.infected == sparse.infected),
    }


# -- adversary engine: leveled stealth campaigns ------------------------------


STEALTH_LEVELS = ("off", "low", "medium", "high", "maximum")


def _stealth_profile(fleet_size: int, level: str):
    """The campaign fleet: two fully-capable strains at one stealth level.

    Urbin (AppInit IAT hooks) spreads from epoch 1, HackerDefender
    (NtDll detours) joins at epoch 2 — both declare the full capability
    set, so every level of the ladder actually changes behavior.
    """
    from repro.workloads import FleetProfile, InfectionWave

    return FleetProfile(
        name="adv", size=fleet_size, seed=31,
        file_count=(24, 48), virtual_files=(4_000, 12_000),
        registry_kb=(20, 40), churn_files=(1, 3), churn_registry=(0, 1),
        disk_mb=64, max_records=2048,
        waves=(InfectionWave("urbin", onset_epoch=1,
                             initial=max(2, fleet_size // 12),
                             spread=0.5, level=level),
               InfectionWave("hackerdefender", onset_epoch=2,
                             initial=max(1, fleet_size // 25),
                             spread=0.4, level=level, conceal_budget=2)))


def _campaign_run(profile, epochs: int, defended: bool,
                  workers: int = 4) -> dict:
    """One campaign arm: naive single-pass or the defended configuration.

    The defended arm is scan-until-stable + flag-unstable + scan-order
    jitter with the default inside→outside escalation; the naive arm is
    a single inside pass with escalation disabled — the seed-era
    scanner the adversary engine exists to defeat.
    """
    from repro.fleet import FleetCoordinator
    from repro.fleet.coordinator import fleet_status
    from repro.fleet.policy import EscalationPolicy
    from repro.fleet.scheduler import recent_write_probe
    from repro.workloads import FleetWorkload, verdict_key

    workload = FleetWorkload(profile)
    kwargs = (dict(stabilize_rounds=2, flag_unstable=True,
                   scan_order_jitter=11) if defended
              else dict(policy=EscalationPolicy(escalate=False)))
    probe_hits = probe_total = 0
    reported = set()
    verdict_maps = []
    with tempfile.TemporaryDirectory(prefix="gb-bench-adv-") as tmp:
        coordinator = FleetCoordinator(tmp, workload.machines.values(),
                                       workers=workers,
                                       outbreak_threshold=3,
                                       console_index=False,
                                       lease_seconds=1e6, **kwargs)
        horizon = 60.0
        previous = set()
        for epoch in range(1, epochs + 1):
            workload.apply_epoch(epoch)
            truth_now = workload.infected_machines(epoch)
            # Triage probe, measured at infection time: a machine only
            # counts once its own clock has moved well past the horizon
            # (epoch 1 machines are wholly "fresh" and prove nothing).
            for name in sorted(truth_now - previous):
                machine = workload.machines[name]
                if machine.clock.now() <= 2 * horizon:
                    continue
                probe_total += 1
                probe_hits += bool(recent_write_probe(
                    machine, horizon_seconds=horizon))
            previous = truth_now
            aggregate = coordinator.run_epoch()
            verdict_maps.append({v.machine: verdict_key(v)
                                 for v in aggregate.verdicts})
            reported.update(v.machine for v in aggregate.verdicts
                            if v.verdict == "infected")
        status = fleet_status(tmp)
    truth = workload.infected_machines(epochs)
    recall = (len(reported & truth) / len(truth)) if truth else 1.0
    precision = (len(reported & truth) / len(reported)) if reported else 1.0
    campaign_fps = [record["fingerprint"]
                    for record in status["campaigns"]]
    return {
        "recall": round(recall, 4),
        "precision": round(precision, 4),
        "truth_count": len(truth),
        "reported_count": len(reported),
        "false_positives": sorted(reported - truth),
        "outbreak_alerts": len(status["outbreaks"]),
        "campaign_alerts": len(campaign_fps),
        "campaign_fingerprints_unique":
            len(campaign_fps) == len(set(campaign_fps)),
        "probe_hit_rate": (round(probe_hits / probe_total, 4)
                           if probe_total else None),
        "verdict_maps": verdict_maps,
    }


def bench_stealth_campaign(fleet_size: int, epochs: int,
                           workers: int = 4,
                           levels=STEALTH_LEVELS) -> dict:
    """The headline curve: precision/recall per stealth level, two arms.

    Also re-runs the defended ``high`` arm twice and once on the other
    disk backend to gate campaign determinism.
    """
    import os

    curve = []
    for level in levels:
        profile = _stealth_profile(fleet_size, level)
        naive = _campaign_run(profile, epochs, defended=False,
                              workers=workers)
        defended = _campaign_run(profile, epochs, defended=True,
                                 workers=workers)
        point = {"level": level, "naive": naive, "defended": defended}
        curve.append(point)
    by_level = {point["level"]: point for point in curve}

    high = _stealth_profile(fleet_size, "high")
    rerun = _campaign_run(high, epochs, defended=True, workers=workers)
    saved = os.environ.get("REPRO_DISK_BACKEND")
    other = "sparse" if (saved or "flat") == "flat" else "flat"
    try:
        os.environ["REPRO_DISK_BACKEND"] = other
        cross = _campaign_run(high, epochs, defended=True,
                              workers=workers)
    finally:
        if saved is None:
            os.environ.pop("REPRO_DISK_BACKEND", None)
        else:
            os.environ["REPRO_DISK_BACKEND"] = saved
    reference = by_level["high"]["defended"]["verdict_maps"]
    determinism = {
        "runs_identical": reference == rerun["verdict_maps"],
        "backends_identical": reference == cross["verdict_maps"],
        "other_backend": other,
    }
    for point in curve:   # the maps did their job; keep the JSON small
        for arm in ("naive", "defended"):
            point[arm].pop("verdict_maps", None)

    aware_levels = ("medium", "high", "maximum")
    rotate_levels = ("high", "maximum")
    return {
        "fleet_size": fleet_size, "epochs": epochs, "curve": curve,
        "defended_precision_all_1": all(
            point["defended"]["precision"] == 1.0 for point in curve),
        "defended_recall_min_through_high": min(
            by_level[level]["defended"]["recall"]
            for level in ("off", "low", "medium", "high")),
        "naive_recall_max_when_aware": max(
            by_level[level]["naive"]["recall"]
            for level in aware_levels),
        "evasion_gap_at_high": round(
            by_level["high"]["defended"]["recall"]
            - by_level["high"]["naive"]["recall"], 4),
        "campaign_alerts_deduped": all(
            by_level[level]["defended"]["campaign_fingerprints_unique"]
            and by_level[level]["defended"]["campaign_alerts"] >= 1
            for level in rotate_levels),
        "probe_hit_rate_off": by_level["off"]["defended"][
            "probe_hit_rate"],
        "probe_hit_rate_cloaked": by_level["high"]["defended"][
            "probe_hit_rate"],
        "determinism": determinism,
    }


def print_stealth_campaign(stealth: dict) -> None:
    """Render the per-level curve the way the other benches print."""
    print(f"stealth campaign ({stealth['fleet_size']} machines x "
          f"{stealth['epochs']} epochs, naive vs defended):")
    for point in stealth["curve"]:
        naive, defended = point["naive"], point["defended"]
        probe = defended["probe_hit_rate"]
        print(f"  {point['level']:>8}: naive P {naive['precision']:.2f} "
              f"R {naive['recall']:.2f} | defended "
              f"P {defended['precision']:.2f} R {defended['recall']:.2f} "
              f"| outbreaks {defended['outbreak_alerts']}, "
              f"campaigns {defended['campaign_alerts']}, "
              f"probe {'n/a' if probe is None else f'{probe:.2f}'}")
    determinism = stealth["determinism"]
    print(f"  determinism: reruns identical "
          f"{determinism['runs_identical']}, "
          f"{determinism['other_backend']} backend identical "
          f"{determinism['backends_identical']}")


def stealth_campaign_gates(stealth: dict):
    """The ISSUE's acceptance gates for the per-level curve."""
    return (
        ("stealth defended precision 1.0 at every level",
         stealth["defended_precision_all_1"]),
        ("stealth defended recall >= 0.95 through high",
         stealth["defended_recall_min_through_high"] >= 0.95),
        ("stealth naive recall measurably degraded when aware",
         stealth["naive_recall_max_when_aware"]
         <= stealth["defended_recall_min_through_high"] - 0.5),
        ("stealth campaign alerts deduped across rotated identities",
         stealth["campaign_alerts_deduped"]),
        ("stealth campaigns deterministic across runs",
         stealth["determinism"]["runs_identical"]),
        ("stealth campaigns deterministic across disk backends",
         stealth["determinism"]["backends_identical"]),
    )


def run_stealth_campaign(out, fleet_size: int = 50,
                         epochs: int = 3) -> int:
    """``--stealth-campaign``: the CI job — curve, gates, artifact."""
    stealth = bench_stealth_campaign(fleet_size, epochs, workers=4)
    print_stealth_campaign(stealth)
    failures = []
    for label, passed in stealth_campaign_gates(stealth):
        print(f"  [{'PASS' if passed else 'FAIL'}] {label}")
        if not passed:
            failures.append(label)
    if out is not None:
        payload = {"pr": 10, "mode": "stealth-campaign",
                   "stealth_campaign": stealth}
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")
    if failures:
        print(f"FAILED gates: {failures}", file=sys.stderr)
        return 1
    return 0


def run_workload_replay(fleet_size: int = 20, epochs: int = 2) -> int:
    """The CI workload-replay smoke: record once, replay twice, compare."""
    from repro.workloads import SamplingPolicy, record_sweep, replay_sweep

    profile = _trace_profile(fleet_size)
    sampling = SamplingPolicy(seed=3, file_rate=0.25, full_every=4)
    with tempfile.TemporaryDirectory(prefix="gb-replay-") as tdir:
        trace_path = str(Path(tdir) / "sweep.trace.jsonl")
        recorded = _traced_sweep(
            lambda tmp: record_sweep(trace_path, profile, tmp, epochs,
                                     sampling=sampling, workers=2))
        first = _traced_sweep(lambda tmp: replay_sweep(trace_path, tmp))
        second = _traced_sweep(lambda tmp: replay_sweep(trace_path, tmp))
    print(f"workload replay: {fleet_size} machines x {epochs} epochs, "
          f"trace digest {recorded.trace_digest[:16]}..., "
          f"{len(recorded.infected)} machine(s) infected by trace")
    checks = (
        ("recorded and replayed verdicts element-identical",
         recorded.verdicts == first.verdicts == second.verdicts),
        ("trace digests identical across replays",
         recorded.trace_digest == first.trace_digest
         == second.trace_digest),
        ("replay journals byte-identical",
         first.journal_digest == second.journal_digest),
        ("trace detected its planted infection",
         any(machine in epoch_verdicts
             and epoch_verdicts[machine][0] == "infected"
             for machine in recorded.infected
             for epoch_verdicts in recorded.verdicts)),
    )
    failures = [label for label, passed in checks if not passed]
    for label, passed in checks:
        print(f"  [{'PASS' if passed else 'FAIL'}] {label}")
    return 1 if failures else 0


def run_trace_record(trace_path: Path, fleet_size: int,
                     epochs: int) -> int:
    """``--trace FILE``: record the reference workload's trace to FILE."""
    from repro.workloads import SamplingPolicy, record_sweep

    profile = _trace_profile(fleet_size)
    sampling = SamplingPolicy(seed=3, file_rate=0.25, full_every=4)
    recorded = _traced_sweep(
        lambda tmp: record_sweep(str(trace_path), profile, tmp, epochs,
                                 sampling=sampling, workers=2))
    print(f"recorded {epochs} epoch(s) x {fleet_size} machine(s) "
          f"to {trace_path}")
    print(f"  trace digest   {recorded.trace_digest}")
    print(f"  journal digest {recorded.journal_digest}")
    print(f"  infected       {', '.join(recorded.infected) or '(none)'}")
    return 0


def run_trace_replay(trace_path: Path) -> int:
    """``--replay FILE``: replay an existing trace and report digests."""
    from repro.workloads import replay_sweep

    replayed = _traced_sweep(
        lambda tmp: replay_sweep(str(trace_path), tmp))
    print(f"replayed {trace_path}")
    print(f"  trace digest   {replayed.trace_digest}")
    print(f"  journal digest {replayed.journal_digest}")
    for index, epoch_verdicts in enumerate(replayed.verdicts, start=1):
        infected = sorted(machine
                          for machine, key in epoch_verdicts.items()
                          if key[0] == "infected")
        print(f"  epoch {index}: {len(epoch_verdicts)} verdict(s), "
              f"{len(infected)} infected"
              + (f" ({', '.join(infected)})" if infected else ""))
    return 0


def write_telemetry_artifacts(directory: Path) -> None:
    """A tiny telemetry-collecting sweep for the CI artifact upload."""
    from repro.core.risboot import RisServer as _RisServer

    reset_global_metrics()
    golden = golden_machine(120)
    fleet = cloned_fleet(golden, 3, infected=(1,))
    result = _RisServer().sweep(fleet, max_workers=3,
                                collect_telemetry=True)
    directory.mkdir(parents=True, exist_ok=True)
    result.health.write_jsonl(directory / "sweep_telemetry.jsonl")
    (directory / "metrics_snapshot.json").write_text(
        global_metrics().dump_json() + "\n")
    print(f"wrote telemetry artifacts to {directory}")


# -- driver -------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny profiles, no perf gates (CI)")
    parser.add_argument("--out", type=Path, default=None,
                        help="output JSON path (default: BENCH_PR6.json "
                             "for full runs, none for --smoke)")
    parser.add_argument("--telemetry-out", type=Path, default=None,
                        help="directory for sweep telemetry JSONL + "
                             "metrics snapshot (CI artifacts)")
    parser.add_argument("--fleet-soak", action="store_true",
                        help="run only the fleet soak (epochs under "
                             "chaos, zero-lost-machines gate) and exit")
    parser.add_argument("--distributed-soak", action="store_true",
                        help="run only the distributed soak (forked "
                             "agents, kill -9 mid-lease, element-"
                             "identical gate) and exit")
    parser.add_argument("--stealth-campaign", action="store_true",
                        help="run only the stealth-campaign curve "
                             "(50 machines x 3 epochs per level, naive "
                             "vs defended, precision/recall gates) and "
                             "exit")
    parser.add_argument("--stealth-fleet", type=int, default=50)
    parser.add_argument("--stealth-epochs", type=int, default=3)
    parser.add_argument("--workload-replay", action="store_true",
                        help="run only the workload-replay smoke "
                             "(record a trace, replay twice, element-"
                             "identical gate) and exit")
    parser.add_argument("--trace", type=Path, default=None,
                        metavar="FILE",
                        help="record the reference workload's sweep "
                             "trace to FILE and exit")
    parser.add_argument("--replay", type=Path, default=None,
                        metavar="FILE",
                        help="replay an existing sweep trace and print "
                             "its digests and verdicts, then exit")
    parser.add_argument("--soak-epochs", type=int, default=3)
    parser.add_argument("--soak-fleet", type=int, default=50)
    parser.add_argument("--soak-rate", type=float, default=0.05)
    parser.add_argument("--soak-seed", type=int, default=2026)
    parser.add_argument("--soak-agents", type=int, default=2)
    args = parser.parse_args()

    if args.fleet_soak:
        return run_fleet_soak(args.soak_epochs, args.soak_fleet,
                              args.soak_rate, args.soak_seed)

    if args.distributed_soak:
        return run_distributed_soak(args.soak_epochs, args.soak_fleet,
                                    args.soak_agents)

    if args.stealth_campaign:
        return run_stealth_campaign(args.out or OUT_DEFAULT,
                                    fleet_size=args.stealth_fleet,
                                    epochs=args.stealth_epochs)

    if args.workload_replay:
        return run_workload_replay()

    if args.trace is not None:
        return run_trace_record(args.trace, fleet_size=20, epochs=2)

    if args.replay is not None:
        return run_trace_replay(args.replay)

    if args.smoke:
        profile = dict(files=120, reads=10, scans=3, fleet=6, workers=2,
                       client_wait=0.02, diff_entries=2_000,
                       overhead_reads=500, delta_mutations=4,
                       delta_changed=3, strains=5, zc_files=120,
                       ceiling_fleet=6, ceiling_files=120,
                       console_fleet=10, console_epochs=5,
                       console_lookups=40, dist_fleet=4, dist_agents=2,
                       sweep_fleet=20, sweep_epochs=3,
                       sweep_rates=(0.05, 0.35),
                       trace_fleet=8, trace_epochs=2,
                       stealth_fleet=12, stealth_epochs=3)
    else:
        profile = dict(files=1000, reads=40, scans=5, fleet=50, workers=8,
                       client_wait=0.25, diff_entries=10_000,
                       overhead_reads=10_000, delta_mutations=10,
                       delta_changed=3, strains=12, zc_files=1000,
                       ceiling_fleet=16, ceiling_files=200,
                       console_fleet=50, console_epochs=20,
                       console_lookups=200, dist_fleet=8, dist_agents=4,
                       sweep_fleet=200, sweep_epochs=4,
                       sweep_rates=(0.05, 0.15, 0.35),
                       trace_fleet=20, trace_epochs=2,
                       stealth_fleet=50, stealth_epochs=3)

    print(f"profile: {profile}")
    results = {"pr": 10, "mode": "smoke" if args.smoke else "full",
               "profile": profile, "timings": {}}
    timings = results["timings"]

    timings["raw_mft_parse_cold_s"] = bench_raw_mft_parse(profile["files"])
    print(f"raw MFT parse (cold, {profile['files']} files): "
          f"{timings['raw_mft_parse_cold_s'] * 1000:.1f} ms")

    timings["read_file_content"] = bench_read_file_content(
        profile["files"], profile["reads"])
    print(f"repeated read_file_content ({profile['reads']} reads): "
          f"{timings['read_file_content']['speedup']:.1f}x vs seed")

    timings["raw_asep_scan"] = bench_raw_asep_scan(
        profile["files"], profile["scans"])
    print(f"raw ASEP scan ({profile['scans']} scans x "
          f"{len(HIVE_FILES)} hives): "
          f"{timings['raw_asep_scan']['speedup']:.1f}x vs seed")

    timings["ris_sweep"] = bench_ris_sweep(
        profile["fleet"], profile["workers"], profile["client_wait"],
        file_count=min(profile["files"], 120))
    sweep = timings["ris_sweep"]
    print(f"RIS sweep ({sweep['fleet_size']} machines): "
          f"serial {sweep['serial_s']:.2f}s, "
          f"{sweep['workers']} workers {sweep['parallel_s']:.2f}s "
          f"({sweep['speedup']:.1f}x), findings identical: "
          f"{sweep['findings_identical']}")

    timings["diff_10k_s"] = bench_diff_10k(profile["diff_entries"])
    print(f"cross-view diff + merge ({profile['diff_entries']} entries "
          f"x5): {timings['diff_10k_s'] * 1000:.1f} ms")

    timings["telemetry_overhead"] = bench_telemetry_overhead(
        profile["files"], profile["overhead_reads"])
    overhead = timings["telemetry_overhead"]
    print(f"telemetry overhead ({profile['overhead_reads']} warm reads): "
          f"default {overhead['default_s'] * 1000:.1f} ms, "
          f"nulled {overhead['nulled_s'] * 1000:.1f} ms "
          f"({overhead['overhead_pct']:+.1f}%)")

    timings["delta_rescan"] = bench_delta_rescan(
        profile["files"], profile["delta_mutations"])
    rescan = timings["delta_rescan"]
    print(f"delta rescan ({profile['files']} files, "
          f"{rescan['mutations_per_round']} mutations/round): "
          f"cold {rescan['cold_s'] * 1000:.1f} ms, "
          f"warm {rescan['warm_delta_s'] * 1000:.2f} ms "
          f"({rescan['speedup']:.1f}x), findings identical: "
          f"{rescan['findings_identical']}")

    timings["delta_sweep"] = bench_delta_sweep(
        profile["fleet"], profile["workers"], profile["client_wait"],
        file_count=min(profile["files"], 120),
        changed=profile["delta_changed"])
    dsweep = timings["delta_sweep"]
    print(f"delta sweep ({dsweep['fleet_size']} machines, "
          f"{len(dsweep['changed_machines'])} changed): "
          f"full {dsweep['full_s']:.2f}s, delta {dsweep['delta_s']:.2f}s "
          f"({dsweep['speedup']:.1f}x), {dsweep['skipped']} skipped, "
          f"infected identical: {dsweep['infected_identical']}")

    timings["fleet_epoch"] = bench_fleet_epoch(
        profile["fleet"], file_count=min(profile["files"], 120),
        workers=profile["workers"])
    fleet_epoch = timings["fleet_epoch"]
    print(f"fleet epoch ({fleet_epoch['fleet_size']} machines): "
          f"naive serial {fleet_epoch['naive_serial_s']:.2f}s, "
          f"seed epoch {fleet_epoch['seed_epoch_s']:.2f}s, "
          f"steady epoch {fleet_epoch['steady_epoch_s']:.3f}s "
          f"({fleet_epoch['speedup']:.1f}x), all skipped: "
          f"{fleet_epoch['steady_all_skipped']}")

    results["fleet_escalation"] = bench_fleet_escalation(
        file_count=min(profile["files"], 120),
        strains=profile["strains"])
    escalation = results["fleet_escalation"]
    print(f"fleet escalation ({escalation['strains']} strains + "
          f"{escalation['clean_controls']} clean): "
          f"{len(escalation['escalated'])} escalated, "
          f"{len(escalation['confirmed'])} confirmed, "
          f"precision {escalation['precision']:.2f}, "
          f"recall {escalation['recall']:.2f}")

    timings["cold_parse_zero_copy"] = bench_cold_parse_zero_copy(
        profile["zc_files"])
    zero_copy = timings["cold_parse_zero_copy"]
    print(f"cold zero-copy parse ({zero_copy['mft_slots']} MFT slots, "
          f"{zero_copy['file_count']} files): "
          f"legacy {zero_copy['legacy_cold_s'] * 1000:.1f} ms, "
          f"zero-copy {zero_copy['zero_copy_cold_s'] * 1000:.1f} ms "
          f"({zero_copy['speedup']:.1f}x), namespace identical: "
          f"{zero_copy['namespace_identical']}, reports identical: "
          f"{zero_copy['reports_identical']}")

    timings["memory_ceiling"] = bench_memory_ceiling(
        profile["ceiling_fleet"], profile["ceiling_files"])
    ceiling = timings["memory_ceiling"]
    print(f"memory ceiling ({ceiling['fleet_size']} machines): "
          f"COW {ceiling['cow_machines_per_gb']:.0f}/GB vs deep-copy "
          f"{ceiling['deep_copy_machines_per_gb']:.0f}/GB "
          f"({ceiling['density_ratio']:.1f}x), verdicts identical: "
          f"{ceiling['verdicts_identical']}")

    timings["console_query"] = bench_console_query(
        profile["console_fleet"], profile["console_epochs"],
        profile["console_lookups"])
    console = timings["console_query"]
    print(f"console query ({console['fleet_size']} machines x "
          f"{console['epochs']} epochs, {console['lookups']} lookups): "
          f"indexed p50 {console['indexed_p50_us']:.0f} us / "
          f"p95 {console['indexed_p95_us']:.0f} us, replay p50 "
          f"{console['replay_p50_us']:.0f} us ({console['speedup']:.1f}x), "
          f"answers identical: {console['answers_identical']}")

    timings["index_overhead"] = bench_index_overhead(
        profile["console_fleet"], file_count=min(profile["files"], 120),
        workers=profile["workers"])
    index_overhead = timings["index_overhead"]
    print(f"index overhead ({index_overhead['fleet_size']} machines): "
          f"steady epoch {index_overhead['steady_without_index_s']:.3f}s "
          f"off vs {index_overhead['steady_with_index_s']:.3f}s on "
          f"({index_overhead['overhead_pct']:+.1f}%)")

    timings["distributed_sweep"] = bench_distributed_sweep(
        profile["dist_fleet"], profile["files"], profile["dist_agents"])
    dist = timings["distributed_sweep"]
    print(f"distributed sweep ({dist['fleet_size']} machines x "
          f"{dist['file_count']} files, {dist['agents']} agents): "
          f"single-process {dist['single_process_s']:.2f}s, "
          f"distributed {dist['distributed_s']:.2f}s "
          f"({dist['speedup']:.1f}x), verdicts identical: "
          f"{dist['verdicts_identical']}, chaos @ "
          f"{dist['chaos_fault_rate']:.0%}: zero lost "
          f"{dist['chaos_zero_lost']}, identical "
          f"{dist['chaos_verdicts_identical']}")

    timings["sampled_sweep"] = bench_sampled_sweep(
        profile["sweep_fleet"], profile["sweep_epochs"],
        rates=profile["sweep_rates"], workers=profile["workers"])
    sampled = timings["sampled_sweep"]
    print(f"sampled sweep ({sampled['fleet_size']} machines x "
          f"{sampled['epochs']} epochs): full steady "
          f"{sampled['full']['steady_scan_s']:.0f} sim-s, "
          f"recall {sampled['full_recall']:.2f}")
    for point in sampled["curve"]:
        print(f"  rate {point['file_rate']:.2f}: "
              f"{point['steady_scan_s']:.0f} sim-s "
              f"({point['reduction']:.1f}x less), "
              f"recall {point['recall']:.2f}, "
              f"est. recall {point['estimated_recall_last']:.2f}, "
              f"{point['sampling_escalations']} escalated by sampling")
    if sampled["operating_rate"] is not None:
        print(f"  operating point: rate "
              f"{sampled['operating_rate']:.2f} -> "
              f"{sampled['operating_reduction']:.1f}x reduction @ "
              f"recall {sampled['operating_recall']:.2f}")

    timings["trace_replay"] = bench_trace_replay(
        profile["trace_fleet"], profile["trace_epochs"])
    trace = timings["trace_replay"]
    print(f"trace replay ({trace['fleet_size']} machines x "
          f"{trace['epochs']} epochs, flat + sparse backends): "
          f"verdicts identical: {trace['verdicts_identical']}, "
          f"journals identical: {trace['journal_digests_identical']}, "
          f"trace digests identical: "
          f"{trace['trace_digests_identical']}")

    results["stealth_campaign"] = bench_stealth_campaign(
        profile["stealth_fleet"], profile["stealth_epochs"],
        workers=profile["workers"])
    print_stealth_campaign(results["stealth_campaign"])

    results["chaos"] = bench_chaos_sweep(
        min(profile["fleet"], 12), profile["workers"],
        file_count=min(profile["files"], 120))
    chaos = results["chaos"]
    print(f"chaos sweep ({chaos['fleet_size']} machines @ "
          f"{chaos['fault_rate']:.0%} faults): "
          f"{chaos['faults_fired']} faults fired, "
          f"recall unchanged: {chaos['recall_unchanged']}, "
          f"errors: {len(chaos['errors'])}, "
          f"quarantined: {len(chaos['quarantined'])}")

    failures = []
    chaos_gates = (
        ("chaos sweep recall unchanged", chaos["recall_unchanged"]),
        ("chaos sweep zero errors", not chaos["errors"]),
        ("chaos sweep zero quarantines", not chaos["quarantined"]),
        ("chaos sweep faults actually fired", chaos["faults_fired"] > 0),
        ("delta rescan findings identical", rescan["findings_identical"]),
        ("delta sweep infected identical", dsweep["infected_identical"]),
        ("delta sweep findings identical", dsweep["findings_identical"]),
        ("delta sweep skipped every unchanged machine",
         dsweep["skipped"] == dsweep["fleet_size"]
         - len(dsweep["changed_machines"])),
        ("fleet steady epoch all skipped",
         fleet_epoch["steady_all_skipped"]),
        ("fleet steady verdicts stable", fleet_epoch["verdicts_stable"]),
        ("fleet escalation precision 1.0",
         escalation["precision"] == 1.0 and escalation["escalated"]),
        ("fleet escalation confirmed_by provenance",
         escalation["confirmed_by_provenance_ok"]),
        ("zero-copy parse namespace identical",
         zero_copy["namespace_identical"]),
        ("zero-copy parse reports identical",
         zero_copy["reports_identical"]),
        ("memory ceiling verdicts identical",
         ceiling["verdicts_identical"]),
        ("console query answers identical",
         console["answers_identical"]),
        ("console fleet_status matches replay",
         console["status_identical"]),
        ("distributed sweep verdicts identical",
         dist["verdicts_identical"]),
        ("distributed chaos zero lost machines",
         dist["chaos_zero_lost"]),
        ("distributed chaos verdicts identical",
         dist["chaos_verdicts_identical"]),
        ("sampled sweep full recall 1.0", sampled["full_recall"] == 1.0),
        ("sampled sweep no false positives",
         sampled["false_positive_free"]),
        ("sampled sweep actually sampled",
         all(point["sampled_scans"] > 0
             for point in sampled["curve"])),
        ("trace replay verdicts element-identical",
         trace["verdicts_identical"]),
        ("trace replay journals byte-identical across backends",
         trace["journal_digests_identical"]),
        ("trace replay digests identical", trace["trace_digests_identical"]),
        ("trace replay infection detected and identical",
         trace["infected_identical"] and trace["infected"]),
    ) + stealth_campaign_gates(results["stealth_campaign"])
    for label, passed in chaos_gates:
        print(f"  [{'PASS' if passed else 'FAIL'}] {label}")
        if not passed:
            failures.append(label)
    overhead_ok = overhead["overhead_pct"] <= 5.0
    print(f"  [{'PASS' if overhead_ok else 'FAIL'}] "
          f"telemetry overhead <= 5%")
    if not overhead_ok:
        failures.append("telemetry overhead <= 5%")
    if not args.smoke:
        gates = (
            ("read_file_content speedup >= 5x",
             timings["read_file_content"]["speedup"] >= 5),
            ("raw ASEP scan speedup >= 5x",
             timings["raw_asep_scan"]["speedup"] >= 5),
            ("RIS sweep speedup >= 3x", sweep["speedup"] >= 3),
            ("RIS sweep findings identical", sweep["findings_identical"]),
            ("delta rescan speedup >= 10x", rescan["speedup"] >= 10),
            ("delta sweep speedup >= 5x", dsweep["speedup"] >= 5),
            ("fleet steady epoch >= 5x naive serial",
             fleet_epoch["speedup"] >= 5),
            ("cold zero-copy parse >= 5x",
             zero_copy["speedup"] >= 5),
            ("memory ceiling >= 4x machines per GB",
             ceiling["density_ratio"] >= 4),
            ("console query p50 >= 10x replay",
             console["speedup"] >= 10),
            ("index maintenance overhead <= 5%",
             index_overhead["overhead_pct"] <= 5.0),
            # Forked agents need cores to beat GIL-serialized threads;
            # a single-core host can only time-slice them, so there the
            # gate is that the wire + fork overhead stays bounded.
            ("distributed sweep >= 2x single process"
             if dist["cpu_count"] >= 4 else
             "distributed sweep overhead <= 3x (single-core host)",
             dist["speedup"] >= 2 if dist["cpu_count"] >= 4
             else dist["distributed_s"] <= 3 * dist["single_process_s"]),
            ("sampled sweep >= 5x reduction at recall >= 0.95",
             sampled["operating_reduction"] >= 5
             and sampled["operating_recall"] >= 0.95),
        )
        for label, passed in gates:
            print(f"  [{'PASS' if passed else 'FAIL'}] {label}")
            if not passed:
                failures.append(label)
    elif not sweep["findings_identical"]:
        failures.append("RIS sweep findings identical")

    if args.telemetry_out is not None:
        write_telemetry_artifacts(args.telemetry_out)

    out = args.out or (None if args.smoke else OUT_DEFAULT)
    if out is not None:
        out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {out}")

    if failures:
        print(f"FAILED gates: {failures}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
