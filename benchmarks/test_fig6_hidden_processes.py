"""E6 — Figure 6: hidden process/module detection, 5 programs.

Paper rows: Aphex (configurable-prefix processes), Hacker Defender
(hxdef100.exe + INI patterns), Berbew (<random>.exe), FU ("any process
hidden by fu -ph <pid>" — detectable *only* in advanced mode), and
Vanquish (vanquish.dll hidden inside many processes).
"""

from __future__ import annotations

import pytest

from repro.core import GhostBuster
from repro.ghostware import (Aphex, Berbew, FuRootkit, HackerDefender,
                             Vanquish)

from benchmarks.conftest import bench_once, fresh_machine, print_table


def test_fig6_api_interceptors(benchmark):
    """Aphex, Hacker Defender, Berbew: Active Process List suffices."""
    def run(__):
        rows = []
        for make_ghost, expected in ((lambda: Aphex(), "~aphex.exe"),
                                     (lambda: HackerDefender(),
                                      "hxdef100.exe"),
                                     (lambda: Berbew(), None)):
            machine = fresh_machine()
            ghost = make_ghost()
            ghost.install(machine)
            report = GhostBuster(machine, advanced=False).inside_scan(
                resources=("processes",))
            names = {finding.entry.name
                     for finding in report.hidden_processes()}
            wanted = expected or ghost.exe_name
            rows.append((ghost.name, wanted, wanted in names))
        return rows

    rows = bench_once(benchmark, setup=lambda: None, action=run)
    print_table("Figure 6 — process hiding via API interception",
                ("ghostware", "hidden process", "detected (standard mode)"),
                rows)
    assert all(detected for __, __n, detected in rows)


def test_fig6_fu_requires_advanced_mode(benchmark):
    def run(__):
        machine = fresh_machine()
        fu = FuRootkit()
        fu.install(machine)
        victim = machine.start_process("\\Windows\\explorer.exe",
                                       name="fu_hidden.exe")
        fu.hide_process(machine, victim.pid)
        standard = GhostBuster(machine, advanced=False).inside_scan(
            resources=("processes",))
        advanced = GhostBuster(machine, advanced=True).inside_scan(
            resources=("processes",))
        return (
            {finding.entry.name for finding in standard.hidden_processes()},
            {finding.entry.name for finding in advanced.hidden_processes()})

    standard_names, advanced_names = bench_once(benchmark,
                                                setup=lambda: None,
                                                action=run)
    print_table("Figure 6 — FU (DKOM)",
                ("mode", "fu_hidden.exe detected", "paper"),
                [("standard (Active Process List)",
                  "fu_hidden.exe" in standard_names, "missed"),
                 ("advanced (thread-table truth)",
                  "fu_hidden.exe" in advanced_names, "detected")])
    assert "fu_hidden.exe" not in standard_names
    assert "fu_hidden.exe" in advanced_names


def test_fig6_vanquish_module_in_many_processes(benchmark):
    """Paper: "the GhostBuster report contains many such entries"."""
    def run(__):
        machine = fresh_machine()
        Vanquish().install(machine)
        report = GhostBuster(machine).inside_scan(resources=("modules",))
        return [finding.entry for finding in report.hidden_modules()
                if "vanquish.dll" in finding.entry.module_path.casefold()]

    entries = bench_once(benchmark, setup=lambda: None, action=run)
    print_table("Figure 6 — Vanquish module hiding",
                ("hidden module", "process"),
                [(entry.module_path, f"pid {entry.pid} "
                  f"({entry.process_name})") for entry in entries])
    assert len(entries) >= 5, "vanquish.dll hidden inside many processes"
    assert len({entry.pid for entry in entries}) == len(entries)
