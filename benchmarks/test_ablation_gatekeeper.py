"""A4 — ablation: Gatekeeper (cross-time ASEP watch) × GhostBuster.

Section 3 references the authors' Gatekeeper work: ASEP monitoring
catches spyware at hook-planting time — but only *visible* hooks.  This
ablation runs both tools over a mixed infection set and shows the
complementary coverage the paper implies: the ASEP monitor owns the
non-hiders, the cross-view diff owns the hiders, and their union covers
everything.
"""

from __future__ import annotations

import pytest

from repro.core import GatekeeperMonitor, GhostBuster
from repro.ghostware import (Aphex, Berbew, CmCallbackGhost,
                             HackerDefender)

from benchmarks.conftest import bench_once, fresh_machine, print_table

# (ghost factory, the hook name to track, does it hide the hook?)
CASES = [
    (lambda: Berbew(), "berbew_loader", False),
    (lambda: HackerDefender(), "HackerDefender100", True),
    (lambda: Aphex(), "backdoor", True),
    (lambda: CmCallbackGhost(), "cmghost", True),
]


def test_gatekeeper_ghostbuster_coverage(benchmark):
    def run(__):
        rows = []
        for make_ghost, hook_name, hides in CASES:
            machine = fresh_machine()
            monitor = GatekeeperMonitor(machine)
            changes = monitor.watch(lambda: make_ghost().install(machine))
            gatekeeper_hit = any(
                change.name.casefold() == hook_name.casefold()
                for change in changes)
            report = GhostBuster(machine).inside_scan(
                resources=("registry",))
            ghostbuster_hit = any(
                finding.entry.name.casefold() == hook_name.casefold()
                for finding in report.hidden_hooks())
            rows.append((make_ghost().name, hides, gatekeeper_hit,
                         ghostbuster_hit))
        return rows

    rows = bench_once(benchmark, setup=lambda: None, action=run)
    print_table("A4 — complementary coverage",
                ("ghostware", "hides its hook", "Gatekeeper (cross-time)",
                 "GhostBuster (cross-view)"), rows)
    for name, hides, gatekeeper_hit, ghostbuster_hit in rows:
        if hides:
            assert not gatekeeper_hit, \
                f"{name}: hidden hooks evade the ASEP monitor"
            assert ghostbuster_hit, f"{name}: the diff must catch it"
        else:
            assert gatekeeper_hit, \
                f"{name}: visible hook-planting must be monitored"
        assert gatekeeper_hit or ghostbuster_hit, \
            f"{name}: the union must cover every strain"
