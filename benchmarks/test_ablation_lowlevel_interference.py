"""A3 — ablation: interfering with the inside-the-box low-level scan.

Section 2's caveat, made measurable: a strain that filters the kernel's
raw-disk reads blanks itself out of the inside-the-box truth, so the
inside diff is clean — and the outside-the-box scan (physical disk from
a clean OS) remains the more fundamental answer.
"""

from __future__ import annotations

import pytest

from repro.core import GhostBuster
from repro.ghostware import HackerDefender, LowLevelInterferenceGhost

from benchmarks.conftest import bench_once, fresh_machine, print_table


def test_interference_matrix(benchmark):
    def run(__):
        rows = []
        for label, make_ghost in (
                ("Hacker Defender (API hooks only)",
                 lambda: HackerDefender()),
                ("DeepGhost (+ raw-read scrubbing)",
                 lambda: LowLevelInterferenceGhost())):
            machine = fresh_machine()
            make_ghost().install(machine)
            inside = GhostBuster(machine).inside_scan(
                resources=("files", "registry"))
            outside = GhostBuster(machine).outside_scan(
                resources=("files", "registry"), reboot_after=False)
            rows.append((label, not inside.is_clean,
                         not outside.is_clean))
        return rows

    rows = bench_once(benchmark, setup=lambda: None, action=run)
    print_table("A3 — low-level-scan interference",
                ("strain", "inside-the-box detects",
                 "outside-the-box detects"), rows)
    hxdef_row, deep_row = rows
    assert hxdef_row[1] and hxdef_row[2]
    assert not deep_row[1], "interference defeats the inside scan"
    assert deep_row[2], "the clean-boot scan is below the interference"
