"""E0 — Figure 1: the complete combined workflow, end to end.

Figure 1 is the paper's overview: inside-the-box high/low scans and
diffs for files, registry, processes, and modules, then the
outside-the-box WinPE pass over the same machine — this bench runs the
whole picture against one multiply-infected machine and prints the
combined detection matrix.
"""

from __future__ import annotations

import pytest

from repro.core import GhostBuster
from repro.ghostware import (Aphex, FuRootkit, HackerDefender,
                             NamingExploitGhost, Urbin, Vanquish)
from repro.workloads import attach_standard_services

from benchmarks.conftest import bench_once, fresh_machine, print_table


def test_fig1_combined_workflow(benchmark):
    def run(__):
        machine = fresh_machine("fig1-box")
        attach_standard_services(machine)
        for ghost_cls in (HackerDefender, Urbin, Vanquish, Aphex,
                          NamingExploitGhost):
            ghost_cls().install(machine)
        fu = FuRootkit()
        fu.install(machine)
        victim = machine.start_process("\\Windows\\explorer.exe",
                                       name="unlinked.exe")
        fu.hide_process(machine, victim.pid)

        ghostbuster = GhostBuster(machine, advanced=True)
        inside = ghostbuster.inside_scan()
        outside = ghostbuster.outside_scan(background_gap=60,
                                           win32_naming=False)
        return inside, outside

    inside, outside = bench_once(benchmark, setup=lambda: None,
                                 action=run, rounds=1)
    rows = [
        ("hidden files", len(inside.hidden_files()),
         len(outside.hidden_files())),
        ("hidden ASEP hooks", len(inside.hidden_hooks()),
         len(outside.hidden_hooks())),
        ("hidden processes", len(inside.hidden_processes()),
         len(outside.hidden_processes())),
        ("hidden modules", len(inside.hidden_modules()), "(volatile)"),
        ("noise classified", len(inside.noise()), len(outside.noise())),
        ("simulated seconds", f"{inside.total_duration():.0f}",
         f"{outside.total_duration():.0f}"),
    ]
    print_table("Figure 1 — inside-the-box vs outside-the-box",
                ("metric", "inside", "outside"), rows)

    # Inside catches the interceptors and (advanced) the DKOM victim.
    assert len(inside.hidden_files()) >= 7
    assert len(inside.hidden_hooks()) >= 4
    assert any(finding.entry.name == "unlinked.exe"
               for finding in inside.hidden_processes())
    # Outside-raw additionally exposes the naming-exploit ghosts.
    outside_paths = {finding.entry.path.casefold()
                     for finding in outside.hidden_files()}
    assert any("payload.exe." in path for path in outside_paths)
    # And classifies the reboot-window churn instead of crying wolf.
    churn = [finding for finding in outside.findings
             if hasattr(finding.entry, "path")
             and "avlogs" in finding.entry.path.casefold()]
    assert churn and all(finding.is_noise for finding in churn)
