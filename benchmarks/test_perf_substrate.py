"""P1 — performance of the reproduction's own substrate.

Unlike the E/A/X benchmarks (which reproduce the *paper's* simulated
timings), these measure the wall-clock cost of our hot paths — the raw
MFT parse, the raw hive parse, and the cross-view diff — so regressions
in the reproduction itself are visible.
"""

from __future__ import annotations

import pytest

from repro.core.diff import cross_view_diff
from repro.core.snapshot import FileEntry, ResourceType, ScanSnapshot
from repro.disk import Disk, DiskGeometry
from repro.ntfs import NtfsVolume, parse_volume
from repro.registry.hive import Hive
from repro.registry.hive_parser import parse_hive


def _populated_disk(file_count: int):
    disk = Disk(DiskGeometry.from_megabytes(256))
    volume = NtfsVolume.format(disk, max_records=file_count * 2 + 64)
    volume.create_directories("\\data")
    for index in range(file_count):
        volume.create_file(f"\\data\\file{index:05d}.bin", b"x" * 100)
    return disk


@pytest.mark.parametrize("file_count", [200, 1000])
def test_raw_mft_parse(benchmark, file_count):
    disk = _populated_disk(file_count)
    entries = benchmark(lambda: parse_volume(disk))
    assert len(entries) == file_count + 1   # files + \data


def test_raw_hive_parse(benchmark):
    hive = Hive("PERF")
    for key_index in range(100):
        key = hive.create_key(f"Vendor\\App{key_index:03d}")
        for value_index in range(8):
            key.set_value(f"setting{value_index}", "x" * 24)
    blob = hive.serialize()
    parsed = benchmark(lambda: parse_hive(blob))
    assert len(parsed.root.subkey("Vendor").subkeys) == 100


def test_cross_view_diff_10k(benchmark):
    def snapshot(view, count, offset=0):
        entries = [FileEntry(f"\\f{i + offset}", f"f{i + offset}",
                             False, 0) for i in range(count)]
        return ScanSnapshot(ResourceType.FILE, view=view, entries=entries)

    lie = snapshot("lie", 10_000)
    truth = snapshot("truth", 10_000, offset=5)   # 5 "hidden" files
    findings = benchmark(lambda: cross_view_diff(lie, truth))
    assert len(findings) == 5


def test_hive_serialize_1k_values(benchmark):
    hive = Hive("PERF")
    key = hive.create_key("Big")
    for index in range(1000):
        key.set_value(f"value{index:04d}", "payload " * 3)
    blob = benchmark(hive.serialize)
    assert len(blob) > 50_000
