"""P1 — performance of the reproduction's own substrate.

Unlike the E/A/X benchmarks (which reproduce the *paper's* simulated
timings), these measure the wall-clock cost of our hot paths — the raw
MFT parse, the raw hive parse, and the cross-view diff — so regressions
in the reproduction itself are visible.
"""

from __future__ import annotations

import pytest

from repro.core.diff import cross_view_diff
from repro.core.snapshot import FileEntry, ResourceType, ScanSnapshot
from repro.disk import Disk, DiskGeometry
from repro.ntfs import MftParser, NtfsVolume, parse_volume
from repro.registry.hive import Hive
from repro.registry.hive_parser import clear_hive_cache, parse_hive


def _populated_disk(file_count: int):
    disk = Disk(DiskGeometry.from_megabytes(256))
    volume = NtfsVolume.format(disk, max_records=file_count * 2 + 64)
    volume.create_directories("\\data")
    for index in range(file_count):
        volume.create_file(f"\\data\\file{index:05d}.bin", b"x" * 100)
    return disk


@pytest.mark.parametrize("file_count", [200, 1000])
def test_raw_mft_parse_cold(benchmark, file_count):
    disk = _populated_disk(file_count)

    def cold_parse():
        disk.raw_cache.clear()   # measure the parse, not the cache hit
        return parse_volume(disk)

    entries = benchmark(cold_parse)
    assert len(entries) == file_count + 1   # files + \data


def test_raw_mft_parse_cached(benchmark):
    disk = _populated_disk(1000)
    parse_volume(disk)   # warm the per-(disk, generation) cache
    entries = benchmark(lambda: parse_volume(disk))
    assert len(entries) == 1001


def test_read_file_content_indexed(benchmark):
    disk = _populated_disk(1000)
    parser = MftParser(disk.read_bytes)
    parser.parse()   # build the namespace index once
    content = benchmark(
        lambda: parser.read_file_content("\\data\\file00500.bin"))
    assert content == b"x" * 100


def test_raw_hive_parse_cold(benchmark):
    hive = Hive("PERF")
    for key_index in range(100):
        key = hive.create_key(f"Vendor\\App{key_index:03d}")
        for value_index in range(8):
            key.set_value(f"setting{value_index}", "x" * 24)
    blob = hive.serialize()

    def cold_parse():
        clear_hive_cache()   # measure the parse, not the memo hit
        return parse_hive(blob)

    parsed = benchmark(cold_parse)
    assert len(parsed.root.subkey("Vendor").subkeys) == 100


def test_cross_view_diff_10k(benchmark):
    def snapshot(view, count, offset=0):
        entries = [FileEntry(f"\\f{i + offset}", f"f{i + offset}",
                             False, 0) for i in range(count)]
        return ScanSnapshot(ResourceType.FILE, view=view, entries=entries)

    lie = snapshot("lie", 10_000)
    truth = snapshot("truth", 10_000, offset=5)   # 5 "hidden" files
    findings = benchmark(lambda: cross_view_diff(lie, truth))
    assert len(findings) == 5


def test_hive_serialize_1k_values(benchmark):
    hive = Hive("PERF")
    key = hive.create_key("Big")
    for index in range(1000):
        key.set_value(f"value{index:04d}", "payload " * 3)
    blob = benchmark(hive.serialize)
    assert len(blob) > 50_000
