"""E3 — Section 2 false positives.

Paper: inside-the-box scans showed **zero** false positives.  Outside-
the-box scans picked up reboot-window churn: "On all but one machine,
the number of false positives was two or less ... On the one machine
that had 7 false positives, we disabled the CCM service, re-ran the
scan, and saw the number of false positives reduced to 2."
"""

from __future__ import annotations

import pytest

from repro.core import GhostBuster
from repro.workloads import attach_standard_services
from repro.workloads.background import CcmService

from benchmarks.conftest import bench_once, fresh_machine, print_table


def test_inside_scan_zero_false_positives(benchmark):
    def run(__):
        counts = []
        for seed_name in ("fp-a", "fp-b", "fp-c"):
            machine = fresh_machine(seed_name)
            attach_standard_services(machine)
            machine.run_background(300)   # plenty of churn *before*
            report = GhostBuster(machine, advanced=True).inside_scan()
            counts.append((seed_name, len(report.findings)))
        return counts

    counts = bench_once(benchmark, setup=lambda: None, action=run,
                        rounds=1)
    print_table("Section 2 — inside-the-box false positives",
                ("machine", "false positives", "paper"),
                [(name, count, 0) for name, count in counts])
    assert all(count == 0 for __, count in counts)


def test_outside_scan_typical_machine(benchmark):
    def run(__):
        machine = fresh_machine("typical")
        attach_standard_services(machine)
        report = GhostBuster(machine).outside_scan(resources=("files",),
                                                   background_gap=120)
        return report

    report = bench_once(benchmark, setup=lambda: None, action=run,
                        rounds=1)
    false_positives = len(report.findings)
    print_table("Section 2 — outside-the-box FPs (typical machine)",
                ("false positives", "classified as noise", "paper"),
                [(false_positives, len(report.noise()), "two or less")])
    assert false_positives <= 2
    assert report.is_clean   # all of them classified benign


def test_outside_scan_ccm_machine_and_fix(benchmark):
    def run(__):
        machine = fresh_machine("ccm-managed")
        services = attach_standard_services(machine, with_ccm=True)
        report_before = GhostBuster(machine).outside_scan(
            resources=("files",), background_gap=120)
        # The paper's fix: disable CCM and re-run.
        ccm = next(service for service in services
                   if isinstance(service, CcmService))
        ccm.enabled = False
        report_after = GhostBuster(machine).outside_scan(
            resources=("files",), background_gap=120)
        return report_before, report_after

    report_before, report_after = bench_once(benchmark, setup=lambda: None,
                                             action=run, rounds=1)
    before = len(report_before.findings)
    after = len(report_after.findings)
    print_table("Section 2 — the CCM machine",
                ("configuration", "false positives", "paper"),
                [("CCM enabled", before, 7),
                 ("CCM disabled", after, 2)])
    assert before == 7
    assert after == 2


def test_noise_reasons_match_paper_list(benchmark):
    """The FP culprits are the ones the paper names."""
    def run(__):
        machine = fresh_machine("reasons")
        attach_standard_services(machine, with_ccm=True)
        report = GhostBuster(machine).outside_scan(resources=("files",),
                                                   background_gap=120)
        return sorted({finding.noise_reason
                       for finding in report.noise()})

    reasons = bench_once(benchmark, setup=lambda: None, action=run,
                         rounds=1)
    print_table("Section 2 — FP classification",
                ("reason",), [(reason,) for reason in reasons])
    joined = " ".join(reasons).casefold()
    assert "anti-virus" in joined
    assert "ccm" in joined
    assert "system restore" in joined
