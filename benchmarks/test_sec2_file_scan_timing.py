"""E2 — Section 2 timing: inside file detection on the 8 test machines.

Paper: "For these [seven] machines the inside-the-box solution took
between 30 seconds and 7 minutes.  (On the 8th machine, ... 95 GB ...
the scan took 38 minutes.)  The outside-the-box solution typically adds
1.5 to 3 minutes for booting into the WinPE CD."
"""

from __future__ import annotations

import pytest

from repro.core import GhostBuster, WinPEEnvironment
from repro.workloads import PAPER_MACHINES, build_machine
from repro.workloads.machines import SMALL_MACHINES, WORKSTATION

from benchmarks.conftest import bench_once, print_table


def _scan_fleet(profiles):
    rows = []
    for profile in profiles:
        machine = build_machine(profile, seed=3)
        report = GhostBuster(machine).inside_scan(resources=("files",))
        rows.append((profile, report.durations["files"]))
    return rows


def test_inside_file_scan_timing_small_machines(benchmark):
    rows = bench_once(benchmark, setup=lambda: SMALL_MACHINES,
                      action=_scan_fleet, rounds=1)
    table = [(profile.ident, f"{profile.cpu_mhz} MHz",
              f"{profile.disk_used_gb} GB", f"{seconds:.0f} s",
              "30 s – 7 min")
             for profile, seconds in rows]
    print_table("Section 2 — inside-the-box file detection (7 machines)",
                ("machine", "cpu", "disk used", "measured (sim)",
                 "paper range"), table)
    for profile, seconds in rows:
        assert 30 <= seconds <= 7 * 60, \
            f"{profile.ident}: {seconds:.0f}s outside the paper's range"


def test_inside_file_scan_timing_workstation(benchmark):
    rows = bench_once(benchmark, setup=lambda: [WORKSTATION],
                      action=_scan_fleet, rounds=1)
    __, seconds = rows[0]
    print_table("Section 2 — the 95 GB dual-proc workstation",
                ("machine", "measured (sim)", "paper"),
                [(WORKSTATION.ident, f"{seconds / 60:.1f} min", "38 min")])
    # Same order of magnitude: tens of minutes, way beyond the others.
    assert 25 * 60 <= seconds <= 55 * 60


def test_winpe_boot_overhead(benchmark):
    def run(profiles):
        rows = []
        for profile in profiles:
            machine = build_machine(profile, seed=3, populate=False)
            machine.shutdown()
            winpe = WinPEEnvironment(machine)
            winpe.boot()
            rows.append((profile.ident, winpe.boot_seconds))
        return rows

    rows = bench_once(benchmark, setup=lambda: PAPER_MACHINES,
                      action=run, rounds=1)
    print_table("Section 2 — WinPE CD boot overhead",
                ("machine", "boot (sim)", "paper range"),
                [(ident, f"{seconds:.0f} s", "90 – 180 s")
                 for ident, seconds in rows])
    for ident, seconds in rows:
        assert 90 <= seconds <= 183, f"{ident}: {seconds:.0f}s"
