"""E5 — Section 3 timing & the corrupted-AppInit_DLLs false positive.

Paper: "On the 8 machines we tested, inside-the-box hidden-ASEP
detection took between 18 to 63 seconds.  In all the experiments, we
observed only one false positive on one machine: the data field of the
AppInit_DLLs entry contained corrupted data that did not show up in
RegEdit, but appeared in the raw hive parsing.  The problem was fixed by
exporting the parent key ..., deleting the parent key, and re-importing
the exported key."
"""

from __future__ import annotations

import pytest

from repro.core import GhostBuster
from repro.machine import APPINIT_KEY
from repro.registry.hive import RegType
from repro.workloads import PAPER_MACHINES, build_machine

from benchmarks.conftest import bench_once, fresh_machine, print_table


def test_asep_scan_timing_eight_machines(benchmark):
    def run(profiles):
        rows = []
        for profile in profiles:
            machine = build_machine(profile, seed=5)
            report = GhostBuster(machine).inside_scan(
                resources=("registry",))
            rows.append((profile.ident, report.durations["registry"]))
        return rows

    rows = bench_once(benchmark, setup=lambda: PAPER_MACHINES,
                      action=run, rounds=1)
    print_table("Section 3 — hidden-ASEP detection timing",
                ("machine", "measured (sim)", "paper range"),
                [(ident, f"{seconds:.0f} s", "18 – 63 s")
                 for ident, seconds in rows])
    for ident, seconds in rows:
        assert 14 <= seconds <= 70, f"{ident}: {seconds:.0f}s"


def _corrupt_appinit(machine):
    """Plant the paper's corruption: garbage after the terminator NUL."""
    corrupted = "legit.dll\x00�GARBAGE�".encode("utf-16-le")
    machine.registry.set_value(APPINIT_KEY, "AppInit_DLLs", "legit.dll",
                               RegType.SZ, raw_override=corrupted)


def test_corrupted_appinit_is_the_single_fp(benchmark):
    def run(__):
        machine = fresh_machine("corrupt-box")
        machine.volume.create_file("\\Windows\\System32\\legit.dll", b"MZ")
        _corrupt_appinit(machine)
        report = GhostBuster(machine).inside_scan(resources=("registry",))
        return report

    report = bench_once(benchmark, setup=lambda: None, action=run)
    hooks = report.hidden_hooks()
    print_table("Section 3 — the corrupted AppInit_DLLs false positive",
                ("finding", "explanation"),
                [(finding.entry.describe(),
                  "raw parse sees data RegEdit cannot display")
                 for finding in hooks])
    assert len(hooks) == 1
    assert hooks[0].entry.name == "AppInit_DLLs"


def test_export_delete_reimport_fix(benchmark):
    """The paper's remediation removes the FP on the next scan."""
    def run(__):
        machine = fresh_machine("fix-box")
        machine.volume.create_file("\\Windows\\System32\\legit.dll", b"MZ")
        _corrupt_appinit(machine)
        before = GhostBuster(machine).inside_scan(resources=("registry",))

        # export (the clean textual value) / delete / re-import:
        clean_data = str(machine.registry.get_value(
            APPINIT_KEY, "AppInit_DLLs").win32_data())
        machine.registry.delete_key(APPINIT_KEY)
        machine.registry.create_key(APPINIT_KEY)
        machine.registry.set_value(APPINIT_KEY, "AppInit_DLLs", clean_data)

        after = GhostBuster(machine).inside_scan(resources=("registry",))
        return before, after

    before, after = bench_once(benchmark, setup=lambda: None, action=run)
    print_table("Section 3 — export/delete/re-import fix",
                ("scan", "false positives"),
                [("before fix", len(before.hidden_hooks())),
                 ("after fix", len(after.hidden_hooks()))])
    assert len(before.hidden_hooks()) == 1
    assert len(after.hidden_hooks()) == 0
