"""E4 — Figure 4: GhostBuster hidden ASEP hook detection, 6 programs.

Regenerates the paper's table of hidden auto-start hooks per program:
AppInit_DLLs for the two wild Trojans, two Services hooks for Hacker
Defender, Services hooks for Vanquish and ProBot SE, Run hooks for
ProBot SE and Aphex.
"""

from __future__ import annotations

import pytest

from repro.core import GhostBuster
from repro.ghostware import (Aphex, HackerDefender, Mersting, ProBotSE,
                             Urbin, Vanquish)

from benchmarks.conftest import bench_once, fresh_machine, print_table

CASES = [
    (lambda: Urbin(), "Urbin",
     [("appinit_dlls", "msvsres.dll")]),
    (lambda: Mersting(), "Mersting",
     [("appinit_dlls", "kbddfl.dll")]),
    (lambda: HackerDefender(), "Hacker Defender 1.0",
     [("services", "hackerdefender100"),
      ("services", "hackerdefenderdrv100")]),
    (lambda: Vanquish(), "Vanquish",
     [("services", "vanquish")]),
    (lambda: ProBotSE(), "ProBot SE",
     [("services", ".sys"), ("services", ".sys"), ("run", ".exe")]),
    (lambda: Aphex(), "Aphex",
     [("run", ".exe")]),
]


def _hooks_for(make_ghost):
    machine = fresh_machine()
    make_ghost().install(machine)
    report = GhostBuster(machine).inside_scan(resources=("registry",))
    return [(finding.entry.location,
             f"{finding.entry.name} → {finding.entry.data}".casefold())
            for finding in report.hidden_hooks()]


@pytest.mark.parametrize("make_ghost,label,expected",
                         CASES, ids=[case[1] for case in CASES])
def test_fig4_row(benchmark, make_ghost, label, expected):
    hooks = bench_once(benchmark, setup=lambda: make_ghost,
                       action=_hooks_for)
    print_table(f"Figure 4 row — {label}",
                ("ASEP", "hidden hook"), hooks)
    assert len(hooks) >= len(expected), \
        f"{label}: paper reports {len(expected)} hidden hooks"
    for location, token in expected:
        assert any(hook_location == location and token in description
                   for hook_location, description in hooks), \
            f"{label}: missing {location} hook matching {token!r}"


def test_fig4_hook_counts(benchmark):
    """The per-program hidden-hook counts of the paper's table."""
    paper_counts = {"Urbin": 1, "Mersting": 1, "Hacker Defender 1.0": 2,
                    "Vanquish": 1, "ProBot SE": 3, "Aphex": 1}

    def run(__):
        return [(label, len(_hooks_for(make_ghost)))
                for make_ghost, label, __e in CASES]

    rows = bench_once(benchmark, setup=lambda: None, action=run, rounds=1)
    print_table("Figure 4 — hidden ASEP hooks per program",
                ("ghostware", "hidden hooks", "paper"),
                [(label, count, paper_counts[label])
                 for label, count in rows])
    for label, count in rows:
        assert count == paper_counts[label]
