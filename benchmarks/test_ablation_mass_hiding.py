"""A2 — ablation: hiding many innocent files is itself the signal.

Section 5: "Another potential attack on GhostBuster is to hide a large
number of innocent files, together with the ghostware files. ... the
existence of a large number of hidden files is a serious anomaly."
"""

from __future__ import annotations

import pytest

from repro.core import GhostBuster, check_mass_hiding
from repro.ghostware import HackerDefender, HideFiles

from benchmarks.conftest import bench_once, fresh_machine, print_table


def test_mass_hiding_anomaly(benchmark):
    def run(__):
        rows = []
        for innocents in (0, 10, 50, 200):
            machine = fresh_machine(f"chaff-{innocents}")
            HackerDefender().install(machine)
            if innocents:
                hider = HideFiles()
                hider.install(machine)
                machine.volume.create_directories("\\chaff")
                for index in range(innocents):
                    path = f"\\chaff\\innocent{index:04d}.txt"
                    machine.volume.create_file(path, b"")
                    hider.hide_path(machine, path)
            report = GhostBuster(machine).inside_scan(resources=("files",))
            alert = check_mass_hiding(report)
            rows.append((innocents, len(report.hidden_files()),
                         alert is not None, not report.is_clean))
        return rows

    rows = bench_once(benchmark, setup=lambda: None, action=run, rounds=1)
    print_table("A2 — mass innocent-file hiding",
                ("innocent files hidden", "total hidden findings",
                 "anomaly alert", "infection detected"), rows)
    for innocents, total, alerted, detected in rows:
        assert detected, "the ghostware is always detected"
        assert total >= innocents, "chaff never reduces the finding count"
        if innocents >= 50:
            assert alerted, "large hidden sets must raise the anomaly"
