"""E7 — Section 4 timing.

Paper: "The inside-the-box scanning and diff for the combined
hidden-process and hidden-module detection took between 1 and 5
seconds. ... For the outside-the-box scan, the kernel memory dump
through blue screen added 15 to 45 seconds."
"""

from __future__ import annotations

import pytest

from repro.core import GhostBuster
from repro.workloads import PAPER_MACHINES, build_machine

from benchmarks.conftest import bench_once, print_table


def test_process_module_scan_timing(benchmark):
    def run(profiles):
        rows = []
        for profile in profiles:
            machine = build_machine(profile, seed=7)
            report = GhostBuster(machine, advanced=True).inside_scan(
                resources=("processes", "modules"))
            combined = report.durations["processes"] + \
                report.durations["modules"]
            rows.append((profile.ident, profile.process_count, combined))
        return rows

    rows = bench_once(benchmark, setup=lambda: PAPER_MACHINES,
                      action=run, rounds=1)
    print_table("Section 4 — combined process+module detection",
                ("machine", "processes", "measured (sim)", "paper range"),
                [(ident, count, f"{seconds:.1f} s", "1 – 5 s")
                 for ident, count, seconds in rows])
    for ident, __, seconds in rows:
        assert 0.8 <= seconds <= 5.5, f"{ident}: {seconds:.1f}s"


def test_crash_dump_overhead(benchmark):
    def run(profiles):
        rows = []
        for profile in profiles:
            machine = build_machine(profile, seed=7, populate=False)
            before = machine.clock.now()
            GhostBuster(machine).write_crash_dump()
            rows.append((profile.ident, profile.ram_mb,
                         machine.clock.now() - before))
        return rows

    rows = bench_once(benchmark, setup=lambda: PAPER_MACHINES,
                      action=run, rounds=1)
    print_table("Section 4 — blue-screen memory dump overhead",
                ("machine", "RAM", "dump time (sim)", "paper range"),
                [(ident, f"{ram} MB", f"{seconds:.0f} s", "15 – 45 s")
                 for ident, ram, seconds in rows])
    for ident, __, seconds in rows:
        assert 15 <= seconds <= 45.5, f"{ident}: {seconds:.0f}s"
