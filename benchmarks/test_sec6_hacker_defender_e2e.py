"""E12 — Section 6: the Hacker Defender end-to-end walkthrough.

Paper: "we were able to deterministically detect its presence within 5
seconds through hidden-process detection, locate its hidden auto-start
Registry keys within one minute, remove the keys to disable the malware,
and reboot the machine to delete the now-visible files."
"""

from __future__ import annotations

import pytest

from repro.core import GhostBuster, disinfect
from repro.ghostware import HackerDefender

from benchmarks.conftest import bench_once, fresh_machine, print_table


def test_hacker_defender_kill_chain(benchmark):
    def run(__):
        machine = fresh_machine("hxdef-victim")
        HackerDefender().install(machine)
        ghostbuster = GhostBuster(machine, advanced=True)

        t0 = machine.clock.now()
        process_report = ghostbuster.inside_scan(
            resources=("processes", "modules"))
        detect_seconds = machine.clock.now() - t0

        t1 = machine.clock.now()
        registry_report = ghostbuster.inside_scan(resources=("registry",))
        locate_seconds = machine.clock.now() - t1

        full_report = ghostbuster.inside_scan()
        log = disinfect(machine, full_report)

        still_running = machine.process_by_name("hxdef100.exe") is not None
        files_gone = not machine.volume.exists("\\Windows\\hxdef100.exe")
        return (detect_seconds, process_report, locate_seconds,
                registry_report, log, still_running, files_gone)

    (detect_seconds, process_report, locate_seconds, registry_report,
     log, still_running, files_gone) = bench_once(
        benchmark, setup=lambda: None, action=run)

    detected = any(finding.entry.name == "hxdef100.exe"
                   for finding in process_report.hidden_processes())
    hooks = len(registry_report.hidden_hooks())
    print_table("Section 6 — Hacker Defender kill chain",
                ("stage", "measured", "paper"),
                [("detect presence (hidden process)",
                  f"{detect_seconds:.1f} s, found={detected}",
                  "within 5 s"),
                 ("locate hidden ASEP keys",
                  f"{locate_seconds:.1f} s, {hooks} hooks",
                  "within 1 min"),
                 ("remove keys + reboot",
                  f"keys deleted: {len(log.deleted_keys)}",
                  "malware disabled"),
                 ("delete now-visible files",
                  f"{len(log.deleted_files)} deleted, "
                  f"running={still_running}",
                  "files removed")])

    assert detected and detect_seconds <= 5.0
    assert hooks == 2 and locate_seconds <= 60.0
    assert log.rebooted and not still_running
    assert files_gone and log.verified_clean
