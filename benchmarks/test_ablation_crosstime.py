"""A1 — ablation: cross-view diff vs cross-time diff (Tripwire style).

Section 1's comparison, quantified on identical workloads: the
cross-time diff catches the ghostware changes *and* a pile of legitimate
churn (every log write, every temp file), while the cross-view diff
reports only the hiding — because "legitimate programs rarely hide".
"""

from __future__ import annotations

import pytest

from repro.core import GhostBuster
from repro.core.crosstime import CrossTimeDiffer
from repro.ghostware import HackerDefender
from repro.workloads import attach_standard_services

from benchmarks.conftest import bench_once, fresh_machine, print_table


def test_crossview_vs_crosstime_false_positives(benchmark):
    def run(__):
        machine = fresh_machine("baseline-box")
        attach_standard_services(machine)
        differ = CrossTimeDiffer(machine)
        checkpoint = differ.checkpoint()

        # A week of ordinary life plus one infection.
        for __day in range(7):
            machine.run_background(3600)
        HackerDefender().install(machine)

        crosstime_findings = differ.diff(checkpoint, differ.checkpoint())
        crossview_report = GhostBuster(machine).inside_scan(
            resources=("files",))

        ghost_paths = {"\\windows\\hxdef100.exe", "\\windows\\hxdefdrv.sys",
                       "\\windows\\hxdef100.ini"}
        crosstime_noise = [finding for finding in crosstime_findings
                           if finding.path not in ghost_paths]
        crossview_noise = [finding for finding in
                           crossview_report.hidden_files()
                           if finding.entry.path.casefold()
                           not in ghost_paths]
        return crosstime_findings, crosstime_noise, crossview_report, \
            crossview_noise

    (crosstime_findings, crosstime_noise, crossview_report,
     crossview_noise) = bench_once(benchmark, setup=lambda: None,
                                   action=run)
    print_table("A1 — cross-view vs cross-time",
                ("approach", "total findings", "ghostware", "noise"),
                [("cross-time (Tripwire-style)", len(crosstime_findings),
                  len(crosstime_findings) - len(crosstime_noise),
                  len(crosstime_noise)),
                 ("cross-view (GhostBuster)",
                  len(crossview_report.hidden_files()),
                  len(crossview_report.hidden_files())
                  - len(crossview_noise),
                  len(crossview_noise))])
    # Both catch the malware...
    assert len(crosstime_findings) - len(crosstime_noise) == 3
    assert len(crossview_report.hidden_files()) - len(crossview_noise) == 3
    # ...but only cross-time drowns it in legitimate churn.
    assert len(crosstime_noise) >= 7
    assert len(crossview_noise) == 0
