"""E10 — Section 5: VM-based outside-the-box automation.

Two demonstrations from the paper: scanning a powered-down VM's virtual
disk from the host ("a diff of the two scans revealed all the hidden
files and contained zero false positive because the two scans were
performed on exactly the same drive image"), and the automated
WinPE-CD + VM flow with the auto-start scan hook.
"""

from __future__ import annotations

import pytest

from repro.core.vmscan import automated_winpe_vm_scan, vm_outside_scan
from repro.ghostware import HackerDefender

from benchmarks.conftest import bench_once, fresh_machine, print_table


def test_vm_host_scan_detects_all_hidden_files(benchmark):
    def run(__):
        machine = fresh_machine("infected-vm")
        HackerDefender().install(machine)
        return vm_outside_scan(machine, power_up_after=False)

    report = bench_once(benchmark, setup=lambda: None, action=run)
    files = sorted(finding.entry.path
                   for finding in report.hidden_files())
    print_table("Section 5 — VM host scan of the powered-down drive",
                ("hidden file",), [(path,) for path in files])
    assert {"\\Windows\\hxdef100.exe", "\\Windows\\hxdefdrv.sys",
            "\\Windows\\hxdef100.ini"} <= set(files)
    hooks = {finding.entry.name for finding in report.hidden_hooks()}
    assert "HackerDefender100" in hooks


def test_vm_scan_zero_false_positives(benchmark):
    """Same drive image on both sides of the diff → zero FPs."""
    def run(__):
        machine = fresh_machine("clean-vm")
        return vm_outside_scan(machine, power_up_after=False)

    report = bench_once(benchmark, setup=lambda: None, action=run)
    print_table("Section 5 — VM scan false positives",
                ("machine", "false positives", "paper"),
                [("clean VM", len(report.findings), 0)])
    assert report.findings == []


def test_automated_winpe_vm_flow(benchmark):
    def run(__):
        machine = fresh_machine("auto-vm")
        HackerDefender().install(machine)
        report = automated_winpe_vm_scan(machine)
        # The flow removed its RunOnce hook (consumed at boot):
        leftover = machine.registry.enum_values(
            "HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\RunOnce")
        return report, leftover

    report, leftover = bench_once(benchmark, setup=lambda: None, action=run)
    files = {finding.entry.path for finding in report.hidden_files()}
    print_table("Section 5 — automated WinPE+VM flow",
                ("step", "result"),
                [("hidden files found", len(files)),
                 ("RunOnce hook consumed", leftover == []),
                 ("own artifacts excluded",
                  all("gb_scan" not in path.casefold()
                      for path in files))])
    assert "\\Windows\\hxdef100.exe" in files
    assert leftover == []
