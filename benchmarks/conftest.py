"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures or timing
claims.  Two kinds of numbers appear:

* **wall-clock** — measured by pytest-benchmark over our harness code
  (how fast the reproduction itself runs);
* **simulated seconds** — the cost-model durations that reproduce the
  *paper's* reported scan times; these are printed in the tables and
  asserted against the paper's ranges.
"""

from __future__ import annotations

import pytest

from repro.machine import Machine
from repro.workloads import populate_machine


def fresh_machine(name: str = "bench", files: int = 120,
                  registry_scale: int = 400) -> Machine:
    machine = Machine(name, disk_mb=512, max_records=8192)
    populate_machine(machine, file_count=files,
                     registry_scale=registry_scale, seed=42)
    machine.boot()
    return machine


def bench_once(benchmark, setup, action, rounds: int = 3):
    """Benchmark ``action(state)`` with a fresh ``setup()`` per round.

    Returns the last round's action result so the caller can assert on
    (and print) the reproduced table.
    """
    state = {}

    def _setup():
        state["subject"] = setup()
        return (), {}

    def _target():
        state["result"] = action(state["subject"])

    benchmark.pedantic(_target, setup=_setup, rounds=rounds, iterations=1)
    return state["result"]


def print_table(title: str, header, rows) -> None:
    widths = [max(len(str(row[i])) for row in ([header] + rows))
              for i in range(len(header))]
    print(f"\n=== {title} ===")
    line = "  ".join(str(header[i]).ljust(widths[i])
                     for i in range(len(header)))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(row[i]).ljust(widths[i])
                        for i in range(len(row))))
