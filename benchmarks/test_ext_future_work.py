"""X1 — extensions beyond the paper's evaluation (its future-work list).

* **ADS**: Section 6 names Alternate Data Streams as a hiding form with
  no enumeration API; the ADS scanner closes that gap and the regular
  file diff demonstrably cannot.
* **RIS**: Section 5 proposes replacing the CD boot with a network boot
  for enterprise automation; the sweep scans a small fleet and picks the
  infected client without a console visit.
* **Registry callbacks**: Section 3 names kernel registry callbacks as
  an alternative interception the diff handles identically.
"""

from __future__ import annotations

import pytest

from repro.core import (GhostBuster, RisServer, executable_streams,
                        scan_alternate_streams)
from repro.ghostware import AdsGhost, CmCallbackGhost, HackerDefender
from repro.machine import Machine

from benchmarks.conftest import bench_once, fresh_machine, print_table


def test_ads_scan_closes_the_future_work_gap(benchmark):
    def run(__):
        machine = fresh_machine("ads-box")
        ghost = AdsGhost()
        ghost.install(machine)
        file_diff = GhostBuster(machine).inside_scan(resources=("files",))
        streams = scan_alternate_streams(machine)
        return ghost, file_diff, streams

    ghost, file_diff, streams = bench_once(benchmark, setup=lambda: None,
                                           action=run)
    executables = executable_streams(streams)
    print_table("X1 — ADS hiding (paper future work)",
                ("detector", "result"),
                [("regular file cross-view diff",
                  "clean (host file matches in both views)"
                  if file_diff.is_clean else "detected"),
                 ("ADS raw-MFT scan",
                  "; ".join(entry.describe() for entry in streams))])
    assert file_diff.is_clean
    assert any(entry.qualified_name == ghost.stream_path
               for entry in executables)


def test_ris_fleet_sweep(benchmark):
    def run(__):
        machines = []
        for index in range(4):
            machine = Machine(f"ris-client-{index}", disk_mb=256,
                              max_records=8192)
            machine.boot()
            machines.append(machine)
        HackerDefender().install(machines[2])
        return RisServer().sweep(machines)

    result = bench_once(benchmark, setup=lambda: None, action=run)
    rows = [(name, "INFECTED" if name in result.infected_machines
             else "clean",
             f"{result.reports[name].durations['network-boot']:.0f} s")
            for name in sorted(result.reports)]
    print_table("X1 — RIS network-boot fleet sweep",
                ("client", "verdict", "network boot"), rows)
    assert result.infected_machines == ["ris-client-2"]


def test_cm_callback_technique(benchmark):
    def run(__):
        machine = fresh_machine("cm-box")
        CmCallbackGhost().install(machine)
        return GhostBuster(machine).inside_scan(resources=("registry",))

    report = bench_once(benchmark, setup=lambda: None, action=run)
    print_table("X1 — kernel registry-callback hiding",
                ("hidden hook",),
                [(finding.entry.describe(),)
                 for finding in report.hidden_hooks()])
    assert any(finding.entry.name == "cmghost"
               for finding in report.hidden_hooks())
