"""E9 — Section 5: targeting issues and the DLL-injection extension.

Three results:

* utility-targeted and GhostBuster-targeted strains evade the standalone
  GhostBuster EXE (it "cannot experience the hiding behavior");
* injecting the GhostBuster DLL into every running process restores
  detection for both;
* the eTrust demonstration: the signature scanner alone finds nothing on
  a Hacker Defender machine, GhostBuster-inside-the-scanner finds the
  hidden files, and the signatures then name the malware — the dilemma.
"""

from __future__ import annotations

import pytest

from repro.core import GhostBuster
from repro.core.injection_ext import injected_scan
from repro.ghostware import (GhostBusterAwareGhost, HackerDefender,
                             UtilityTargetedGhost)
from repro.workloads.signatures import SignatureScanner

from benchmarks.conftest import bench_once, fresh_machine, print_table


def test_targeted_strains_vs_extension(benchmark):
    def run(__):
        rows = []
        for make_ghost in (lambda: UtilityTargetedGhost(),
                           lambda: GhostBusterAwareGhost()):
            machine = fresh_machine()
            # Give the targeted strain its preferred victims:
            machine.start_process("\\Windows\\explorer.exe",
                                  name="taskmgr.exe")
            ghost = make_ghost()
            ghost.install(machine)
            standalone = GhostBuster(machine).inside_scan(
                resources=("files", "processes"))
            injected = injected_scan(machine)
            rows.append((ghost.name, not standalone.is_clean,
                         not injected.is_clean,
                         len(injected.detecting_processes)))
        return rows

    rows = bench_once(benchmark, setup=lambda: None, action=run, rounds=1)
    print_table("Section 5 — targeted ghostware",
                ("strain", "standalone EXE detects",
                 "injected DLL detects", "detecting processes"), rows)
    for name, standalone_hit, injected_hit, detectors in rows:
        assert not standalone_hit, f"{name} must evade the standalone scan"
        assert injected_hit, f"{name} must be caught by the extension"
        assert detectors >= 1


def test_etrust_dilemma(benchmark):
    def run(__):
        machine = fresh_machine()
        HackerDefender().install(machine)
        scanner = SignatureScanner()

        blind_hits = scanner.on_demand_scan(machine)

        # "Inject the GhostBuster DLL into the scanner process": run the
        # cross-view diff from inside InocIT.exe, then hand the revealed
        # paths to the signature engine.
        inoc = scanner.ensure_process(machine)
        report = GhostBuster(machine,
                             scanner_process=inoc).inside_scan(
            resources=("files",))
        revealed = [finding.entry.path
                    for finding in report.hidden_files()]
        combined_hits = scanner.scan_hidden_candidates(machine, revealed)
        return blind_hits, revealed, combined_hits

    blind_hits, revealed, combined_hits = bench_once(
        benchmark, setup=lambda: None, action=run)
    print_table("Section 5 — the eTrust demonstration",
                ("configuration", "result"),
                [("signatures alone (hooked enumeration)",
                  f"{len(blind_hits)} detections"),
                 ("GhostBuster diff inside InocIT.exe",
                  f"{len(revealed)} hidden files revealed"),
                 ("signatures over revealed files",
                  ", ".join(sorted({hit.malware
                                    for hit in combined_hits})))])
    assert blind_hits == []
    assert len(revealed) >= 3
    assert any("HackerDefender" in hit.malware for hit in combined_hits)


def test_dilemma_other_horn(benchmark):
    """If the malware does NOT hide, the signatures catch it directly."""
    def run(__):
        machine = fresh_machine()
        ghost = HackerDefender()
        ghost._install_persistent(machine)   # dropped, never activated
        return SignatureScanner().on_demand_scan(machine)

    hits = bench_once(benchmark, setup=lambda: None, action=run)
    print_table("Section 5 — not hiding: the signatures win",
                ("path", "signature"),
                [(hit.path, hit.malware) for hit in hits])
    assert any("HackerDefender" in hit.malware for hit in hits)
