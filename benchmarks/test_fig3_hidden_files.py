"""E1 — Figure 3: GhostBuster hidden-file detection, 10 ghostware programs.

Regenerates the paper's table: for each file-hiding program, the set of
hidden files the inside-the-box diff reveals, with the paper's expected
counts ("1", "1", "3+", prefix-matched, "3+", "4", user-selected")
asserted as lower/exact bounds.
"""

from __future__ import annotations

import pytest

from repro.core import GhostBuster
from repro.ghostware import (AdvancedHideFolders, Aphex,
                             FileFolderProtector, HackerDefender,
                             HideFiles, HideFoldersXP, Mersting, ProBotSE,
                             Urbin, Vanquish)

from benchmarks.conftest import bench_once, fresh_machine, print_table

# (ghostware factory, paper row, expectation)
CASES = [
    (lambda: Urbin(), "Urbin",
     dict(exact=1, must_contain=["msvsres.dll"])),
    (lambda: Mersting(), "Mersting",
     dict(exact=1, must_contain=["kbddfl.dll"])),
    (lambda: Vanquish(), "Vanquish",
     dict(minimum=3, must_contain=["vanquish.exe", "vanquish.dll",
                                   "vanquish.log"])),
    (lambda: Aphex(), "Aphex",
     dict(minimum=1, must_contain=["~aphex.exe"])),
    (lambda: HackerDefender(), "Hacker Defender 1.0",
     dict(minimum=3, must_contain=["hxdef100.exe", "hxdefdrv.sys",
                                   "hxdef100.ini"])),
    (lambda: ProBotSE(), "ProBot SE",
     dict(exact=4, must_contain=[".exe", ".dll", ".sys"])),
    (lambda: HideFiles(hidden_paths=["\\Secret\\diary.txt"]),
     "Hide Files 3.3", dict(minimum=1, must_contain=["diary.txt"])),
    (lambda: HideFoldersXP(hidden_paths=["\\Secret"]),
     "Hide Folders XP", dict(minimum=1, must_contain=["\\secret"])),
    (lambda: AdvancedHideFolders(hidden_paths=["\\Secret\\diary.txt"]),
     "Advanced Hide Folders", dict(minimum=1, must_contain=["diary.txt"])),
    (lambda: FileFolderProtector(hidden_paths=["\\Secret\\diary.txt"]),
     "File & Folder Protector",
     dict(minimum=1, must_contain=["diary.txt"])),
]


def _run_one(make_ghost):
    machine = fresh_machine()
    machine.volume.create_directories("\\Secret")
    machine.volume.create_file("\\Secret\\diary.txt", b"dear diary")
    ghost = make_ghost()
    ghost.install(machine)
    report = GhostBuster(machine).inside_scan(resources=("files",))
    # Exclude the user-selected sentinel tree for exact-count programs.
    hidden = [finding.entry.path for finding in report.hidden_files()]
    return ghost, hidden


@pytest.mark.parametrize("make_ghost,label,expect",
                         CASES, ids=[case[1] for case in CASES])
def test_fig3_row(benchmark, make_ghost, label, expect):
    ghost, hidden = bench_once(
        benchmark, setup=lambda: make_ghost,
        action=lambda factory: _run_one(factory))
    own_hidden = [path for path in hidden
                  if not path.casefold().startswith("\\secret")] \
        if "exact" in expect else hidden
    print_table(f"Figure 3 row — {label}",
                ("hidden file",), [(path,) for path in hidden])
    if "exact" in expect:
        assert len(own_hidden) == expect["exact"], \
            f"{label}: paper reports exactly {expect['exact']}"
    if "minimum" in expect:
        assert len(hidden) >= expect["minimum"]
    joined = " ".join(path.casefold() for path in hidden)
    for token in expect["must_contain"]:
        assert token.casefold() in joined, f"{label} must hide {token}"


def test_fig3_uniform_detection(benchmark):
    """The figure's headline: one diff detects all six techniques."""
    def run(__):
        rows = []
        for make_ghost, label, __expect in CASES:
            ghost, hidden = _run_one(make_ghost)
            rows.append((label, ghost.technique, len(hidden)))
        return rows

    rows = bench_once(benchmark, setup=lambda: None, action=run, rounds=1)
    print_table("Figure 3 — detection across all interception techniques",
                ("ghostware", "technique", "hidden files detected"), rows)
    assert all(count >= 1 for __, __t, count in rows), \
        "every program must be detected by the same cross-view diff"
