"""E8 — Figures 2 & 5: the technique × detection-layer matrix.

The figures diagram *where* each ghostware intercepts.  This bench
builds one representative per technique and shows (a) which layer holds
the hook — via the mechanism-scanner baselines — and (b) that the
behaviour-based cross-view diff detects every one of them uniformly,
including the two classes (filter driver, DKOM, naming exploits) that no
hook scanner can see at all: the paper's coverage-gap argument.
"""

from __future__ import annotations

import pytest

from repro.core import GhostBuster
from repro.ghostware import (Aphex, Berbew, FuRootkit, HackerDefender,
                             HideFoldersXP, Mersting, NamingExploitGhost,
                             ProBotSE, Urbin, Vanquish)
from repro.winapi.hooks import PatchKind, scan_for_hooks

from benchmarks.conftest import bench_once, fresh_machine, print_table

FILE_TECHNIQUES = [
    ("1: IAT modification", lambda: Urbin()),
    ("2: in-memory code (call)", lambda: Vanquish()),
    ("3: kernel32 jmp detour", lambda: Aphex()),
    ("4: ntdll jmp detour", lambda: HackerDefender()),
    ("5: SSDT entry replacement", lambda: ProBotSE()),
    ("6: filter driver", lambda: HideFoldersXP(hidden_paths=["\\Secret"])),
    ("0: naming exploit (no hook)", lambda: NamingExploitGhost()),
]

PROCESS_TECHNIQUES = [
    ("IAT hook of NtQuerySystemInformation", lambda: Aphex()),
    ("jmp inside NtQuerySystemInformation (hxdef)",
     lambda: HackerDefender()),
    ("jmp inside NtQuerySystemInformation (Berbew)", lambda: Berbew()),
]


def _mechanism_view(machine):
    """What the hook-scanner baselines (ApiHookCheck/VICE) report."""
    user_hooks = scan_for_hooks(machine.user_processes())
    kinds = {report.kind for report in user_hooks}
    if machine.kernel.ssdt.hooked_entries():
        kinds.add(PatchKind.SSDT)
    if machine.io_manager.filters:
        kinds.add(PatchKind.FILTER_DRIVER)
    return kinds


def test_fig2_file_technique_matrix(benchmark):
    def run(__):
        rows = []
        for label, make_ghost in FILE_TECHNIQUES:
            machine = fresh_machine()
            machine.volume.create_directories("\\Secret")
            machine.volume.create_file("\\Secret\\x.txt", b"")
            make_ghost().install(machine)
            mechanisms = _mechanism_view(machine)
            report = GhostBuster(machine).inside_scan(resources=("files",))
            # Naming exploits need the raw outside/inside low-level view;
            # the inside diff covers them because Win32 != raw-MFT.
            rows.append((label,
                         ", ".join(sorted(kind.value
                                          for kind in mechanisms)) or
                         "(none visible)",
                         not report.is_clean))
        return rows

    rows = bench_once(benchmark, setup=lambda: None, action=run, rounds=1)
    print_table("Figure 2 — file-hiding techniques",
                ("technique", "mechanism scanner sees", "cross-view diff "
                 "detects"), rows)
    assert all(detected for __, __m, detected in rows), \
        "the diff must detect every technique uniformly"
    # The mechanism approach misses the hook-free ghost entirely:
    naming_row = [row for row in rows if row[0].startswith("0:")][0]
    assert naming_row[1] == "(none visible)"


def test_fig5_process_technique_matrix(benchmark):
    def run(__):
        rows = []
        for label, make_ghost in PROCESS_TECHNIQUES:
            machine = fresh_machine()
            make_ghost().install(machine)
            report = GhostBuster(machine).inside_scan(
                resources=("processes",))
            rows.append((label, not report.is_clean))
        # DKOM: no API hook anywhere, advanced mode required.
        machine = fresh_machine()
        fu = FuRootkit()
        fu.install(machine)
        victim = machine.start_process("\\Windows\\explorer.exe",
                                       name="unlinked.exe")
        fu.hide_process(machine, victim.pid)
        assert _mechanism_view(machine) == set(), \
            "DKOM is invisible to every hook scanner"
        advanced = GhostBuster(machine, advanced=True).inside_scan(
            resources=("processes",))
        rows.append(("DKOM unlink (FU)", not advanced.is_clean))
        return rows

    rows = bench_once(benchmark, setup=lambda: None, action=run, rounds=1)
    print_table("Figure 5 — process-hiding techniques",
                ("technique", "cross-view diff detects"), rows)
    assert all(detected for __, detected in rows)
