#!/usr/bin/env python3
"""Enterprise sweep: remotely scan a fleet of desktops.

The paper's pitch for the inside-the-box solution is that "corporate IT
organizations can remotely deploy the solution on a large number of
desktops without requiring user cooperation".  This example builds the
paper's 8 test-machine fleet, quietly infects three of them with
different ghostware, sweeps the fleet with the inside-the-box scan, and
prints a per-machine report with the simulated scan durations.

Run:  python examples/enterprise_sweep.py
"""

from repro import GhostBuster
from repro.core import check_mass_hiding
from repro.ghostware import Aphex, HackerDefender, ProBotSE
from repro.workloads import PAPER_MACHINES, build_machine


def sweep() -> None:
    infections = {
        "corp-desktop-2": HackerDefender,
        "home-1": Aphex,
        "laptop-1": ProBotSE,
    }

    print(f"{'machine':<18} {'hardware':<34} {'verdict':<10} "
          f"{'scan time':>10}  findings")
    print("-" * 100)

    compromised = []
    for profile in PAPER_MACHINES:
        machine = build_machine(profile, seed=11)
        ghost_cls = infections.get(profile.ident)
        if ghost_cls is not None:
            ghost_cls().install(machine)

        report = GhostBuster(machine, advanced=True).inside_scan()
        verdict = "CLEAN" if report.is_clean else "INFECTED"
        if not report.is_clean:
            compromised.append((machine, report))
        headline = ""
        if report.hidden_files():
            headline = report.hidden_files()[0].entry.path
        hardware = (f"{profile.cpu_mhz / 1000:.1f}GHz "
                    f"{profile.disk_used_gb}GB {profile.kind}")
        print(f"{profile.ident:<18} {hardware:<34} {verdict:<10} "
              f"{report.total_duration():>9.1f}s  {headline}")

    print("\n=== incident details ===")
    for machine, report in compromised:
        print(f"\n--- {machine.name} ---")
        print(report.summary())
        alert = check_mass_hiding(report)
        if alert:
            print(alert.describe())

    assert len(compromised) == 3, "exactly the three seeded infections"
    print("\nSweep complete: "
          f"{len(compromised)}/{len(PAPER_MACHINES)} machines compromised.")


if __name__ == "__main__":
    sweep()
