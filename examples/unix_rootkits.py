#!/usr/bin/env python3
"""Section 5 on Unix: LKM rootkits, trojanized ls, and the clean CD.

Reproduces the paper's Linux/FreeBSD experiments: install each rootkit
on its own box, run the inside ``ls`` scan, boot the clean CD, diff.
Also demonstrates the classic ``ls`` vs ``echo *`` check [B99] and why
it catches T0rnkit (a trojaned binary) but not an LKM rootkit (which
lies *below* the shell too).

Run:  python examples/unix_rootkits.py
"""

from repro.unixsim import (Darkside, Superkit, Synapsis, T0rnkit,
                           UnixMachine, ls_recursive, shell_glob,
                           unix_cross_view_scan)


def main() -> None:
    print("=== cross-view detection, per rootkit ===")
    for kit_cls in (Darkside, Superkit, Synapsis, T0rnkit):
        machine = UnixMachine(f"{kit_cls.__name__.lower()}-box",
                              flavor=getattr(kit_cls, "flavor", "linux"))
        machine.populate(150)
        kit = kit_cls()
        kit.install(machine)
        report = unix_cross_view_scan(machine, daemon_churn_files=3)
        print(f"\n{kit.name} ({machine.flavor}):")
        for path in report.hidden:
            print(f"  hidden: {path}")
        print(f"  false positives (daemon churn): "
              f"{report.false_positive_count}  <= 4 as in the paper")
        assert set(kit.hidden_paths) <= set(report.hidden)

    print("\n=== the classic check: ls vs echo * ===")
    torn_box = UnixMachine("torn-box")
    T0rnkit().install(torn_box)
    ls_view = ls_recursive(torn_box, "/usr/src")
    glob_view = shell_glob(torn_box, "/usr/src")
    print("trojaned ls sees .puta:", any(".puta" in p for p in ls_view))
    print("shell glob sees .puta: ", any(".puta" in p for p in glob_view))

    lkm_box = UnixMachine("lkm-box")
    Superkit().install(lkm_box)
    ls_view = ls_recursive(lkm_box, "/usr/share")
    glob_view = shell_glob(lkm_box, "/usr/share")
    print("\nagainst an LKM rootkit the same check fails:")
    print("ls sees .superkit:        ",
          any(".superkit" in p for p in ls_view))
    print("shell glob sees .superkit:",
          any(".superkit" in p for p in glob_view))
    print("\n...because the LKM lies below both — only the clean-CD "
          "cross-view diff works for every class.")


if __name__ == "__main__":
    main()
