#!/usr/bin/env python3
"""Quickstart: detect and remove Hacker Defender with GhostBuster.

Builds a simulated Windows machine, infects it with the paper's
flagship rootkit, shows what the (lied-to) Win32 view and the raw MFT
view each report, runs the inside-the-box cross-view diff, and finally
walks the Section-6 removal story: delete the hidden ASEP hooks, reboot,
delete the now-visible files.

Run:  python examples/quickstart.py
"""

from repro import GhostBuster, Machine, disinfect
from repro.ghostware import HackerDefender
from repro.ntfs import parse_volume


def win32_listing(machine, directory):
    """What an infected process sees in one directory."""
    probe = machine.process_by_name("probe.exe") or \
        machine.start_process("\\Windows\\explorer.exe", name="probe.exe")
    handle, entry = probe.call("kernel32", "FindFirstFile", directory)
    names = []
    while entry is not None:
        names.append(entry.name)
        entry = probe.call("kernel32", "FindNextFile", handle)
    return names


def main() -> None:
    print("=== 1. Build and boot a machine ===")
    machine = Machine("victim-pc", disk_mb=512)
    machine.boot()
    print(f"booted {machine.name}: "
          f"{len(machine.user_processes())} processes running")

    print("\n=== 2. Infect with Hacker Defender 1.0 ===")
    HackerDefender().install(machine)
    print("installed: hxdef100.exe + hxdefdrv.sys + hxdef100.ini,")
    print("           two hidden service ASEP hooks, NtDll detours")

    print("\n=== 3. The lie vs the truth ===")
    print("Win32 view of \\Windows:", win32_listing(machine, "\\Windows"))
    raw_names = [entry.name for entry in parse_volume(machine.disk)
                 if entry.path.startswith("\\Windows\\") and
                 not entry.is_directory and "\\" not in entry.path[9:]]
    print("raw MFT view of \\Windows:", raw_names)

    print("\n=== 4. GhostBuster inside-the-box scan ===")
    ghostbuster = GhostBuster(machine, advanced=True)
    report = ghostbuster.detect()
    print(report.summary())

    print("\n=== 5. Removal: delete hooks, reboot, delete files ===")
    log = disinfect(machine, report)
    print(log.summary())

    print("\n=== 6. Verify ===")
    final = GhostBuster(machine, advanced=True).detect()
    print(final.summary())
    assert final.is_clean, "machine should be clean after disinfection"
    print("\nDone: the machine is clean.")


if __name__ == "__main__":
    main()
