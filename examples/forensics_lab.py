#!/usr/bin/env python3
"""A forensics lab session: every tool against one messy machine.

One machine, four different stealth postures at once:

* a hidden-attribute file (the intro's "simplest" trick — fools a plain
  ``dir`` but not the API);
* Hacker Defender (API interception — fools everything user-side);
* an ADS payload (the future-work class — no enumeration API exists);
* a kernel registry-callback hook (Section 3's alternative mechanism).

The session walks the admin toolbox — ``dir``, ``tasklist``, RegEdit,
AskStrider, ApiHookCheck — showing what each can and cannot see, then
lets GhostBuster's cross-view diffs and the ADS scanner settle it.

Run:  python examples/forensics_lab.py
"""

from repro import GhostBuster, Machine
from repro.core import executable_streams, scan_alternate_streams
from repro.ghostware import AdsGhost, CmCallbackGhost, HackerDefender
from repro.ntfs.constants import DOS_FLAG_HIDDEN, DOS_FLAG_SYSTEM
from repro.tools import api_hook_check, ask_strider, dir_s_b, tasklist


def main() -> None:
    machine = Machine("lab-pc", disk_mb=512)
    machine.boot()

    # Posture 1: the attribute trick.
    machine.volume.create_file("\\Windows\\stash.db", b"loot",
                               dos_flags=DOS_FLAG_HIDDEN | DOS_FLAG_SYSTEM)
    # Postures 2-4: real ghostware.
    HackerDefender().install(machine)
    AdsGhost().install(machine)
    CmCallbackGhost().install(machine)

    print("=== what a plain `dir /s /b` sees ===")
    naive = dir_s_b(machine, "\\Windows", show_hidden=False)
    print("stash.db listed:", any("stash.db" in line for line in naive))
    thorough = dir_s_b(machine, "\\Windows", show_hidden=True)
    print("stash.db with /a:", any("stash.db" in line
                                   for line in thorough))
    print("hxdef100.exe with /a:",
          any("hxdef100" in line for line in thorough),
          "(interception beats any dir flag)")

    print("\n=== tasklist ===")
    names = {name for __, name in tasklist(machine)}
    print("hxdef100.exe listed:", "hxdef100.exe" in names)

    print("\n=== AskStrider ===")
    strider = ask_strider(machine)
    print("suspicious drivers:",
          strider.suspicious_drivers(known_good=["cmfilt.sys"]))

    print("\n=== ApiHookCheck (mechanism view) ===")
    hooks = api_hook_check(machine)
    print(f"user-mode hooks: {len(hooks.user_hooks)}; "
          f"SSDT hooks: {len(hooks.ssdt_hooks)}")
    print("note: the ADS ghost and the CM callback installed nothing "
          "this scanner can see")

    print("\n=== GhostBuster cross-view diffs ===")
    report = GhostBuster(machine, advanced=True).detect()
    print(report.summary())
    assert not report.is_clean

    print("\n=== ADS scan (the future-work gap) ===")
    streams = scan_alternate_streams(machine)
    for entry in executable_streams(streams):
        print("  executable stream:", entry.describe())
    assert executable_streams(streams)

    print("\nVerdict: four stealth postures, four different detectors — "
          "one cross-view principle.")


if __name__ == "__main__":
    main()
