#!/usr/bin/env python3
"""Hunting a commercial key-logger and a file hider.

Two of the paper's ghostware classes have "legitimate" commercial faces:
key-loggers that hide their keystroke logs, and file hiders that hide
whatever the user selects.  Both use kernel-level interception (SSDT
hooks / filter drivers), so no per-process check will ever spot them —
but the cross-view diff does.

Run:  python examples/keylogger_hunt.py
"""

from repro import GhostBuster, Machine
from repro.core import check_mass_hiding
from repro.ghostware import FileFolderProtector, ProBotSE


def main() -> None:
    machine = Machine("family-pc", disk_mb=512)
    machine.boot()

    print("=== the key-logger ===")
    probot = ProBotSE(seed=777)
    probot.install(machine)
    probot.log_keystrokes(machine, "user: mom  pass: hunter2\n")
    probot.log_keystrokes(machine, "bank pin: 0000\n")
    print(f"ProBot SE installed; logging keystrokes to {probot.log_path}")

    report = GhostBuster(machine, advanced=True).inside_scan()
    print(report.summary())

    hidden_paths = {finding.entry.path for finding in report.hidden_files()}
    assert probot.log_path in hidden_paths, "the hidden log is exposed"
    log_content = machine.volume.read_file(probot.log_path).decode()
    print(f"\nrecovered hidden keystroke log ({probot.log_path}):")
    for line in log_content.splitlines():
        print(f"   | {line}")

    hooks = {finding.entry.name for finding in report.hidden_hooks()}
    print(f"\nhidden auto-start hooks to remove: {sorted(hooks)}")

    print("\n=== the file hider, turned against the user ===")
    # An attacker uses a commercial hider to conceal a staging area.
    machine.volume.create_directories("\\ProgramData\\staging")
    for index in range(30):
        machine.volume.create_file(
            f"\\ProgramData\\staging\\exfil{index:03d}.bin", b"loot")
    hider = FileFolderProtector(hidden_paths=["\\ProgramData\\staging"])
    hider.install(machine)

    report2 = GhostBuster(machine).inside_scan(resources=("files",))
    alert = check_mass_hiding(report2)
    assert alert is not None
    print(alert.describe())
    print("\nVerdict: both tools detected by the same cross-view diff, "
          "despite using\nSSDT hooks and a filter driver respectively.")


if __name__ == "__main__":
    main()
