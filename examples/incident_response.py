#!/usr/bin/env python3
"""Incident response: when the inside-the-box scan isn't enough.

A sufficiently privileged ghostware strain can interfere with the
low-level scan itself (the paper's Section-2 caveat): this machine runs
"DeepGhost", which detours NtDll *and* scrubs its MFT records out of the
kernel's raw-disk reads.  The daily inside-the-box scan comes back clean
— so the responder escalates to the outside-the-box workflow: crash-dump
the kernel, boot the WinPE CD, scan the physical disk from the clean OS,
and filter the reboot-window noise.

Run:  python examples/incident_response.py
"""

from repro import GhostBuster, Machine
from repro.ghostware import LowLevelInterferenceGhost
from repro.workloads import attach_standard_services


def main() -> None:
    machine = Machine("suspect-laptop", disk_mb=512)
    machine.boot()
    attach_standard_services(machine)   # AV + System Restore churn

    ghost = LowLevelInterferenceGhost()
    ghost.install(machine)
    print("infected with DeepGhost (NtDll detours + raw-read scrubbing)\n")

    print("=== step 1: the daily inside-the-box scan ===")
    inside = GhostBuster(machine, advanced=True).inside_scan()
    print(inside.summary())
    assert inside.is_clean, "DeepGhost defeats the inside-the-box scan"
    print(">>> clean report, but the user still reports symptoms...\n")

    print("=== step 2: escalate to the outside-the-box workflow ===")
    ghostbuster = GhostBuster(machine, advanced=True)
    outside = ghostbuster.outside_scan(background_gap=120)
    print(outside.summary())

    hidden = {finding.entry.path for finding in outside.hidden_files()}
    assert "\\Windows\\deepghost.exe" in hidden, \
        "the clean OS reads the physical disk below the compromised kernel"

    print("\n=== step 3: triage the noise ===")
    for finding in outside.noise():
        print(f"  benign churn: {finding.entry.path} "
              f"({finding.noise_reason})")
    print(f"\n{len(outside.noise())} reboot-window false positives "
          "classified automatically; "
          f"{len(outside.hidden_files())} genuine hidden artifacts.")

    print("\nVerdict: INFECTED — DeepGhost exposed by the clean-boot scan.")


if __name__ == "__main__":
    main()
