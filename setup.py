"""Legacy setup shim.

The execution environment has no network access and no ``wheel`` package,
so modern PEP-517 editable installs (which build an editable wheel) fail.
Keeping a setup.py and omitting ``[build-system]`` from pyproject.toml lets
``pip install -e .`` fall back to the classic ``setup.py develop`` path.
"""

from setuptools import setup

setup()
