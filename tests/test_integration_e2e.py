"""End-to-end integration scenarios crossing every subsystem."""

import pytest

from repro.core import GhostBuster, disinfect
from repro.core.injection_ext import injected_scan
from repro.ghostware import (Aphex, Berbew, FuRootkit, HackerDefender,
                             HideFoldersXP, Mersting, NamingExploitGhost,
                             ProBotSE, RegistryNamingGhost, Urbin, Vanquish)
from repro.workloads import (SignatureScanner, attach_standard_services,
                             populate_machine)


class TestFullKillChain:
    """The paper's conclusion narrative, in one test per stage."""

    @pytest.fixture
    def infected(self, machine):
        populate_machine(machine, file_count=120, registry_scale=400)
        machine.boot()
        HackerDefender().install(machine)
        return machine

    def test_stage1_process_detection_within_seconds(self, infected):
        gb = GhostBuster(infected)
        before = infected.clock.now()
        report = gb.inside_scan(resources=("processes", "modules"))
        elapsed = infected.clock.now() - before
        assert any(finding.entry.name == "hxdef100.exe"
                   for finding in report.hidden_processes())
        assert elapsed <= 5.0   # "within 5 seconds"

    def test_stage2_hook_location_within_a_minute(self, infected):
        gb = GhostBuster(infected)
        before = infected.clock.now()
        report = gb.inside_scan(resources=("registry",))
        elapsed = infected.clock.now() - before
        assert len(report.hidden_hooks()) == 2
        assert elapsed <= 60.0   # "within one minute"

    def test_stage3_removal_and_reboot(self, infected):
        log = disinfect(infected)
        assert log.verified_clean
        assert infected.process_by_name("hxdef100.exe") is None


class TestEverythingAtOnce:
    def test_twelve_ghost_machine(self, machine):
        """All Windows corpus members coexist and are all detected."""
        populate_machine(machine, file_count=100, registry_scale=400)
        machine.boot()
        ghosts = [HackerDefender(), Urbin(), Mersting(), Vanquish(),
                  Aphex(), ProBotSE(), Berbew(), NamingExploitGhost(),
                  RegistryNamingGhost()]
        for ghost in ghosts:
            ghost.install(machine)
        fu = FuRootkit()
        fu.install(machine)
        victim = machine.start_process("\\Windows\\explorer.exe",
                                       name="fu_victim.exe")
        fu.hide_process(machine, victim.pid)
        hider = HideFoldersXP(hidden_paths=["\\Temp"])
        hider.install(machine)

        inside = GhostBuster(machine, advanced=True).inside_scan()
        hidden_files = {finding.entry.path.casefold()
                        for finding in inside.hidden_files()}
        assert "\\windows\\hxdef100.exe" in hidden_files
        assert "\\windows\\system32\\msvsres.dll" in hidden_files
        assert "\\windows\\system32\\kbddfl.dll" in hidden_files
        assert "\\windows\\vanquish.exe" in hidden_files

        hidden_processes = {finding.entry.name for finding in
                            inside.hidden_processes()}
        assert {"hxdef100.exe", "fu_victim.exe"} <= hidden_processes

        # The outside scan (raw mode) additionally exposes naming ghosts.
        outside = GhostBuster(machine, advanced=True).outside_scan(
            win32_naming=False)
        outside_files = {finding.entry.path.casefold()
                         for finding in outside.hidden_files()}
        assert any("payload.exe." in path for path in outside_files)

    def test_survives_many_reboots(self, booted):
        HackerDefender().install(booted)
        for __ in range(3):
            booted.reboot()
        report = GhostBuster(booted).inside_scan(resources=("files",))
        assert not report.is_clean


class TestCombinationScenarios:
    def test_fu_plus_hacker_defender_needs_advanced(self, booted):
        """FU hides hxdef's process: the list-based low scan loses it."""
        HackerDefender().install(booted)
        fu = FuRootkit()
        fu.install(booted)
        hxdef = booted.process_by_name("hxdef100.exe")
        fu.hide_process(booted, hxdef.pid)
        standard = GhostBuster(booted, advanced=False).inside_scan(
            resources=("processes",))
        assert all(finding.entry.name != "hxdef100.exe"
                   for finding in standard.hidden_processes())
        advanced = GhostBuster(booted, advanced=True).inside_scan(
            resources=("processes",))
        assert any(finding.entry.name == "hxdef100.exe"
                   for finding in advanced.hidden_processes())

    def test_av_plus_ghostbuster_dilemma(self, booted):
        """Either the signatures fire or the diff does — never neither."""
        ghost = HackerDefender()
        ghost.install(booted)
        scanner = SignatureScanner()
        signature_hits = scanner.on_demand_scan(booted)
        diff_report = GhostBuster(booted).inside_scan(resources=("files",))
        assert signature_hits or not diff_report.is_clean

    def test_injected_scan_with_noise_services(self, booted):
        attach_standard_services(booted)
        HackerDefender().install(booted)
        result = injected_scan(booted, resources=("files",))
        assert not result.is_clean

    def test_outside_scan_with_everything(self, booted):
        attach_standard_services(booted, with_ccm=True)
        Urbin().install(booted)
        report = GhostBuster(booted).outside_scan(
            resources=("files", "registry"), background_gap=60)
        files = {finding.entry.path.casefold()
                 for finding in report.hidden_files()}
        assert "\\windows\\system32\\msvsres.dll" in files
        assert len(report.noise()) == 7   # the CCM-machine FP count
