"""Telemetry through the scan stack: spans, audit attribution, health.

The acceptance scenario from the issue: a Hacker Defender detection run
with tracing enabled must produce a span tree and an audit log that
names the specific interposed API(s) responsible for each hidden file,
key, and process — and the metrics snapshot must show nonzero cache hit
counters after a warm scan.
"""

import json

import pytest

from repro.core.ghostbuster import GhostBuster
from repro.core.risboot import RisServer
from repro.machine import Machine
from repro.ghostware import (FuRootkit, HackerDefender, HideFoldersXP,
                             Vanquish)
from repro.registry.hive_parser import clear_hive_cache
from repro.telemetry import Telemetry
from repro.telemetry.audit import NO_INTERPOSITION
from repro.telemetry.health import load_jsonl
from repro.telemetry.metrics import global_metrics, reset_global_metrics


@pytest.fixture(autouse=True)
def fresh_metrics():
    reset_global_metrics()
    yield
    reset_global_metrics()


def booted_machine(name, **kwargs):
    machine = Machine(name, disk_mb=256, max_records=8192, **kwargs)
    machine.boot()
    return machine


def traced_scan(machine, advanced=True):
    telemetry = Telemetry.enabled(clock=machine.clock)
    ghostbuster = GhostBuster(machine, advanced=advanced,
                              telemetry=telemetry)
    report = ghostbuster.inside_scan()
    return report, telemetry


# -- acceptance: Hacker Defender with tracing ---------------------------------


class TestHackerDefenderAcceptance:

    def test_span_tree_and_audit_name_responsible_apis(self):
        machine = booted_machine("hxdef-victim")
        HackerDefender().install(machine)
        report, telemetry = traced_scan(machine)
        assert not report.is_clean

        # A full span tree: root → per-layer scans → parse children.
        rendered = telemetry.tracer.render()
        assert "ghostbuster.inside_scan" in rendered
        for name in ("scan.files.high-level", "scan.files.low-level",
                     "mft.parse", "scan.registry.low-level",
                     "diff.files", "diff.registry", "diff.processes"):
            assert name in rendered, f"span {name} missing from tree"
        (root,) = telemetry.tracer.roots()
        assert root.name == "ghostbuster.inside_scan"
        assert all(span.wall_end is not None
                   for span in telemetry.tracer.spans())

        # Every hidden file, key, and process is attributed to the
        # specific ntdll detours Hacker Defender installed.
        attributions = telemetry.attribute(report)
        by_resource = {}
        for attribution in attributions:
            key = attribution.finding.resource_type.value
            by_resource.setdefault(key, []).append(attribution)
        assert set(by_resource) >= {"file", "registry", "process"}
        for attribution in by_resource["file"]:
            assert "ntdll!NtQueryDirectoryFile" in attribution.apis
        for attribution in by_resource["registry"]:
            assert set(attribution.apis) & {"ntdll!NtEnumerateKey",
                                            "ntdll!NtEnumerateValueKey",
                                            "ntdll!NtQueryValueKey"}
        for attribution in by_resource["process"]:
            assert "ntdll!NtQuerySystemInformation" in attribution.apis
        owners = telemetry.audit.owners()
        assert any("Hacker Defender" in owner for owner in owners)

    def test_warm_scan_shows_cache_hits(self):
        machine = booted_machine("warm-victim")
        HackerDefender().install(machine)
        clear_hive_cache()
        machine.disk.raw_cache.clear()
        ghostbuster = GhostBuster(machine)
        ghostbuster.inside_scan()     # cold: builds the caches
        reset_global_metrics()
        ghostbuster.inside_scan()     # warm: every parse memoized
        counters = global_metrics().snapshot()["counters"]
        assert counters.get("mft.parse.cache_hit", 0) > 0
        assert counters.get("hive.parse.memo_hit", 0) > 0
        assert counters.get("mft.parse.cache_miss", 0) == 0
        assert counters.get("hive.parse.memo_miss", 0) == 0

    def test_cold_scan_counts_misses_exactly(self):
        machine = booted_machine("cold-victim")
        clear_hive_cache()
        machine.disk.raw_cache.clear()
        reset_global_metrics()
        GhostBuster(machine).inside_scan(resources=("registry",))
        counters = global_metrics().snapshot()["counters"]
        # One raw reader: one namespace build, one parse per hive file.
        assert counters["mft.parse.cache_miss"] == 1
        assert counters["hive.parse.memo_miss"] == 3
        assert counters["scan.asep.enumerated"] >= 0


# -- audit completeness across interception families --------------------------


class TestAuditCompleteness:

    def test_vanquish_inline_layer_and_module_dkom_contrast(self):
        machine = booted_machine("vanquish-victim")
        Vanquish().install(machine)
        report, telemetry = traced_scan(machine)
        apis = telemetry.audit.interposed_apis()
        assert "kernel32!FindFirstFile" in apis
        assert "advapi32!RegEnumValue" in apis
        events = telemetry.audit.events
        # Vanquish overwrites in-memory API code (INLINE_CALL), so the
        # audit places every firing at the inline layer.
        assert events
        assert all(event.layer == "inline" for event in events)
        assert all(event.kind == "inline_call" for event in events)
        # Vanquish blanks PEB module paths in memory — no API interposed
        # on the module path, so module findings carry the DKOM label.
        module_attributions = [
            attribution for attribution in telemetry.attribute(report)
            if attribution.finding.resource_type.value == "module"]
        assert module_attributions
        for attribution in module_attributions:
            assert attribution.apis == []
            assert NO_INTERPOSITION in attribution.describe()

    def test_urbin_iat_layer_recorded(self):
        from repro.ghostware import Urbin

        machine = booted_machine("urbin-victim")
        Urbin().install(machine)
        report, telemetry = traced_scan(machine, advanced=False)
        assert not report.is_clean
        iat_events = [event for event in telemetry.audit.events
                      if event.layer == "iat"]
        assert iat_events
        assert all(event.owner == "Urbin" for event in iat_events)
        assert "kernel32!FindFirstFile" in \
            telemetry.audit.interposed_apis(resource="file")

    def test_fu_dkom_yields_no_interposition_events(self):
        machine = booted_machine("fu-victim")
        fu = FuRootkit()
        fu.install(machine)
        victim = machine.start_process("\\Windows\\explorer.exe",
                                       name="victim.exe")
        fu.hide_process(machine, victim.pid)
        report, telemetry = traced_scan(machine, advanced=True)
        hidden_processes = [
            finding for finding in report.findings
            if finding.resource_type.value == "process"
            and not finding.is_noise]
        assert hidden_processes   # the thread-table walk recovers it
        # DKOM interposes nothing: the audit records no process-resource
        # interception, and the attribution says exactly that.
        assert telemetry.audit.interposed_apis(resource="process") == []
        for attribution in telemetry.attribute(report):
            if attribution.finding in hidden_processes:
                assert attribution.apis == []

    def test_filter_driver_layer_recorded(self):
        machine = booted_machine("hfxp-victim")
        machine.volume.create_directories("\\Temp")
        machine.volume.create_file("\\Temp\\secret.txt", b"s")
        HideFoldersXP(hidden_paths=["\\Temp"]).install(machine)
        report, telemetry = traced_scan(machine, advanced=False)
        assert not report.is_clean
        events = telemetry.audit.events
        filtered = [event for event in events
                    if event.layer == "filter-driver"]
        assert filtered
        assert any("entries" in event.detail for event in filtered)
        assert telemetry.audit.interposed_apis(resource="file") == \
            ["IRP:enumerate_directory"]


# -- fleet health over the parallel sweep -------------------------------------


class TestFleetHealth:

    def make_fleet(self, size=4, infected=(1,)):
        fleet = []
        for index in range(size):
            machine = booted_machine(f"client-{index}")
            if index in infected:
                HackerDefender().install(machine)
            fleet.append(machine)
        return fleet

    def test_parallel_sweep_confines_spans_per_machine(self):
        fleet = self.make_fleet(size=4)
        result = RisServer().sweep(fleet, max_workers=4,
                                   collect_telemetry=True)
        health = result.health
        assert health is not None
        assert len(health.machines) == 4
        for machine_health in health.machines:
            spans = machine_health.spans
            assert spans, machine_health.machine
            roots = [span for span in spans
                     if span["parent_id"] is None]
            assert len(roots) == 1
            assert roots[0]["name"] == "ris.netboot_scan"
            # every span in this machine's tree names this machine or
            # is a child of its root — no cross-thread contamination
            assert roots[0]["attrs"]["machine"] == machine_health.machine
            ids = {span["span_id"] for span in spans}
            for span in spans:
                if span["parent_id"] is not None:
                    assert span["parent_id"] in ids

    def test_findings_match_serial_and_health_flags_infected(self):
        serial_fleet = self.make_fleet(size=4)
        parallel_fleet = self.make_fleet(size=4)
        server = RisServer()
        serial = server.sweep(serial_fleet, max_workers=1)
        parallel = server.sweep(parallel_fleet, max_workers=4,
                                collect_telemetry=True)
        assert serial.infected_machines == parallel.infected_machines
        assert parallel.health.infected() == parallel.infected_machines
        infected = parallel.health.machine("client-1")
        assert infected.status == "INFECTED"
        assert infected.interposed_apis
        clean = parallel.health.machine("client-0")
        assert clean.status == "clean"
        assert clean.audit_events == []

    def test_error_taxonomy_and_slowest(self):
        fleet = self.make_fleet(size=3, infected=())

        class Exploding:
            name = "boom-client"
            clock = fleet[0].clock

        server = RisServer()

        original = server.network_boot_scan

        def failing(machine, **kwargs):
            if machine.name == "client-2":
                raise RuntimeError("PXE timeout")
            return original(machine, **kwargs)

        server.network_boot_scan = failing
        result = server.sweep(fleet, max_workers=2,
                              collect_telemetry=True)
        assert result.errors == {"client-2": "RuntimeError: PXE timeout"}
        taxonomy = result.health.error_taxonomy()
        assert taxonomy == {"RuntimeError": 1}
        assert result.health.machine("client-2").status == "ERROR"
        slowest = result.health.slowest(count=2)
        assert len(slowest) == 2
        assert slowest[0][1] >= slowest[1][1]

    def test_machine_seconds_histogram_observed(self):
        fleet = self.make_fleet(size=2, infected=())
        RisServer().sweep(fleet, max_workers=2, collect_telemetry=True)
        histograms = global_metrics().snapshot()["histograms"]
        assert histograms["ris.sweep.machine_seconds"]["count"] == 2

    def test_jsonl_roundtrip(self, tmp_path):
        fleet = self.make_fleet(size=2)
        result = RisServer().sweep(fleet, max_workers=2,
                                   collect_telemetry=True)
        path = tmp_path / "sweep.jsonl"
        result.health.write_jsonl(path)
        records = load_jsonl(path)
        assert len(records["machine"]) == 2
        assert records["sweep"][0]["machines"] == 2
        assert records["span"]
        assert records["audit"]   # client-1 is infected
        assert "counters" in records["metrics"][0]
        for line in path.read_text().splitlines():
            json.loads(line)   # every line is standalone JSON

    def test_truncated_jsonl_line_skipped_with_warning(self, tmp_path):
        # A writer that died mid-record leaves a torn final line; the
        # loader must keep every intact record and warn, not crash.
        fleet = self.make_fleet(size=2)
        result = RisServer().sweep(fleet, max_workers=1,
                                   collect_telemetry=True)
        path = tmp_path / "sweep.jsonl"
        result.health.write_jsonl(path)
        intact = load_jsonl(path)

        lines = path.read_text().splitlines()
        lines.insert(1, '{"type": "machine", "mach')   # torn record
        path.write_text("\n".join(lines) + "\n")

        with pytest.warns(UserWarning, match="malformed telemetry"):
            torn = load_jsonl(path)
        assert len(torn["machine"]) == len(intact["machine"])
        assert torn["sweep"] == intact["sweep"]

    def test_sweep_without_telemetry_has_no_health(self):
        fleet = self.make_fleet(size=2, infected=())
        result = RisServer().sweep(fleet, max_workers=2)
        assert result.health is None


# -- scan-level counters ------------------------------------------------------


class TestScanCounters:

    def test_enumeration_and_diff_counters(self):
        machine = booted_machine("counter-victim")
        HackerDefender().install(machine)
        reset_global_metrics()
        GhostBuster(machine).inside_scan()
        counters = global_metrics().snapshot()["counters"]
        assert counters["scan.files.enumerated"] > 0
        assert counters["scan.processes.enumerated"] > 0
        assert counters["scan.modules.enumerated"] > 0
        assert counters["diff.hidden.found"] >= 6   # 3 files, 2 keys, 1 proc
