"""Tests for machine profiles, populations, background services,
and the signature scanner."""

import pytest

from repro.core import GhostBuster
from repro.workloads import (PAPER_MACHINES, SignatureScanner,
                             attach_standard_services, build_machine,
                             populate_machine)
from repro.workloads.background import CcmService
from repro.workloads.machines import SMALL_MACHINES, WORKSTATION


class TestProfiles:
    def test_eight_machines(self):
        assert len(PAPER_MACHINES) == 8
        assert len(SMALL_MACHINES) == 7

    def test_paper_hardware_spread(self):
        small_cpus = [profile.cpu_mhz for profile in SMALL_MACHINES]
        assert min(small_cpus) == 550
        assert max(small_cpus) == 2200
        small_disks = [profile.disk_used_gb for profile in SMALL_MACHINES]
        assert min(small_disks) == 5
        assert max(small_disks) == 34
        assert WORKSTATION.disk_used_gb == 95
        assert WORKSTATION.cpu_mhz == 3000

    def test_entity_scale_consistency(self):
        profile = PAPER_MACHINES[0]
        assert profile.entity_scale * profile.actual_files == \
            pytest.approx(profile.virtual_files)

    def test_build_machine_boots_and_populates(self):
        machine = build_machine(PAPER_MACHINES[3], seed=5)
        assert machine.powered_on
        assert machine.volume.file_count() >= PAPER_MACHINES[3].actual_files
        assert len(machine.user_processes()) >= \
            PAPER_MACHINES[3].process_count

    def test_population_deterministic(self):
        first = build_machine(PAPER_MACHINES[3], seed=9, boot=False)
        second = build_machine(PAPER_MACHINES[3], seed=9, boot=False)
        paths_a = {stat.path for stat in first.volume.walk()}
        paths_b = {stat.path for stat in second.volume.walk()}
        assert paths_a == paths_b

    def test_population_seed_changes_layout(self):
        first = build_machine(PAPER_MACHINES[3], seed=1, boot=False)
        second = build_machine(PAPER_MACHINES[3], seed=2, boot=False)
        paths_a = {stat.path for stat in first.volume.walk()}
        paths_b = {stat.path for stat in second.volume.walk()}
        assert paths_a != paths_b


class TestPopulation:
    def test_stats_reported(self, machine):
        stats = populate_machine(machine, file_count=120,
                                 registry_scale=500)
        assert stats.files_created == 120
        assert stats.registry_values > 10
        assert stats.hive_bytes > 0

    def test_populated_machine_scans_clean(self, machine):
        populate_machine(machine, file_count=150, registry_scale=500)
        machine.boot()
        report = GhostBuster(machine, advanced=True).inside_scan()
        assert report.is_clean


class TestBackgroundServices:
    def test_default_pair_two_files_per_window(self, booted):
        attach_standard_services(booted)
        before = booted.volume.file_count()
        booted.run_background(60)
        booted.shutdown()
        assert booted.volume.file_count() - before == 2

    def test_ccm_machine_seven_files(self, booted):
        attach_standard_services(booted, with_ccm=True)
        before = booted.volume.file_count()
        booted.run_background(60)
        booted.shutdown()
        assert booted.volume.file_count() - before == 7

    def test_disabling_ccm_restores_baseline(self, booted):
        services = attach_standard_services(booted, with_ccm=True)
        ccm = next(service for service in services
                   if isinstance(service, CcmService))
        ccm.enabled = False
        before = booted.volume.file_count()
        booted.run_background(60)
        booted.shutdown()
        assert booted.volume.file_count() - before == 2

    def test_run_background_requires_power(self, machine):
        from repro.errors import MachineStateError
        with pytest.raises(MachineStateError):
            machine.run_background(10)


class TestSignatureScanner:
    def test_finds_planted_malware_file(self, booted):
        booted.volume.create_file("\\Temp\\dropper.exe", b"MZberbew junk")
        hits = SignatureScanner().on_demand_scan(booted)
        assert any(hit.malware == "Backdoor/Berbew" for hit in hits)

    def test_clean_machine_no_hits(self, booted):
        assert SignatureScanner().on_demand_scan(booted) == []

    def test_scanner_process_created_once(self, booted):
        scanner = SignatureScanner()
        first = scanner.ensure_process(booted)
        second = scanner.ensure_process(booted)
        assert first is second
