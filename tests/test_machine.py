"""Tests for Machine boot semantics, ASEP execution, and power cycling."""

import pytest

from repro.errors import MachineStateError
from repro.machine import APPINIT_KEY, Machine, RUN_KEY, RUNONCE_KEY
from repro.winapi.services import TYPE_DRIVER, TYPE_SERVICE


class TestPower:
    def test_double_boot_rejected(self, booted):
        with pytest.raises(MachineStateError):
            booted.boot()

    def test_shutdown_when_off_rejected(self, machine):
        with pytest.raises(MachineStateError):
            machine.shutdown()

    def test_start_process_requires_power(self, machine):
        with pytest.raises(MachineStateError):
            machine.start_process("\\Windows\\explorer.exe")

    def test_boot_starts_system_processes(self, booted):
        names = {process.name for process in booted.user_processes()}
        assert {"System", "winlogon.exe", "explorer.exe"} <= names

    def test_reboot_resets_kernel(self, booted):
        old_kernel = booted.kernel
        booted.reboot()
        assert booted.kernel is not old_kernel

    def test_clock_advances_across_boot(self, machine):
        machine.boot()
        assert machine.clock.now() > 0


class TestAsepExecution:
    def test_service_starts_on_boot(self, machine):
        machine.volume.create_file("\\svc.exe", b"MZ")
        started = []
        machine.register_program("\\svc.exe",
                                 lambda mach, proc: started.append(proc.name))
        key = "HKLM\\SYSTEM\\CurrentControlSet\\Services\\TestSvc"
        machine.registry.create_key(key)
        machine.registry.set_value(key, "ImagePath", "\\svc.exe")
        machine.registry.set_value(key, "Type", TYPE_SERVICE)
        machine.registry.set_value(key, "Start", 2)
        machine.boot()
        assert started == ["svc.exe"]

    def test_driver_loads_on_boot(self, machine):
        machine.volume.create_file("\\drv.sys", b"MZ")
        key = "HKLM\\SYSTEM\\CurrentControlSet\\Services\\TestDrv"
        machine.registry.create_key(key)
        machine.registry.set_value(key, "ImagePath", "\\drv.sys")
        machine.registry.set_value(key, "Type", TYPE_DRIVER)
        machine.registry.set_value(key, "Start", 2)
        machine.boot()
        assert "drv.sys" in machine.kernel.drivers()

    def test_missing_binary_is_inert(self, machine):
        key = "HKLM\\SYSTEM\\CurrentControlSet\\Services\\Ghost"
        machine.registry.create_key(key)
        machine.registry.set_value(key, "ImagePath", "\\gone.exe")
        machine.registry.set_value(key, "Type", TYPE_SERVICE)
        machine.registry.set_value(key, "Start", 2)
        machine.boot()   # must not raise
        assert machine.process_by_name("gone.exe") is None

    def test_disabled_service_not_started(self, machine):
        machine.volume.create_file("\\svc.exe", b"MZ")
        key = "HKLM\\SYSTEM\\CurrentControlSet\\Services\\Off"
        machine.registry.create_key(key)
        machine.registry.set_value(key, "ImagePath", "\\svc.exe")
        machine.registry.set_value(key, "Type", TYPE_SERVICE)
        machine.registry.set_value(key, "Start", 4)
        machine.boot()
        assert machine.process_by_name("svc.exe") is None

    def test_run_key_starts_processes(self, machine):
        machine.volume.create_file("\\runme.exe", b"MZ")
        machine.registry.set_value(RUN_KEY, "runner", "\\runme.exe")
        machine.boot()
        assert machine.process_by_name("runme.exe") is not None

    def test_runonce_consumed(self, machine):
        machine.volume.create_file("\\once.exe", b"MZ")
        machine.registry.set_value(RUNONCE_KEY, "one", "\\once.exe")
        machine.boot()
        assert machine.registry.enum_values(RUNONCE_KEY) == []
        machine.reboot()
        assert machine.process_by_name("once.exe") is None

    def test_appinit_injects_into_new_processes(self, booted):
        booted.volume.create_file("\\Windows\\System32\\inj.dll", b"MZ")
        loaded = []
        booted.register_program("\\Windows\\System32\\inj.dll",
                                lambda mach, proc: loaded.append(proc.name))
        booted.registry.set_value(APPINIT_KEY, "AppInit_DLLs", "inj.dll")
        booted.start_process("\\Windows\\explorer.exe", name="victim.exe")
        assert loaded == ["victim.exe"]

    def test_appinit_skips_early_system_processes(self, machine):
        machine.volume.create_file("\\Windows\\System32\\inj.dll", b"MZ")
        loaded = []
        machine.register_program("\\Windows\\System32\\inj.dll",
                                 lambda mach, proc: loaded.append(proc.name))
        machine.registry.set_value(APPINIT_KEY, "AppInit_DLLs", "inj.dll")
        machine.boot()
        assert "smss.exe" not in loaded
        assert "winlogon.exe" in loaded


class TestRegistryPersistence:
    def test_registry_edits_survive_reboot(self, booted):
        booted.registry.set_value("HKLM\\SOFTWARE\\App", "k", "v")
        booted.reboot()
        value = booted.registry.get_value("HKLM\\SOFTWARE\\App", "k")
        assert str(value.native_data()) == "v"

    def test_offline_hive_edit_takes_effect(self, machine):
        """Editing the hive file while powered off (the WinPE removal
        path) must be what the next boot loads."""
        machine.registry.set_value(RUN_KEY, "evil", "\\evil.exe")
        # Offline edit: delete the value directly and flush.
        machine.registry.delete_value(RUN_KEY, "evil")
        machine.boot()
        assert machine.registry.enum_values(RUN_KEY) == []


class TestProcessManagement:
    def test_terminate_process(self, booted):
        proc = booted.start_process("\\Windows\\explorer.exe",
                                    name="dying.exe")
        booted.terminate_process(proc.pid)
        assert booted.process_by_name("dying.exe") is None
        assert all(k.name != "dying.exe"
                   for k in booted.kernel.processes())

    def test_attach_existing_disk(self, booted):
        booted.volume.create_file("\\data.txt", b"persisted")
        booted.shutdown()
        rebuilt = Machine("rebuilt", disk=booted.disk)
        assert rebuilt.volume.read_file("\\data.txt") == b"persisted"
