"""Tests for the removal workflow (the Section-6 walkthrough)."""

import pytest

from repro.core import GhostBuster, disinfect
from repro.core.removal import RemovalLog, remove_hidden_hooks
from repro.ghostware import (Aphex, HackerDefender, ProBotSE, Urbin,
                             Vanquish)
from repro.machine import APPINIT_KEY

SERVICES = "HKLM\\SYSTEM\\CurrentControlSet\\Services"


class TestDisinfect:
    def test_hacker_defender_end_to_end(self, booted):
        HackerDefender().install(booted)
        log = disinfect(booted)
        assert log.rebooted
        assert log.verified_clean
        assert not booted.volume.exists("\\Windows\\hxdef100.exe")
        assert "HackerDefender100" not in \
            booted.registry.enum_subkeys(SERVICES)
        assert booted.process_by_name("hxdef100.exe") is None

    def test_urbin_appinit_scrubbed_not_deleted(self, booted):
        booted.volume.create_file("\\Windows\\System32\\legit.dll", b"MZ")
        booted.registry.set_value(APPINIT_KEY, "AppInit_DLLs", "legit.dll")
        Urbin().install(booted)
        log = disinfect(booted)
        value = booted.registry.get_value(APPINIT_KEY, "AppInit_DLLs")
        data = str(value.native_data())
        assert "msvsres" not in data
        assert "legit.dll" in data      # innocent DLL survives
        assert log.scrubbed_values

    def test_multi_infection_cleanup(self, booted):
        for ghost_cls in (HackerDefender, Urbin, Vanquish, Aphex, ProBotSE):
            ghost_cls().install(booted)
        log = disinfect(booted)
        assert log.verified_clean
        final = GhostBuster(booted, advanced=True).inside_scan()
        assert final.is_clean

    def test_vanquish_files_deleted_after_reboot(self, booted):
        Vanquish().install(booted)
        disinfect(booted)
        assert not booted.volume.exists("\\Windows\\vanquish.dll")
        assert not booted.volume.exists("\\vanquish.log")

    def test_clean_machine_noop(self, booted):
        log = disinfect(booted)
        assert log.deleted_keys == []
        assert log.deleted_files == []
        assert log.verified_clean

    def test_log_summary_format(self, booted):
        HackerDefender().install(booted)
        log = disinfect(booted)
        summary = log.summary()
        assert "rebooted=True" in summary
        assert "clean=True" in summary


class TestHookRemovalOnly:
    def test_reboot_without_file_deletion_disables_ghost(self, booted):
        """The paper's key claim: deleting hooks + reboot disables the
        malware even while its files remain."""
        HackerDefender().install(booted)
        report = GhostBuster(booted).inside_scan(resources=("registry",))
        log = RemovalLog()
        remove_hidden_hooks(booted, report, log)
        booted.reboot()
        assert booted.volume.exists("\\Windows\\hxdef100.exe")   # files kept
        assert booted.process_by_name("hxdef100.exe") is None    # not running
        # And the files are now visible through the API:
        verification = GhostBuster(booted).inside_scan(resources=("files",))
        assert verification.is_clean


class TestOfflineDisinfect:
    def test_offline_flow_cleans_everything(self, booted):
        from repro.core import offline_disinfect
        for ghost_cls in (HackerDefender, Urbin, Vanquish):
            ghost_cls().install(booted)
        log = offline_disinfect(booted)
        assert log.rebooted
        assert log.verified_clean
        assert not booted.volume.exists("\\Windows\\hxdef100.exe")
        assert not booted.volume.exists("\\Windows\\vanquish.dll")

    def test_offline_flow_handles_interference_strain(self, booted):
        """DeepGhost defeats the inside scan — but offline hive/file
        edits happen while its code cannot run at all, so removing what
        the outside view flags disables it permanently."""
        from repro.core import GhostBuster, offline_disinfect
        from repro.ghostware import LowLevelInterferenceGhost
        LowLevelInterferenceGhost().install(booted)
        # Locate it from outside first (the inside report is blind):
        outside = GhostBuster(booted).outside_scan(
            resources=("files", "registry"))
        booted.shutdown()
        log = RemovalLog()
        remove_hidden_hooks(booted, outside, log)
        from repro.core.removal import delete_revealed_files
        delete_revealed_files(
            booted, [finding.entry.path
                     for finding in outside.hidden_files()], log)
        booted.boot()
        verification = GhostBuster(booted).outside_scan(
            resources=("files", "registry"))
        assert verification.is_clean

    def test_offline_flow_on_clean_machine(self, booted):
        from repro.core import offline_disinfect
        log = offline_disinfect(booted)
        assert log.verified_clean
        assert log.deleted_keys == []
