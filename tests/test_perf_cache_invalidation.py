"""Cache invalidation for the raw-parse performance layer.

The parse-once namespace index, the per-(disk, generation) shared cache,
and the hive-parse memo must never trade correctness for speed: every
disk write invalidates the cached namespace, and A3-style raw-read
interception through the kernel disk port is honoured after caching.
"""

from __future__ import annotations

import pytest

from repro.core.scanners.files import low_level_file_scan
from repro.core.scanners.registry import low_level_asep_scan
from repro.errors import FileNotFound
from repro.ghostware import LowLevelInterferenceGhost
from repro.machine import RUN_KEY
from repro.ntfs import MftParser, parse_volume
from repro.ntfs.mft_parser import _NAMESPACE_CACHE_KEY
from repro.registry.hive_parser import parse_hive


class TestGenerationCounter:
    def test_volume_mutations_bump_generation(self, volume):
        start = volume.generation
        volume.create_file("\\a.txt", b"one")
        after_create = volume.generation
        assert after_create > start
        volume.write_file("\\a.txt", b"two")
        after_write = volume.generation
        assert after_write > after_create
        volume.delete_file("\\a.txt")
        assert volume.generation > after_write

    def test_reads_do_not_bump_generation(self, volume, disk):
        volume.create_file("\\a.txt", b"one")
        before = disk.generation
        volume.read_file("\\a.txt")
        parse_volume(disk)
        assert disk.generation == before

    def test_clone_inherits_cache_then_diverges(self, volume, disk):
        volume.create_file("\\golden.txt", b"image")
        parse_volume(disk)   # warm the golden image's cache
        shared = disk.raw_cache[_NAMESPACE_CACHE_KEY][1]

        clone = disk.clone()
        assert clone.raw_cache[_NAMESPACE_CACHE_KEY][1] is shared
        # The clone serves the inherited parse while unchanged...
        parser = MftParser(clone.read_bytes)
        assert parser._ensure_namespace() is shared
        # ...and re-parses its own bytes once it diverges.
        clone.write_bytes(0, clone.read_bytes(0, 1))
        assert MftParser(clone.read_bytes)._ensure_namespace() is not shared
        # The original's entry is still valid.
        assert disk.raw_cache[_NAMESPACE_CACHE_KEY][1] is shared


class TestNamespaceInvalidation:
    def test_scan_sees_file_created_between_scans(self, booted):
        first = {e.path for e in low_level_file_scan(booted).entries}
        assert "\\Windows\\fresh.bin" not in first
        booted.volume.create_file("\\Windows\\fresh.bin", b"new")
        second = {e.path for e in low_level_file_scan(booted).entries}
        assert "\\Windows\\fresh.bin" in second

    def test_scan_sees_delete_and_rename_between_scans(self, booted):
        volume = booted.volume
        volume.create_file("\\Temp\\doomed.txt", b"x")
        volume.create_file("\\Temp\\old-name.txt", b"y")
        first = {e.path for e in low_level_file_scan(booted).entries}
        assert {"\\Temp\\doomed.txt", "\\Temp\\old-name.txt"} <= first

        volume.delete_file("\\Temp\\doomed.txt")
        # The volume has no in-place rename; model it as move-by-recreate.
        content = volume.read_file("\\Temp\\old-name.txt")
        volume.delete_file("\\Temp\\old-name.txt")
        volume.create_file("\\Temp\\new-name.txt", content)

        second = {e.path for e in low_level_file_scan(booted).entries}
        assert "\\Temp\\doomed.txt" not in second
        assert "\\Temp\\old-name.txt" not in second
        assert "\\Temp\\new-name.txt" in second

    def test_same_parser_instance_revalidates(self, volume, disk):
        parser = MftParser(disk.read_bytes)
        assert "\\later.txt" not in {e.path for e in parser.parse()}
        volume.create_file("\\later.txt", b"now you see me")
        assert "\\later.txt" in {e.path for e in parser.parse()}
        assert parser.read_file_content("\\later.txt") == b"now you see me"
        volume.delete_file("\\later.txt")
        with pytest.raises(FileNotFound):
            parser.find_by_path("\\later.txt")

    def test_stream_rewrite_visible_through_cache(self, volume, disk):
        volume.create_file("\\host.txt", b"host")
        volume.write_stream("\\host.txt", "ads", b"v1")
        parser = MftParser(disk.read_bytes)
        assert parser.read_stream_content("\\host.txt", "ads") == b"v1"
        volume.write_stream("\\host.txt", "ads", b"v2")
        assert parser.read_stream_content("\\host.txt", "ads") == b"v2"

    def test_hive_rewrite_between_raw_asep_scans(self, booted):
        first = {e.name for e in low_level_asep_scan(booted).entries}
        assert "CacheProbe" not in first
        booted.registry.set_value(RUN_KEY, "CacheProbe",
                                  "\\Windows\\probe.exe")
        second = {e.name for e in low_level_asep_scan(booted).entries}
        assert "CacheProbe" in second


class TestHiveParseMemo:
    def test_identical_blobs_share_one_parse(self, booted):
        blob = booted.volume.read_file(
            "\\Windows\\System32\\config\\SOFTWARE")
        assert parse_hive(blob) is parse_hive(bytes(blob))

    def test_different_blobs_parse_independently(self, booted):
        before = booted.volume.read_file(
            "\\Windows\\System32\\config\\SOFTWARE")
        booted.registry.set_value(RUN_KEY, "Mutator", "\\x.exe")
        after = booted.volume.read_file(
            "\\Windows\\System32\\config\\SOFTWARE")
        assert before != after
        parsed_before = parse_hive(before)
        parsed_after = parse_hive(after)
        assert parsed_before is not parsed_after


class TestA3InterferenceAfterCaching:
    """Raw-port reads stay interceptable; caches never launder a lie."""

    def test_filter_installed_at_same_generation_defeats_cache(self, booted):
        booted.volume.create_file("\\Temp\\target.txt", b"hello")
        port = booted.kernel.disk_port

        inside = MftParser(port.read_bytes).parse()
        assert "\\Temp\\target.txt" in {e.path for e in inside}

        needle = "target.txt".encode("utf-16-le")

        def scrub(offset, length, data):
            return b"\x00" * len(data) if needle in data else data

        # No disk write happens here: the generation is unchanged, so a
        # stale-cache bug would keep serving the pre-filter namespace.
        port.read_filters.append(scrub)
        filtered = MftParser(port.read_bytes).parse()
        assert "\\Temp\\target.txt" not in {e.path for e in filtered}

        # Outside-the-box reads bypass the port and stay truthful.
        outside = parse_volume(booted.disk)
        assert "\\Temp\\target.txt" in {e.path for e in outside}

        # Removing the filter restores the clean view (the shared cache
        # was never poisoned by the filtered parse).
        port.read_filters.clear()
        restored = MftParser(port.read_bytes).parse()
        assert "\\Temp\\target.txt" in {e.path for e in restored}

    def test_interference_ghost_still_blinds_inside_scan(self, booted):
        # Warm every cache with clean scans first.
        low_level_file_scan(booted)
        low_level_asep_scan(booted)

        LowLevelInterferenceGhost().install(booted)
        inside_files = {e.path for e in low_level_file_scan(booted).entries}
        assert "\\Windows\\deepghost.exe" not in inside_files

        outside_files = {e.path for e in parse_volume(booted.disk)}
        assert "\\Windows\\deepghost.exe" in outside_files

    def test_unfiltered_port_shares_the_disk_cache(self, booted):
        outside = MftParser(booted.disk.read_bytes)
        namespace = outside._ensure_namespace()
        through_port = MftParser(booted.kernel.disk_port.read_bytes)
        assert through_port._ensure_namespace() is namespace
