"""The fleet wire protocol and the controller/agent split, in-process.

Framing, HMAC auth, seq dedup, and the four transport chaos kinds get
unit coverage on socket pairs; the controller is then exercised against
both hand-driven protocol exchanges (idempotent acks, late acks after
reclaim, liveness reaping on a SimClock, flap detection, controller
restart between acks) and real :class:`ScanAgent` loops running in
threads — whose epoch verdicts must be element-identical to a
single-process coordinator run over the same fleet.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.clock import SimClock
from repro.core.noise import NoiseFilter
from repro.core.reporting import report_to_dict
from repro.errors import TransportError, TransportTimeout
from repro.faults.plan import (SITE_FLEET_RECV, SITE_FLEET_SEND, FaultPlan,
                               FaultSpec)
from repro.fleet import (EscalationPolicy, FleetAggregator,
                         FleetCoordinator, ScanAgent, fleet_status,
                         transport)
from repro.fleet.controller import (AGENT_DEAD, AGENT_FLAPPING,
                                    ScanController, fold_agent_records)
from repro.fleet.scanwork import perform_machine_scan
from repro.ghostware import HackerDefender
from repro.machine import Machine
from repro.telemetry.metrics import global_metrics


def channel_pair():
    left, right = socket.socketpair()
    return transport.FrameChannel(left), transport.FrameChannel(right)


def build_machine(name, infected=False):
    machine = Machine(name, disk_mb=256, max_records=8192)
    machine.boot()
    if infected:
        HackerDefender().install(machine)
    return machine


def make_factory(infected=()):
    def factory(name):
        return build_machine(name, infected=name in infected)
    return factory


def verdict_key(aggregate):
    return {v.machine: (v.verdict, v.findings, v.confirmed, v.confirmed_by)
            for v in aggregate.verdicts}


class TestFraming:
    def test_round_trip(self):
        sender, receiver = channel_pair()
        sender.send({"op": "hello", "payload": [1, 2, {"deep": True}]})
        message = receiver.recv(timeout=2.0)
        assert message["op"] == "hello"
        assert message["payload"] == [1, 2, {"deep": True}]
        assert message["seq"] == 1
        sender.close()
        receiver.close()

    def test_recv_timeout_is_distinguishable(self):
        sender, receiver = channel_pair()
        with pytest.raises(TransportTimeout):
            receiver.recv(timeout=0.05)
        # Timeout subclasses TransportError, so "any wire failure"
        # handlers still catch it.
        assert issubclass(TransportTimeout, TransportError)
        sender.close()
        receiver.close()

    def test_torn_frame_raises(self):
        sender, receiver = channel_pair()
        sender.send({"op": "first"})
        assert receiver.recv(timeout=2.0)["op"] == "first"
        # Half a frame, then the writer dies.
        import json
        import struct
        payload = json.dumps({"op": "second"}).encode()
        frame = struct.pack("!I", len(payload)) + payload
        sender.sock.sendall(frame[:len(frame) // 2])
        sender.sock.close()
        with pytest.raises(TransportError):
            receiver.recv(timeout=2.0)
        receiver.close()

    def test_oversized_frame_rejected(self):
        sender, receiver = channel_pair()
        import struct
        sender.sock.sendall(struct.pack(
            "!I", transport.MAX_FRAME_BYTES + 1))
        with pytest.raises(TransportError, match="oversized"):
            receiver.recv(timeout=2.0)
        sender.close()
        receiver.close()

    def test_seq_dedup_drops_replayed_frames(self):
        plan = FaultPlan(7, (FaultSpec(SITE_FLEET_SEND, rate=1.0,
                                       kinds=("duplicate",)),))
        left, right = socket.socketpair()
        sender = transport.FrameChannel(left, plan=plan, scope="t")
        receiver = transport.FrameChannel(right)
        sender.send({"op": "one"})
        sender.send({"op": "two"})
        assert receiver.recv(timeout=2.0)["op"] == "one"
        # The duplicate of "one" is silently skipped.
        assert receiver.recv(timeout=2.0)["op"] == "two"
        with pytest.raises(TransportTimeout):
            receiver.recv(timeout=0.05)     # dup of "two": skipped too
        sender.close()
        receiver.close()


class TestChaosKinds:
    def test_injected_drop_raises_on_send(self):
        plan = FaultPlan(3, (FaultSpec(SITE_FLEET_SEND, rate=1.0,
                                       kinds=("drop",)),))
        left, right = socket.socketpair()
        sender = transport.FrameChannel(left, plan=plan, scope="t")
        with pytest.raises(TransportError, match="drop"):
            sender.send({"op": "lease"})
        sender.close()
        right.close()

    def test_injected_torn_frame_breaks_both_sides(self):
        plan = FaultPlan(3, (FaultSpec(SITE_FLEET_SEND, rate=1.0,
                                       kinds=("torn_frame",)),))
        left, right = socket.socketpair()
        sender = transport.FrameChannel(left, plan=plan, scope="t")
        receiver = transport.FrameChannel(right)
        with pytest.raises(TransportError):
            sender.send({"op": "ack"})
        with pytest.raises(TransportError):
            receiver.recv(timeout=2.0)
        sender.close()
        receiver.close()

    def test_injected_delay_is_absorbed(self):
        plan = FaultPlan(3, (FaultSpec(SITE_FLEET_SEND, rate=1.0,
                                       kinds=("delay",),
                                       mean_delay_s=0.001),))
        sender_raw, receiver_raw = socket.socketpair()
        sender = transport.FrameChannel(sender_raw, plan=plan, scope="t")
        receiver = transport.FrameChannel(receiver_raw)
        sender.send({"op": "heartbeat"})
        assert receiver.recv(timeout=2.0)["op"] == "heartbeat"
        sender.close()
        receiver.close()

    def test_chaos_plan_touches_only_wire_sites(self):
        plan = transport.chaos_plan(11, rate=0.5)
        sites = {spec.site for spec in plan.specs}
        assert sites == {SITE_FLEET_SEND, SITE_FLEET_RECV}


class TestAuth:
    def test_hello_mac_round_trip(self):
        secret = transport.new_secret()
        hello = transport.make_hello(secret, "agent-0", worker=3)
        assert transport.verify_hello(secret, hello)

    def test_wrong_secret_rejected(self):
        hello = transport.make_hello(transport.new_secret(), "agent-0")
        assert not transport.verify_hello(transport.new_secret(), hello)

    def test_tampered_agent_id_rejected(self):
        secret = transport.new_secret()
        hello = dict(transport.make_hello(secret, "agent-0"),
                     agent="agent-evil")
        assert not transport.verify_hello(secret, hello)

    def test_version_mismatch_rejected(self):
        secret = transport.new_secret()
        hello = dict(transport.make_hello(secret, "agent-0"), v=99)
        assert not transport.verify_hello(secret, hello)


# -- controller harness --------------------------------------------------------


def start_controller(tmp_path, roster, **kwargs):
    coordinator = FleetCoordinator(str(tmp_path), roster, workers=1)
    secret = transport.new_secret()
    kwargs.setdefault("agent_timeout_seconds", 30.0)
    controller = ScanController(coordinator, secret, **kwargs)
    controller.start()
    return coordinator, controller, secret


def open_epoch(coordinator, controller):
    epoch = coordinator.next_epoch_number()
    aggregator = FleetAggregator(
        epoch, outbreak_threshold=coordinator.outbreak_threshold)
    with controller.lock:
        coordinator._open_or_resume(epoch, aggregator)
        controller.begin_epoch(epoch, aggregator)
    return epoch, aggregator


def finish_epoch(coordinator, controller, aggregator):
    with controller.lock:
        assert coordinator.queue.epoch_drained()
        controller.end_epoch()
        coordinator._finish_epoch(aggregator)


def dial(controller, secret, agent_id="agent-x", worker=0, role="work"):
    channel = transport.connect(controller.address)
    channel.send(transport.make_hello(secret, agent_id, worker=worker,
                                      role=role))
    reply = channel.recv(timeout=5.0)
    return channel, reply


def scan_ack(lease_reply, machines):
    """Scan a leased machine locally and build its ack frame."""
    lease = lease_reply["lease"]
    name = lease["machine"]
    machine = machines.setdefault(name, build_machine(name))
    outcome = perform_machine_scan(
        machine, lease["epoch"], EscalationPolicy(), NoiseFilter(),
        ("files", "registry"), None)
    verdict = outcome.verdict(name, lease["epoch"], baseline_id=None)
    return {"op": "ack", "machine": name, "epoch": lease["epoch"],
            "token": lease["token"], "verdict": verdict.to_dict(),
            "report": report_to_dict(outcome.report),
            "disk_generation": outcome.disk_generation,
            "scan_seconds": outcome.scan_seconds,
            "extra": outcome.extra(lease["epoch"])}


class TestControllerProtocol:
    def test_bad_hello_is_rejected(self, tmp_path):
        __, controller, __secret = start_controller(tmp_path, ["m00"])
        try:
            channel, reply = dial(controller, transport.new_secret())
            assert reply == {"op": "error", "error": "auth", "seq": 1}
            channel.close()
        finally:
            controller.stop()

    def test_lease_scan_ack_and_idempotent_replay(self, tmp_path):
        coordinator, controller, secret = start_controller(
            tmp_path, ["m00"])
        try:
            epoch, aggregator = open_epoch(coordinator, controller)
            channel, hello = dial(controller, secret, "agent-a")
            assert hello["op"] == "hello-ok"
            assert hello["outstanding"] == []
            channel.send({"op": "lease"})
            lease_reply = channel.recv(timeout=5.0)
            assert lease_reply["op"] == "lease-ok"
            ack = scan_ack(lease_reply, {})
            channel.send(ack)
            first = channel.recv(timeout=5.0)
            assert first["op"] == "ack-ok" and not first["duplicate"]
            # Blind replay after a "lost reply": nothing lands twice.
            channel.send(ack)
            replay = channel.recv(timeout=5.0)
            assert replay["op"] == "ack-ok" and replay["duplicate"]
            with open(coordinator.queue.path, encoding="utf-8") as handle:
                assert sum(1 for line in handle
                           if '"op": "ack"' in line) == 1
            assert coordinator.queue.epoch_drained()
            finish_epoch(coordinator, controller, aggregator)
            assert aggregator.summary.machines == 1
            assert aggregator.summary.late_acks == 0
            channel.close()
        finally:
            controller.stop()

    def test_outstanding_leases_resurface_on_reconnect(self, tmp_path):
        coordinator, controller, secret = start_controller(
            tmp_path, ["m00", "m01"])
        try:
            open_epoch(coordinator, controller)
            channel, __ = dial(controller, secret, "agent-a")
            channel.send({"op": "lease"})
            lease_reply = channel.recv(timeout=5.0)
            leased = lease_reply["lease"]["machine"]
            channel.close()    # the lease-ok might as well have been lost
            rejoin, hello = dial(controller, secret, "agent-a")
            outstanding = hello["outstanding"]
            assert [item["lease"]["machine"]
                    for item in outstanding] == [leased]
            assert (outstanding[0]["lease"]["token"]
                    == lease_reply["lease"]["token"])
            rejoin.close()
        finally:
            controller.stop()

    def test_renew_extends_and_stale_renew_refused(self, tmp_path):
        coordinator, controller, secret = start_controller(
            tmp_path, ["m00"])
        try:
            open_epoch(coordinator, controller)
            channel, __ = dial(controller, secret, "agent-a")
            channel.send({"op": "lease"})
            lease = channel.recv(timeout=5.0)["lease"]
            channel.send({"op": "renew", "machine": lease["machine"],
                          "token": lease["token"]})
            renewed = channel.recv(timeout=5.0)
            assert renewed["op"] == "renew-ok"
            assert renewed["expires_at"] >= lease["expires_at"]
            channel.send({"op": "renew", "machine": lease["machine"],
                          "token": lease["token"] + 7})
            assert channel.recv(timeout=5.0)["op"] == "renew-stale"
            channel.close()
        finally:
            controller.stop()


class TestLivenessAndReclaim:
    def test_reap_marks_dead_and_requeues_exactly_its_leases(
            self, tmp_path):
        clock = SimClock()
        coordinator, controller, secret = start_controller(
            tmp_path, ["m00", "m01"], agent_timeout_seconds=5.0,
            liveness_clock=clock)
        try:
            open_epoch(coordinator, controller)
            channel_a, __ = dial(controller, secret, "agent-a", worker=0)
            channel_a.send({"op": "lease"})
            leased_a = channel_a.recv(timeout=5.0)["lease"]["machine"]
            clock.advance(2.0)
            channel_b, __ = dial(controller, secret, "agent-b", worker=0)
            channel_b.send({"op": "lease"})
            leased_b = channel_b.recv(timeout=5.0)["lease"]["machine"]
            clock.advance(4.0)   # agent-a silent 6s, agent-b only 4s
            assert controller.reap() == ["agent-a"]
            sessions = controller.session_snapshots()
            assert sessions["agent-a"]["state"] == AGENT_DEAD
            assert sessions["agent-b"]["state"] == "alive"
            assert coordinator.queue.pending_machines() == [leased_a]
            assert leased_b in coordinator.queue.leased_machines()
            # The transition is journaled for offline status tools.
            status = fleet_status(str(tmp_path))
            assert status["agents"]["agent-a"]["state"] == AGENT_DEAD
            assert status["agents"]["agent-a"]["last_event"] == "dead"
            channel_b.close()
        finally:
            controller.stop()

    def test_late_ack_after_reclaim_is_counted_and_dropped(
            self, tmp_path):
        clock = SimClock()
        coordinator, controller, secret = start_controller(
            tmp_path, ["m00"], agent_timeout_seconds=5.0,
            liveness_clock=clock)
        try:
            __, aggregator = open_epoch(coordinator, controller)
            channel, __ = dial(controller, secret, "agent-a")
            channel.send({"op": "lease"})
            lease_reply = channel.recv(timeout=5.0)
            ack = scan_ack(lease_reply, {})
            clock.advance(10.0)
            assert controller.reap() == ["agent-a"]
            before = global_metrics().snapshot()["counters"].get(
                "fleet.ack.late", 0)
            # The "dead" agent finishes its scan and acks anyway (reap
            # closed its channel, so it reconnects first — exactly what
            # the real agent loop does).
            rejoin, __ = dial(controller, secret, "agent-a")
            rejoin.send(ack)
            assert rejoin.recv(timeout=5.0)["op"] == "ack-late"
            after = global_metrics().snapshot()["counters"].get(
                "fleet.ack.late", 0)
            assert after == before + 1
            assert aggregator.summary.late_acks == 1
            # The machine is pending again, not lost and not acked.
            assert coordinator.queue.pending_machines() == ["m00"]
            assert coordinator.queue.acked_machines() == {}
            rejoin.close()
        finally:
            controller.stop()

    def test_flapping_agent_is_labelled(self, tmp_path):
        coordinator, controller, secret = start_controller(
            tmp_path, ["m00"], flap_threshold=3)
        try:
            for __ in range(4):
                channel, hello = dial(controller, secret, "agent-a")
                assert hello["op"] == "hello-ok"
                channel.close()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                snapshot = controller.session_snapshots()["agent-a"]
                if snapshot["reconnects"] >= 3:
                    break
                time.sleep(0.01)
            assert snapshot["state"] == AGENT_FLAPPING
            assert snapshot["reconnects"] == 3
            status = fleet_status(str(tmp_path))
            assert status["agents"]["agent-a"]["state"] == AGENT_FLAPPING
        finally:
            controller.stop()

    def test_heartbeat_channel_refreshes_liveness(self, tmp_path):
        clock = SimClock()
        coordinator, controller, secret = start_controller(
            tmp_path, ["m00"], agent_timeout_seconds=5.0,
            liveness_clock=clock)
        try:
            open_epoch(coordinator, controller)
            work, __ = dial(controller, secret, "agent-a")
            work.send({"op": "lease"})
            work.recv(timeout=5.0)
            beat, hello = dial(controller, secret, "agent-a",
                               role="heartbeat")
            assert "outstanding" not in hello  # work-channel concern only
            for __ in range(3):
                clock.advance(3.0)
                beat.send({"op": "heartbeat", "leases": ["m00"]})
                assert beat.recv(timeout=5.0)["op"] == "heartbeat-ok"
                assert controller.reap() == []
            work.close()
            beat.close()
        finally:
            controller.stop()


class TestControllerRestart:
    def test_restart_between_acks_recovers_element_identical(
            self, tmp_path):
        roster = ["m00", "m01"]
        reference = FleetCoordinator(
            str(tmp_path / "ref"),
            [build_machine(name) for name in roster]).run_epoch()

        fleet_dir = tmp_path / "dist"
        machines = {}
        coordinator, controller, secret = start_controller(
            fleet_dir, roster)
        epoch, __aggregator = open_epoch(coordinator, controller)
        channel, __ = dial(controller, secret, "agent-a")
        channel.send({"op": "lease"})
        first_reply = channel.recv(timeout=5.0)
        channel.send(scan_ack(first_reply, machines))
        assert channel.recv(timeout=5.0)["op"] == "ack-ok"
        channel.send({"op": "lease"})
        second_reply = channel.recv(timeout=5.0)
        in_flight_ack = scan_ack(second_reply, machines)
        # Power cord: the controller dies with one machine acked and
        # one lease (plus its finished-but-unacked scan) in flight.
        controller.stop()

        restarted = FleetCoordinator(str(fleet_dir), roster, workers=1)
        controller2 = ScanController(restarted, secret,
                                     agent_timeout_seconds=30.0)
        controller2.start()
        try:
            __, aggregator2 = open_epoch(restarted, controller2)
            # Resume requeued the orphaned lease; the acked machine
            # stayed acked.
            assert len(restarted.queue.acked_machines()) == 1
            assert restarted.queue.pending_machines() == [
                second_reply["lease"]["machine"]]
            rejoin, hello = dial(controller2, secret, "agent-a")
            assert hello["outstanding"] == []   # fresh controller state
            # Reconnect replay: the agent blindly replays its unacked
            # result; the lease was reclaimed, so it is dropped late...
            rejoin.send(in_flight_ack)
            assert rejoin.recv(timeout=5.0)["op"] == "ack-late"
            # ...and the machine is simply leased and scanned again.
            rejoin.send({"op": "lease"})
            retry_reply = rejoin.recv(timeout=5.0)
            assert (retry_reply["lease"]["machine"]
                    == second_reply["lease"]["machine"])
            rejoin.send(scan_ack(retry_reply, machines))
            assert rejoin.recv(timeout=5.0)["op"] == "ack-ok"
            finish_epoch(restarted, controller2, aggregator2)
            assert verdict_key(aggregator2) == verdict_key(reference)
            assert aggregator2.summary.late_acks == 1
            rejoin.close()
        finally:
            controller2.stop()


# -- real ScanAgent loops (threads) --------------------------------------------


def drive_epochs(coordinator, controller, agents, epochs=1,
                 timeout_s=120.0):
    threads = [threading.Thread(target=agent.run, daemon=True)
               for agent in agents]
    aggregates = []
    for thread in threads:
        thread.start()
    try:
        for __ in range(epochs):
            epoch = coordinator.next_epoch_number()
            aggregator = FleetAggregator(
                epoch, outbreak_threshold=coordinator.outbreak_threshold)
            with controller.lock:
                coordinator._open_or_resume(epoch, aggregator)
                controller.begin_epoch(epoch, aggregator)
            deadline = time.monotonic() + timeout_s
            while True:
                with controller.lock:
                    if coordinator.queue.epoch_drained():
                        break
                assert time.monotonic() < deadline, "epoch stalled"
                time.sleep(0.01)
            with controller.lock:
                controller.end_epoch()
                coordinator._finish_epoch(aggregator)
            aggregates.append(aggregator)
    finally:
        controller.begin_shutdown()
        for thread in threads:
            thread.join(timeout=10.0)
    return aggregates


class TestScanAgentLoop:
    def test_agent_epoch_matches_single_process(self, tmp_path):
        roster = [f"m{i:02d}" for i in range(4)]
        factory = make_factory(infected=("m01",))
        reference = FleetCoordinator(
            str(tmp_path / "ref"),
            [factory(name) for name in roster], workers=2).run_epoch()

        coordinator, controller, secret = start_controller(
            tmp_path / "dist", roster)
        agents = [ScanAgent(controller.address, secret, f"agent-{i}",
                            factory, worker=i, poll_seconds=0.01)
                  for i in range(2)]
        try:
            aggregates = drive_epochs(coordinator, controller, agents)
        finally:
            controller.stop()
        assert verdict_key(aggregates[0]) == verdict_key(reference)
        assert aggregates[0].summary.scanned == 4
        infected = next(v for v in aggregates[0].verdicts
                        if v.machine == "m01")
        assert infected.confirmed and infected.confirmed_by == "winpe"
        # Both index and journal replay agree on agent liveness.
        status = fleet_status(str(tmp_path / "dist"))
        assert set(status["agents"]) == {"agent-0", "agent-1"}
        assert coordinator.index.status()["agents"] == status["agents"]

    def test_second_epoch_skips_via_wire_baselines(self, tmp_path):
        roster = [f"m{i:02d}" for i in range(3)]
        factory = make_factory()
        coordinator, controller, secret = start_controller(
            tmp_path, roster)
        agents = [ScanAgent(controller.address, secret, "agent-0",
                            factory, poll_seconds=0.01)]
        try:
            aggregates = drive_epochs(coordinator, controller, agents,
                                      epochs=2)
        finally:
            controller.stop()
        assert aggregates[0].summary.scanned == 3
        # The agent holds its machines across epochs, so epoch 2 rides
        # the baselines shipped in lease-ok — zero scans.
        assert aggregates[1].summary.scanned == 0
        assert aggregates[1].summary.skipped == 3
        assert verdict_key(aggregates[0]) == verdict_key(aggregates[1])

    def test_agent_survives_transport_chaos(self, tmp_path):
        roster = [f"m{i:02d}" for i in range(4)]
        factory = make_factory(infected=("m02",))
        reference = FleetCoordinator(
            str(tmp_path / "ref"),
            [factory(name) for name in roster], workers=2).run_epoch()

        coordinator, controller, secret = start_controller(
            tmp_path / "chaos", roster)
        agents = [ScanAgent(controller.address, secret, f"agent-{i}",
                            factory, worker=i, poll_seconds=0.01,
                            transport_plan=transport.chaos_plan(
                                17 + i, rate=0.1),
                            reconnect_base_s=0.01, reconnect_cap_s=0.05)
                  for i in range(2)]
        try:
            aggregates = drive_epochs(coordinator, controller, agents)
        finally:
            controller.stop()
        # Chaos on the wire costs retries, never machines or verdicts.
        assert set(verdict_key(aggregates[0])) == set(roster)
        assert verdict_key(aggregates[0]) == verdict_key(reference)
