"""Documentation-quality enforcement.

Deliverable (e) promises doc comments on every public item.  These tests
walk the installed package and fail on any public module, class, or
function without a docstring — so documentation debt shows up as a red
test, not a review comment.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

SKIP_MODULES = {"repro.__main__"}   # CLI glue documents itself via argparse


def _all_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(set(names) - SKIP_MODULES)


MODULES = _all_modules()


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), \
        f"{module_name} lacks a module docstring"


def _public_members(module):
    exported = getattr(module, "__all__", None)
    for name, member in inspect.getmembers(module):
        if name.startswith("_"):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue   # re-exports are documented at their home
        if exported is not None and name not in exported \
                and not (inspect.isclass(member)
                         or inspect.isfunction(member)):
            continue
        if inspect.isclass(member) or inspect.isfunction(member):
            yield name, member


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, member in _public_members(module):
        if not (member.__doc__ and member.__doc__.strip()):
            undocumented.append(name)
    assert not undocumented, \
        f"{module_name}: missing docstrings on {undocumented}"


def test_repo_docs_exist():
    import pathlib
    root = pathlib.Path(repro.__file__).resolve().parents[2]
    for document in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "docs/ghostware_catalog.md",
                     "docs/scanning_internals.md",
                     "docs/incremental_scanning.md"):
        path = root / document
        assert path.exists(), f"{document} is part of the deliverables"
        assert path.stat().st_size > 500, f"{document} looks stubby"
