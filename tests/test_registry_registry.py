"""Tests for the Registry facade (mounted hives, write-through)."""

import pytest

from repro.errors import KeyNotFound, RegistryError
from repro.registry import Hive, Registry, parse_hive


@pytest.fixture
def registry(volume):
    volume.create_directories("\\config")
    reg = Registry(volume)
    reg.mount_hive("HKLM\\SOFTWARE", Hive("SOFTWARE"), "\\config\\SOFTWARE")
    reg.mount_hive("HKLM\\SYSTEM", Hive("SYSTEM"), "\\config\\SYSTEM")
    return reg


class TestMounting:
    def test_duplicate_mount_rejected(self, registry):
        with pytest.raises(RegistryError):
            registry.mount_hive("hklm\\software", Hive("dup"))

    def test_mount_for_longest_prefix(self, registry):
        registry.mount_hive("HKLM\\SOFTWARE\\Sub", Hive("SUB"))
        mount, relative = registry.mount_for("HKLM\\SOFTWARE\\Sub\\Key")
        assert mount.root_path == "HKLM\\SOFTWARE\\Sub"
        assert relative == "Key"

    def test_unmounted_path_raises(self, registry):
        with pytest.raises(KeyNotFound):
            registry.open_key("HKCU\\Anything")

    def test_unmount(self, registry):
        registry.unmount_hive("HKLM\\SYSTEM")
        with pytest.raises(KeyNotFound):
            registry.open_key("HKLM\\SYSTEM")

    def test_hives_listed(self, registry):
        roots = [mount.root_path for mount in registry.hives()]
        assert roots == ["HKLM\\SOFTWARE", "HKLM\\SYSTEM"]


class TestKeyValueOps:
    def test_create_and_enum(self, registry):
        registry.create_key("HKLM\\SOFTWARE\\A\\B")
        assert registry.enum_subkeys("HKLM\\SOFTWARE\\A") == ["B"]

    def test_set_creates_intermediate_keys(self, registry):
        registry.set_value("HKLM\\SOFTWARE\\Deep\\Key", "v", "data")
        assert str(registry.get_value("HKLM\\SOFTWARE\\Deep\\Key",
                                      "v").native_data()) == "data"

    def test_delete_key(self, registry):
        registry.create_key("HKLM\\SOFTWARE\\Temp")
        registry.delete_key("HKLM\\SOFTWARE\\Temp")
        assert not registry.key_exists("HKLM\\SOFTWARE\\Temp")

    def test_delete_hive_root_rejected(self, registry):
        with pytest.raises(RegistryError):
            registry.delete_key("HKLM\\SOFTWARE")

    def test_delete_value(self, registry):
        registry.set_value("HKLM\\SOFTWARE\\K", "v", "x")
        registry.delete_value("HKLM\\SOFTWARE\\K", "v")
        assert registry.enum_values("HKLM\\SOFTWARE\\K") == []

    def test_key_exists(self, registry):
        assert registry.key_exists("HKLM\\SOFTWARE")
        assert not registry.key_exists("HKLM\\SOFTWARE\\Ghost")


class TestWriteThrough:
    def test_mutation_lands_in_backing_file(self, registry, volume):
        registry.set_value("HKLM\\SOFTWARE\\App", "setting", "live")
        parsed = parse_hive(volume.read_file("\\config\\SOFTWARE"))
        app = parsed.root.subkey("App")
        assert app.values[0].name == "setting"

    def test_batch_defers_then_flushes(self, registry, volume):
        before = volume.read_file("\\config\\SOFTWARE")
        with registry.batch():
            registry.set_value("HKLM\\SOFTWARE\\Bulk", "v", "x")
            assert volume.read_file("\\config\\SOFTWARE") == before
        parsed = parse_hive(volume.read_file("\\config\\SOFTWARE"))
        assert parsed.root.subkey("Bulk").values[0].name == "v"

    def test_flush_idempotent(self, registry, volume):
        registry.flush()
        registry.flush()
        assert volume.exists("\\config\\SYSTEM")

    def test_memory_only_hive_never_touches_volume(self, volume):
        reg = Registry(volume)
        reg.mount_hive("HKLM\\VOLATILE", Hive("VOLATILE"))
        reg.set_value("HKLM\\VOLATILE\\K", "v", "x")   # must not raise
        assert not volume.exists("\\VOLATILE")
