"""Distributed mode end to end: real forked agent processes.

The contract under test is the ISSUE's headline acceptance: a fleet
swept by ``run_distributed`` produces verdicts **element-identical** to
the single-process coordinator — including when an agent is killed with
``SIGKILL`` mid-lease and when 5% of wire frames are dropped, delayed,
duplicated, or torn.  Machines live only inside the agent processes
(the coordinator is rostered by name), so these tests also prove the
wire carries everything the checkpoint needs.
"""

from __future__ import annotations

import json
import sys

import pytest

from repro.__main__ import main
from repro.fleet import FleetCoordinator, fleet_status
from repro.fleet.controller import AGENT_DEAD
from repro.ghostware import Aphex, HackerDefender
from repro.workloads.scenarios import build_home_pc

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="distributed mode forks")

SIZE = 6
GHOSTS = {1: HackerDefender, SIZE - 1: Aphex}


def fleet_factory(name):
    index = int(name.rsplit("-", 1)[1])
    ghost_cls = GHOSTS.get(index)
    return build_home_pc(name, ghost_cls() if ghost_cls else None,
                         files=30, seed=3 + index,
                         with_services=False).machine


def roster():
    return [f"client-{index:02d}" for index in range(SIZE)]


def verdict_key(aggregate):
    return {v.machine: (v.verdict, v.findings, v.confirmed, v.confirmed_by)
            for v in aggregate.verdicts}


@pytest.fixture(scope="module")
def reference_key(tmp_path_factory):
    """The single-process ground truth for this module's fleet."""
    fleet_dir = tmp_path_factory.mktemp("reference")
    machines = [fleet_factory(name) for name in roster()]
    coordinator = FleetCoordinator(str(fleet_dir), machines, workers=2)
    return verdict_key(coordinator.run_epoch())


class TestDistributedSweep:
    def test_matches_single_process(self, tmp_path, reference_key):
        coordinator = FleetCoordinator(str(tmp_path), roster(), workers=2)
        aggregates = coordinator.run_distributed(
            2, fleet_factory, agents=2)
        assert verdict_key(aggregates[0]) == reference_key
        # Epoch 2: agents still hold their epoch-1 clones, so machines
        # re-leased to the same agent ride their baselines.  A machine
        # stolen by the *other* agent is rebuilt fresh (generation
        # mismatch) and deterministically rescanned — identical verdict
        # either way, so only the verdicts are exact.
        assert verdict_key(aggregates[1]) == reference_key
        assert aggregates[0].summary.scanned == SIZE
        assert aggregates[1].summary.skipped >= 1
        assert (aggregates[1].summary.skipped
                + aggregates[1].summary.scanned) == SIZE
        status = fleet_status(str(tmp_path))
        assert status["open_epoch"] is None
        assert set(status["agents"]) == {"agent-0", "agent-1"}
        assert all(agent["reconnects"] == 0
                   for agent in status["agents"].values())

    def test_kill_dash_nine_mid_lease_loses_nothing(
            self, tmp_path, reference_key):
        coordinator = FleetCoordinator(str(tmp_path), roster(), workers=2)
        aggregates = coordinator.run_distributed(
            1, fleet_factory, agents=2, agent_timeout_seconds=1.5,
            kill_after_leases={0: 2})
        key = verdict_key(aggregates[0])
        assert set(key) == set(roster()), "a machine was lost"
        assert key == reference_key
        # The murdered agent was noticed, declared dead, and journaled.
        agents = fleet_status(str(tmp_path))["agents"]
        assert agents["agent-0"]["state"] == AGENT_DEAD
        assert aggregates[0].summary.machines == SIZE

    def test_transport_chaos_loses_nothing(self, tmp_path, reference_key):
        coordinator = FleetCoordinator(str(tmp_path), roster(), workers=2)
        aggregates = coordinator.run_distributed(
            1, fleet_factory, agents=2, agent_timeout_seconds=5.0,
            transport_seed=99, transport_rate=0.05)
        key = verdict_key(aggregates[0])
        assert set(key) == set(roster()), "a machine was lost"
        assert key == reference_key


class TestDistributedCli:
    def test_sweep_agents_flag_and_status_agree(self, tmp_path, capsys):
        fleet_dir = tmp_path / "fleet"
        rc = main(["sweep", "--epochs", "2", "--agents", "2",
                   "--fleet-size", "4", "--fleet-dir", str(fleet_dir),
                   "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["agents"] == 2
        assert [epoch["machines"] for epoch in payload["epochs"]] == [4, 4]
        assert payload["epochs"][0]["scanned"] == 4
        # Work stealing may rebuild+rescan a machine on the other
        # agent in epoch 2; the rest skip via wire baselines.
        assert payload["epochs"][1]["skipped"] >= 1
        assert (payload["epochs"][1]["skipped"]
                + payload["epochs"][1]["scanned"]) == 4
        # fleet-status --json runs the index-vs-replay cross-check
        # (exit 1 on any disagreement), which now covers agent liveness.
        rc = main(["fleet-status", "--fleet-dir", str(fleet_dir),
                   "--json"])
        assert rc == 0
        status = json.loads(capsys.readouterr().out)
        assert status["index_replay_agreement"]["agree"]
        assert set(status["agents"]) == {"agent-0", "agent-1"}
