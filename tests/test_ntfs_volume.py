"""Tests for the NTFS volume facade."""

import pytest

from repro.errors import (DirectoryNotEmpty, FileExists, FileNotFound,
                          InvalidWin32Name, NotADirectory, VolumeError)
from repro.ntfs import NtfsVolume
from repro.ntfs.constants import DOS_FLAG_HIDDEN, RESIDENT_DATA_LIMIT


class TestCreation:
    def test_create_and_stat_file(self, volume):
        volume.create_directories("\\dir")
        stat = volume.create_file("\\dir\\a.txt", b"abc")
        assert stat.size == 3
        assert not stat.is_directory
        assert volume.stat("\\dir\\a.txt").name == "a.txt"

    def test_case_insensitive_lookup(self, volume):
        volume.create_file("\\File.TXT", b"x")
        assert volume.exists("\\FILE.txt")
        assert volume.stat("\\file.txt").name == "File.TXT"  # case kept

    def test_duplicate_rejected(self, volume):
        volume.create_file("\\a", b"")
        with pytest.raises(FileExists):
            volume.create_file("\\A", b"")

    def test_missing_parent_rejected(self, volume):
        with pytest.raises(FileNotFound):
            volume.create_file("\\no\\such\\file", b"")

    def test_file_as_parent_rejected(self, volume):
        volume.create_file("\\f", b"")
        with pytest.raises(NotADirectory):
            volume.create_file("\\f\\child", b"")

    def test_win32_invalid_name_rejected_by_default(self, volume):
        with pytest.raises(InvalidWin32Name):
            volume.create_file("\\bad.", b"")

    def test_native_create_allows_win32_illegal(self, volume):
        stat = volume.create_file("\\bad.", b"", native=True)
        assert stat.name == "bad."

    def test_create_directories_idempotent(self, volume):
        volume.create_directories("\\a\\b\\c")
        volume.create_directories("\\a\\b\\c")
        assert volume.is_directory("\\a\\b\\c")

    def test_dos_flags_recorded(self, volume):
        stat = volume.create_file("\\h.txt", b"", dos_flags=DOS_FLAG_HIDDEN)
        assert stat.dos_flags == DOS_FLAG_HIDDEN


class TestContent:
    def test_resident_roundtrip(self, volume):
        volume.create_file("\\small", b"tiny")
        assert volume.read_file("\\small") == b"tiny"

    def test_nonresident_roundtrip(self, volume):
        payload = bytes(range(256)) * 40   # > RESIDENT_DATA_LIMIT
        assert len(payload) > RESIDENT_DATA_LIMIT
        volume.create_file("\\big", payload)
        assert volume.read_file("\\big") == payload

    def test_rewrite_shrinks(self, volume):
        volume.create_file("\\f", b"x" * 5000)
        volume.write_file("\\f", b"now small")
        assert volume.read_file("\\f") == b"now small"
        assert volume.stat("\\f").size == 9

    def test_rewrite_grows_resident_to_nonresident(self, volume):
        volume.create_file("\\f", b"small")
        volume.write_file("\\f", b"y" * 10_000)
        assert volume.read_file("\\f") == b"y" * 10_000

    def test_append(self, volume):
        volume.create_file("\\log", b"one\n")
        volume.append_file("\\log", b"two\n")
        assert volume.read_file("\\log") == b"one\ntwo\n"

    def test_read_directory_fails(self, volume):
        volume.create_directory("\\d")
        with pytest.raises(VolumeError):
            volume.read_file("\\d")

    def test_cluster_reuse_after_delete(self, volume):
        volume.create_file("\\f1", b"a" * 9000)
        volume.delete_file("\\f1")
        volume.create_file("\\f2", b"b" * 9000)
        assert volume.read_file("\\f2") == b"b" * 9000


class TestDeletion:
    def test_delete_file(self, volume):
        volume.create_file("\\f", b"")
        volume.delete_file("\\f")
        assert not volume.exists("\\f")

    def test_delete_missing(self, volume):
        with pytest.raises(FileNotFound):
            volume.delete_file("\\nope")

    def test_delete_directory_requires_empty(self, volume):
        volume.create_directories("\\d")
        volume.create_file("\\d\\f", b"")
        with pytest.raises(DirectoryNotEmpty):
            volume.delete_directory("\\d")

    def test_recursive_delete(self, volume):
        volume.create_directories("\\d\\sub")
        volume.create_file("\\d\\f", b"")
        volume.create_file("\\d\\sub\\g", b"")
        volume.delete_directory("\\d", recursive=True)
        assert not volume.exists("\\d")

    def test_delete_file_on_directory_fails(self, volume):
        volume.create_directory("\\d")
        with pytest.raises(VolumeError):
            volume.delete_file("\\d")

    def test_root_cannot_be_deleted(self, volume):
        with pytest.raises(VolumeError):
            volume.delete_directory("\\")

    def test_record_number_reused(self, volume):
        stat1 = volume.create_file("\\a", b"")
        volume.delete_file("\\a")
        stat2 = volume.create_file("\\b", b"")
        assert stat2.record_no == stat1.record_no


class TestEnumeration:
    def test_list_directory_sorted(self, volume):
        for name in ("zeta", "alpha", "Mid"):
            volume.create_file(f"\\{name}", b"")
        names = [entry.name for entry in volume.list_directory("\\")]
        assert names == ["alpha", "Mid", "zeta"]

    def test_list_nondirectory_fails(self, volume):
        volume.create_file("\\f", b"")
        with pytest.raises(NotADirectory):
            volume.list_directory("\\f")

    def test_walk_covers_tree(self, volume):
        volume.create_directories("\\a\\b")
        volume.create_file("\\a\\f1", b"")
        volume.create_file("\\a\\b\\f2", b"")
        paths = {entry.path for entry in volume.walk()}
        assert paths == {"\\a", "\\a\\b", "\\a\\f1", "\\a\\b\\f2"}

    def test_file_count(self, volume):
        volume.create_directories("\\d")
        volume.create_file("\\d\\f", b"")
        assert volume.file_count() == 2


class TestMount:
    def test_mount_rebuilds_namespace(self, volume, disk):
        volume.create_directories("\\x\\y")
        volume.create_file("\\x\\y\\data.bin", b"D" * 4096)
        remounted = NtfsVolume.mount(disk)
        assert remounted.read_file("\\x\\y\\data.bin") == b"D" * 4096

    def test_mount_allows_further_writes(self, volume, disk):
        volume.create_file("\\keep", b"old")
        remounted = NtfsVolume.mount(disk)
        remounted.create_file("\\new", b"new")
        assert remounted.exists("\\keep")
        assert remounted.read_file("\\new") == b"new"

    def test_mount_continues_record_allocation(self, volume, disk):
        stats = [volume.create_file(f"\\f{i}", b"") for i in range(5)]
        remounted = NtfsVolume.mount(disk)
        new_stat = remounted.create_file("\\later", b"")
        assert new_stat.record_no > max(s.record_no for s in stats)
