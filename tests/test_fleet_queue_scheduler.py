"""Unit tests for the fleet work queue, scheduler, policy, aggregator."""

from __future__ import annotations

import json
import os

import pytest

from repro.clock import SimClock
from repro.errors import FleetError, StaleLease
from repro.fleet.aggregator import FleetAggregator, MachineVerdict
from repro.fleet.policy import EscalationPolicy
from repro.fleet.queue import WorkQueue
from repro.fleet.scheduler import (FleetHistory, FleetScheduler,
                                   load_history, stable_shard)


def open_queue(tmp_path, machines, shards=1, **kwargs):
    queue = WorkQueue(str(tmp_path), **kwargs)
    queue.open_epoch(1, {name: stable_shard(name, shards)
                         for name in machines})
    return queue


class TestWorkQueue:
    def test_lease_ack_drains_epoch(self, tmp_path):
        queue = open_queue(tmp_path, ["a", "b"])
        first = queue.lease(worker=0)
        second = queue.lease(worker=0)
        assert {first.machine, second.machine} == {"a", "b"}
        assert queue.lease(worker=0) is None
        queue.ack(first, verdict="clean")
        queue.ack(second, verdict="clean")
        assert queue.epoch_drained()
        queue.close_epoch()
        assert queue.epoch is None

    def test_close_refuses_while_work_outstanding(self, tmp_path):
        queue = open_queue(tmp_path, ["a"])
        with pytest.raises(FleetError, match="pending"):
            queue.close_epoch()

    def test_double_ack_raises_stale_lease(self, tmp_path):
        queue = open_queue(tmp_path, ["a"])
        lease = queue.lease(worker=0)
        queue.ack(lease, verdict="clean")
        with pytest.raises(StaleLease, match="already acked"):
            queue.ack(lease, verdict="clean")

    def test_expired_lease_is_requeued_and_late_ack_rejected(self, tmp_path):
        clock = SimClock()
        queue = open_queue(tmp_path, ["a"], clock=clock, lease_seconds=60.0)
        dead = queue.lease(worker=0)
        clock.advance(61.0)
        assert queue.expire_leases() == ["a"]
        # The machine went back to its shard; a new worker re-leases it.
        fresh = queue.lease(worker=1)
        assert fresh.machine == "a"
        assert fresh.token > dead.token
        # The dead worker wakes up and tries to ack its stale claim.
        with pytest.raises(StaleLease, match="superseded"):
            queue.ack(dead, verdict="clean")
        queue.ack(fresh, verdict="clean")
        assert queue.epoch_drained()

    def test_ack_after_expiry_without_requeue_rejected(self, tmp_path):
        clock = SimClock()
        queue = open_queue(tmp_path, ["a"], clock=clock, lease_seconds=60.0)
        lease = queue.lease(worker=0)
        clock.advance(120.0)
        with pytest.raises(StaleLease, match="expired"):
            queue.ack(lease, verdict="clean")

    def test_renew_extends_expiry(self, tmp_path):
        clock = SimClock()
        queue = open_queue(tmp_path, ["a"], clock=clock, lease_seconds=60.0)
        lease = queue.lease(worker=0)
        clock.advance(50.0)
        renewed = queue.renew(lease)
        assert renewed.expires_at == pytest.approx(110.0)
        clock.advance(50.0)    # 100s: stale for the old, live for the new
        queue.ack(renewed, verdict="clean")

    def test_wal_replay_restores_state(self, tmp_path):
        clock = SimClock()
        queue = open_queue(tmp_path, ["a", "b", "c"], clock=clock)
        leased = queue.lease(worker=0)
        queue.ack(queue.lease(worker=0), verdict="clean", scanned=True)
        del queue

        restarted = WorkQueue(str(tmp_path))
        assert restarted.epoch == 1
        assert len(restarted.acked_machines()) == 1
        assert leased.machine in restarted.leased_machines()
        assert restarted.pending_count() == 1
        # The restarted clock never runs behind the WAL's last record.
        assert restarted.clock.now() >= clock.now() - 1e-6

    def test_recover_leases_requeues_orphans(self, tmp_path):
        queue = open_queue(tmp_path, ["a", "b"])
        queue.lease(worker=0)
        restarted = WorkQueue(str(tmp_path))
        recovered = restarted.recover_leases()
        assert recovered == ["a"] or recovered == ["b"]
        assert restarted.pending_count() == 2
        assert not restarted.leased_machines()

    def test_torn_tail_line_is_skipped(self, tmp_path):
        queue = open_queue(tmp_path, ["a", "b"])
        queue.ack(queue.lease(worker=0), verdict="clean")
        with open(queue.path, "a", encoding="utf-8") as handle:
            handle.write('{"op": "ack", "machine": "b"')   # torn mid-write
        restarted = WorkQueue(str(tmp_path))
        # The torn ack is lost; machine b is simply still pending.
        assert len(restarted.acked_machines()) == 1
        assert restarted.pending_count() == 1

    def test_work_stealing_from_deepest_shard(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        # Shard 0 holds one machine, shard 1 holds three.
        queue.open_epoch(1, {"a0": 0, "b0": 1, "b1": 1, "b2": 1})
        own = queue.lease(worker=0)
        assert own.machine == "a0" and not own.stolen
        stolen = queue.lease(worker=0)   # own shard drained -> steal
        assert stolen.machine == "b0" and stolen.stolen
        assert stolen.shard == 1

    def test_compact_preserves_mid_epoch_state(self, tmp_path):
        queue = open_queue(tmp_path, ["a", "b", "c"])
        queue.ack(queue.lease(worker=0), verdict="clean")
        queue.lease(worker=0)            # outstanding lease -> requeued
        before = queue.compact()
        assert before["records_after"] < before["records_before"]
        restarted = WorkQueue(str(tmp_path))
        assert restarted.epoch == 1
        assert len(restarted.acked_machines()) == 1
        assert restarted.pending_count() == 2

    def test_compact_between_epochs_empties_wal(self, tmp_path):
        queue = open_queue(tmp_path, ["a"])
        queue.ack(queue.lease(worker=0), verdict="clean")
        queue.close_epoch()
        stats = queue.compact()
        assert stats["records_after"] == 0
        assert os.path.getsize(queue.path) == 0

    def test_fault_at_lease_site_loses_nothing(self, tmp_path):
        from repro.errors import TransientIoError
        from repro.faults import context as faults_context
        from repro.faults.plan import SITE_FLEET_LEASE, FaultPlan, FaultSpec

        plan = FaultPlan(seed=1, specs=(
            FaultSpec(SITE_FLEET_LEASE, mode="one_shot", rate=1.0,
                      kinds=("io_error",)),))
        queue = open_queue(tmp_path, ["a"])
        with faults_context.scoped(plan, clock=queue.clock):
            with pytest.raises(TransientIoError):
                queue.lease(worker=0)
            assert queue.pending_count() == 1   # machine still pending
            retry = queue.lease(worker=0)       # one-shot spent: succeeds
        assert retry.machine == "a"


class TestFleetScheduler:
    def test_stable_shard_is_deterministic_and_in_range(self):
        for shards in (1, 2, 5):
            for name in ("client-00", "client-01", "fleet-42"):
                value = stable_shard(name, shards)
                assert value == stable_shard(name, shards)
                assert 0 <= value < shards

    def test_never_scanned_machines_lead(self):
        history = FleetHistory()
        history.note_verdict(1, "seen", infected=True, confirmed=True,
                             errored=False)
        plan = FleetScheduler().plan(["seen", "new"], epoch=2,
                                     history=history)
        assert plan[0].machine == "new"

    def test_risk_outranks_staleness(self):
        history = FleetHistory()
        # Both seen last epoch; one was a confirmed detection.
        history.note_verdict(5, "hot", infected=True, confirmed=True,
                             errored=False)
        history.note_verdict(5, "cold", infected=False, confirmed=False,
                             errored=False)
        plan = FleetScheduler().plan(["cold", "hot"], epoch=6,
                                     history=history)
        assert plan[0].machine == "hot"
        assert plan[0].risk == pytest.approx(3.0)   # 1 det + 2x confirm

    def test_quarantine_bumps_risk(self):
        history = FleetHistory()
        history.note_verdict(1, "a", False, False, False)
        history.note_verdict(1, "b", False, False, False)
        plan = FleetScheduler().plan(["a", "b"], epoch=2, history=history,
                                     quarantined=["b"])
        assert plan[0].machine == "b"

    def test_lpt_breaks_score_ties(self):
        history = FleetHistory()
        for name in ("fast", "slow"):
            history.note_verdict(1, name, False, False, False)
        plan = FleetScheduler().plan(
            ["fast", "slow"], epoch=2, history=history,
            scan_seconds={"fast": 1.0, "slow": 300.0})
        assert plan[0].machine == "slow"

    def test_load_history_replays_journal(self, tmp_path):
        path = tmp_path / "epochs.jsonl"
        records = [
            {"type": "fleet-machine", "epoch": 1, "machine": "a",
             "verdict": "infected", "confirmed": True, "error": None},
            {"type": "fleet-machine", "epoch": 1, "machine": "b",
             "verdict": "error", "error": "boom"},
            {"type": "epoch-end", "epoch": 1},
        ]
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
            handle.write("{torn")
        history = load_history(str(path))
        assert history.last_epoch_no == 1
        assert history.detections["a"] == 1
        assert history.confirmations["a"] == 1
        assert history.failures["b"] == 1


class TestEscalationPolicy:
    def test_unknown_method_rejected(self):
        with pytest.raises(FleetError, match="unknown confirmation"):
            EscalationPolicy(confirm_with="prayer")

    def test_should_escalate_only_on_findings(self, booted):
        from repro.core.ghostbuster import GhostBuster

        policy = EscalationPolicy()
        clean = GhostBuster(booted).inside_scan(
            resources=("files",))
        assert not policy.should_escalate(clean)
        assert not EscalationPolicy(escalate=False).should_escalate(clean)

    @pytest.mark.parametrize("method", ["winpe", "vmscan"])
    def test_confirm_stamps_provenance(self, method, booted):
        from repro.core.ghostbuster import GhostBuster
        from repro.ghostware import HackerDefender

        HackerDefender().install(booted)
        inside = GhostBuster(booted, advanced=True).inside_scan(
            resources=("files", "registry"))
        policy = EscalationPolicy(confirm_with=method)
        assert policy.should_escalate(inside)
        outcome = policy.confirm(booted, inside)
        assert outcome.escalated and outcome.confirmed
        assert outcome.confirmed_by == method
        assert outcome.outside_report.confirmed_by == method
        assert outcome.outside_findings > 0
        assert booted.powered_on   # confirmation reboots the box


class TestFleetAggregator:
    @staticmethod
    def verdict(machine, epoch=1, verdict="clean", **kwargs):
        defaults = dict(machine=machine, epoch=epoch, verdict=verdict,
                        scanned=True)
        defaults.update(kwargs)
        return MachineVerdict(**defaults)

    def test_summary_counts(self):
        aggregator = FleetAggregator(epoch=1)
        aggregator.observe(self.verdict("a"))
        aggregator.observe(self.verdict("b", verdict="infected",
                                        findings=2, escalated=True,
                                        confirmed=True,
                                        confirmed_by="winpe"))
        aggregator.observe(self.verdict("c", verdict="error",
                                        scanned=False, error="boom"))
        summary = aggregator.summary
        assert (summary.machines, summary.clean, summary.infected,
                summary.errors) == (3, 1, 1, 1)
        assert summary.escalated == 1 and summary.confirmed == 1

    def test_outbreak_fires_at_threshold_once(self):
        aggregator = FleetAggregator(epoch=1, outbreak_threshold=3)
        ghost = ["file:\\windows\\hxdef100.exe"]
        assert not aggregator.observe(
            self.verdict("m1", verdict="infected", finding_ids=ghost))
        assert not aggregator.observe(
            self.verdict("m2", verdict="infected", finding_ids=ghost))
        alerts = aggregator.observe(
            self.verdict("m3", verdict="infected", finding_ids=ghost))
        assert len(alerts) == 1
        assert alerts[0].machines == ["m1", "m2", "m3"]
        # A fourth sighting does not re-alert.
        assert not aggregator.observe(
            self.verdict("m4", verdict="infected", finding_ids=ghost))
        assert aggregator.summary.outbreaks == 1

    def test_distinct_ghosts_alert_independently(self):
        aggregator = FleetAggregator(epoch=1, outbreak_threshold=2)
        fired = []
        for index, identity in enumerate(["g1", "g2"] * 2):
            fired += aggregator.observe(self.verdict(
                f"m{index}", verdict="infected", finding_ids=[identity]))
        assert sorted(alert.identity for alert in fired) == ["g1", "g2"]

    def test_verdict_round_trips_through_dict(self):
        original = self.verdict("a", verdict="infected", findings=3,
                                escalated=True, confirmed=True,
                                confirmed_by="vmscan",
                                finding_ids=["x"], mass_hiding=True)
        record = original.to_dict()
        assert record["type"] == "fleet-machine"
        assert MachineVerdict.from_dict(record) == original
