"""Tests for the simulated clock."""

import pytest

from repro.clock import SimClock


def test_starts_at_epoch():
    assert SimClock().now() == 0.0


def test_custom_start():
    assert SimClock(100.0).now() == 100.0


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        SimClock(-1.0)


def test_advance_accumulates():
    clock = SimClock()
    clock.advance(1.5)
    clock.advance(2.5)
    assert clock.now() == 4.0


def test_advance_backwards_rejected():
    clock = SimClock()
    with pytest.raises(ValueError):
        clock.advance(-0.1)


def test_zero_advance_allowed():
    clock = SimClock()
    clock.advance(0.0)
    assert clock.now() == 0.0


def test_stopwatch_measures_elapsed():
    clock = SimClock()
    watch = clock.stopwatch()
    clock.advance(7.0)
    assert watch.elapsed() == 7.0


def test_stopwatch_anchors_at_creation():
    clock = SimClock()
    clock.advance(5.0)
    watch = clock.stopwatch()
    clock.advance(3.0)
    assert watch.elapsed() == 3.0
