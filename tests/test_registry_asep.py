"""Tests for the ASEP catalog and hook enumeration."""

from typing import Dict, List, Optional

import pytest

from repro.registry.asep import (ASEP_CATALOG, AsepHook, AsepKind,
                                 ValueView, enumerate_asep_hooks)


class FakeReader:
    """In-memory reader implementing the protocol."""

    def __init__(self):
        self.subkeys: Dict[str, List[str]] = {}
        self.values: Dict[str, List[ValueView]] = {}

    def _k(self, path: str) -> str:
        return path.casefold()

    def key_exists(self, path: str) -> bool:
        return self._k(path) in self.subkeys or self._k(path) in self.values

    def enum_subkeys(self, path: str) -> List[str]:
        return self.subkeys.get(self._k(path), [])

    def enum_values(self, path: str) -> List[ValueView]:
        return self.values.get(self._k(path), [])

    def get_value(self, path: str, name: str) -> Optional[ValueView]:
        for view in self.values.get(self._k(path), []):
            if view.name.casefold() == name.casefold():
                return view
        return None

    def add_key(self, path: str, *subkeys: str):
        self.subkeys.setdefault(self._k(path), []).extend(subkeys)

    def add_value(self, path: str, name: str, data: str, reg_type: int = 1):
        self.subkeys.setdefault(self._k(path), [])
        self.values.setdefault(self._k(path), []).append(
            ValueView(name, reg_type, data))


SERVICES = "HKLM\\SYSTEM\\CurrentControlSet\\Services"
RUN = "HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run"
WINDOWS_NT = "HKLM\\SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion\\Windows"
BHO = ("HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Explorer"
       "\\Browser Helper Objects")


class TestCatalog:
    def test_catalog_idents_unique(self):
        idents = [location.ident for location in ASEP_CATALOG]
        assert len(idents) == len(set(idents))

    def test_catalog_covers_paper_aseps(self):
        paths = {location.key_path for location in ASEP_CATALOG}
        assert SERVICES in paths
        assert RUN in paths
        assert any("AppInit" in (location.value_name or "")
                   for location in ASEP_CATALOG)


class TestEnumeration:
    def test_service_hooks(self):
        reader = FakeReader()
        reader.add_key(SERVICES, "Spooler")
        reader.add_value(f"{SERVICES}\\Spooler", "ImagePath", "spool.exe")
        hooks = enumerate_asep_hooks(reader)
        assert AsepHook("services", SERVICES, "Spooler",
                        "spool.exe") in hooks

    def test_service_without_imagepath(self):
        reader = FakeReader()
        reader.add_key(SERVICES, "Broken")
        hooks = enumerate_asep_hooks(reader)
        assert any(hook.name == "Broken" and hook.data == ""
                   for hook in hooks)

    def test_run_values_each_a_hook(self):
        reader = FakeReader()
        reader.add_value(RUN, "a", "a.exe")
        reader.add_value(RUN, "b", "b.exe")
        hooks = [hook for hook in enumerate_asep_hooks(reader)
                 if hook.location == "run"]
        assert {hook.name for hook in hooks} == {"a", "b"}

    def test_appinit_splits_dll_list(self):
        reader = FakeReader()
        reader.add_value(WINDOWS_NT, "AppInit_DLLs", "one.dll, two.dll")
        hooks = [hook for hook in enumerate_asep_hooks(reader)
                 if hook.location == "appinit_dlls"]
        assert {hook.data for hook in hooks} == {"one.dll", "two.dll"}

    def test_appinit_empty_produces_no_hooks(self):
        reader = FakeReader()
        reader.add_value(WINDOWS_NT, "AppInit_DLLs", "")
        hooks = [hook for hook in enumerate_asep_hooks(reader)
                 if hook.location == "appinit_dlls"]
        assert hooks == []

    def test_bho_subkeys(self):
        reader = FakeReader()
        reader.add_key(BHO, "{CLSID-1}")
        hooks = [hook for hook in enumerate_asep_hooks(reader)
                 if hook.location == "browser_helper_objects"]
        assert hooks[0].name == "{CLSID-1}"

    def test_absent_locations_skipped(self):
        assert enumerate_asep_hooks(FakeReader()) == []


class TestHookIdentity:
    def test_identity_case_insensitive(self):
        a = AsepHook("run", RUN, "Loader", "X.EXE")
        b = AsepHook("run", RUN.upper(), "loader", "x.exe")
        assert a.identity == b.identity

    def test_identity_distinguishes_data(self):
        a = AsepHook("run", RUN, "loader", "good.exe")
        b = AsepHook("run", RUN, "loader", "evil.exe")
        assert a.identity != b.identity

    def test_describe_includes_target(self):
        hook = AsepHook("run", RUN, "loader", "x.exe")
        assert "loader" in hook.describe()
        assert "x.exe" in hook.describe()
