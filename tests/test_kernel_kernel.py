"""Tests for the Kernel facade."""

import pytest

from repro.errors import NoSuchProcess
from repro.kernel import Kernel
from repro.kernel.objects import EprocessView
from repro.kernel.process_list import walk_process_list


@pytest.fixture
def kernel():
    return Kernel()


def linked_names(kernel):
    return [EprocessView(kernel.memory, address).name for address in
            walk_process_list(kernel.memory,
                              kernel.process_list.head_address)]


class TestProcessLifecycle:
    def test_create_assigns_multiple_of_four_pids(self, kernel):
        first = kernel.create_process("a")
        second = kernel.create_process("b")
        assert first.pid == 4
        assert second.pid == 8

    def test_create_links_into_list(self, kernel):
        kernel.create_process("System")
        kernel.create_process("app.exe")
        assert linked_names(kernel) == ["System", "app.exe"]

    def test_create_registers_one_thread(self, kernel):
        proc = kernel.create_process("a")
        assert len(proc.threads) == 1
        assert proc.threads[0] in kernel.thread_table.thread_addresses()

    def test_add_thread(self, kernel):
        proc = kernel.create_process("a")
        kernel.add_thread(proc.pid)
        assert len(proc.threads) == 2
        view = EprocessView(kernel.memory, proc.eprocess_address)
        assert view.thread_count == 2

    def test_terminate_removes_everything(self, kernel):
        proc = kernel.create_process("a")
        kernel.terminate_process(proc.pid)
        assert linked_names(kernel) == []
        assert kernel.thread_table.thread_addresses() == []
        with pytest.raises(NoSuchProcess):
            kernel.process(proc.pid)

    def test_terminate_unknown_pid(self, kernel):
        with pytest.raises(NoSuchProcess):
            kernel.terminate_process(999)

    def test_terminate_dkom_hidden_process(self, kernel):
        proc = kernel.create_process("ghost")
        kernel.process_list.unlink(proc.eprocess_address)
        kernel.terminate_process(proc.pid)   # must not corrupt the list
        assert linked_names(kernel) == []

    def test_find_process(self, kernel):
        kernel.create_process("Explorer.EXE")
        assert kernel.find_process("explorer.exe") is not None
        assert kernel.find_process("absent") is None


class TestModules:
    def test_load_module_updates_both_views(self, kernel):
        proc = kernel.create_process("a")
        kernel.load_module(proc.pid, "C:\\x.dll")
        assert kernel.module_table_view(proc.pid).module_paths() == \
            ["C:\\x.dll"]
        assert kernel.peb_view(proc.pid).module_paths() == ["C:\\x.dll"]

    def test_peb_tamper_leaves_kernel_truth(self, kernel):
        proc = kernel.create_process("a")
        kernel.load_module(proc.pid, "C:\\vanquish.dll")
        kernel.peb_view(proc.pid).blank_module_path("vanquish")
        assert kernel.peb_view(proc.pid).module_paths() == [""]
        assert kernel.module_table_view(proc.pid).module_paths() == \
            ["C:\\vanquish.dll"]

    def test_many_modules_grow_tables(self, kernel):
        proc = kernel.create_process("a")
        for index in range(30):
            kernel.load_module(proc.pid, f"C:\\m{index}.dll")
        assert len(kernel.module_table_view(proc.pid).module_paths()) == 30


class TestDrivers:
    def test_load_and_enumerate(self, kernel):
        kernel.load_driver("one.sys")
        kernel.load_driver("two.sys")
        assert kernel.drivers() == ["one.sys", "two.sys"]

    def test_unlink_driver(self, kernel):
        address = kernel.load_driver("hide.sys")
        kernel.load_driver("keep.sys")
        kernel.unlink_driver(address)
        assert kernel.drivers() == ["keep.sys"]


class TestServices:
    def test_query_system_information_walks_list(self, kernel):
        kernel.io_manager = None
        kernel.registry = None
        kernel.install_default_services()
        kernel.create_process("System")
        kernel.create_process("app.exe")
        from repro.kernel.ssdt import Syscall
        infos = kernel.syscall(Syscall.QUERY_SYSTEM_INFORMATION, 4)
        assert [info.name for info in infos] == ["System", "app.exe"]

    def test_query_information_process_reads_peb(self, kernel):
        kernel.io_manager = None
        kernel.registry = None
        kernel.install_default_services()
        proc = kernel.create_process("a")
        kernel.load_module(proc.pid, "C:\\m.dll")
        from repro.kernel.ssdt import Syscall
        paths = kernel.syscall(Syscall.QUERY_INFORMATION_PROCESS, 4,
                               proc.pid)
        assert paths == ["C:\\m.dll"]

    def test_blanked_peb_entry_dropped_from_api_answer(self, kernel):
        kernel.io_manager = None
        kernel.registry = None
        kernel.install_default_services()
        proc = kernel.create_process("a")
        kernel.load_module(proc.pid, "C:\\vanquish.dll")
        kernel.peb_view(proc.pid).blank_module_path("vanquish")
        from repro.kernel.ssdt import Syscall
        paths = kernel.syscall(Syscall.QUERY_INFORMATION_PROCESS, 4,
                               proc.pid)
        assert paths == []


class TestDiskPort:
    def test_port_reads_disk(self, kernel, disk):
        disk.write_bytes(0, b"BOOT")
        port = kernel.attach_disk(disk)
        assert port.read_bytes(0, 4) == b"BOOT"

    def test_read_filter_interposes(self, kernel, disk):
        disk.write_bytes(0, b"TRUTH")
        port = kernel.attach_disk(disk)
        port.read_filters.append(
            lambda offset, length, data: data.replace(b"TRUTH", b"LIES!"))
        assert port.read_bytes(0, 5) == b"LIES!"
        assert disk.read_bytes(0, 5) == b"TRUTH"   # physical disk honest
