"""Tests for the RIS network boot, the CM-callback ghost, and BhoSpyware."""

import pytest

from repro.core import GhostBuster, RisServer
from repro.ghostware import BhoSpyware, CmCallbackGhost, HackerDefender
from repro.machine import RUN_KEY
from repro.workloads import attach_standard_services


class TestCmCallbackGhost:
    def test_hides_run_hook_from_every_process(self, booted):
        CmCallbackGhost().install(booted)
        probe = booted.start_process("\\Windows\\explorer.exe",
                                     name="probe.exe")
        views = probe.call("advapi32", "RegEnumValue", RUN_KEY)
        assert all(view.name != "cmghost" for view in views)
        # No per-process hook anywhere — the lie lives in the kernel:
        assert not probe.code_site("ntdll", "NtEnumerateValueKey").patched
        assert probe.iat == {}

    def test_detected_by_registry_diff(self, booted):
        CmCallbackGhost().install(booted)
        report = GhostBuster(booted).inside_scan(resources=("registry",))
        names = {finding.entry.name for finding in report.hidden_hooks()}
        assert "cmghost" in names

    def test_native_api_also_lied_to(self, booted):
        """The callback sits below NtDll: even Native calls see the lie
        — only the raw hive parse is beneath it."""
        CmCallbackGhost().install(booted)
        probe = booted.start_process("\\Windows\\explorer.exe",
                                     name="probe.exe")
        values = probe.call("ntdll", "NtEnumerateValueKey", RUN_KEY)
        assert all(value.name != "cmghost" for value in values)

    def test_survives_reboot(self, booted):
        CmCallbackGhost().install(booted)
        booted.reboot()
        report = GhostBuster(booted).inside_scan(resources=("registry",))
        assert not report.is_clean


class TestBhoSpyware:
    def test_bho_subkey_hidden(self, booted):
        ghost = BhoSpyware()
        ghost.install(booted)
        report = GhostBuster(booted).inside_scan(resources=("registry",))
        locations = {finding.entry.location
                     for finding in report.hidden_hooks()}
        assert "browser_helper_objects" in locations

    def test_dll_hidden(self, booted):
        BhoSpyware().install(booted)
        report = GhostBuster(booted).inside_scan(resources=("files",))
        files = {finding.entry.path for finding in report.hidden_files()}
        assert "\\Program Files\\Common\\searchhelper.dll" in files

    def test_loader_run_hook_visible(self, booted):
        """Only the BHO is hidden; the loader's Run hook shows —
        realistic partial stealth."""
        BhoSpyware().install(booted)
        probe = booted.start_process("\\Windows\\explorer.exe",
                                     name="probe.exe")
        views = probe.call("advapi32", "RegEnumValue", RUN_KEY)
        assert any(view.name == "CommonLoader" for view in views)


class TestRisServer:
    def test_network_boot_scan_detects(self, booted):
        HackerDefender().install(booted)
        report = RisServer().network_boot_scan(booted)
        files = {finding.entry.path for finding in report.hidden_files()}
        assert "\\Windows\\hxdef100.exe" in files
        assert booted.powered_on   # client rebooted back into service

    def test_network_boot_faster_than_cd(self, booted):
        report = RisServer().network_boot_scan(booted)
        assert report.durations["network-boot"] < 110

    def test_noise_filtering_applies(self, booted):
        attach_standard_services(booted)
        report = RisServer().network_boot_scan(booted, background_gap=60)
        assert report.is_clean
        assert len(report.noise()) == 2

    def test_fleet_sweep(self):
        from repro.machine import Machine
        machines = []
        for index in range(3):
            machine = Machine(f"client-{index}", disk_mb=256,
                              max_records=8192)
            machine.boot()
            machines.append(machine)
        HackerDefender().install(machines[1])
        result = RisServer().sweep(machines)
        assert result.infected_machines == ["client-1"]
        assert "client-1" in result.summary()

    def test_reboot_after_false(self, booted):
        RisServer().network_boot_scan(booted, reboot_after=False)
        assert not booted.powered_on
