"""Tests for simulated kernel memory."""

import pytest

from repro.errors import KernelError
from repro.kernel.memory import KernelMemory


@pytest.fixture
def memory():
    return KernelMemory()


class TestAllocation:
    def test_alloc_returns_distinct_addresses(self, memory):
        a = memory.alloc(32)
        b = memory.alloc(32)
        assert a != b

    def test_alloc_zeroed(self, memory):
        address = memory.alloc(16)
        assert memory.read(address, 16) == b"\x00" * 16

    def test_zero_size_rejected(self, memory):
        with pytest.raises(KernelError):
            memory.alloc(0)

    def test_free_then_wild_read(self, memory):
        address = memory.alloc(8)
        memory.free(address)
        with pytest.raises(KernelError):
            memory.read(address, 8)

    def test_double_free_rejected(self, memory):
        address = memory.alloc(8)
        memory.free(address)
        with pytest.raises(KernelError):
            memory.free(address)

    def test_is_allocated(self, memory):
        address = memory.alloc(8)
        assert memory.is_allocated(address)
        assert not memory.is_allocated(address + 1)


class TestAccess:
    def test_write_read_roundtrip(self, memory):
        address = memory.alloc(64)
        memory.write(address + 8, b"payload")
        assert memory.read(address + 8, 7) == b"payload"

    def test_interior_pointer_read(self, memory):
        address = memory.alloc(64)
        memory.write(address, bytes(range(64)))
        assert memory.read(address + 10, 4) == bytes([10, 11, 12, 13])

    def test_cross_block_access_rejected(self, memory):
        address = memory.alloc(16)
        memory.alloc(16)
        with pytest.raises(KernelError):
            memory.read(address, 32)

    def test_wild_pointer_rejected(self, memory):
        with pytest.raises(KernelError):
            memory.read(0x1234, 4)

    def test_u32_u64_helpers(self, memory):
        address = memory.alloc(16)
        memory.write_u32(address, 0xCAFEBABE)
        memory.write_u64(address + 8, 0x1122334455667788)
        assert memory.read_u32(address) == 0xCAFEBABE
        assert memory.read_u64(address + 8) == 0x1122334455667788


class TestRegions:
    def test_regions_sorted_and_complete(self, memory):
        a = memory.alloc(8)
        b = memory.alloc(8)
        memory.write(b, b"BBBBBBBB")
        regions = list(memory.regions())
        assert [address for address, __ in regions] == [a, b]
        assert regions[1][1] == b"BBBBBBBB"

    def test_allocated_bytes(self, memory):
        memory.alloc(10)
        memory.alloc(20)
        assert memory.allocated_bytes() == 30
