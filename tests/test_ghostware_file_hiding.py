"""Per-program tests: file-hiding behaviour (Figure 2 / Figure 3)."""

import pytest

from repro.ghostware import (AdvancedHideFolders, Aphex, FileFolderProtector,
                             HackerDefender, HideFiles, HideFoldersXP,
                             Mersting, ProBotSE, Urbin, Vanquish)
from repro.ntfs import parse_volume
from repro.errors import AccessDenied

from tests.conftest import win32_ls, win32_walk


def raw_paths(machine):
    return {entry.path.casefold() for entry in parse_volume(machine.disk)}


def api_paths(machine, name="checker.exe"):
    probe = machine.process_by_name(name) or \
        machine.start_process("\\Windows\\explorer.exe", name=name)
    return {path.casefold() for path in win32_walk(probe)}


class TestUrbinMersting:
    @pytest.mark.parametrize("ghost_cls,dll", [(Urbin, "msvsres.dll"),
                                               (Mersting, "kbddfl.dll")])
    def test_dll_hidden_from_api_present_on_disk(self, booted, ghost_cls,
                                                 dll):
        ghost_cls().install(booted)
        dll_path = f"\\windows\\system32\\{dll}"
        assert dll_path not in api_paths(booted)
        assert dll_path in raw_paths(booted)

    def test_iat_hook_is_the_mechanism(self, booted):
        Urbin().install(booted)
        probe = booted.start_process("\\Windows\\explorer.exe",
                                     name="probe.exe")
        assert ("kernel32", "FindFirstFile") in probe.iat

    def test_survives_reboot_via_appinit(self, booted):
        Urbin().install(booted)
        booted.reboot()
        assert "\\windows\\system32\\msvsres.dll" not in api_paths(booted)


class TestVanquish:
    def test_hides_all_vanquish_files(self, booted):
        Vanquish().install(booted)
        visible = api_paths(booted)
        assert not any("vanquish" in path for path in visible)
        assert "\\windows\\vanquish.exe" in raw_paths(booted)
        assert "\\vanquish.log" in raw_paths(booted)

    def test_patch_is_inline_call_kind(self, booted):
        Vanquish().install(booted)
        probe = booted.start_process("\\Windows\\explorer.exe",
                                     name="probe.exe")
        site = probe.code_site("kernel32", "FindFirstFile")
        assert site.patched
        assert site.patch.visible_in_stack   # call-style, shows in traces

    def test_new_user_files_matching_pattern_hidden(self, booted):
        Vanquish().install(booted)
        booted.volume.create_file("\\Temp\\my_vanquish_notes.txt", b"")
        assert "\\temp\\my_vanquish_notes.txt" not in api_paths(booted)


class TestAphex:
    def test_prefix_files_hidden(self, booted):
        Aphex().install(booted)
        booted.volume.create_file("\\Temp\\~secret.dat", b"")
        booted.volume.create_file("\\Temp\\normal.dat", b"")
        visible = api_paths(booted)
        assert "\\temp\\normal.dat" in visible
        assert "\\temp\\~secret.dat" not in visible

    def test_custom_prefix(self, booted):
        Aphex(prefix="$$").install(booted)
        booted.volume.create_file("\\Temp\\$$x.txt", b"")
        assert "\\temp\\$$x.txt" not in api_paths(booted)

    def test_detour_kind(self, booted):
        Aphex().install(booted)
        probe = booted.start_process("\\Windows\\explorer.exe",
                                     name="probe.exe")
        site = probe.code_site("kernel32", "FindNextFile")
        assert site.patched
        assert not site.patch.visible_in_stack   # jmp detour


class TestHackerDefender:
    def test_ini_patterns_drive_hiding(self, booted):
        HackerDefender().install(booted)
        booted.volume.create_file("\\Temp\\hxdef_extra.dat", b"")
        visible = api_paths(booted)
        assert not any("hxdef" in path for path in visible)

    def test_hides_at_ntdll_level(self, booted):
        """Kernel32's code is pristine; the detour sits in NtDll."""
        HackerDefender().install(booted)
        probe = booted.start_process("\\Windows\\explorer.exe",
                                     name="probe.exe")
        assert not probe.code_site("kernel32", "FindFirstFile").patched
        assert probe.code_site("ntdll", "NtQueryDirectoryFile").patched

    def test_extra_patterns_parameter(self, booted):
        HackerDefender(extra_patterns=["covert*"]).install(booted)
        booted.volume.create_file("\\Temp\\covert_payload.bin", b"")
        assert "\\temp\\covert_payload.bin" not in api_paths(booted)

    def test_driver_not_hidden_from_driver_list(self, booted):
        HackerDefender().install(booted)
        assert "hxdefdrv.sys" in booted.kernel.drivers()


class TestProBot:
    def test_four_binaries_hidden(self, booted):
        probot = ProBotSE()
        probot.install(booted)
        visible = api_paths(booted)
        for path in (probot.exe_path, probot.dll_path, probot.driver_path,
                     probot.kbd_driver_path):
            assert path.casefold() not in visible
            assert path.casefold() in raw_paths(booted)

    def test_ssdt_hook_affects_every_process(self, booted):
        """Kernel-level hook: even a process with pristine user code is
        lied to."""
        probot = ProBotSE()
        probot.install(booted)
        fresh = booted.start_processes = booted.start_process(
            "\\Windows\\explorer.exe", name="pristine.exe")
        assert not fresh.code_site("ntdll", "NtQueryDirectoryFile").patched
        names = win32_ls(fresh, "\\Windows\\System32")
        assert probot.exe_path.rsplit("\\", 1)[-1] not in names

    def test_deterministic_names(self):
        assert ProBotSE(seed=1).exe_path == ProBotSE(seed=1).exe_path
        assert ProBotSE(seed=1).exe_path != ProBotSE(seed=2).exe_path

    def test_hidden_keystroke_log(self, booted):
        probot = ProBotSE()
        probot.install(booted)
        probot.log_keystrokes(booted, "password123\n")
        assert probot.log_path.casefold() not in api_paths(booted)
        assert probot.log_path.casefold() in raw_paths(booted)


class TestCommercialFileHiders:
    @pytest.mark.parametrize("hider_cls", [HideFiles, HideFoldersXP,
                                           AdvancedHideFolders,
                                           FileFolderProtector])
    def test_user_selected_file_hidden(self, booted, hider_cls):
        booted.volume.create_directories("\\Secret")
        booted.volume.create_file("\\Secret\\diary.txt", b"")
        hider = hider_cls(hidden_paths=["\\Secret"])
        hider.install(booted)
        visible = api_paths(booted)
        assert "\\secret" not in visible
        assert "\\secret\\diary.txt" not in visible
        assert "\\secret\\diary.txt" in raw_paths(booted)

    def test_folder_subtree_hidden(self, booted):
        booted.volume.create_directories("\\Hidden\\deep")
        booted.volume.create_file("\\Hidden\\deep\\f.txt", b"")
        hider = HideFoldersXP(hidden_paths=["\\Hidden"])
        hider.install(booted)
        assert not any(path.startswith("\\hidden")
                       for path in api_paths(booted))

    def test_deny_open_variants_block_reads(self, booted):
        booted.volume.create_file("\\Temp\\locked.txt", b"secret")
        hider = AdvancedHideFolders(hidden_paths=["\\Temp\\locked.txt"])
        hider.install(booted)
        probe = booted.start_process("\\Windows\\explorer.exe",
                                     name="probe.exe")
        with pytest.raises(AccessDenied):
            probe.call("kernel32", "ReadFile", "\\Temp\\locked.txt")

    def test_configuration_ui_exempt(self, booted):
        booted.volume.create_file("\\Temp\\mine.txt", b"")
        hider = HideFiles(hidden_paths=["\\Temp\\mine.txt"])
        hider.install(booted)
        ui = booted.start_process(hider.exe_path)
        assert "mine.txt" in win32_ls(ui, "\\Temp")
        other = booted.start_process("\\Windows\\explorer.exe",
                                     name="other.exe")
        assert "mine.txt" not in win32_ls(other, "\\Temp")

    def test_hide_path_at_runtime(self, booted):
        hider = HideFiles()
        hider.install(booted)
        booted.volume.create_file("\\Temp\\later.txt", b"")
        hider.hide_path(booted, "\\Temp\\later.txt")
        assert "\\temp\\later.txt" not in api_paths(booted)


class TestIatChaining:
    def test_two_iat_hookers_compose(self, booted):
        """Regression: Urbin and Mersting both IAT-hook the same imports;
        the second must chain through the first, not clobber it."""
        Urbin().install(booted)
        Mersting().install(booted)
        visible = api_paths(booted)
        assert "\\windows\\system32\\msvsres.dll" not in visible
        assert "\\windows\\system32\\kbddfl.dll" not in visible


class TestPerProcessScoping:
    def test_file_folder_protector_scopes_by_irp(self, booted):
        """The paper: 'The filter driver can scope the file-hiding
        behavior to specific processes by examining the IRP.'"""
        booted.volume.create_file("\\Temp\\mine.txt", b"")
        hider = FileFolderProtector(hidden_paths=["\\Temp\\mine.txt"])
        hider.install(booted)
        victim = booted.start_process("\\Windows\\explorer.exe",
                                      name="victim.exe")
        bystander = booted.start_process("\\Windows\\explorer.exe",
                                         name="bystander.exe")
        hider.scope_to_processes([victim.pid])
        assert "mine.txt" not in win32_ls(victim, "\\Temp")
        assert "mine.txt" in win32_ls(bystander, "\\Temp")

    def test_scoped_hiding_still_caught_by_injected_scan(self, booted):
        """Per-process scoping is just another targeting flavour: the
        injected-DLL extension sees it from inside the scoped victim."""
        from repro.core.injection_ext import injected_scan
        booted.volume.create_file("\\Temp\\mine.txt", b"")
        hider = FileFolderProtector(hidden_paths=["\\Temp\\mine.txt"])
        hider.install(booted)
        victim = booted.start_process("\\Windows\\explorer.exe",
                                      name="victim.exe")
        hider.scope_to_processes([victim.pid])
        result = injected_scan(booted, resources=("files",))
        assert "victim.exe" in result.detecting_processes
