"""Tests for the virtual disk layer."""

import pytest

from repro.disk import Disk, DiskGeometry
from repro.errors import DiskError


@pytest.fixture
def small_disk():
    return Disk(DiskGeometry(sector_count=128))


class TestGeometry:
    def test_size_bytes(self):
        geometry = DiskGeometry(sector_count=100, sector_size=512)
        assert geometry.size_bytes == 51_200

    def test_from_megabytes(self):
        geometry = DiskGeometry.from_megabytes(1)
        assert geometry.size_bytes == 1024 * 1024

    def test_rejects_nonpositive_sectors(self):
        with pytest.raises(ValueError):
            DiskGeometry(sector_count=0)

    def test_rejects_bad_sector_size(self):
        with pytest.raises(ValueError):
            DiskGeometry(sector_count=10, sector_size=100)

    def test_rejects_nonpositive_megabytes(self):
        with pytest.raises(ValueError):
            DiskGeometry.from_megabytes(0)


class TestSectorAccess:
    def test_unwritten_reads_zero(self, small_disk):
        assert small_disk.read_sector(5) == b"\x00" * 512

    def test_write_read_roundtrip(self, small_disk):
        payload = bytes(range(256)) * 2
        small_disk.write_sector(3, payload)
        assert small_disk.read_sector(3) == payload

    def test_write_wrong_size_rejected(self, small_disk):
        with pytest.raises(DiskError):
            small_disk.write_sector(0, b"short")

    def test_out_of_range_sector(self, small_disk):
        with pytest.raises(DiskError):
            small_disk.read_sector(128)
        with pytest.raises(DiskError):
            small_disk.read_sector(-1)


class TestByteAccess:
    def test_cross_sector_write_read(self, small_disk):
        data = b"A" * 1000
        small_disk.write_bytes(500, data)
        assert small_disk.read_bytes(500, 1000) == data

    def test_unaligned_write_preserves_neighbours(self, small_disk):
        small_disk.write_sector(0, b"\xff" * 512)
        small_disk.write_bytes(100, b"mid")
        sector = small_disk.read_sector(0)
        assert sector[99] == 0xFF
        assert sector[100:103] == b"mid"
        assert sector[103] == 0xFF

    def test_zero_length_operations(self, small_disk):
        small_disk.write_bytes(0, b"")
        assert small_disk.read_bytes(0, 0) == b""

    def test_read_past_end_rejected(self, small_disk):
        with pytest.raises(DiskError):
            small_disk.read_bytes(small_disk.geometry.size_bytes - 10, 20)

    def test_write_past_end_rejected(self, small_disk):
        with pytest.raises(DiskError):
            small_disk.write_bytes(small_disk.geometry.size_bytes - 1,
                                   b"xx")

    def test_negative_read_length(self, small_disk):
        with pytest.raises(DiskError):
            small_disk.read_bytes(0, -5)


class TestMaintenance:
    def test_used_bytes_counts_written_sectors(self, small_disk):
        assert small_disk.used_bytes() == 0
        small_disk.write_bytes(0, b"x")
        assert small_disk.used_bytes() == 512

    def test_written_sectors_sorted(self, small_disk):
        small_disk.write_bytes(10 * 512, b"b")
        small_disk.write_bytes(2 * 512, b"a")
        indices = [index for index, __ in small_disk.written_sectors()]
        assert indices == [2, 10]

    def test_clone_is_independent(self, small_disk):
        small_disk.write_bytes(0, b"original")
        copy = small_disk.clone()
        copy.write_bytes(0, b"modified")
        assert small_disk.read_bytes(0, 8) == b"original"
        assert copy.read_bytes(0, 8) == b"modified"
