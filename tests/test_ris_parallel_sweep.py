"""Parallel RIS fleet sweeps: determinism, fault isolation, stats.

Section 5's enterprise deployment at scale: the sweep must produce the
same findings whether clients are scanned one at a time or eight at a
time, one broken client must not take the fleet sweep down with it, and
the result carries enough stats to reason about sweep cost.
"""

from __future__ import annotations

from repro.core import RisServer
from repro.ghostware import HackerDefender
from repro.machine import Machine

INFECTED = (2, 7, 11)


def _fleet(count, infected=(), prefix="client"):
    machines = []
    for index in range(count):
        machine = Machine(f"{prefix}-{index:02d}", disk_mb=256,
                          max_records=8192)
        machine.boot()
        if index in infected:
            HackerDefender().install(machine)
        machines.append(machine)
    return machines


def _finding_identities(report):
    return sorted((f.resource_type.value, str(f.entry.identity))
                  for f in report.findings if not f.is_noise)


class TestParallelDeterminism:
    def test_serial_and_parallel_sweeps_agree(self):
        fleet = _fleet(16, infected=INFECTED)
        expected = sorted(f"client-{i:02d}" for i in INFECTED)

        serial = RisServer().sweep(fleet, max_workers=1)
        parallel = RisServer().sweep(fleet, max_workers=8)

        assert serial.infected_machines == expected
        assert parallel.infected_machines == expected
        for name in serial.reports:
            assert _finding_identities(serial.reports[name]) == \
                _finding_identities(parallel.reports[name])

    def test_report_order_matches_input_order(self):
        fleet = _fleet(6)
        result = RisServer().sweep(fleet, max_workers=4)
        assert list(result.reports) == [m.name for m in fleet]

    def test_worker_count_clamped_to_fleet_size(self):
        fleet = _fleet(2)
        result = RisServer().sweep(fleet, max_workers=16)
        assert result.worker_count == 2


class TestFaultIsolation:
    def test_failing_client_records_error_not_abort(self):
        fleet = _fleet(4, infected=(1,))
        # Never booted: its scan raises MachineStateError mid-sweep.
        broken = Machine("client-broken", disk_mb=256, max_records=8192)
        fleet.insert(2, broken)

        result = RisServer().sweep(fleet, max_workers=4)

        assert "client-broken" in result.errors
        assert "MachineStateError" in result.errors["client-broken"]
        assert result.reports["client-broken"].mode == "ris-error"
        assert result.reports["client-broken"].is_clean
        assert result.infected_machines == ["client-01"]
        assert len(result.reports) == 5
        assert "ERROR" in result.summary()


class TestSweepStats:
    def test_stats_populated(self):
        fleet = _fleet(3)
        result = RisServer().sweep(fleet, max_workers=2)
        assert result.worker_count == 2
        assert result.wall_seconds > 0
        assert result.simulated_seconds > 0
        assert f"{result.worker_count} worker(s)" in result.summary()

    def test_parallel_overlaps_client_latency(self):
        fleet = _fleet(8)
        server = RisServer(client_wait_seconds=0.05)
        serial = server.sweep(fleet, max_workers=1)
        parallel = server.sweep(fleet, max_workers=8)
        # 8 × 50 ms of per-client wait collapses to ~one wait slice.
        assert parallel.wall_seconds < serial.wall_seconds * 0.75
