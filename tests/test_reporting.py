"""Tests for report serialization."""

import json

import pytest

from repro.core import (GhostBuster, load_report_dict, report_to_dict,
                        report_to_json, save_report_to_volume)
from repro.core.reporting import summarize_findings
from repro.ghostware import HackerDefender, RegistryNamingGhost


class TestJsonReports:
    def test_clean_report_roundtrip(self, booted):
        report = GhostBuster(booted).inside_scan(resources=("processes",))
        document = load_report_dict(report_to_json(report))
        assert document["verdict"] == "clean"
        assert document["machine"] == booted.name
        assert document["findings"] == []

    def test_infected_report_content(self, booted):
        HackerDefender().install(booted)
        report = GhostBuster(booted, advanced=True).inside_scan()
        document = report_to_dict(report)
        assert document["verdict"] == "infected"
        assert document["counts"]["hidden_files"] == 3
        assert document["counts"]["hidden_hooks"] == 2
        paths = {finding["entry"].get("path")
                 for finding in document["findings"]}
        assert "\\Windows\\hxdef100.exe" in paths

    def test_nul_names_survive_json(self, booted):
        RegistryNamingGhost().install(booted)
        report = GhostBuster(booted).inside_scan(resources=("registry",))
        text = report_to_json(report)
        document = json.loads(text)   # must be valid JSON despite NULs
        names = [finding["entry"]["name"]
                 for finding in document["findings"]]
        assert any("\x00" in name for name in names)

    def test_save_to_volume(self, booted):
        report = GhostBuster(booted).inside_scan(resources=("processes",))
        path = save_report_to_volume(booted, report)
        blob = booted.volume.read_file(path)
        assert load_report_dict(blob.decode())["machine"] == booted.name

    def test_save_overwrites(self, booted):
        report = GhostBuster(booted).inside_scan(resources=("processes",))
        save_report_to_volume(booted, report)
        path = save_report_to_volume(booted, report)
        assert booted.volume.exists(path)

    def test_load_rejects_non_reports(self):
        with pytest.raises(ValueError):
            load_report_dict('{"hello": "world"}')

    def test_summarize_excludes_noise(self, booted):
        from repro.workloads import attach_standard_services
        attach_standard_services(booted)
        report = GhostBuster(booted).outside_scan(resources=("files",),
                                                  background_gap=60)
        counts = summarize_findings(report.findings)
        assert counts["file"] == 0   # all classified as noise
