"""The console HTTP service: auth, drill-down, query API, dashboard.

Most tests drive :meth:`ConsoleServer.handle_request` directly — the
dispatch is pure with respect to the HTTP layer — plus one real-socket
round trip to prove the stdlib server end of things actually binds,
serves, and honours the Authorization header.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.console import ConsoleServer, generate_token
from repro.console.server import machine_drilldown
from repro.fleet import EscalationPolicy, FleetCoordinator
from repro.ghostware import HackerDefender
from repro.machine import Machine


def build_fleet(size=3, infected=(1,)):
    machines = []
    for index in range(size):
        machine = Machine(f"m{index:02d}", disk_mb=256, max_records=8192)
        machine.boot()
        if index in infected:
            HackerDefender().install(machine)
        machines.append(machine)
    return machines


@pytest.fixture(scope="module")
def fleet_dir(tmp_path_factory):
    """One escalating 2-epoch fleet, shared read-only by every test."""
    directory = str(tmp_path_factory.mktemp("console-fleet"))
    coordinator = FleetCoordinator(
        directory, build_fleet(size=3, infected=(1,)), workers=2,
        policy=EscalationPolicy(confirm_with="winpe", escalate=True))
    coordinator.run_epoch()
    coordinator.run_epoch()
    return directory


@pytest.fixture()
def server(fleet_dir):
    srv = ConsoleServer(fleet_dir, token="t0ken")
    yield srv
    srv.httpd.server_close()


def get(server, path, token="t0ken"):
    if token is not None:
        path += ("&" if "?" in path else "?") + "token=" + token
    status, content_type, body = server.handle_request(path)
    if content_type.startswith("application/json"):
        return status, json.loads(body)
    return status, body


class TestAuth:
    def test_missing_token_is_401(self, server):
        status, payload = get(server, "/api/status", token=None)
        assert status == 401
        assert payload == {"error": "missing token"}

    def test_bad_token_is_401(self, server):
        status, payload = get(server, "/api/status", token="wrong")
        assert status == 401
        assert payload == {"error": "bad token"}

    def test_bad_bearer_header_is_401(self, server):
        status, _, body = server.handle_request(
            "/api/status", authorization="Bearer nope")
        assert status == 401

    def test_good_bearer_header_is_200(self, server):
        status, _, body = server.handle_request(
            "/api/status", authorization="Bearer t0ken")
        assert status == 200

    def test_healthz_needs_no_token(self, server):
        status, payload = get(server, "/healthz", token=None)
        assert status == 200
        assert payload["ok"] is True

    def test_generate_token_is_fresh(self):
        assert generate_token() != generate_token()
        assert len(generate_token()) == 32


class TestRoutes:
    def test_status(self, server):
        status, payload = get(server, "/api/status")
        assert status == 200
        assert payload["epochs_completed"] == 2
        assert payload["open_epoch"] is None

    def test_machines_listing(self, server):
        status, payload = get(server, "/api/machines")
        assert status == 200
        assert payload["machines"] == ["m00", "m01", "m02"]
        assert payload["latest"]["m01"]["verdict"] == "infected"

    def test_unknown_machine_404(self, server):
        status, payload = get(server, "/api/machines/nope")
        assert status == 404
        assert payload["machine"] == "nope"

    def test_unknown_route_404(self, server):
        status, payload = get(server, "/api/nope")
        assert status == 404

    def test_epochs_and_outbreaks(self, server):
        status, payload = get(server, "/api/epochs")
        assert status == 200
        assert [extent["epoch"] for extent in payload["epochs"]] == [1, 2]
        assert all(extent.get("summary") for extent in payload["epochs"])
        status, payload = get(server, "/api/outbreaks")
        assert status == 200
        assert isinstance(payload["outbreaks"], list)

    def test_metrics_json_and_prometheus(self, server):
        status, payload = get(server, "/api/metrics")
        assert status == 200
        assert isinstance(payload, dict) and payload
        status, body = get(server, "/metrics")
        assert status == 200
        assert "fleet" in body

    def test_index_stats(self, server):
        status, payload = get(server, "/api/index")
        assert status == 200
        assert payload["machines"] == 3
        assert payload["verdict_entries"] == 6


class TestDrilldown:
    def test_infected_machine_detail(self, server):
        status, payload = get(server, "/api/machines/m01")
        assert status == 200
        history = payload["history"]
        assert [entry["epoch"] for entry in history] == [1, 2]
        assert history[0]["verdict"] == "infected"
        # Escalation provenance: the winpe confirmation is visible.
        assert history[0]["escalated"] is True
        assert history[0]["confirmed_by"] == "winpe"
        latest = payload["latest"]
        assert latest["type"] == "fleet-machine"
        assert latest["machine"] == "m01"
        baseline = payload["baseline"]
        assert baseline["verdict"] == "infected"
        assert baseline["confidence"]  # per-layer confidence present
        assert baseline["degraded_layers"] == []
        assert isinstance(baseline["provenance"], dict)

    def test_clean_machine_detail(self, server):
        status, payload = get(server, "/api/machines/m00")
        assert status == 200
        assert all(entry["verdict"] == "clean"
                   for entry in payload["history"])
        assert payload["baseline"]["verdict"] == "clean"

    def test_drilldown_helper_unknown_machine(self, server):
        assert machine_drilldown(server.index, "ghost-box") is None


class TestQueryApi:
    def test_filter_by_verdict(self, server):
        status, payload = get(server, "/api/query?verdict=infected")
        assert status == 200
        assert payload["count"] == 2
        assert {row["machine"] for row in payload["results"]} == {"m01"}

    def test_filter_by_machine_and_epoch_range(self, server):
        status, payload = get(
            server, "/api/query?machine=m02&epoch_min=2&epoch_max=2")
        assert status == 200
        assert [row["epoch"] for row in payload["results"]] == [2]
        assert payload["results"][0]["machine"] == "m02"

    def test_filter_by_identity(self, server):
        status, payload = get(server, "/api/machines/m01")
        identity = payload["history"][0]["finding_ids"][0]
        status, payload = get(server, "/api/query?identity=" + identity)
        assert status == 200
        assert payload["count"] >= 1
        assert all(identity in row["finding_ids"]
                   for row in payload["results"])

    def test_filter_by_escalated_and_limit(self, server):
        status, payload = get(
            server, "/api/query?escalated=true&limit=1")
        assert status == 200
        assert payload["count"] == 1
        assert payload["results"][0]["escalated"] is True

    def test_bad_parameter_is_500_not_crash(self, server):
        status, payload = get(server, "/api/query?limit=banana")
        assert status == 500
        assert "banana" in payload["error"]


class TestDashboardHtml:
    def test_fleet_page_renders(self, server):
        status, body = get(server, "/")
        assert status == 200
        assert "<title>fleet console</title>" in body
        for name in ("m00", "m01", "m02"):
            assert '/machine/%s"' % name in body

    def test_machine_page_renders(self, server):
        status, body = get(server, "/machine/m01")
        assert status == 200
        assert "m01" in body and "infected" in body

    def test_unknown_machine_page(self, server):
        status, body = get(server, "/machine/nope")
        assert status == 200
        assert "unknown machine" in body


class TestOverHttp:
    def test_real_socket_round_trip(self, fleet_dir):
        server = ConsoleServer(fleet_dir, token="s3cret").start()
        try:
            request = urllib.request.Request(
                server.url + "/api/status",
                headers={"Authorization": "Bearer s3cret"})
            with urllib.request.urlopen(request, timeout=10) as response:
                assert response.status == 200
                payload = json.loads(response.read().decode("utf-8"))
            assert payload["epochs_completed"] == 2
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(server.url + "/api/status",
                                       timeout=10)
            assert excinfo.value.code == 401
        finally:
            server.stop()
