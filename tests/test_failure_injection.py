"""Failure injection: corrupted structures, full volumes, hostile input.

A tool whose job is reading raw on-disk structures must degrade sanely
when those structures are damaged — by crashes, by bugs, or by malware
actively corrupting them to blind the scan.
"""

import struct

import pytest

from repro.core import GhostBuster
from repro.core.scanners.registry import RawHiveReader, low_level_asep_scan
from repro.disk import Disk, DiskGeometry
from repro.errors import CorruptRecord, HiveFormatError, VolumeError
from repro.ghostware import HackerDefender
from repro.ntfs import MftParser, NtfsVolume, parse_volume
from repro.ntfs.constants import MFT_RECORD_SIZE
from repro.registry.hive_parser import parse_hive


class TestCorruptMftRecords:
    def test_zeroed_record_is_skipped(self, volume, disk):
        stat = volume.create_file("\\doomed.txt", b"x")
        offset = volume.mft_offset + stat.record_no * MFT_RECORD_SIZE
        disk.write_bytes(offset, b"\x00" * MFT_RECORD_SIZE)
        names = {entry.name for entry in parse_volume(disk)}
        assert "doomed.txt" not in names   # gone, but no crash

    def test_garbage_record_is_skipped(self, volume, disk):
        stat = volume.create_file("\\mangled.txt", b"x")
        offset = volume.mft_offset + stat.record_no * MFT_RECORD_SIZE
        disk.write_bytes(offset, b"\xde\xad" * (MFT_RECORD_SIZE // 2))
        parse_volume(disk)   # must not raise

    def test_orphaned_children_surface_under_orphan_root(self, volume,
                                                         disk):
        volume.create_directories("\\parent")
        volume.create_file("\\parent\\child.txt", b"x")
        parent_record = volume.record_for_path("\\parent")
        offset = volume.mft_offset + parent_record * MFT_RECORD_SIZE
        disk.write_bytes(offset, b"\x00" * MFT_RECORD_SIZE)
        entries = MftParser(disk.read_bytes).parse()
        child = next(entry for entry in entries
                     if entry.name == "child.txt")
        assert child.path.startswith("\\$Orphan")

    def test_cyclic_parent_reference_detected(self, volume, disk):
        """A record claiming to be its own ancestor must not hang."""
        from repro.ntfs.records import MftRecord, FileName
        from repro.ntfs import constants as c
        stat = volume.create_file("\\selfref", b"")
        record = MftRecord(
            record_no=stat.record_no,
            flags=c.FLAG_IN_USE | c.FLAG_DIRECTORY,
            file_name=FileName(
                c.make_file_reference(stat.record_no, 1), "selfref"))
        offset = volume.mft_offset + stat.record_no * MFT_RECORD_SIZE
        disk.write_bytes(offset, record.to_bytes())
        with pytest.raises(CorruptRecord):
            MftParser(disk.read_bytes).parse()

    def test_boot_sector_corruption_is_fatal_and_explicit(self, volume,
                                                          disk):
        disk.write_bytes(0, b"\x00" * 512)
        with pytest.raises(CorruptRecord):
            MftParser(disk.read_bytes)


class TestCorruptHives:
    def test_truncated_hive_rejected(self):
        from repro.registry.hive import Hive
        blob = Hive("T").serialize()
        with pytest.raises(HiveFormatError):
            parse_hive(blob[:100])

    def test_header_length_overrun_rejected(self):
        from repro.registry.hive import Hive
        blob = bytearray(Hive("T").serialize())
        struct.pack_into("<I", blob, 40, len(blob) * 10)
        with pytest.raises(HiveFormatError):
            parse_hive(bytes(blob))

    def test_corrupt_hive_file_degrades_registry_scan(self, booted):
        """If ghostware shreds a hive backing file, the raw scan loses
        that hive but must not crash — the remaining hives still scan."""
        hive_path = "\\Windows\\System32\\config\\SOFTWARE"
        booted.volume.write_file(hive_path, b"not a hive at all")
        snapshot = low_level_asep_scan(booted)
        # SYSTEM-hive ASEPs (services) still present:
        assert any(entry.location == "services"
                   for entry in snapshot.entries) or \
            len(snapshot.entries) >= 0   # and no exception above all

    def test_reader_skips_unparseable_hive(self, booted):
        booted.volume.write_file("\\Windows\\System32\\config\\SOFTWARE",
                                 b"garbage")
        reader = RawHiveReader(booted)
        assert not reader.key_exists("HKLM\\SOFTWARE\\anything")
        assert reader.key_exists(
            "HKLM\\SYSTEM\\CurrentControlSet\\Services")


class TestVolumeExhaustion:
    def test_out_of_space_is_explicit(self):
        disk = Disk(DiskGeometry.from_megabytes(8))
        volume = NtfsVolume.format(disk, max_records=64)
        with pytest.raises(VolumeError):
            for index in range(100):
                volume.create_file(f"\\big{index}", b"x" * 200_000)

    def test_mft_full_is_explicit(self):
        disk = Disk(DiskGeometry.from_megabytes(64))
        volume = NtfsVolume.format(disk, max_records=20)
        with pytest.raises(VolumeError):
            for index in range(100):
                volume.create_file(f"\\f{index}", b"")


class TestScanRobustnessUnderDamage:
    def test_detection_survives_unrelated_corruption(self, booted):
        """Random dead records elsewhere don't mask the ghostware."""
        HackerDefender().install(booted)
        victim = booted.volume.create_file("\\collateral.txt", b"x")
        offset = booted.volume.mft_offset + \
            victim.record_no * MFT_RECORD_SIZE
        booted.disk.write_bytes(offset, b"\xff" * MFT_RECORD_SIZE)
        report = GhostBuster(booted).inside_scan(resources=("files",))
        files = {finding.entry.path for finding in report.hidden_files()}
        assert "\\Windows\\hxdef100.exe" in files
