"""Unit tests for the SCM, DLL injection, and the cost model."""

import pytest

from repro.core import costmodel
from repro.machine import Machine, PerfModel
from repro.usermode.injection import inject_dll, inject_into_all
from repro.winapi.services import (START_AUTO, START_DISABLED,
                                   ServiceControlManager, TYPE_DRIVER,
                                   TYPE_SERVICE)


class TestScm:
    def test_register_creates_expected_values(self, booted):
        booted.scm.register("MySvc", "\\svc.exe", TYPE_SERVICE, START_AUTO)
        key = "HKLM\\SYSTEM\\CurrentControlSet\\Services\\MySvc"
        assert str(booted.registry.get_value(key,
                                             "ImagePath").win32_data()) == \
            "\\svc.exe"
        assert booted.registry.get_value(key, "Type").win32_data() == \
            TYPE_SERVICE

    def test_enumerate_reflects_registrations(self, booted):
        booted.scm.register("A", "\\a.exe")
        booted.scm.register("B", "\\b.sys", TYPE_DRIVER)
        records = {record.name: record
                   for record in booted.scm.enumerate_services()}
        assert records["A"].is_driver is False
        assert records["B"].is_driver is True

    def test_enumeration_ignores_keys_without_imagepath(self, booted):
        booted.registry.create_key(
            "HKLM\\SYSTEM\\CurrentControlSet\\Services\\Incomplete")
        names = [record.name for record in booted.scm.enumerate_services()]
        assert "Incomplete" not in names

    def test_defaults_for_missing_type_and_start(self, booted):
        key = "HKLM\\SYSTEM\\CurrentControlSet\\Services\\Bare"
        booted.registry.create_key(key)
        booted.registry.set_value(key, "ImagePath", "\\bare.exe")
        record = next(record for record in booted.scm.enumerate_services()
                      if record.name == "Bare")
        assert record.service_type == TYPE_SERVICE
        assert record.auto_start

    def test_start_auto_services_returns_started(self, booted):
        booted.volume.create_file("\\go.exe", b"MZ")
        booted.scm.register("Go", "\\go.exe")
        booted.scm.register("Stay", "\\gone.exe")   # binary missing
        booted.scm.register("Off", "\\go.exe", TYPE_SERVICE,
                            START_DISABLED)
        started = booted.scm.start_auto_services()
        assert "Go" in started
        assert "Stay" not in started
        assert "Off" not in started

    def test_hidden_service_still_starts(self, booted):
        """Hiding the Services key from queries does not stop the SCM —
        it reads the hive truth directly (the paper's point about why
        ghostware can hide its hooks and keep running)."""
        from repro.ghostware import HackerDefender
        HackerDefender().install(booted)
        booted.reboot()
        assert booted.process_by_name("hxdef100.exe") is not None


class TestInjection:
    def test_inject_runs_registered_entry(self, booted):
        booted.volume.create_file("\\lib.dll", b"MZ")
        hits = []
        booted.register_program("\\lib.dll",
                                lambda mach, proc: hits.append(proc.pid))
        target = booted.start_process("\\Windows\\explorer.exe",
                                      name="target.exe")
        assert inject_dll(booted, target, "\\lib.dll")
        assert hits == [target.pid]
        modules = booted.kernel.module_table_view(
            target.pid).module_paths()
        assert "\\lib.dll" in modules

    def test_missing_dll_returns_false(self, booted):
        target = booted.start_process("\\Windows\\explorer.exe",
                                      name="target.exe")
        assert not inject_dll(booted, target, "\\nonexistent.dll")

    def test_system_process_refused(self, booted):
        booted.volume.create_file("\\lib.dll", b"MZ")
        system = booted.process_by_name("System")
        assert not inject_dll(booted, system, "\\lib.dll")

    def test_inject_into_all_skips_listed_pids(self, booted):
        booted.volume.create_file("\\lib.dll", b"MZ")
        explorer = booted.process_by_name("explorer.exe")
        count = inject_into_all(booted, "\\lib.dll",
                                skip_pids=[explorer.pid])
        alive_non_system = len([p for p in booted.user_processes()
                                if p.pid != 4])
        assert count == alive_non_system - 1


class TestCostModel:
    def _machine(self, **perf_kwargs):
        return Machine("cost", disk_mb=64, max_records=1024,
                       perf=PerfModel(**perf_kwargs))

    def test_cpu_scale_divides_time(self):
        fast = self._machine(cpu_scale=2.0)
        slow = self._machine(cpu_scale=0.5)
        fast_cost = costmodel.charge_high_file_scan(fast, 10_000)
        slow_cost = costmodel.charge_high_file_scan(slow, 10_000)
        assert slow_cost == pytest.approx(fast_cost * 4)

    def test_entity_scale_multiplies_file_costs(self):
        small = self._machine(entity_scale=1.0)
        big = self._machine(entity_scale=100.0)
        assert costmodel.charge_high_file_scan(big, 100) == \
            pytest.approx(costmodel.charge_high_file_scan(small,
                                                          10_000))

    def test_process_costs_not_entity_scaled(self):
        scaled = self._machine(entity_scale=500.0)
        plain = self._machine(entity_scale=1.0)
        assert costmodel.charge_process_scan(scaled, 40) == \
            pytest.approx(costmodel.charge_process_scan(plain, 40))

    def test_charges_advance_the_clock(self):
        machine = self._machine()
        before = machine.clock.now()
        seconds = costmodel.charge_asep_scan(machine, 50,
                                             hive_bytes=100_000)
        assert machine.clock.now() == pytest.approx(before + seconds)

    def test_winpe_boot_within_paper_band(self):
        from repro.clock import SimClock
        for cpu_scale in (0.25, 0.5, 1.0, 1.36, 3.0):
            clock = SimClock()
            seconds = costmodel.charge_winpe_boot(clock, cpu_scale)
            assert 90 <= seconds <= 180

    def test_dump_cost_tracks_ram(self):
        small = self._machine(ram_mb=128)
        large = self._machine(ram_mb=1024)
        assert costmodel.charge_crash_dump(large, 0) > \
            costmodel.charge_crash_dump(small, 0)
