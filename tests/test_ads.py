"""Tests for alternate data streams and the ADS scanner extension."""

import pytest

from repro.core import (GhostBuster, executable_streams,
                        scan_alternate_streams)
from repro.errors import FileNotFound, VolumeError
from repro.ghostware import AdsGhost
from repro.machine import RUN_KEY
from repro.ntfs.mft_parser import MftParser


class TestVolumeStreams:
    def test_write_read_roundtrip(self, volume):
        volume.create_file("\\host.txt", b"main")
        volume.write_stream("\\host.txt", "side", b"hidden bits")
        assert volume.read_stream("\\host.txt", "side") == b"hidden bits"
        assert volume.read_file("\\host.txt") == b"main"

    def test_list_streams(self, volume):
        volume.create_file("\\host.txt", b"")
        volume.write_stream("\\host.txt", "b", b"2")
        volume.write_stream("\\host.txt", "a", b"1")
        assert volume.list_streams("\\host.txt") == ["a", "b"]

    def test_replace_stream(self, volume):
        volume.create_file("\\host.txt", b"")
        volume.write_stream("\\host.txt", "s", b"old")
        volume.write_stream("\\host.txt", "s", b"new")
        assert volume.read_stream("\\host.txt", "s") == b"new"

    def test_large_nonresident_stream(self, volume):
        volume.create_file("\\host.txt", b"")
        payload = b"S" * 20_000
        volume.write_stream("\\host.txt", "big", payload)
        assert volume.read_stream("\\host.txt", "big") == payload

    def test_delete_stream(self, volume):
        volume.create_file("\\host.txt", b"")
        volume.write_stream("\\host.txt", "s", b"x")
        volume.delete_stream("\\host.txt", "s")
        assert volume.list_streams("\\host.txt") == []

    def test_missing_stream_raises(self, volume):
        volume.create_file("\\host.txt", b"")
        with pytest.raises(FileNotFound):
            volume.read_stream("\\host.txt", "absent")

    def test_empty_stream_name_rejected(self, volume):
        volume.create_file("\\host.txt", b"")
        with pytest.raises(VolumeError):
            volume.write_stream("\\host.txt", "", b"")

    def test_streams_survive_remount(self, volume, disk):
        from repro.ntfs import NtfsVolume
        volume.create_file("\\host.txt", b"main")
        volume.write_stream("\\host.txt", "ads", b"persisted")
        remounted = NtfsVolume.mount(disk)
        assert remounted.read_stream("\\host.txt", "ads") == b"persisted"


class TestRawParserStreams:
    def test_stream_names_in_parse(self, volume, disk):
        volume.create_file("\\host.txt", b"")
        volume.write_stream("\\host.txt", "payload", b"MZ...")
        parser = MftParser(disk.read_bytes)
        entry = parser.find_by_path("\\host.txt")
        assert entry.stream_names == ("payload",)

    def test_read_stream_content_raw(self, volume, disk):
        volume.create_file("\\host.txt", b"")
        volume.write_stream("\\host.txt", "s", b"raw bytes")
        parser = MftParser(disk.read_bytes)
        assert parser.read_stream_content("\\host.txt", "s") == b"raw bytes"

    def test_missing_stream_raises(self, volume, disk):
        volume.create_file("\\host.txt", b"")
        with pytest.raises(FileNotFound):
            MftParser(disk.read_bytes).read_stream_content("\\host.txt",
                                                           "nope")

    def test_main_content_unaffected_by_streams(self, volume, disk):
        volume.create_file("\\host.txt", b"the main stream")
        volume.write_stream("\\host.txt", "x", b"side")
        parser = MftParser(disk.read_bytes)
        assert parser.read_file_content("\\host.txt") == b"the main stream"


class TestAdsGhost:
    def test_invisible_to_the_regular_file_diff(self, booted):
        AdsGhost().install(booted)
        report = GhostBuster(booted).inside_scan(resources=("files",))
        assert report.is_clean   # the host file matches in both views

    def test_ads_scan_finds_the_payload(self, booted):
        ghost = AdsGhost()
        ghost.install(booted)
        entries = scan_alternate_streams(booted)
        names = {entry.qualified_name for entry in entries}
        assert ghost.stream_path in names

    def test_payload_flagged_executable(self, booted):
        AdsGhost().install(booted)
        executables = executable_streams(scan_alternate_streams(booted))
        assert len(executables) == 1
        assert executables[0].preview.startswith(b"MZ")

    def test_run_hook_references_stream(self, booted):
        ghost = AdsGhost()
        ghost.install(booted)
        value = booted.registry.get_value(RUN_KEY, "msupd")
        assert str(value.native_data()) == ghost.stream_path

    def test_outside_mode_reads_physical_disk(self, booted):
        ghost = AdsGhost()
        ghost.install(booted)
        entries = scan_alternate_streams(booted, outside=True)
        assert any(entry.qualified_name == ghost.stream_path
                   for entry in entries)

    def test_clean_machine_has_no_streams(self, booted):
        assert scan_alternate_streams(booted) == []
