"""Tests for the layered API stack: resolution, hooks, Win32 semantics."""

import pytest

from repro.errors import AccessDenied, ApiError, InvalidWin32Name
from repro.winapi.hooks import PatchKind, scan_for_hooks
from repro.winapi.iomanager import FilterDriver, Irp, IrpOperation

from tests.conftest import win32_ls, task_list


class TestCallResolution:
    def test_unknown_module(self, probe):
        with pytest.raises(ApiError):
            probe.call("shlwapi", "PathCombine")

    def test_unknown_function(self, probe):
        with pytest.raises(ApiError):
            probe.call("kernel32", "NoSuchExport")

    def test_iat_hook_takes_priority(self, probe):
        probe.hook_iat("kernel32", "ReadFile",
                       lambda proc, path: b"iat says hi", owner="test")
        assert probe.call("kernel32", "ReadFile", "\\x") == b"iat says hi"

    def test_iat_unhook_restores(self, booted, probe):
        booted.volume.create_file("\\real.txt", b"real")
        probe.hook_iat("kernel32", "ReadFile",
                       lambda proc, path: b"fake", owner="test")
        probe.unhook_iat("kernel32", "ReadFile")
        assert probe.call("kernel32", "ReadFile", "\\real.txt") == b"real"

    def test_inline_patch_wraps(self, booted, probe):
        booted.volume.create_file("\\f.txt", b"abc")
        site = probe.code_site("kernel32", "ReadFile")
        site.patch_inline(lambda orig:
                          lambda proc, path: orig(proc, path) + b"!",
                          PatchKind.INLINE_DETOUR, "test")
        assert probe.call("kernel32", "ReadFile", "\\f.txt") == b"abc!"

    def test_inline_restore(self, booted, probe):
        booted.volume.create_file("\\f.txt", b"abc")
        site = probe.code_site("kernel32", "ReadFile")
        site.patch_inline(lambda orig: lambda proc, path: b"lie",
                          PatchKind.INLINE_CALL, "test")
        site.restore()
        assert probe.call("kernel32", "ReadFile", "\\f.txt") == b"abc"
        assert not site.patched

    def test_hooks_are_per_process(self, booted, probe):
        other = booted.start_process("\\Windows\\explorer.exe",
                                     name="other.exe")
        probe.hook_iat("kernel32", "ReadFile",
                       lambda proc, path: b"hooked", owner="test")
        booted.volume.create_file("\\f.txt", b"clean")
        assert other.call("kernel32", "ReadFile", "\\f.txt") == b"clean"

    def test_invalid_inline_kind_rejected(self, probe):
        site = probe.code_site("kernel32", "ReadFile")
        with pytest.raises(ApiError):
            site.patch_inline(lambda orig: orig, PatchKind.IAT, "test")


class TestWin32FileSemantics:
    def test_find_skips_native_only_names(self, booted, probe):
        booted.volume.create_file("\\Temp\\ok.txt", b"")
        booted.volume.create_file("\\Temp\\bad. ", b"", native=True)
        assert win32_ls(probe, "\\Temp") == ["ok.txt"]

    def test_create_rejects_reserved_names(self, probe):
        with pytest.raises(InvalidWin32Name):
            probe.call("kernel32", "CreateFile", "\\Temp\\CON")

    def test_create_read_delete_through_stack(self, booted, probe):
        probe.call("kernel32", "CreateFile", "\\Temp\\t.txt", b"hello")
        assert probe.call("kernel32", "ReadFile", "\\Temp\\t.txt") == \
            b"hello"
        probe.call("kernel32", "DeleteFile", "\\Temp\\t.txt")
        assert not booted.volume.exists("\\Temp\\t.txt")

    def test_write_creates_or_replaces(self, booted, probe):
        probe.call("kernel32", "WriteFile", "\\Temp\\w.txt", b"one")
        probe.call("kernel32", "WriteFile", "\\Temp\\w.txt", b"two")
        assert booted.volume.read_file("\\Temp\\w.txt") == b"two"

    def test_max_path_rejected(self, probe):
        deep = "\\Temp\\" + "a" * 300
        with pytest.raises(InvalidWin32Name):
            probe.call("kernel32", "ReadFile", deep)


class TestNativeSemantics:
    def test_native_sees_win32_illegal(self, booted, probe):
        booted.volume.create_file("\\Temp\\ghost.", b"", native=True)
        entries = probe.call("ntdll", "NtQueryDirectoryFile", "\\Temp")
        assert "ghost." in [entry.name for entry in entries]

    def test_native_create_allows_trailing_dot(self, booted, probe):
        probe.call("ntdll", "NtCreateFile", "\\Temp\\dot.", b"x")
        assert booted.volume.exists("\\Temp\\dot.")


class TestRegistryWin32Semantics:
    def test_nul_name_truncated(self, booted, probe):
        run = "HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run"
        booted.registry.set_value(run, "shown\x00hidden", "evil.exe")
        views = probe.call("advapi32", "RegEnumValue", run)
        names = [view.name for view in views]
        assert "shown" in names
        assert all("\x00" not in name for name in names)

    def test_overlong_name_skipped(self, booted, probe):
        run = "HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run"
        booted.registry.set_value(run, "L" * 300, "x")
        views = probe.call("advapi32", "RegEnumValue", run)
        assert views == []

    def test_native_enum_sees_full_names(self, booted, probe):
        run = "HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run"
        booted.registry.set_value(run, "a\x00b", "x")
        values = probe.call("ntdll", "NtEnumerateValueKey", run)
        assert any(value.name == "a\x00b" for value in values)

    def test_query_missing_value(self, probe):
        view = probe.call("advapi32", "RegQueryValue",
                          "HKLM\\SOFTWARE", "absent")
        assert view is None

    def test_set_and_delete_via_api(self, booted, probe):
        key = "HKLM\\SOFTWARE\\TestApp"
        probe.call("advapi32", "RegSetValue", key, "v", "data")
        assert str(booted.registry.get_value(key, "v").native_data()) == \
            "data"
        probe.call("advapi32", "RegDeleteValue", key, "v")
        assert booted.registry.enum_values(key) == []


class TestProcessApis:
    def test_toolhelp_lists_system_processes(self, probe):
        names = task_list(probe)
        assert "System" in names
        assert "explorer.exe" in names

    def test_module_snapshot(self, booted, probe):
        explorer = booted.process_by_name("explorer.exe")
        snapshot = probe.call("kernel32", "Module32Snapshot", explorer.pid)
        first = probe.call("kernel32", "Module32First", snapshot)
        assert first.endswith("ntdll.dll")


class TestFilterDrivers:
    def test_enumeration_filter(self, booted, probe):
        booted.volume.create_file("\\Temp\\visible.txt", b"")
        booted.volume.create_file("\\Temp\\secret.txt", b"")

        class Hider(FilterDriver):
            def filter_enumeration(self, irp, entries):
                return [entry for entry in entries
                        if "secret" not in entry.name]

        booted.io_manager.attach_filter(Hider())
        assert win32_ls(probe, "\\Temp") == ["visible.txt"]

    def test_pre_operation_denial(self, booted, probe):
        booted.volume.create_file("\\Temp\\locked.txt", b"")

        class Denier(FilterDriver):
            def pre_operation(self, irp):
                if irp.operation == IrpOperation.READ and \
                        "locked" in irp.path:
                    raise AccessDenied(irp.path)

        booted.io_manager.attach_filter(Denier())
        with pytest.raises(AccessDenied):
            probe.call("kernel32", "ReadFile", "\\Temp\\locked.txt")

    def test_irp_carries_requestor(self, booted, probe):
        seen = []

        class Spy(FilterDriver):
            def filter_enumeration(self, irp, entries):
                seen.append(irp.requestor_pid)
                return entries

        booted.io_manager.attach_filter(Spy())
        win32_ls(probe, "\\Temp")
        assert seen == [probe.pid]

    def test_detach_filter(self, booted, probe):
        booted.volume.create_file("\\Temp\\s.txt", b"")

        class HideAll(FilterDriver):
            def filter_enumeration(self, irp, entries):
                return []

        hide_all = HideAll()
        booted.io_manager.attach_filter(hide_all)
        assert win32_ls(probe, "\\Temp") == []
        booted.io_manager.detach_filter(hide_all)
        assert win32_ls(probe, "\\Temp") == ["s.txt"]


class TestHookScanner:
    def test_clean_machine_reports_nothing(self, booted, probe):
        assert scan_for_hooks([probe]) == []

    def test_reports_iat_and_inline(self, booted, probe):
        probe.hook_iat("kernel32", "FindFirstFile",
                       lambda proc, d: (0, None), owner="evil")
        probe.code_site("ntdll", "NtQueryDirectoryFile").patch_inline(
            lambda orig: orig, PatchKind.INLINE_DETOUR, "evil2")
        reports = scan_for_hooks([probe])
        kinds = {report.kind for report in reports}
        assert kinds == {PatchKind.IAT, PatchKind.INLINE_DETOUR}
        owners = {report.owner for report in reports}
        assert owners == {"evil", "evil2"}
