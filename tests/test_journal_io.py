"""The shared torn-tail-tolerant journal reader, and its consumers.

The regression that matters: every durable JSONL store (epochs
journal, queue WAL, baseline store, telemetry exports) must shrug off
a torn final record identically, because they all read through
``repro.telemetry.journal_io`` now instead of five hand-rolled loops.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.telemetry.journal_io import (JournalLine, append_journal,
                                        head_digest, iter_journal,
                                        read_grouped, read_journal,
                                        read_record_at)


def write_lines(path, lines):
    with open(path, "wb") as handle:
        handle.write(b"".join(lines))


class TestIterJournal:
    def test_round_trip_with_offsets(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        records = [{"n": index, "payload": "x" * index}
                   for index in range(5)]
        ranges = [append_journal(path, record) for record in records]
        lines = list(iter_journal(path))
        assert [line.record for line in lines] == records
        assert [(line.start, line.end) for line in lines] == ranges
        # Offsets tile the file exactly: no gaps, no overlap.
        assert lines[0].start == 0
        for previous, current in zip(lines, lines[1:]):
            assert current.start == previous.end
        assert lines[-1].end == os.path.getsize(path)

    def test_missing_file_yields_nothing(self, tmp_path):
        assert read_journal(str(tmp_path / "absent.jsonl")) == []

    def test_torn_final_record_is_skipped(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        append_journal(path, {"n": 0})
        append_journal(path, {"n": 1})
        with open(path, "ab") as handle:
            handle.write(b'{"n": 2, "payload": "trunc')  # killed mid-write
        torn = []
        records = read_journal(path, on_torn=lambda no, why:
                               torn.append((no, why)))
        assert records == [{"n": 0}, {"n": 1}]
        assert len(torn) == 1 and torn[0][0] == 3

    def test_torn_middle_line_is_skipped_not_fatal(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        write_lines(path, [b'{"n": 0}\n', b'{"bad json\n', b'{"n": 2}\n'])
        torn = []
        records = read_journal(path, on_torn=lambda no, why:
                               torn.append(no))
        assert records == [{"n": 0}, {"n": 2}]
        assert torn == [2]

    def test_non_object_line_is_torn(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        write_lines(path, [b"[1, 2, 3]\n", b'{"ok": true}\n'])
        torn = []
        assert read_journal(path, on_torn=lambda *a: torn.append(a)) \
            == [{"ok": True}]
        assert len(torn) == 1

    def test_incremental_resume_from_offset(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        first = append_journal(path, {"n": 0})
        append_journal(path, {"n": 1})
        resumed = list(iter_journal(path, start=first[1]))
        assert [line.record for line in resumed] == [{"n": 1}]
        assert resumed[0].start == first[1]

    def test_complete_only_withholds_unterminated_tail(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        append_journal(path, {"n": 0})
        with open(path, "ab") as handle:
            handle.write(b'{"n": 1}')  # valid JSON, but no newline yet
        lines = list(iter_journal(path, complete_only=True))
        # The in-flight append is neither yielded nor advanced past...
        assert [line.record for line in lines] == [{"n": 0}]
        cursor = lines[-1].end
        with open(path, "ab") as handle:
            handle.write(b"\n")
        # ...and the next incremental pass picks it up from the cursor.
        caught_up = list(iter_journal(path, start=cursor,
                                      complete_only=True))
        assert [line.record for line in caught_up] == [{"n": 1}]

    def test_default_mode_yields_parseable_unterminated_tail(
            self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "wb") as handle:
            handle.write(b'{"n": 0}')
        assert read_journal(path) == [{"n": 0}]


class TestPointLookups:
    def test_read_record_at(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        append_journal(path, {"n": 0})
        start, end = append_journal(path, {"n": 1, "k": "v"})
        assert read_record_at(path, start, end) == {"n": 1, "k": "v"}

    def test_read_record_at_stale_offsets(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        append_journal(path, {"n": 0, "pad": "x" * 64})
        start, end = append_journal(path, {"n": 1})
        write_lines(path, [b'{"n": 9}\n'])  # compacted under the index
        assert read_record_at(path, start, end) is None
        assert read_record_at(str(tmp_path / "gone"), 0, 10) is None

    def test_head_digest_detects_rewrite_ignores_append(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        assert head_digest(path) == ""
        append_journal(path, {"n": 0})
        # Pin the prefix length at capture time (as JournalIndex does):
        # appends only add bytes past it, so they can't perturb it.
        prefix = os.path.getsize(path)
        before = head_digest(path, prefix)
        append_journal(path, {"n": 1})
        assert head_digest(path, prefix) == before  # appends invisible
        write_lines(path, [b'{"m": 9}\n'])
        assert head_digest(path, prefix) != before  # rewrites visible


class TestGrouped:
    def test_read_grouped_by_type(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        append_journal(path, {"type": "a", "n": 0})
        append_journal(path, {"type": "b", "n": 1})
        append_journal(path, {"n": 2})
        grouped = read_grouped(path)
        assert [r["n"] for r in grouped["a"]] == [0]
        assert [r["n"] for r in grouped["b"]] == [1]
        assert [r["n"] for r in grouped["unknown"]] == [2]


class TestConsumersShareTornTailBehavior:
    """One torn tail, three consumers, identical shrug."""

    def test_baseline_store_survives_torn_tail(self, tmp_path):
        from repro.core import GhostBuster
        from repro.core.baseline import BaselineStore
        from repro.machine import Machine

        machine = Machine("bl-m0", disk_mb=256, max_records=8192)
        machine.boot()
        report = GhostBuster(machine).detect()
        store = BaselineStore(str(tmp_path))
        store.put("bl-m0", report, disk_generation=1, scan_seconds=0.5)
        with open(store.path, "ab") as handle:
            handle.write(b'{"machine": "bl-m1", "trunc')
        reloaded = BaselineStore(str(tmp_path))
        assert reloaded.get("bl-m0") is not None
        assert reloaded.get("bl-m1") is None

    def test_work_queue_survives_torn_tail(self, tmp_path):
        from repro.fleet import WorkQueue

        queue = WorkQueue(str(tmp_path))
        queue.open_epoch(1, {"m0": 0, "m1": 0})
        with open(queue.path, "ab") as handle:
            handle.write(b'{"op": "ack", "machine": "m0", "trunc')
        replayed = WorkQueue(str(tmp_path))
        # The torn ack never happened: both machines still pending.
        assert sorted(replayed.pending_machines()) == ["m0", "m1"]

    def test_telemetry_load_jsonl_survives_torn_tail(self, tmp_path):
        from repro.telemetry.health import load_jsonl

        path = str(tmp_path / "t.jsonl")
        append_journal(path, {"type": "span", "name": "scan"})
        with open(path, "ab") as handle:
            handle.write(b'{"type": "span", "trunc')
        with pytest.warns(UserWarning, match="skipping malformed"):
            grouped = load_jsonl(path)
        assert [r["name"] for r in grouped["span"]] == ["scan"]

    def test_scheduler_history_survives_torn_tail(self, tmp_path):
        from repro.fleet.scheduler import load_history

        path = str(tmp_path / "epochs.jsonl")
        append_journal(path, {"type": "fleet-machine", "epoch": 1,
                              "machine": "m0", "verdict": "infected"})
        with open(path, "ab") as handle:
            handle.write(b'{"type": "fleet-machine", "trunc')
        history = load_history(path)
        assert history.detections == {"m0": 1}
