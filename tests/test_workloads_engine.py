"""Workload engine tests: fleet synthesis, sampled scanning, traces.

Covers the PR-9 acceptance surface:

* seed-stability — the same :class:`FleetProfile` reproduces
  byte-identical disks (hives included — they live on the disk) across
  runs and across both ``REPRO_DISK_BACKEND`` values;
* cold-start LPT — never-scanned machines dispatch longest-first from
  the cost-model estimate instead of alphabetically;
* sampled scanning — tier assignment, strata choice, honest costs,
  ASEP-stratum detection, escalation to the full scan;
* trace record/replay — element-identical verdicts, digest
  verification, tamper detection (byte-identical journals asserted
  only when no ambient chaos plan is installed, because per-site fault
  streams keep their draw positions within a process);
* the Hypothesis escalation property — on every machine the sampled
  sweep escalated, its reported infections are a superset-of-or-equal
  of the full sweep's, and recall accounting matches the planted
  ground truth.
"""

from __future__ import annotations

import hashlib
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.costmodel import estimate_scan_seconds
from repro.errors import CoordinatorKilled, FleetError
from repro.fleet import EscalationPolicy, FleetCoordinator
from repro.fleet.aggregator import FleetAggregator, MachineVerdict
from repro.fleet.scanwork import perform_machine_scan
from repro.machine import HIVE_FILES, Machine
from repro.telemetry.journal_io import iter_journal
from repro.workloads import (FleetProfile, FleetWorkload, InfectionWave,
                             SamplingPolicy, apply_infections, apply_ops,
                             build_profiled_machine, load_trace,
                             perform_sampled_scan, populate_machine,
                             record_sweep, replay_sweep, trace_digest,
                             verdict_key)
from repro.workloads.fleetgen import STRAINS
from repro.workloads.sampling import TIER_FULL, TIER_SAMPLE

CHAOS_ACTIVE = bool(os.environ.get("REPRO_CHAOS_SEED"))

TINY = FleetProfile(name="tiny", size=4, seed=11, file_count=(10, 18),
                    virtual_files=(2_000, 4_000), registry_kb=(30, 60),
                    churn_files=(1, 3), churn_registry=(0, 1),
                    disk_mb=64, max_records=2048)


def disk_digest(machine: Machine) -> str:
    """Byte digest of every written sector (hives are files on disk)."""
    digest = hashlib.sha256()
    for index, data in sorted(machine.disk.written_sectors()):
        digest.update(index.to_bytes(8, "big"))
        digest.update(data)
    return digest.hexdigest()


def hive_digests(machine: Machine) -> dict:
    return {hive: hashlib.sha256(
        machine.volume.read_file(path)).hexdigest()
        for hive, path in HIVE_FILES.items()}


class TestFleetGen:
    def test_profile_round_trip(self):
        profile = FleetProfile(
            name="rt", size=3, seed=5, waves=(
                InfectionWave("hackerdefender", onset_epoch=2,
                              initial=1, spread=0.5),))
        assert FleetProfile.from_dict(profile.to_dict()) == profile

    def test_machine_names_stable(self):
        assert TINY.machine_names() == [
            "tiny-000", "tiny-001", "tiny-002", "tiny-003"]

    def test_schedules_identical_across_instances(self):
        first = FleetWorkload(TINY, boot=False)
        second = FleetWorkload(TINY, boot=False)
        for epoch in (1, 2, 3):
            assert first.epoch_events(epoch) == second.epoch_events(epoch)

    def test_epoch_one_has_no_churn(self):
        assert FleetWorkload(TINY, boot=False).epoch_events(1)["ops"] == []

    def test_churn_ops_apply_cleanly(self):
        workload = FleetWorkload(TINY, boot=False)
        for epoch in (1, 2, 3):
            events = workload.epoch_events(epoch)
            assert apply_ops(workload.machines, events["ops"]) \
                == len(events["ops"])

    def test_wave_infects_and_tracks_ground_truth(self):
        profile = FleetProfile(
            name="wave", size=5, seed=3, file_count=(8, 12),
            registry_kb=(20, 40), disk_mb=64, max_records=2048,
            waves=(InfectionWave("hackerdefender", onset_epoch=2,
                                 initial=1, spread=1.0),))
        workload = FleetWorkload(profile, boot=False)
        assert workload.epoch_events(1)["infections"] == []
        assert len(workload.epoch_events(2)["infections"]) == 1
        assert workload.infected_machines(1) == set()
        two = workload.infected_machines(2)
        assert len(two) == 1
        assert two <= set(workload.machines)
        # spread=1.0 doubles the infected population each epoch.
        assert len(workload.infected_machines(3)) == 2

    def test_apply_infections_installs_strain(self):
        workload = FleetWorkload(TINY, boot=False)
        name = sorted(workload.machines)[0]
        ghosts = apply_infections(
            workload.machines, [{"machine": name,
                                 "strain": "hackerdefender"}])
        assert len(ghosts) == 1
        from repro.core import GhostBuster
        report = GhostBuster(workload.machines[name]).detect()
        assert not report.is_clean


class TestSeedStability:
    """Satellite: byte-identical populations for the same seed."""

    @pytest.mark.parametrize("backend", ["sparse", "flat"])
    def test_same_seed_same_bytes(self, backend, monkeypatch):
        monkeypatch.setenv("REPRO_DISK_BACKEND", backend)
        first = build_profiled_machine(TINY, "tiny-001", boot=False)
        second = build_profiled_machine(TINY, "tiny-001", boot=False)
        assert disk_digest(first) == disk_digest(second)
        assert hive_digests(first) == hive_digests(second)

    def test_same_seed_same_bytes_across_backends(self, monkeypatch):
        digests = {}
        for backend in ("sparse", "flat"):
            monkeypatch.setenv("REPRO_DISK_BACKEND", backend)
            machine = build_profiled_machine(TINY, "tiny-002", boot=False)
            digests[backend] = (disk_digest(machine),
                                hive_digests(machine))
        assert digests["sparse"] == digests["flat"]

    def test_different_machines_differ(self):
        first = build_profiled_machine(TINY, "tiny-000", boot=False)
        second = build_profiled_machine(TINY, "tiny-003", boot=False)
        assert disk_digest(first) != disk_digest(second)

    def test_different_profile_seed_differs(self):
        other = FleetProfile(**dict(
            (k, getattr(TINY, k)) for k in (
                "name", "size", "file_count", "virtual_files",
                "registry_kb", "cpu_mhz", "churn_files",
                "churn_registry", "waves", "disk_mb", "max_records")),
            seed=TINY.seed + 1)
        first = build_profiled_machine(TINY, "tiny-001", boot=False)
        second = build_profiled_machine(other, "tiny-001", boot=False)
        assert disk_digest(first) != disk_digest(second)


class TestColdStartLpt:
    """Satellite: estimate-driven LPT order on never-scanned fleets."""

    def _machine(self, name: str, files: int) -> Machine:
        machine = Machine(name, disk_mb=256, max_records=8192)
        populate_machine(machine, file_count=files, registry_scale=30,
                         seed=4)
        return machine

    def test_estimate_orders_by_size(self):
        small = self._machine("aaa-tiny", 20)
        big = self._machine("zzz-huge", 300)
        assert estimate_scan_seconds(big, ("files", "registry")) \
            > estimate_scan_seconds(small, ("files", "registry"))

    def test_first_epoch_dispatches_longest_first(self, tmp_path):
        # Alphabetical order (the pre-fix tiebreak) would scan the
        # tiny machine first; the estimate must put the big one first.
        small = self._machine("aaa-tiny", 20)
        big = self._machine("zzz-huge", 300)
        coordinator = FleetCoordinator(str(tmp_path), [small, big],
                                       workers=1, console_index=False)
        coordinator.run_epoch()
        order = [line.record["machine"]
                 for line in iter_journal(coordinator.epochs_path)
                 if line.record.get("type") == "fleet-machine"]
        assert order[0] == "zzz-huge"


class TestSamplingPolicy:
    def test_round_trip(self):
        policy = SamplingPolicy(seed=9, file_rate=0.1, full_every=4,
                                min_strata=2)
        assert SamplingPolicy.from_dict(policy.to_dict()) == policy

    def test_assign_tiers(self):
        class Entry:
            def __init__(self, machine, staleness, risk):
                self.machine, self.staleness, self.risk = \
                    machine, staleness, risk

        policy = SamplingPolicy(seed=0, full_every=1000)
        plan = [Entry("fresh", 1.0, 0), Entry("risky", 1.0, 2),
                Entry("never", 1000.0, 0)]
        tiers = policy.assign(plan, epoch=3)
        assert tiers["risky"] == TIER_FULL
        assert tiers["never"] == TIER_FULL
        assert tiers["fresh"] == TIER_SAMPLE

    def test_rotation_gives_everyone_a_full_scan(self):
        policy = SamplingPolicy(seed=1, full_every=4)

        class Entry:
            def __init__(self, machine):
                self.machine, self.staleness, self.risk = machine, 1.0, 0

        plan = [Entry(f"m-{i}") for i in range(12)]
        full_epochs = {entry.machine: [] for entry in plan}
        for epoch in range(1, 9):
            for machine, tier in policy.assign(plan, epoch).items():
                if tier == TIER_FULL:
                    full_epochs[machine].append(epoch)
        # Every machine rotates through the full tier once per cycle.
        assert all(len(epochs) == 2 for epochs in full_epochs.values())

    def test_choose_strata_deterministic_and_rated(self):
        policy = SamplingPolicy(seed=5, file_rate=0.25)
        dirs = [f"\\dir{i}" for i in range(20)]
        chosen = policy.choose_strata("m", 3, dirs)
        assert chosen == policy.choose_strata("m", 3, dirs)
        assert len(chosen) == 5
        assert set(chosen) <= set(dirs)
        assert chosen != policy.choose_strata("m", 4, dirs)

    def test_min_strata_floor(self):
        policy = SamplingPolicy(seed=5, file_rate=0.01, min_strata=2)
        assert len(policy.choose_strata("m", 1,
                                        [f"\\d{i}" for i in range(9)])) == 2


class TestSampledScan:
    @pytest.fixture
    def populated(self):
        machine = Machine("sampled-box", disk_mb=256, max_records=8192)
        populate_machine(machine, file_count=150, registry_scale=50,
                         seed=6)
        machine.boot()
        return machine

    def test_clean_machine_clean_and_cheaper(self, populated):
        policy = SamplingPolicy(seed=2, file_rate=0.2)
        sampled = perform_sampled_scan(populated, 1, policy)
        assert sampled.report.is_clean
        assert not sampled.escalate
        assert 0.0 < sampled.coverage < 1.0
        assert sampled.sampled_entities < sampled.total_entities
        assert sampled.strata_sampled < sampled.strata_total
        full = perform_machine_scan(populated, 1, EscalationPolicy(),
                                    None, ("files", "registry"), None)
        assert sampled.scan_seconds < full.scan_seconds

    def test_asep_ghost_always_escalates(self, populated):
        # The registry stratum is never sampled, so a persistent ghost
        # is caught regardless of which file strata the seed picks.
        STRAINS["hackerdefender"]().install(populated)
        policy = SamplingPolicy(seed=2, file_rate=0.05)
        sampled = perform_sampled_scan(populated, 1, policy)
        assert sampled.escalate

    def test_hidden_files_found_at_full_rate(self, populated):
        # With every stratum sampled the file diff alone must surface
        # the hider's files — no help from the registry stratum.
        STRAINS["hackerdefender"]().install(populated)
        sampled = perform_sampled_scan(
            populated, 1, SamplingPolicy(seed=2, file_rate=1.0),
            resources=("files",))
        resources = {f.resource_type.value
                     for f in sampled.report.findings}
        assert sampled.escalate
        assert "file" in resources


class TestSampledCoordinator:
    def _workload(self, seed=21):
        profile = FleetProfile(
            name="sc", size=4, seed=seed, file_count=(12, 20),
            registry_kb=(30, 50), churn_files=(1, 2),
            disk_mb=64, max_records=2048)
        return FleetWorkload(profile)

    def test_cold_start_full_then_sampled(self, tmp_path):
        workload = self._workload()
        sampling = SamplingPolicy(seed=7, file_rate=0.25, full_every=64)
        coordinator = FleetCoordinator(
            str(tmp_path), workload.machines.values(), workers=2,
            sampling=sampling, console_index=False, lease_seconds=1e6)
        workload.apply_epoch(1)
        first = coordinator.run_epoch()
        # Never-scanned machines are all above full_staleness → full.
        assert first.summary.sampled == 0
        workload.apply_epoch(2)
        second = coordinator.run_epoch()
        assert second.summary.sampled >= 1
        assert 0.0 < second.summary.estimated_recall <= 1.0
        sampled = [v for v in second.verdicts if v.sampled]
        assert all(v.coverage < 1.0 for v in sampled)
        assert all(v.verdict == "clean" for v in sampled)

    def test_infection_detected_through_sampling(self, tmp_path):
        workload = self._workload()
        sampling = SamplingPolicy(seed=7, file_rate=0.25, full_every=64)
        coordinator = FleetCoordinator(
            str(tmp_path), workload.machines.values(), workers=2,
            sampling=sampling, console_index=False, lease_seconds=1e6)
        workload.apply_epoch(1)
        coordinator.run_epoch()
        # Infect a machine guaranteed to land in the sample tier
        # (fresh baseline, no risk, not on this epoch's rotation slot).
        rotation = 2 % sampling.full_every
        victim = next(name for name in sorted(workload.machines)
                      if sampling._rotation_slot(name) != rotation)
        apply_infections(workload.machines,
                         [{"machine": victim,
                           "strain": "hackerdefender"}])
        second = coordinator.run_epoch()
        verdicts = {v.machine: v for v in second.verdicts}
        assert verdicts[victim].verdict == "infected"
        assert verdicts[victim].sampling_escalated
        assert second.summary.sampling_escalations >= 1
        # The escalated machine's verdict came from the full pipeline.
        assert verdicts[victim].findings > 0

    def test_sampled_tier_journaled_and_resumable(self, tmp_path):
        reference_dir = tmp_path / "ref"
        killed_dir = tmp_path / "killed"
        sampling = SamplingPolicy(seed=7, file_rate=0.25, full_every=64)

        def run(directory, kill):
            workload = self._workload()
            coordinator = FleetCoordinator(
                str(directory), workload.machines.values(), workers=2,
                sampling=sampling, console_index=False,
                lease_seconds=1e6)
            workload.apply_epoch(1)
            coordinator.run_epoch()
            workload.apply_epoch(2)
            if kill:
                with pytest.raises(CoordinatorKilled):
                    coordinator.run_epoch(kill_after_acks=2)
                resumed = FleetCoordinator(
                    str(directory), workload.machines.values(),
                    workers=2, sampling=sampling, console_index=False,
                    lease_seconds=1e6)
                aggregate = resumed.run_epoch()
                assert resumed._sampled_tier \
                    == resumed._journaled_sampled(2)
                return aggregate
            return coordinator.run_epoch()

        reference = run(reference_dir, kill=False)
        resumed = run(killed_dir, kill=True)
        assert {v.machine: verdict_key(v) for v in reference.verdicts} \
            == {v.machine: verdict_key(v) for v in resumed.verdicts}


class TestTraces:
    PROFILE = FleetProfile(
        name="tr", size=4, seed=31, file_count=(10, 16),
        registry_kb=(25, 45), churn_files=(1, 2),
        disk_mb=64, max_records=2048,
        waves=(InfectionWave("hackerdefender", onset_epoch=2),))

    def test_record_then_replay_twice(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        recorded = record_sweep(trace, self.PROFILE,
                                str(tmp_path / "rec"), epochs=3,
                                sampling=SamplingPolicy(seed=3,
                                                        full_every=64))
        first = replay_sweep(trace, str(tmp_path / "rep1"))
        second = replay_sweep(trace, str(tmp_path / "rep2"))
        assert recorded.trace_digest == first.trace_digest \
            == second.trace_digest
        assert recorded.verdicts == first.verdicts == second.verdicts
        assert recorded.infected == first.infected == second.infected
        assert recorded.infected   # the wave actually fired
        if not CHAOS_ACTIVE:
            # Within one process an ambient chaos plan's per-site
            # streams keep their positions, perturbing scan_seconds;
            # without one the journals are byte-identical.
            assert first.journal_digest == second.journal_digest

    def test_replay_rejects_tampered_trace(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        record_sweep(trace, self.PROFILE, str(tmp_path / "rec"),
                     epochs=2)
        lines = open(trace, encoding="utf-8").read().splitlines()
        tampered = [line.replace('"size": 4', '"size": 5')
                    if '"trace-header"' in line else line
                    for line in lines]
        assert tampered != lines
        with open(trace, "w", encoding="utf-8") as handle:
            handle.write("\n".join(tampered) + "\n")
        with pytest.raises(FleetError, match="digest mismatch"):
            replay_sweep(trace, str(tmp_path / "rep"))

    def test_load_trace_requires_header(self, tmp_path):
        trace = tmp_path / "empty.jsonl"
        trace.write_text('{"type": "not-a-trace"}\n')
        with pytest.raises(FleetError, match="no trace-header"):
            load_trace(str(trace))

    def test_trace_digest_is_canonical(self):
        records = [{"b": 1, "a": 2}, {"epoch": 1, "ops": []}]
        assert trace_digest(records) \
            == trace_digest([{"a": 2, "b": 1},
                             {"ops": [], "epoch": 1}])
        assert trace_digest(records) != trace_digest(records[:1])

    def test_coordinator_classmethod_entry_points(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        recorded = FleetCoordinator.record_trace(
            trace, self.PROFILE, str(tmp_path / "rec"), epochs=2)
        replayed = FleetCoordinator.replay_trace(
            trace, str(tmp_path / "rep"))
        assert recorded.verdicts == replayed.verdicts


# Strains whose persistence hooks an ASEP *and* whose stealth hides it
# from the API view — the registry stratum alone convicts them, so the
# sampled sweep's recall on them is total at any file rate.  (berbew
# doesn't hide and naming hides only files, so neither qualifies.)
ASEP_STRAINS = ("hackerdefender", "urbin", "mersting", "vanquish")


class TestEscalationProperty:
    """Satellite: the sampled sweep never under-reports an escalated
    machine, and its recall accounting matches the planted truth."""

    @settings(max_examples=4, deadline=None)
    @given(profile_seed=st.integers(1, 1_000),
           sampling_seed=st.integers(0, 1_000),
           file_rate=st.floats(0.05, 0.6),
           strain=st.sampled_from(ASEP_STRAINS))
    def test_sampled_superset_on_escalated(self, tmp_path_factory,
                                           profile_seed, sampling_seed,
                                           file_rate, strain):
        profile = FleetProfile(
            name="prop", size=4, seed=profile_seed,
            file_count=(8, 14), registry_kb=(20, 40),
            churn_files=(1, 2), disk_mb=64, max_records=2048,
            waves=(InfectionWave(strain, onset_epoch=2, initial=1,
                                 spread=1.0),))
        sampling = SamplingPolicy(seed=sampling_seed,
                                  file_rate=file_rate, full_every=64)
        base = tmp_path_factory.mktemp("prop")

        source = FleetWorkload(profile)
        sampled_run = FleetCoordinator(
            str(base / "sampled"), source.machines.values(), workers=2,
            sampling=sampling, console_index=False, lease_seconds=1e6)
        mirror = FleetWorkload(profile)
        full_run = FleetCoordinator(
            str(base / "full"), mirror.machines.values(), workers=2,
            console_index=False, lease_seconds=1e6)

        last_sampled = last_full = None
        for epoch in (1, 2, 3):
            events = source.apply_epoch(epoch)
            # The mirror fleet applies the *same* events, so both runs
            # scan literally identical machine states.
            apply_ops(mirror.machines, events["ops"])
            apply_infections(mirror.machines, events["infections"])
            last_sampled = sampled_run.run_epoch()
            last_full = full_run.run_epoch()

        truth = source.infected_machines(3)
        sampled_verdicts = {v.machine: v for v in last_sampled.verdicts}
        full_infected = {v.machine for v in last_full.verdicts
                         if v.verdict == "infected"}
        sampled_infected = {name for name, v in sampled_verdicts.items()
                            if v.verdict == "infected"}

        # The full sweep's recall on ASEP-persistent strains is total.
        assert full_infected == truth
        # No false positives, and every escalated machine reports at
        # least what the full sweep reports for it.
        assert sampled_infected <= truth
        escalated = {name for name, v in sampled_verdicts.items()
                     if v.sampling_escalated}
        assert full_infected & escalated <= sampled_infected
        # Machines scanned in full (tier or escalation) miss nothing.
        fully_checked = {name for name, v in sampled_verdicts.items()
                         if not v.sampled or v.sampling_escalated}
        assert truth & fully_checked <= sampled_infected
        # Persistent strains hook ASEPs, and the ASEP stratum is never
        # sampled away — the sampled sweep's recall is total too.
        assert sampled_infected == truth

        # Recall accounting: the coverage-weighted estimate folds
        # exactly the verdicts' coverage shares.
        summary = last_sampled.summary
        expected = sum(0.0 if v.error is not None else v.coverage
                       for v in last_sampled.verdicts) / summary.machines
        assert summary.estimated_recall == pytest.approx(expected,
                                                         abs=1e-6)


class TestAccountingAndRendering:
    def test_aggregator_recall_math(self):
        aggregator = FleetAggregator(epoch=1)
        aggregator.observe(MachineVerdict(
            machine="a", epoch=1, verdict="clean", scanned=True,
            sampled=True, coverage=0.5))
        aggregator.observe(MachineVerdict(
            machine="b", epoch=1, verdict="infected", scanned=True,
            findings=1, sampled=True, coverage=0.25,
            sampling_escalated=True))
        aggregator.observe(MachineVerdict(
            machine="c", epoch=1, verdict="clean", scanned=True))
        summary = aggregator.summary
        assert summary.sampled == 2
        assert summary.sampling_escalations == 1
        assert summary.estimated_recall \
            == pytest.approx((0.5 + 0.25 + 1.0) / 3, abs=1e-6)

    def test_verdict_round_trip_keeps_sampling_fields(self):
        verdict = MachineVerdict(machine="a", epoch=2, verdict="clean",
                                 scanned=True, sampled=True,
                                 coverage=0.375)
        back = MachineVerdict.from_dict(verdict.to_dict())
        assert back.sampled and back.coverage == 0.375
        assert not back.sampling_escalated

    def test_scan_report_renders_sampling(self):
        import importlib.util
        from pathlib import Path
        spec = importlib.util.spec_from_file_location(
            "scan_report", Path(__file__).resolve().parent.parent
            / "scripts" / "scan_report.py")
        scan_report = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(scan_report)
        records = {
            "fleet-machine": [
                {"machine": "m0", "epoch": 2, "verdict": "clean",
                 "sampled": True, "coverage": 0.4, "findings": 0,
                 "scan_seconds": 3.0},
                {"machine": "m1", "epoch": 2, "verdict": "infected",
                 "sampled": True, "sampling_escalated": True,
                 "coverage": 0.4, "findings": 2, "scan_seconds": 9.0},
            ],
            "epoch-end": [
                {"epoch": 2, "machines": 2, "scanned": 2, "sampled": 2,
                 "sampling_escalations": 1, "estimated_recall": 0.7,
                 "infected": 1, "scan_seconds": 12.0}],
        }
        text = scan_report.render_fleet(records)
        assert "samp 40%" in text
        assert "sam>full" in text
        assert "est. recall 70.0%" in text

    def test_dashboard_scan_mode(self):
        from repro.console.dashboard import _scan_mode
        assert _scan_mode({"sampled": True, "coverage": 0.4}) \
            == "sampled 40%"
        assert _scan_mode({"sampling_escalated": True}) == "sampled→full"
        assert _scan_mode({"skipped": True}) == "skip"
        assert _scan_mode({}) == "full"
