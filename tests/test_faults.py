"""The fault-injection substrate itself: plans, retries, breakers.

These tests pin the substrate's two contracts — determinism (same seed
⇒ byte-identical fault sequence, independent of thread interleaving)
and observability (every fired fault lands in the log, the metrics
registry, and the active audit trail).
"""

from __future__ import annotations

import threading

import pytest

from repro.clock import SimClock
from repro.disk import Disk, DiskGeometry
from repro.errors import (ApiError, CircuitOpen, MachineUnavailable,
                          RetryExhausted, TransientIoError)
from repro.faults import context as faults_context
from repro.faults.injectors import corrupt_blob, corrupt_read
from repro.faults.plan import (FaultPlan, FaultSpec, SITE_DISK_READ,
                               SITE_HIVE_READ, SITE_RIS_TRANSPORT,
                               SITE_WINAPI_ENUM)
from repro.faults.retry import (CircuitBreaker, RetryPolicy,
                                construct_with_retry)
from repro.telemetry.metrics import (MetricsRegistry, set_global_metrics)


class TestFaultPlanDeterminism:
    def test_same_seed_same_sequence(self):
        runs = []
        for _ in range(2):
            plan = FaultPlan.default(seed=1234, rate=0.3)
            for index in range(200):
                plan.draw(SITE_DISK_READ, "machine-a")
                if index % 3 == 0:
                    plan.draw(SITE_RIS_TRANSPORT, "machine-a")
            runs.append((plan.sequence_digest(), plan.log_dicts()))
        assert runs[0] == runs[1]
        assert runs[0][1]   # something actually fired at rate 0.3

    def test_different_seeds_differ(self):
        digests = set()
        for seed in (1, 2, 3):
            plan = FaultPlan.default(seed=seed, rate=0.3)
            for _ in range(200):
                plan.draw(SITE_DISK_READ)
            digests.add(plan.sequence_digest())
        assert len(digests) == 3

    def test_streams_independent_of_interleaving(self):
        """Per-(site, scope) streams make the digest thread-schedule-proof."""
        def run(workers_first: bool) -> str:
            plan = FaultPlan.default(seed=99, rate=0.4)
            scopes = ["m1", "m2", "m3"]
            if workers_first:
                scopes = list(reversed(scopes))
            threads = [threading.Thread(
                target=lambda s=scope: [plan.draw(SITE_DISK_READ, s)
                                        for _ in range(100)])
                for scope in scopes]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            return plan.sequence_digest()

        assert run(True) == run(False)

    def test_scoped_spec_only_fires_for_named_machines(self):
        plan = FaultPlan(5, (FaultSpec(SITE_DISK_READ, mode="always",
                                       scopes=("victim",)),))
        assert plan.draw(SITE_DISK_READ, "bystander") is None
        assert plan.draw(SITE_DISK_READ, "victim") is not None


class TestFaultModes:
    def test_always_fires_every_draw(self):
        plan = FaultPlan(7, (FaultSpec(SITE_WINAPI_ENUM, mode="always",
                                       kinds=("status_failure",)),))
        faults = [plan.draw(SITE_WINAPI_ENUM) for _ in range(5)]
        assert all(faults)
        assert [fault.stream_seq for fault in faults] == [1, 2, 3, 4, 5]

    def test_one_shot_fires_once(self):
        plan = FaultPlan(7, (FaultSpec(SITE_DISK_READ, mode="one_shot"),))
        assert plan.draw(SITE_DISK_READ) is not None
        assert all(plan.draw(SITE_DISK_READ) is None for _ in range(20))

    def test_one_shot_is_per_stream(self):
        plan = FaultPlan(7, (FaultSpec(SITE_DISK_READ, mode="one_shot"),))
        assert plan.draw(SITE_DISK_READ, "m1") is not None
        assert plan.draw(SITE_DISK_READ, "m2") is not None
        assert plan.draw(SITE_DISK_READ, "m1") is None

    def test_burst_fires_consecutively(self):
        plan = FaultPlan(7, (FaultSpec(SITE_DISK_READ, mode="burst",
                                       rate=1.0, burst_length=3,
                                       max_fires=3),))
        faults = [plan.draw(SITE_DISK_READ) for _ in range(6)]
        assert [bool(fault) for fault in faults] == \
            [True, True, True, False, False, False]

    def test_max_fires_caps_a_stream(self):
        plan = FaultPlan(7, (FaultSpec(SITE_DISK_READ, mode="always",
                                       max_fires=2),))
        fired = [plan.draw(SITE_DISK_READ) for _ in range(10)]
        assert sum(1 for fault in fired if fault) == 2

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(SITE_DISK_READ, mode="sometimes")
        with pytest.raises(ValueError):
            FaultSpec(SITE_DISK_READ, rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(SITE_DISK_READ, kinds=())


class TestObservability:
    def test_fired_faults_counted_in_metrics(self):
        metrics = MetricsRegistry()
        previous = set_global_metrics(metrics)
        try:
            plan = FaultPlan(7, (FaultSpec(SITE_DISK_READ, mode="always"),))
            plan.draw(SITE_DISK_READ)
            plan.draw(SITE_DISK_READ)
            snapshot = metrics.snapshot()
        finally:
            set_global_metrics(previous)
        assert snapshot["counters"]["faults.injected"] == 2
        assert snapshot["counters"]["faults.injected.disk.read"] == 2

    def test_fired_filters_by_site_and_scope(self):
        plan = FaultPlan(7, (FaultSpec(SITE_DISK_READ, mode="always"),
                             FaultSpec(SITE_HIVE_READ, mode="always",
                                       kinds=("truncate",)),))
        plan.draw(SITE_DISK_READ, "m1")
        plan.draw(SITE_DISK_READ, "m2")
        plan.draw(SITE_HIVE_READ, "m1")
        assert plan.fired_count() == 3
        assert plan.fired_count(site=SITE_DISK_READ) == 2
        assert plan.fired_count(scope="m1") == 2
        assert plan.fired_count(site=SITE_HIVE_READ, scope="m2") == 0


class TestMaybeInject:
    def test_no_active_plan_is_a_noop(self):
        assert faults_context.maybe_inject(SITE_DISK_READ) is None

    def test_kind_dispatch(self):
        cases = (("transient", TransientIoError),
                 ("io_error", TransientIoError),
                 ("timeout", TransientIoError),
                 ("status_failure", ApiError),
                 ("drop", MachineUnavailable),
                 ("machine_death", MachineUnavailable))
        for kind, expected in cases:
            plan = FaultPlan(7, (FaultSpec(SITE_WINAPI_ENUM, mode="always",
                                           kinds=(kind,),
                                           mean_delay_s=0.0),))
            with faults_context.scoped(plan, scope="m1"):
                with pytest.raises(expected):
                    faults_context.maybe_inject(SITE_WINAPI_ENUM)

    def test_machine_death_carries_the_fault(self):
        plan = FaultPlan(7, (FaultSpec(SITE_RIS_TRANSPORT, mode="always",
                                       kinds=("machine_death",),
                                       mean_delay_s=0.0),))
        with faults_context.scoped(plan, scope="m1"):
            with pytest.raises(MachineUnavailable) as excinfo:
                faults_context.maybe_inject(SITE_RIS_TRANSPORT)
        assert excinfo.value.fault.kind == "machine_death"

    def test_hang_charges_the_clock_and_proceeds(self):
        clock = SimClock()
        plan = FaultPlan(7, (FaultSpec(SITE_WINAPI_ENUM, mode="always",
                                       kinds=("hang",),
                                       mean_delay_s=1.0),))
        with faults_context.scoped(plan, scope="m1", clock=clock):
            fault = faults_context.maybe_inject(SITE_WINAPI_ENUM)
        assert fault is not None and fault.kind == "hang"
        assert clock.now() == pytest.approx(fault.delay_s)
        assert fault.delay_s > 0

    def test_thread_scope_beats_global_plan(self):
        global_ = FaultPlan(1, (FaultSpec(SITE_DISK_READ, mode="always"),))
        local = FaultPlan(2, (FaultSpec(SITE_HIVE_READ, mode="always",
                                        kinds=("truncate",)),))
        faults_context.install_global_plan(global_)
        try:
            with faults_context.scoped(local, scope="m1"):
                assert faults_context.active_plan() is local
            assert faults_context.active_plan() is global_
        finally:
            faults_context.install_global_plan(None)
        assert faults_context.active_plan() is None


class TestRetryPolicy:
    def test_succeeds_after_transients(self):
        clock = SimClock()
        attempts = []

        def flaky():
            attempts.append(clock.now())
            if len(attempts) < 3:
                raise TransientIoError("try again")
            return "done"

        policy = RetryPolicy(max_attempts=4, base_delay_s=0.1,
                             jitter_seed=9)
        assert policy.run("op", flaky, clock=clock) == "done"
        assert len(attempts) == 3
        # Backoff doubled between attempts, charged to the sim clock.
        assert attempts[0] == 0.0
        assert attempts[1] == pytest.approx(policy.delay_for(1))
        assert attempts[2] == pytest.approx(policy.delay_for(1)
                                            + policy.delay_for(2))

    def test_exhaustion_raises_with_cause(self):
        policy = RetryPolicy(max_attempts=2)

        def always_fails():
            raise TransientIoError("nope")

        with pytest.raises(RetryExhausted) as excinfo:
            policy.run("op", always_fails)
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value.last_error, TransientIoError)

    def test_deterministic_backoff(self):
        one = RetryPolicy(jitter_seed=5)
        two = RetryPolicy(jitter_seed=5)
        other = RetryPolicy(jitter_seed=6)
        delays_one = [one.delay_for(n) for n in (1, 2, 3)]
        assert delays_one == [two.delay_for(n) for n in (1, 2, 3)]
        assert delays_one != [other.delay_for(n) for n in (1, 2, 3)]

    def test_delay_capped(self):
        policy = RetryPolicy(base_delay_s=1.0, max_delay_s=2.0)
        assert policy.delay_for(10) <= 2.0 * 1.25

    def test_deadline_stops_retrying(self):
        clock = SimClock()
        policy = RetryPolicy(max_attempts=50, base_delay_s=1.0,
                             max_delay_s=1.0, deadline_s=2.5)
        calls = []

        def always_fails():
            calls.append(clock.now())
            raise TransientIoError("nope")

        with pytest.raises(RetryExhausted):
            policy.run("op", always_fails, clock=clock)
        assert len(calls) < 10   # nowhere near the 50-attempt budget

    def test_non_retryable_passes_through(self):
        policy = RetryPolicy(max_attempts=5)

        def bug():
            raise ValueError("logic error")

        with pytest.raises(ValueError):
            policy.run("op", bug)


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3)
        for _ in range(3):
            breaker.allow("m1")
            breaker.record_failure("m1")
        with pytest.raises(CircuitOpen):
            breaker.allow("m1")
        assert breaker.state("m1") == "open"
        assert breaker.open_scopes() == ["m1"]
        # Other scopes unaffected.
        breaker.allow("m2")
        assert breaker.state("m2") == "closed"

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure("m1")
        breaker.record_success("m1")
        breaker.record_failure("m1")
        breaker.allow("m1")   # still closed: failures never hit 2 in a row

    def test_half_open_probe(self):
        clock = SimClock()
        breaker = CircuitBreaker(failure_threshold=2, recovery_after_s=10.0,
                                 clock=clock)
        breaker.record_failure("m1")
        breaker.record_failure("m1")
        with pytest.raises(CircuitOpen):
            breaker.allow("m1")
        clock.advance(11.0)
        breaker.allow("m1")          # half-open: one probe admitted
        breaker.record_success("m1")
        breaker.allow("m1")          # success closed it for good
        assert breaker.state("m1") == "closed"

    def test_half_open_failure_reopens(self):
        clock = SimClock()
        breaker = CircuitBreaker(failure_threshold=2, recovery_after_s=10.0,
                                 clock=clock)
        breaker.record_failure("m1")
        breaker.record_failure("m1")
        clock.advance(11.0)
        breaker.allow("m1")
        breaker.record_failure("m1")
        with pytest.raises(CircuitOpen):
            breaker.allow("m1")


class TestConstructWithRetry:
    def test_transient_construction_retried(self):
        calls = []

        def factory():
            calls.append(1)
            if len(calls) < 2:
                raise TransientIoError("flaky")
            return "built"

        assert construct_with_retry("thing", factory) == "built"
        assert len(calls) == 2

    def test_exhaustion_reraises_last_error(self):
        calls = []

        def factory():
            calls.append(1)
            raise TransientIoError("never")

        with pytest.raises(TransientIoError):
            construct_with_retry("thing", factory, attempts=2)
        assert len(calls) == 2


class TestDiskFaultInjector:
    def _disk(self) -> Disk:
        disk = Disk(DiskGeometry.from_megabytes(1))
        disk.write_bytes(0, bytes(range(256)) * 4)
        return disk

    def test_io_error_surfaces_after_driver_retries(self):
        disk = self._disk()
        plan = FaultPlan(7, (FaultSpec(SITE_DISK_READ, mode="always",
                                       kinds=("io_error",)),))
        from repro.faults.injectors import DiskFaultInjector
        disk.fault_injector = DiskFaultInjector(plan, disk, scope="m1")
        with pytest.raises(TransientIoError):
            disk.read_bytes(0, 64)
        # always-mode: every driver-level re-read faulted too.
        assert plan.fired_count() >= 2

    def test_driver_retry_recovers_from_one_shot(self):
        disk = self._disk()
        plan = FaultPlan(7, (FaultSpec(SITE_DISK_READ, mode="one_shot",
                                       kinds=("io_error",)),))
        from repro.faults.injectors import DiskFaultInjector
        disk.fault_injector = DiskFaultInjector(plan, disk, scope="m1")
        # The single fault is absorbed by the driver-level re-read.
        assert disk.read_bytes(0, 64) == bytes(range(64))
        assert plan.fired_count() == 1

    def test_torn_read_bumps_generation(self):
        disk = self._disk()
        plan = FaultPlan(7, (FaultSpec(SITE_DISK_READ, mode="one_shot",
                                       kinds=("torn_read",)),))
        from repro.faults.injectors import DiskFaultInjector
        disk.fault_injector = DiskFaultInjector(plan, disk, scope="m1")
        generation = disk.generation
        damaged = disk.read_bytes(0, 64)
        assert len(damaged) == 64
        assert damaged[:32] == bytes(range(32))      # head intact
        assert damaged[32:] == b"\x00" * 32          # torn tail
        assert disk.generation == generation + 1     # caches invalidated

    def test_slow_read_charges_clock_returns_clean(self):
        disk = self._disk()
        clock = SimClock()
        plan = FaultPlan(7, (FaultSpec(SITE_DISK_READ, mode="one_shot",
                                       kinds=("slow_read",),
                                       mean_delay_s=0.5),))
        from repro.faults.injectors import DiskFaultInjector
        disk.fault_injector = DiskFaultInjector(plan, disk, clock=clock,
                                                scope="m1")
        assert disk.read_bytes(0, 64) == bytes(range(64))
        assert clock.now() > 0

    def test_detached_disk_reads_clean(self):
        disk = self._disk()
        plan = FaultPlan(7, (FaultSpec(SITE_DISK_READ, mode="always",
                                       kinds=("io_error",)),))
        from repro.faults.injectors import DiskFaultInjector
        disk.fault_injector = DiskFaultInjector(plan, disk, scope="m1")
        disk.fault_injector = None
        assert disk.read_bytes(0, 16) == bytes(range(16))

    def test_clone_does_not_inherit_injector(self):
        disk = self._disk()
        plan = FaultPlan(7, (FaultSpec(SITE_DISK_READ, mode="always",
                                       kinds=("io_error",)),))
        from repro.faults.injectors import DiskFaultInjector
        disk.fault_injector = DiskFaultInjector(plan, disk, scope="m1")
        assert disk.clone().fault_injector is None


class TestCorruptionHelpers:
    def _fault(self, kind: str, seq: int = 1):
        from repro.faults.plan import InjectedFault
        return InjectedFault(site=SITE_HIVE_READ, kind=kind, scope="m1",
                             stream_seq=seq)

    def test_corruption_is_a_function_of_fault_identity(self):
        blob = bytes(range(256))
        first = corrupt_blob(blob, self._fault("corrupt"))
        second = corrupt_blob(blob, self._fault("corrupt"))
        different = corrupt_blob(blob, self._fault("corrupt", seq=2))
        assert first == second
        assert first != blob
        assert different != first

    def test_truncate_shrinks(self):
        blob = bytes(range(256))
        assert len(corrupt_blob(blob, self._fault("truncate"))) < len(blob)

    def test_read_corruption_preserves_length(self):
        data = bytes(range(128))
        for kind in ("torn_read", "bit_flip"):
            damaged = corrupt_read(data, self._fault(kind))
            assert len(damaged) == len(data)
            assert damaged != data
