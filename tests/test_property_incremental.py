"""Property tests: journal-patched indexes equal cold reparses.

The incremental pipeline's one non-negotiable invariant, hammered with
random mutation sequences: after ANY series of creates, writes,
renames, deletes and ADS edits, a namespace repaired through the change
journal must be element-identical to a from-scratch raw parse — and the
same for hive trees rebuilt bin-by-bin.  The overflow variant runs the
same sequences through a deliberately tiny journal so the wrap/fallback
path gets the same hammering as the happy path.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.disk import ChangeJournal, Disk, DiskGeometry
from repro.errors import VolumeError
from repro.ntfs import NtfsVolume
from repro.ntfs.mft_parser import MftParser
from repro.registry import hive_parser
from repro.registry.hive import Hive

_SLOTS = 8          # file name pool: ops address files by slot index
_DIRS = ("\\docs", "\\docs\\deep", "\\logs")

file_ops = st.lists(
    st.one_of(
        st.tuples(st.just("create"), st.integers(0, _SLOTS - 1),
                  st.integers(0, 2)),              # (op, slot, dir index)
        st.tuples(st.just("write"), st.integers(0, _SLOTS - 1),
                  st.integers(1, 3000)),           # (op, slot, new size)
        st.tuples(st.just("delete"), st.integers(0, _SLOTS - 1),
                  st.just(0)),
        st.tuples(st.just("rename"), st.integers(0, _SLOTS - 1),
                  st.integers(0, 2)),              # move to dir index
        st.tuples(st.just("ads"), st.integers(0, _SLOTS - 1),
                  st.integers(1, 64)),             # (op, slot, ads size)
        st.tuples(st.just("movedir"), st.integers(0, 1),
                  st.just(0)),                     # rename \docs\deep
    ),
    min_size=1, max_size=12)


def _fresh_volume():
    disk = Disk(DiskGeometry.from_megabytes(16))
    volume = NtfsVolume.format(disk, max_records=1024)
    for directory in ("\\docs", "\\docs\\deep", "\\logs"):
        volume.create_directories(directory)
    for slot in range(0, _SLOTS, 2):               # half the pool exists
        volume.create_file(f"\\docs\\slot-{slot}.bin", b"seed" * slot)
    return disk, volume


class _Mutator:
    """Applies random ops, skipping ones the volume state disallows."""

    def __init__(self, volume):
        self.volume = volume
        self.paths = {}
        self.deep = "\\docs\\deep"
        for slot in range(0, _SLOTS, 2):
            self.paths[slot] = f"\\docs\\slot-{slot}.bin"

    def _dir(self, index):
        return [d if d != "\\docs\\deep" else self.deep
                for d in _DIRS][index]

    def apply(self, op, slot, arg):
        if op == "create" and slot not in self.paths:
            path = f"{self._dir(arg)}\\slot-{slot}.bin"
            self.volume.create_file(path, b"fresh")
            self.paths[slot] = path
        elif op == "write" and slot in self.paths:
            self.volume.write_file(self.paths[slot], b"w" * arg)
        elif op == "delete" and slot in self.paths:
            self.volume.delete_file(self.paths.pop(slot))
        elif op == "rename" and slot in self.paths:
            target = f"{self._dir(arg)}\\moved-{slot}.bin"
            if target != self.paths[slot] \
                    and not self.volume.exists(target):
                self.volume.rename(self.paths[slot], target)
                self.paths[slot] = target
        elif op == "ads" and slot in self.paths:
            self.volume.write_stream(self.paths[slot], "extra", b"a" * arg)
        elif op == "movedir":
            source = self.deep
            target = "\\docs\\deep" if source != "\\docs\\deep" \
                else "\\docs\\renamed"
            try:
                self.volume.rename(source, target)
            except VolumeError:
                return
            self.deep = target
            for slot, path in self.paths.items():
                if path.startswith(source + "\\"):
                    self.paths[slot] = target + path[len(source):]


def _warm(disk):
    return sorted(MftParser(disk.read_bytes).parse(),
                  key=lambda e: e.record_no)


def _cold(disk):
    reader = lambda offset, length: disk.read_bytes(offset, length)
    return sorted(MftParser(reader).parse(), key=lambda e: e.record_no)


@settings(max_examples=30, deadline=None)
@given(file_ops)
def test_patched_namespace_equals_cold_reparse(ops):
    disk, volume = _fresh_volume()
    mutator = _Mutator(volume)
    _warm(disk)                                   # seed the shared cache
    for op, slot, arg in ops:
        mutator.apply(op, slot, arg)
        assert _warm(disk) == _cold(disk)


@settings(max_examples=15, deadline=None)
@given(file_ops)
def test_overflowing_journal_still_correct(ops):
    disk, volume = _fresh_volume()
    mutator = _Mutator(volume)
    _warm(disk)
    # Two-record ring: almost every multi-write op wraps it, so the
    # patch path must constantly take the full-reparse fallback.
    disk.journal = ChangeJournal(capacity=2,
                                 start_generation=disk.generation)
    for op, slot, arg in ops:
        mutator.apply(op, slot, arg)
    assert _warm(disk) == _cold(disk)


# -- hive bin-level delta ------------------------------------------------------

hive_ops = st.lists(
    st.tuples(st.integers(0, 3),                  # top-level key index
              st.integers(0, 4),                  # value slot
              st.one_of(st.text(min_size=0, max_size=20),
                        st.integers(0, 2**31 - 1)),
              st.booleans()),                     # True = delete instead
    min_size=1, max_size=10)

_TOPS = ("Alpha", "Beta", "Gamma", "Delta")


@settings(max_examples=30, deadline=None)
@given(hive_ops)
def test_bin_patched_hive_equals_cold_parse(ops):
    hive = Hive("SOFTWARE")
    for top in _TOPS:
        hive.create_key(f"{top}\\Sub").set_value("seed", top)
    hive_parser.parse_hive(hive.serialize())      # warm the bin cache
    for key_index, value_slot, data, delete in ops:
        key = hive.open_key(f"{_TOPS[key_index]}\\Sub")
        name = f"value-{value_slot}"
        if delete:
            if key.has_value(name):
                key.delete_value(name)
        else:
            key.set_value(name, data)
        blob = hive.serialize()
        incremental = hive_parser._parse_blob_incremental(blob)
        cold = hive_parser.HiveParser(blob).parse()
        assert incremental == cold
