"""Tests for the WinPE environment and the noise filter."""

import pytest

from repro.core import GhostBuster, WinPEEnvironment
from repro.core.diff import Finding
from repro.core.noise import NoiseFilter, classify_noise
from repro.core.snapshot import (FileEntry, ProcessEntry, ResourceType)
from repro.errors import MachineStateError, ScanError
from repro.ghostware import HackerDefender, NamingExploitGhost


class TestWinPE:
    def test_requires_powered_down_machine(self, booted):
        with pytest.raises(MachineStateError):
            WinPEEnvironment(booted)

    def test_requires_boot_before_scan(self, booted):
        booted.shutdown()
        winpe = WinPEEnvironment(booted)
        with pytest.raises(ScanError):
            winpe.file_scan()

    def test_boot_charges_paper_range(self, booted):
        booted.shutdown()
        winpe = WinPEEnvironment(booted)
        winpe.boot()
        assert 90 <= winpe.boot_seconds <= 185

    def test_file_scan_sees_hidden_files(self, booted):
        HackerDefender().install(booted)
        booted.shutdown()
        winpe = WinPEEnvironment(booted)
        winpe.boot()
        names = {entry.name for entry in winpe.file_scan().entries}
        assert "hxdef100.exe" in names

    def test_raw_mode_sees_naming_ghosts(self, booted):
        NamingExploitGhost().install(booted)
        booted.shutdown()
        winpe = WinPEEnvironment(booted)
        winpe.boot()
        win32_names = {entry.name for entry in
                       winpe.file_scan(win32_naming=True).entries}
        raw_names = {entry.name for entry in
                     winpe.file_scan(win32_naming=False).entries}
        assert "payload.exe." not in win32_names
        assert "payload.exe." in raw_names

    def test_missing_dump_raises(self, booted):
        booted.shutdown()
        winpe = WinPEEnvironment(booted)
        winpe.boot()
        with pytest.raises(ScanError):
            winpe.process_scan()

    def test_dump_scan_roundtrip(self, booted):
        gb = GhostBuster(booted)
        gb.write_crash_dump()
        booted.shutdown()
        winpe = WinPEEnvironment(booted)
        winpe.boot()
        snapshot = winpe.process_scan()
        assert any(entry.name == "explorer.exe"
                   for entry in snapshot.entries)


def _file_finding(path):
    return Finding(ResourceType.FILE,
                   FileEntry(path, path.rsplit("\\", 1)[-1], False, 0),
                   "api", "outside")


class TestNoiseFilter:
    @pytest.mark.parametrize("path,reason_part", [
        ("\\Windows\\Prefetch\\APP-123.pf", "prefetch"),
        ("\\System Volume Information\\_restore{X}\\change.log",
         "System Restore"),
        ("\\Documents and Settings\\u\\Local Settings"
         "\\Temporary Internet Files\\ad.htm", "browser"),
        ("\\Windows\\System32\\CCM\\Logs\\exec.log", "CCM"),
        ("\\Program Files\\eTrust AntiVirus\\avlogs\\rt.log",
         "anti-virus"),
        ("\\Temp\\scratch.tmp", "temporary"),
    ])
    def test_known_noise_classified(self, path, reason_part):
        reason = classify_noise(_file_finding(path))
        assert reason is not None
        assert reason_part.casefold() in reason.casefold()

    def test_malware_paths_not_noise(self):
        assert classify_noise(_file_finding("\\Windows\\hxdef100.exe")) \
            is None

    @pytest.mark.parametrize("path", [
        "\\Temp\\scratch.tmp:stream",
        "\\Temp\\scratch.tmp:Zone.Identifier",
        "\\Windows\\Prefetch\\APP-123.pf:meta",
    ])
    def test_ads_qualified_noise_still_classified(self, path):
        """``file.tmp:stream`` is a stream *of* a noise file — same verdict."""
        host = path.rsplit(":", 1)[0]
        assert classify_noise(_file_finding(path)) == \
            classify_noise(_file_finding(host))
        assert classify_noise(_file_finding(path)) is not None

    def test_ads_on_suspicious_host_not_noise(self):
        assert classify_noise(
            _file_finding("\\Windows\\hxdef100.exe:cfg")) is None

    def test_drive_letter_colon_is_not_an_ads(self):
        # The colon sits in a non-final component (the drive letter) —
        # only a colon in the last component is an ADS separator.
        assert classify_noise(_file_finding("c:\\temp\\evil.exe")) is None
        assert classify_noise(_file_finding("c:\\temp\\junk.tmp")) \
            is not None

    def test_non_file_findings_never_noise(self):
        finding = Finding(ResourceType.PROCESS, ProcessEntry(4, "x"),
                          "api", "raw")
        assert classify_noise(finding) is None

    def test_apply_annotates_without_dropping(self):
        findings = [_file_finding("\\Windows\\Prefetch\\A.pf"),
                    _file_finding("\\evil.exe")]
        annotated = NoiseFilter().apply(findings)
        assert len(annotated) == 2
        assert annotated[0].is_noise
        assert not annotated[1].is_noise

    def test_split(self):
        findings = [_file_finding("\\Windows\\Prefetch\\A.pf"),
                    _file_finding("\\evil.exe")]
        suspicious, noise = NoiseFilter().split(findings)
        assert [f.entry.path for f in suspicious] == ["\\evil.exe"]
        assert len(noise) == 1

    def test_extra_patterns(self):
        custom = NoiseFilter(extra_patterns=((r"*\sapgui\*", "SAP trace"),))
        finding = _file_finding("\\Program Files\\sapgui\\trace.txt")
        assert custom.apply([finding])[0].noise_reason == "SAP trace"
