"""Tests for the simulated administrator utilities."""

import pytest

from repro.ghostware import (Aphex, HackerDefender, ProBotSE, Urbin,
                             Vanquish)
from repro.machine import APPINIT_KEY, RUN_KEY
from repro.registry.hive import RegType
from repro.tools import (RegEdit, api_hook_check, ask_strider, dir_s_b,
                         export_key, import_reg_text,
                         reg_fixup_export_reimport, tasklist)


class TestDirCommand:
    def test_lists_everything_on_clean_machine(self, booted):
        listing = dir_s_b(booted)
        assert "\\Windows\\System32\\ntdll.dll" in listing

    def test_lied_to_by_ghostware(self, booted):
        HackerDefender().install(booted)
        listing = dir_s_b(booted)
        assert all("hxdef" not in path.casefold() for path in listing)

    def test_scoped_root(self, booted):
        listing = dir_s_b(booted, root="\\Windows\\System32")
        assert all(path.startswith("\\Windows\\System32")
                   for path in listing)


class TestTasklist:
    def test_shows_system_processes(self, booted):
        names = {name for __, name in tasklist(booted)}
        assert {"System", "explorer.exe"} <= names

    def test_lied_to_by_process_hiders(self, booted):
        HackerDefender().install(booted)
        names = {name for __, name in tasklist(booted)}
        assert "hxdef100.exe" not in names


class TestRegEdit:
    def test_browse(self, booted):
        booted.registry.set_value(RUN_KEY, "app", "\\x.exe")
        regedit = RegEdit(booted)
        views = regedit.values(RUN_KEY)
        assert any(view.name == "app" for view in views)

    def test_tree_rendering(self, booted):
        booted.registry.set_value("HKLM\\SOFTWARE\\Vendor\\App", "v", "1")
        lines = RegEdit(booted).tree("HKLM\\SOFTWARE\\Vendor")
        assert any("App" in line for line in lines)
        assert any("v = 1" in line for line in lines)

    def test_cannot_see_nul_names(self, booted):
        booted.registry.set_value(RUN_KEY, "x\x00hidden", "evil")
        views = RegEdit(booted).values(RUN_KEY)
        assert all("\x00" not in view.name for view in views)

    def test_lied_to_by_registry_hiders(self, booted):
        Urbin().install(booted)
        view = RegEdit(booted).query(APPINIT_KEY, "AppInit_DLLs")
        assert "msvsres" not in view.data


class TestRegExportImport:
    def test_roundtrip(self, booted):
        key = "HKLM\\SOFTWARE\\RoundTrip"
        booted.registry.set_value(key, "text", "hello")
        booted.registry.set_value(key, "number", 42)
        booted.registry.create_key(f"{key}\\Child")
        booted.registry.set_value(f"{key}\\Child", "nested", "deep")
        exported = export_key(booted, key)
        booted.registry.delete_key(key)
        written = import_reg_text(booted, exported)
        assert written == 3
        assert str(booted.registry.get_value(key,
                                             "text").native_data()) == \
            "hello"
        assert booted.registry.get_value(key, "number").native_data() == 42
        assert str(booted.registry.get_value(f"{key}\\Child",
                                             "nested").native_data()) == \
            "deep"

    def test_escaping_of_backslashes_and_quotes(self, booted):
        key = "HKLM\\SOFTWARE\\Esc"
        booted.registry.set_value(key, 'path "quoted"',
                                  "C:\\dir\\file.exe")
        exported = export_key(booted, key)
        booted.registry.delete_key(key)
        import_reg_text(booted, exported)
        value = booted.registry.get_value(key, 'path "quoted"')
        assert str(value.native_data()) == "C:\\dir\\file.exe"

    def test_fixup_launders_corrupted_data(self, booted):
        """The paper's export/delete/re-import remediation."""
        corrupted = "legit.dll\x00JUNK".encode("utf-16-le")
        booted.registry.set_value(APPINIT_KEY, "AppInit_DLLs", "legit.dll",
                                  RegType.SZ, raw_override=corrupted)
        reg_fixup_export_reimport(booted, APPINIT_KEY)
        value = booted.registry.get_value(APPINIT_KEY, "AppInit_DLLs")
        assert "JUNK" not in str(value.native_data())
        assert str(value.win32_data()) == "legit.dll"


class TestAskStrider:
    def test_unhidden_driver_betrays_hxdef(self, booted):
        """The paper's quick check: hxdefdrv.sys is not hidden from the
        driver list."""
        HackerDefender().install(booted)
        report = ask_strider(booted)
        assert "hxdefdrv.sys" in report.drivers
        suspicious = report.suspicious_drivers(known_good=[])
        assert "hxdefdrv.sys" in suspicious

    def test_module_view_misses_vanquish_dll(self, booted):
        """Figure 6: the *DLL* is blanked from every PEB.  The
        vanquish.exe process itself stays visible (Vanquish is not a
        process hider), so its main image legitimately shows."""
        Vanquish().install(booted)
        report = ask_strider(booted)
        all_modules = [path for modules in
                       report.modules_by_process.values()
                       for path in modules]
        assert all("vanquish.dll" not in path.casefold()
                   for path in all_modules)
        assert any("vanquish.exe" in path.casefold()
                   for path in all_modules)


class TestApiHookCheck:
    def test_clean_machine(self, booted):
        assert api_hook_check(booted).is_clean

    def test_sees_user_mode_hooks(self, booted):
        Aphex().install(booted)
        report = api_hook_check(booted)
        assert not report.is_clean
        assert any("FindFirstFile" in hook.location or
                   "NtQuerySystemInformation" in hook.location
                   for hook in report.user_hooks)

    def test_sees_ssdt_hooks(self, booted):
        ProBotSE().install(booted)
        report = api_hook_check(booted)
        assert "QUERY_DIRECTORY_FILE" in report.ssdt_hooks

    def test_coverage_gap_naming_exploit(self, booted):
        from repro.ghostware import NamingExploitGhost
        NamingExploitGhost().install(booted)
        assert api_hook_check(booted).is_clean   # nothing to see

    def test_false_positive_on_legitimate_patching(self, booted):
        """A fault-tolerance wrapper looks exactly like malware here."""
        from repro.winapi.hooks import PatchKind
        probe = booted.start_process("\\Windows\\explorer.exe",
                                     name="patched_app.exe")
        probe.code_site("kernel32", "ReadFile").patch_inline(
            lambda original: original, PatchKind.INLINE_CALL,
            owner="ft-wrapper")
        report = api_hook_check(booted)
        assert not report.is_clean   # flagged despite being benign


class TestSdtRestore:
    def test_restores_probot_hooks(self, booted):
        from repro.tools import restore_service_dispatch_table
        probot = ProBotSE()
        probot.install(booted)
        restored = restore_service_dispatch_table(booted)
        assert restored   # something was hooked and fixed
        fresh = booted.start_process("\\Windows\\explorer.exe",
                                     name="checker2.exe")
        from tests.conftest import win32_ls
        names = win32_ls(fresh, "\\Windows\\System32")
        assert probot.exe_path.rsplit("\\", 1)[-1] in names

    def test_noop_on_clean_machine(self, booted):
        from repro.tools import restore_service_dispatch_table
        assert restore_service_dispatch_table(booted) == []

    def test_does_not_fix_user_mode_hooks(self, booted):
        """The mechanism-repair limit: restoring the SSDT does nothing
        about NtDll detours."""
        from repro.tools import restore_service_dispatch_table
        HackerDefender().install(booted)
        restore_service_dispatch_table(booted)
        from repro.core import GhostBuster
        report = GhostBuster(booted).inside_scan(resources=("files",))
        assert not report.is_clean   # hxdef still hiding
