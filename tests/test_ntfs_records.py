"""Tests for FILE record and attribute serialization."""

import pytest

from repro.errors import CorruptRecord
from repro.ntfs import constants as c
from repro.ntfs.records import (DataAttribute, FileName, MftRecord,
                                StandardInformation)


def make_record(**overrides) -> MftRecord:
    defaults = dict(
        record_no=42,
        flags=c.FLAG_IN_USE,
        std_info=StandardInformation(1_000_000, 2_000_000, 3_000_000,
                                     c.DOS_FLAG_HIDDEN),
        file_name=FileName(c.make_file_reference(5, 1), "test.txt"),
        data=DataAttribute.make_resident(b"hello world"),
    )
    defaults.update(overrides)
    return MftRecord(**defaults)


class TestRoundTrip:
    def test_basic_record(self):
        original = make_record()
        parsed = MftRecord.from_bytes(original.to_bytes())
        assert parsed.record_no == 42
        assert parsed.in_use
        assert parsed.file_name.name == "test.txt"
        assert parsed.data.content == b"hello world"
        assert parsed.std_info.dos_flags == c.DOS_FLAG_HIDDEN

    def test_serialized_size_is_exactly_one_record(self):
        assert len(make_record().to_bytes()) == c.MFT_RECORD_SIZE

    def test_directory_record(self):
        record = make_record(flags=c.FLAG_IN_USE | c.FLAG_DIRECTORY,
                             data=None)
        parsed = MftRecord.from_bytes(record.to_bytes())
        assert parsed.is_directory
        assert parsed.data is None

    def test_unicode_name(self):
        record = make_record(file_name=FileName(
            c.make_file_reference(5, 1), "файл-übersicht.txt"))
        parsed = MftRecord.from_bytes(record.to_bytes())
        assert parsed.file_name.name == "файл-übersicht.txt"

    def test_name_with_trailing_dot(self):
        record = make_record(file_name=FileName(
            c.make_file_reference(5, 1), "ghost.exe.",
            namespace=c.NAMESPACE_POSIX))
        parsed = MftRecord.from_bytes(record.to_bytes())
        assert parsed.file_name.name == "ghost.exe."
        assert parsed.file_name.namespace == c.NAMESPACE_POSIX

    def test_max_length_name(self):
        record = make_record(file_name=FileName(
            c.make_file_reference(5, 1), "n" * 255))
        parsed = MftRecord.from_bytes(record.to_bytes())
        assert parsed.file_name.name == "n" * 255

    def test_nonresident_data(self):
        data = DataAttribute.make_nonresident([(100, 4), (300, 2)],
                                              real_size=20_000)
        parsed = MftRecord.from_bytes(make_record(data=data).to_bytes())
        assert not parsed.data.resident
        assert parsed.data.runs == [(100, 4), (300, 2)]
        assert parsed.data.real_size == 20_000

    def test_empty_resident_data(self):
        record = make_record(data=DataAttribute.make_resident(b""))
        parsed = MftRecord.from_bytes(record.to_bytes())
        assert parsed.data.content == b""

    def test_not_in_use_record(self):
        record = make_record(flags=0)
        parsed = MftRecord.from_bytes(record.to_bytes())
        assert not parsed.in_use

    def test_sequence_survives(self):
        record = make_record(sequence=7)
        assert MftRecord.from_bytes(record.to_bytes()).sequence == 7


class TestFileReference:
    def test_pack_unpack(self):
        reference = c.make_file_reference(12345, 7)
        assert c.split_file_reference(reference) == (12345, 7)

    def test_reference_property(self):
        record = make_record(sequence=3)
        assert c.split_file_reference(record.reference) == (42, 3)


class TestCorruption:
    def test_bad_magic(self):
        blob = bytearray(make_record().to_bytes())
        blob[0:4] = b"EVIL"
        with pytest.raises(CorruptRecord):
            MftRecord.from_bytes(bytes(blob))

    def test_short_record(self):
        with pytest.raises(CorruptRecord):
            MftRecord.from_bytes(b"FILE" + b"\x00" * 10)

    def test_zeroed_record(self):
        with pytest.raises(CorruptRecord):
            MftRecord.from_bytes(b"\x00" * c.MFT_RECORD_SIZE)

    def test_overflow_rejected_at_serialize(self):
        record = make_record(
            data=DataAttribute.make_resident(b"x" * 2000))
        with pytest.raises(CorruptRecord):
            record.to_bytes()

    def test_truncated_attribute_list(self):
        blob = bytearray(make_record().to_bytes())
        # Chop off the attribute terminator by lying about attrs offset.
        import struct
        struct.pack_into("<H", blob, c.REC_ATTRS_OFFSET_OFFSET, 1020)
        with pytest.raises(CorruptRecord):
            MftRecord.from_bytes(bytes(blob))
