"""Per-program tests: registry- and process-hiding (Figures 4, 5, 6)."""

import pytest

from repro.ghostware import (Aphex, Berbew, FuRootkit, HackerDefender,
                             Mersting, ProBotSE, Urbin, Vanquish,
                             NamingExploitGhost, RegistryNamingGhost)
from repro.machine import APPINIT_KEY, RUN_KEY

from tests.conftest import task_list

SERVICES = "HKLM\\SYSTEM\\CurrentControlSet\\Services"


def probe_of(machine):
    return machine.process_by_name("probe.exe") or \
        machine.start_process("\\Windows\\explorer.exe", name="probe.exe")


class TestRegistryHiding:
    def test_urbin_hides_appinit_hook(self, booted):
        Urbin().install(booted)
        probe = probe_of(booted)
        view = probe.call("advapi32", "RegQueryValue", APPINIT_KEY,
                          "AppInit_DLLs")
        assert "msvsres" not in (view.data if view else "")
        truth = booted.registry.get_value(APPINIT_KEY, "AppInit_DLLs")
        assert "msvsres.dll" in str(truth.native_data())

    def test_mersting_scrubs_only_its_dll(self, booted):
        """With two AppInit DLLs, Mersting removes only its own."""
        booted.volume.create_file("\\Windows\\System32\\good.dll", b"MZ")
        booted.registry.set_value(APPINIT_KEY, "AppInit_DLLs", "good.dll")
        Mersting().install(booted)
        probe = probe_of(booted)
        view = probe.call("advapi32", "RegQueryValue", APPINIT_KEY,
                          "AppInit_DLLs")
        assert "good.dll" in view.data
        assert "kbddfl" not in view.data

    def test_hacker_defender_hides_service_keys(self, booted):
        HackerDefender().install(booted)
        probe = probe_of(booted)
        names = probe.call("advapi32", "RegEnumKey", SERVICES)
        assert "HackerDefender100" not in names
        assert "HackerDefenderDrv100" not in names
        assert "HackerDefender100" in booted.registry.enum_subkeys(SERVICES)

    def test_vanquish_hides_service_key(self, booted):
        Vanquish().install(booted)
        probe = probe_of(booted)
        assert "Vanquish" not in probe.call("advapi32", "RegEnumKey",
                                            SERVICES)

    def test_probot_hides_run_value_via_ssdt(self, booted):
        probot = ProBotSE()
        probot.install(booted)
        probe = probe_of(booted)
        views = probe.call("advapi32", "RegEnumValue", RUN_KEY)
        assert all(probot.run_value != view.name for view in views)
        truth = booted.registry.enum_values(RUN_KEY)
        assert any(value.name == probot.run_value for value in truth)

    def test_aphex_hides_run_hook(self, booted):
        Aphex().install(booted)
        probe = probe_of(booted)
        views = probe.call("advapi32", "RegEnumValue", RUN_KEY)
        assert all("backdoor" != view.name for view in views)


class TestProcessHiding:
    def test_aphex_hides_prefixed_processes(self, booted):
        Aphex().install(booted)
        booted.volume.create_file("\\Windows\\~payload.exe", b"MZ")
        booted.start_process("\\Windows\\~payload.exe")
        names = task_list(probe_of(booted))
        assert "~aphex.exe" not in names
        assert "~payload.exe" not in names
        assert any(k.name == "~payload.exe"
                   for k in booted.kernel.processes())

    def test_hacker_defender_hides_its_process(self, booted):
        HackerDefender().install(booted)
        assert "hxdef100.exe" not in task_list(probe_of(booted))
        assert booted.process_by_name("hxdef100.exe") is not None

    def test_berbew_hides_random_exe(self, booted):
        berbew = Berbew()
        berbew.install(booted)
        assert berbew.exe_name not in task_list(probe_of(booted))
        assert booted.process_by_name(berbew.exe_name) is not None

    def test_berbew_file_remains_visible(self, booted):
        """Berbew only hides its process — file and Run hook stay."""
        berbew = Berbew()
        berbew.install(booted)
        probe = probe_of(booted)
        views = probe.call("advapi32", "RegEnumValue", RUN_KEY)
        assert any(view.name == "berbew_loader" for view in views)


class TestFuDkom:
    def test_hidden_from_api_and_list(self, booted):
        fu = FuRootkit()
        fu.install(booted)
        victim = booted.start_process("\\Windows\\explorer.exe",
                                      name="victim.exe")
        fu.hide_process(booted, victim.pid)
        assert "victim.exe" not in task_list(probe_of(booted))
        from repro.kernel.process_list import walk_process_list
        walked = list(walk_process_list(booted.kernel.memory,
                                        booted.kernel.process_list
                                        .head_address))
        kernel_victim = booted.kernel.process(victim.pid)
        assert kernel_victim.eprocess_address not in walked

    def test_hidden_process_keeps_threads(self, booted):
        fu = FuRootkit()
        fu.install(booted)
        victim = booted.start_process("\\Windows\\explorer.exe",
                                      name="victim.exe")
        fu.hide_process(booted, victim.pid)
        kernel_proc = booted.kernel.process(victim.pid)
        table = booted.kernel.thread_table.thread_addresses()
        assert all(thread in table for thread in kernel_proc.threads)

    def test_fu_does_not_hide_files(self, booted):
        fu = FuRootkit()
        fu.install(booted)
        from tests.conftest import win32_ls
        names = win32_ls(probe_of(booted), "\\Windows\\System32")
        assert "fu.exe" in names

    def test_hide_unknown_pid_raises(self, booted):
        from repro.errors import NoSuchProcess
        fu = FuRootkit()
        fu.install(booted)
        with pytest.raises(NoSuchProcess):
            fu.hide_process(booted, 99999)

    def test_fu_hides_other_ghostware_process(self, booted):
        """The paper: FU can hide the other process-hiding ghostware."""
        HackerDefender().install(booted)
        fu = FuRootkit()
        fu.install(booted)
        hxdef = booted.process_by_name("hxdef100.exe")
        fu.hide_process(booted, hxdef.pid)
        from repro.kernel.scheduler import processes_from_threads
        owners = processes_from_threads(booted.kernel.memory,
                                        booted.kernel.thread_table.address)
        assert any(view.name == "hxdef100.exe" for view in owners.values())

    def test_hide_driver(self, booted):
        fu = FuRootkit()
        fu.install(booted)
        booted.kernel.load_driver("suspect.sys")
        assert fu.hide_driver(booted, "suspect.sys")
        assert "suspect.sys" not in booted.kernel.drivers()

    def test_hide_missing_driver_returns_false(self, booted):
        fu = FuRootkit()
        fu.install(booted)
        assert not fu.hide_driver(booted, "absent.sys")


class TestVanquishModuleHiding:
    def test_peb_blanked_kernel_truth_intact(self, booted):
        Vanquish().install(booted)
        explorer = booted.process_by_name("explorer.exe")
        probe = probe_of(booted)
        snapshot = probe.call("kernel32", "Module32Snapshot", explorer.pid)
        api_modules = []
        path = probe.call("kernel32", "Module32First", snapshot)
        while path is not None:
            api_modules.append(path)
            path = probe.call("kernel32", "Module32Next", snapshot)
        assert all("vanquish" not in path.casefold()
                   for path in api_modules)
        truth = booted.kernel.module_table_view(explorer.pid).module_paths()
        assert any("vanquish.dll" in path for path in truth)


class TestNamingExploits:
    def test_files_invisible_to_win32(self, booted):
        ghost = NamingExploitGhost()
        ghost.install(booted)
        from tests.conftest import win32_walk
        visible = {p.casefold() for p in win32_walk(probe_of(booted))}
        for path in ghost.report.hidden_files:
            assert path.casefold() not in visible

    def test_files_present_in_raw_view(self, booted):
        from repro.ntfs import parse_volume
        ghost = NamingExploitGhost()
        ghost.install(booted)
        raw = {entry.path.casefold() for entry in parse_volume(booted.disk)}
        for path in ghost.report.hidden_files:
            assert path.casefold() in raw

    def test_registry_nul_name_invisible_to_win32(self, booted):
        ghost = RegistryNamingGhost()
        ghost.install(booted)
        probe = probe_of(booted)
        views = probe.call("advapi32", "RegEnumValue", RUN_KEY)
        names = {view.name for view in views}
        assert ghost.NUL_NAME not in names
        assert ghost.LONG_NAME not in names

    def test_registry_names_present_in_hive(self, booted):
        ghost = RegistryNamingGhost()
        ghost.install(booted)
        truth = {value.name
                 for value in booted.registry.enum_values(RUN_KEY)}
        assert ghost.NUL_NAME in truth
        assert ghost.LONG_NAME in truth
