"""Deep-dive tests: cross-checks and corners the module tests skip."""

import pytest

from repro.core import GhostBuster
from repro.core.scanners.registry import (OutsideHiveReader, RawHiveReader,
                                          Win32ApiReader)
from repro.core.snapshot import (FileEntry, ModuleEntry, ProcessEntry,
                                 RegistryHookEntry)
from repro.ghostware import (ALL_FILE_HIDERS, Aphex, HackerDefender,
                             Mersting, ProBotSE, Urbin, Vanquish)
from repro.machine import RUN_KEY


class TestGhostReportConsistency:
    """Every ghost's self-declared report must match what GhostBuster
    actually finds — the ground truth wiring the benchmarks rely on."""

    @pytest.mark.parametrize("ghost_cls", [Urbin, Mersting, Vanquish,
                                           HackerDefender, ProBotSE])
    def test_declared_hidden_files_are_found(self, booted, ghost_cls):
        ghost = ghost_cls()
        ghost.install(booted)
        report = GhostBuster(booted).inside_scan(resources=("files",))
        found = {finding.entry.path.casefold()
                 for finding in report.hidden_files()}
        declared = {path.casefold() for path in ghost.report.hidden_files}
        assert declared <= found

    @pytest.mark.parametrize("ghost_cls", [Urbin, Mersting, Vanquish,
                                           HackerDefender, ProBotSE,
                                           Aphex])
    def test_declared_hook_count_found(self, booted, ghost_cls):
        ghost = ghost_cls()
        ghost.install(booted)
        report = GhostBuster(booted).inside_scan(resources=("registry",))
        assert len(report.hidden_hooks()) >= \
            len(ghost.report.hidden_asep_hooks)

    def test_visible_files_do_not_appear_as_findings(self, booted):
        from repro.ghostware import Berbew
        ghost = Berbew()
        ghost.install(booted)
        report = GhostBuster(booted).inside_scan(resources=("files",))
        found = {finding.entry.path.casefold()
                 for finding in report.hidden_files()}
        for path in ghost.report.visible_files:
            assert path.casefold() not in found


class TestRegistryReaderCorners:
    def test_win32_reader_protocol(self, booted):
        booted.registry.set_value(RUN_KEY, "probe_val", "\\x.exe")
        reader = Win32ApiReader(booted)
        assert reader.key_exists(RUN_KEY)
        assert not reader.key_exists("HKLM\\SOFTWARE\\NoSuchKey")
        names = [view.name for view in reader.enum_values(RUN_KEY)]
        assert "probe_val" in names
        assert reader.get_value(RUN_KEY, "probe_val").data == "\\x.exe"
        assert reader.get_value(RUN_KEY, "absent") is None

    def test_raw_reader_long_subkey_names_native(self, booted):
        """Native semantics: 300-char key names are fully visible."""
        long_name = "K" * 300
        booted.registry.create_key(f"HKLM\\SOFTWARE\\{long_name}")
        reader = RawHiveReader(booted)
        assert long_name in reader.enum_subkeys("HKLM\\SOFTWARE")

    def test_outside_reader_win32_skips_long_subkeys(self, booted):
        long_name = "K" * 300
        booted.registry.create_key(f"HKLM\\SOFTWARE\\{long_name}")
        booted.registry.flush()
        reader = OutsideHiveReader(booted.disk, win32_semantics=True)
        assert long_name not in reader.enum_subkeys("HKLM\\SOFTWARE")

    def test_reader_value_lookup_case_insensitive(self, booted):
        booted.registry.set_value(RUN_KEY, "MixedCase", "\\x.exe")
        reader = RawHiveReader(booted)
        assert reader.get_value(RUN_KEY, "mixedcase") is not None

    def test_reader_missing_key_paths(self, booted):
        reader = RawHiveReader(booted)
        assert reader.enum_subkeys("HKLM\\SOFTWARE\\Ghost\\Deep") == []
        assert reader.enum_values("HKLM\\SOFTWARE\\Ghost\\Deep") == []
        assert reader.get_value("HKLM\\SOFTWARE\\Ghost", "x") is None

    def test_unmounted_root_invisible(self, booted):
        reader = RawHiveReader(booted)
        assert not reader.key_exists("HKCC\\Anything")


class TestSnapshotDescribe:
    def test_file_entry(self):
        assert "(dir)" in FileEntry("\\d", "d", True, 0).describe()
        assert "12B" in FileEntry("\\f", "f", False, 12).describe()

    def test_process_entry(self):
        assert "pid 44" in ProcessEntry(44, "x.exe").describe()

    def test_module_entry(self):
        text = ModuleEntry(8, "host.exe", "\\m.dll").describe()
        assert "m.dll" in text and "host.exe" in text

    def test_registry_entry_without_data(self):
        entry = RegistryHookEntry("run", "HKLM\\Run", "name", "")
        assert "→" not in entry.describe()


class TestApiCorners:
    def test_find_handle_invalid(self, probe):
        from repro.errors import ApiError
        with pytest.raises(ApiError):
            probe.call("kernel32", "FindNextFile", 424242)

    def test_find_close_is_idempotent(self, booted, probe):
        handle, __ = probe.call("kernel32", "FindFirstFile", "\\Temp")
        probe.call("kernel32", "FindClose", handle)
        probe.call("kernel32", "FindClose", handle)   # must not raise

    def test_reg_create_and_delete_key_via_api(self, booted, probe):
        probe.call("advapi32", "RegCreateKey", "HKLM\\SOFTWARE\\ViaApi")
        assert booted.registry.key_exists("HKLM\\SOFTWARE\\ViaApi")
        probe.call("advapi32", "RegDeleteKey", "HKLM\\SOFTWARE\\ViaApi")
        assert not booted.registry.key_exists("HKLM\\SOFTWARE\\ViaApi")

    def test_module_code_listing(self, probe):
        functions = probe.module("kernel32").functions()
        assert "FindFirstFile" in functions
        assert probe.module("kernel32").patched_sites() == []


class TestAllFileHidersRegistryEntryPoints:
    def test_corpus_tuple_complete(self):
        assert len(ALL_FILE_HIDERS) == 10   # the Figure-3 roster

    @pytest.mark.parametrize("ghost_cls", ALL_FILE_HIDERS,
                             ids=[g.__name__ for g in ALL_FILE_HIDERS])
    def test_each_detected_after_fresh_boot(self, machine, ghost_cls):
        """Install while powered off is not supported for all; install
        live, reboot, and require detection purely via ASEP restart."""
        machine.boot()
        machine.volume.create_directories("\\Secret")
        machine.volume.create_file("\\Secret\\s.txt", b"")
        try:
            ghost = ghost_cls(hidden_paths=["\\Secret"])
        except TypeError:
            ghost = ghost_cls()
        ghost.install(machine)
        machine.reboot()
        report = GhostBuster(machine).inside_scan(resources=("files",))
        assert not report.is_clean, \
            f"{ghost_cls.__name__} must survive a reboot via its ASEPs"
