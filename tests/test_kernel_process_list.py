"""Tests for the Active Process List, the scheduler table, and DKOM."""

import pytest

from repro.errors import KernelError
from repro.kernel.memory import KernelMemory
from repro.kernel.objects import EprocessView, write_eprocess, write_ethread
from repro.kernel.process_list import (ActiveProcessList, list_processes,
                                       walk_process_list)
from repro.kernel.scheduler import (ThreadTable, processes_from_threads,
                                    walk_thread_table)


@pytest.fixture
def memory():
    return KernelMemory()


@pytest.fixture
def plist(memory):
    return ActiveProcessList(memory)


def spawn(memory, plist, pid, name):
    address = write_eprocess(memory, pid, name, "")
    plist.insert_tail(address)
    return address


class TestList:
    def test_empty_walk(self, memory, plist):
        assert list(walk_process_list(memory, plist.head_address)) == []

    def test_insertion_order_preserved(self, memory, plist):
        addresses = [spawn(memory, plist, pid, f"p{pid}")
                     for pid in (4, 8, 12)]
        assert list(walk_process_list(memory, plist.head_address)) == \
            addresses

    def test_contains(self, memory, plist):
        address = spawn(memory, plist, 4, "a")
        assert plist.contains(address)

    def test_list_processes_decodes(self, memory, plist):
        spawn(memory, plist, 4, "System")
        views = list_processes(memory, plist.head_address)
        assert views[0].name == "System"


class TestDkomUnlink:
    def test_unlink_middle(self, memory, plist):
        a = spawn(memory, plist, 4, "a")
        b = spawn(memory, plist, 8, "b")
        c = spawn(memory, plist, 12, "c")
        plist.unlink(b)
        assert list(walk_process_list(memory, plist.head_address)) == [a, c]

    def test_unlink_head_and_tail(self, memory, plist):
        a = spawn(memory, plist, 4, "a")
        b = spawn(memory, plist, 8, "b")
        plist.unlink(a)
        plist.unlink(b)
        assert list(walk_process_list(memory, plist.head_address)) == []

    def test_unlinked_process_still_exists(self, memory, plist):
        address = spawn(memory, plist, 8, "ghost")
        plist.unlink(address)
        view = EprocessView(memory, address)
        assert view.pid == 8         # the EPROCESS block is untouched
        assert view.alive

    def test_unlinked_node_self_linked(self, memory, plist):
        address = spawn(memory, plist, 8, "ghost")
        plist.unlink(address)
        view = EprocessView(memory, address)
        assert view.flink == address
        assert view.blink == address

    def test_unlink_never_inserted_rejected(self, memory, plist):
        address = write_eprocess(memory, 8, "loose", "")
        with pytest.raises(KernelError):
            plist.unlink(address)


class TestThreadTable:
    def test_add_and_walk(self, memory):
        table = ThreadTable(memory)
        owner = write_eprocess(memory, 8, "p", "")
        thread = write_ethread(memory, 100, owner)
        table.add(thread)
        tids = [view.tid for view in
                walk_thread_table(memory, table.address)]
        assert tids == [100]

    def test_remove(self, memory):
        table = ThreadTable(memory)
        owner = write_eprocess(memory, 8, "p", "")
        thread = write_ethread(memory, 100, owner)
        table.add(thread)
        table.remove(thread)
        assert table.thread_addresses() == []

    def test_growth_beyond_initial_capacity(self, memory):
        table = ThreadTable(memory)
        owner = write_eprocess(memory, 8, "p", "")
        threads = [write_ethread(memory, tid, owner)
                   for tid in range(4, 4 + 4 * 70, 4)]
        for thread in threads:
            table.add(thread)
        assert table.thread_addresses() == threads

    def test_owner_recovery_ignores_dead_threads(self, memory):
        from repro.kernel.objects import EthreadView
        table = ThreadTable(memory)
        owner = write_eprocess(memory, 8, "p", "")
        thread = write_ethread(memory, 100, owner)
        table.add(thread)
        EthreadView(memory, thread).set_alive(False)
        assert processes_from_threads(memory, table.address) == {}

    def test_owner_recovery_deduplicates(self, memory):
        table = ThreadTable(memory)
        owner = write_eprocess(memory, 8, "p", "")
        for tid in (100, 104, 108):
            table.add(write_ethread(memory, tid, owner))
        owners = processes_from_threads(memory, table.address)
        assert list(owners) == [owner]


class TestAdvancedModeRecoversDkom:
    def test_unlinked_process_found_via_threads(self, memory, plist):
        table = ThreadTable(memory)
        hidden = spawn(memory, plist, 8, "rootkit.exe")
        table.add(write_ethread(memory, 100, hidden))
        plist.unlink(hidden)

        walked = list(walk_process_list(memory, plist.head_address))
        assert hidden not in walked

        owners = processes_from_threads(memory, table.address)
        assert hidden in owners
        assert owners[hidden].name == "rootkit.exe"
