"""Lifecycle invariants every corpus member must satisfy."""

import pytest

from repro.core import GhostBuster
from repro.ghostware import (AdsGhost, Aphex, Berbew, BhoSpyware,
                             CmCallbackGhost, FuRootkit, HackerDefender,
                             HideFiles, LowLevelInterferenceGhost,
                             Mersting, NamingExploitGhost, ProBotSE,
                             RegistryNamingGhost, Urbin, Vanquish)
from repro.machine import Machine

CORPUS = [Urbin, Mersting, Vanquish, Aphex, HackerDefender, ProBotSE,
          Berbew, FuRootkit, HideFiles, NamingExploitGhost,
          RegistryNamingGhost, CmCallbackGhost, BhoSpyware, AdsGhost,
          LowLevelInterferenceGhost]


@pytest.mark.parametrize("ghost_cls", CORPUS,
                         ids=[cls.__name__ for cls in CORPUS])
class TestLifecycleInvariants:
    def test_has_name_and_technique(self, ghost_cls):
        ghost = ghost_cls()
        assert ghost.name and ghost.name != "ghostware"
        assert ghost.technique and ghost.technique != "unspecified"

    def test_install_registers_infection(self, booted, ghost_cls):
        ghost = ghost_cls()
        ghost.install(booted)
        assert ghost in booted.infections

    def test_double_install_does_not_duplicate_registration(self, booted,
                                                            ghost_cls):
        ghost = ghost_cls()
        ghost.install(booted)
        try:
            ghost.install(booted)
        except Exception:
            pytest.skip("double install illegal for this strain (files "
                        "already exist) — acceptable")
        assert booted.infections.count(ghost) == 1

    def test_offline_install_activates_on_boot(self, machine, ghost_cls):
        """Dropping the ghost onto a powered-off disk must arm it for
        the next boot via its ASEP hooks — the paper's persistence
        model."""
        ghost = ghost_cls()
        ghost._install_persistent(machine)
        machine.boot()
        # Whatever the strain hides, the machine must carry its files:
        for path in (ghost.report.hidden_files
                     + ghost.report.visible_files):
            assert machine.volume.exists(path), \
                f"{ghost_cls.__name__} artifact {path} missing"

    def test_report_fields_are_lists(self, ghost_cls):
        report = ghost_cls().report
        assert isinstance(report.hidden_files, list)
        assert isinstance(report.hidden_asep_hooks, list)
        assert isinstance(report.hidden_processes, list)
        assert isinstance(report.hidden_modules, list)


HIDING_CORPUS = [Urbin, Mersting, Vanquish, Aphex, HackerDefender,
                 ProBotSE, CmCallbackGhost, BhoSpyware]


@pytest.mark.parametrize("ghost_cls", HIDING_CORPUS,
                         ids=[cls.__name__ for cls in HIDING_CORPUS])
class TestHidingInvariants:
    def test_detected_by_some_inside_diff(self, booted, ghost_cls):
        ghost_cls().install(booted)
        report = GhostBuster(booted, advanced=True).inside_scan()
        assert not report.is_clean

    def test_truth_view_unpolluted(self, booted, ghost_cls):
        """Hiding must *remove* from the lie, never add to the truth:
        every raw-view entry corresponds to a real artifact."""
        from repro.ntfs import parse_volume
        ghost_cls().install(booted)
        raw_paths = {entry.path for entry in parse_volume(booted.disk)}
        for path in raw_paths:
            assert booted.volume.exists(path), \
                f"raw view invented {path}"


class TestFreshMachinePerGhost:
    """Each strain leaves the substrate consistent enough to disinfect
    and then *re-infect* — machines are reusable lab equipment."""

    def test_reinfection_after_removal(self, booted):
        from repro.core import disinfect
        HackerDefender().install(booted)
        disinfect(booted)
        HackerDefender().install(booted)
        report = GhostBuster(booted).inside_scan(resources=("files",))
        assert not report.is_clean


@pytest.fixture
def machine():
    return Machine("lifecycle", disk_mb=256, max_records=8192)
