"""Coordinator epochs: checkpointing, resume soundness, escalation.

The chaos-interplay suite lives here too: killing a worker mid-lease,
killing the coordinator mid-epoch (deterministically, at ack
boundaries), and a Hypothesis sweep over every possible kill point —
in all cases the resumed epoch's verdicts must be element-identical to
an uninterrupted run's and no acked machine may be scanned twice.
"""

from __future__ import annotations

import json
from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.clock import SimClock
from repro.errors import CoordinatorKilled, StaleLease
from repro.fleet import (EscalationPolicy, FleetCoordinator, WorkQueue,
                         fleet_status)
from repro.ghostware import Aphex, HackerDefender
from repro.machine import Machine
from repro.telemetry.metrics import global_metrics


def build_fleet(size=3, infected=(1,), ghost_cls=HackerDefender):
    machines = []
    for index in range(size):
        machine = Machine(f"m{index:02d}", disk_mb=256, max_records=8192)
        machine.boot()
        if index in infected:
            ghost_cls().install(machine)
        machines.append(machine)
    return machines


def verdict_key(aggregate):
    return {v.machine: (v.verdict, v.findings, v.confirmed, v.confirmed_by)
            for v in aggregate.verdicts}


def machine_records(fleet_dir, epoch):
    records = []
    with open(f"{fleet_dir}/epochs.jsonl", encoding="utf-8") as handle:
        for line in handle:
            record = json.loads(line)
            if (record.get("type") == "fleet-machine"
                    and record.get("epoch") == epoch):
                records.append(record)
    return records


class TestEpochLifecycle:
    def test_epoch_covers_fleet_and_detects(self, tmp_path):
        machines = build_fleet(size=3, infected=(1,))
        coordinator = FleetCoordinator(str(tmp_path), machines, workers=2)
        aggregate = coordinator.run_epoch()
        assert aggregate.summary.machines == 3
        assert aggregate.summary.scanned == 3
        assert aggregate.infected_machines() == ["m01"]
        infected = next(v for v in aggregate.verdicts
                        if v.machine == "m01")
        assert infected.escalated and infected.confirmed
        assert infected.confirmed_by == "winpe"
        assert infected.finding_ids
        assert coordinator.queue.epoch is None   # epoch closed

    def test_steady_state_epoch_skips_unchanged(self, tmp_path):
        machines = build_fleet(size=3, infected=(1,))
        coordinator = FleetCoordinator(str(tmp_path), machines, workers=2)
        first = coordinator.run_epoch()
        second = coordinator.run_epoch()
        assert second.summary.skipped == 3
        assert second.summary.scanned == 0
        assert verdict_key(first) == verdict_key(second)
        # The rehydrated infected verdict keeps its provenance.
        skipped = next(v for v in second.verdicts if v.machine == "m01")
        assert skipped.skipped and skipped.confirmed_by == "winpe"

    def test_changed_machine_is_rescanned(self, tmp_path):
        machines = build_fleet(size=3, infected=())
        coordinator = FleetCoordinator(str(tmp_path), machines)
        coordinator.run_epoch()
        machines[2].volume.create_file("\\Temp\\new.txt", b"payload")
        second = coordinator.run_epoch()
        rescanned = {v.machine for v in second.verdicts if v.scanned}
        assert rescanned == {"m02"}
        assert second.summary.skipped == 2

    def test_vmscan_policy_provenance(self, tmp_path):
        machines = build_fleet(size=2, infected=(0,), ghost_cls=Aphex)
        coordinator = FleetCoordinator(
            str(tmp_path), machines,
            policy=EscalationPolicy(confirm_with="vmscan"))
        aggregate = coordinator.run_epoch()
        infected = next(v for v in aggregate.verdicts if v.confirmed)
        assert infected.confirmed_by == "vmscan"

    def test_no_escalation_when_policy_disabled(self, tmp_path):
        machines = build_fleet(size=2, infected=(0,))
        coordinator = FleetCoordinator(
            str(tmp_path), machines,
            policy=EscalationPolicy(escalate=False))
        aggregate = coordinator.run_epoch()
        assert aggregate.summary.infected == 1
        assert aggregate.summary.escalated == 0

    def test_outbreak_detection_across_machines(self, tmp_path):
        machines = build_fleet(size=4, infected=(0, 1, 2))
        coordinator = FleetCoordinator(str(tmp_path), machines,
                                       outbreak_threshold=3)
        aggregate = coordinator.run_epoch()
        outbreaks = aggregate.outbreaks()
        assert outbreaks, "same ghost on 3 machines must raise an alert"
        assert all(len(alert.machines) >= 3 for alert in outbreaks)
        # Outbreak records land in the journal for fleet-status.
        status = fleet_status(str(tmp_path))
        assert status["outbreaks"]

    def test_compaction_shrinks_stores(self, tmp_path):
        machines = build_fleet(size=2, infected=())
        coordinator = FleetCoordinator(str(tmp_path), machines,
                                       compact_every=2)
        coordinator.run_epoch()
        coordinator.run_epoch()
        # After compaction the baseline file holds one record/machine
        # and the queue WAL is empty (no epoch open).
        with open(coordinator.store.path, encoding="utf-8") as handle:
            assert sum(1 for line in handle if line.strip()) == 2
        with open(coordinator.queue.path, encoding="utf-8") as handle:
            assert handle.read() == ""

    def test_fleet_status_reflects_open_epoch(self, tmp_path):
        machines = build_fleet(size=3, infected=())
        coordinator = FleetCoordinator(str(tmp_path), machines, workers=1)
        with pytest.raises(CoordinatorKilled):
            coordinator.run_epoch(kill_after_acks=1)
        status = fleet_status(str(tmp_path))
        assert status["open_epoch"] == 1
        assert status["acked"] == 1
        assert status["pending"] + status["leased"] == 2
        assert status["epochs_completed"] == 0


class TestResumeSoundness:
    def test_kill_and_resume_is_element_identical(self, tmp_path):
        reference = FleetCoordinator(
            str(tmp_path / "ref"), build_fleet(size=4, infected=(1, 3)),
            workers=2).run_epoch()

        fleet_dir = str(tmp_path / "chaos")
        machines = build_fleet(size=4, infected=(1, 3))
        with pytest.raises(CoordinatorKilled):
            FleetCoordinator(fleet_dir, machines,
                             workers=2).run_epoch(kill_after_acks=2)
        resumed = FleetCoordinator(fleet_dir, machines,
                                   workers=2).run_epoch()
        assert verdict_key(resumed) == verdict_key(reference)
        records = machine_records(fleet_dir, epoch=1)
        counts = {record["machine"]: 0 for record in records}
        for record in records:
            counts[record["machine"]] += 1
        assert all(count == 1 for count in counts.values()), counts
        assert len(counts) == 4

    def test_double_kill_then_resume(self, tmp_path):
        fleet_dir = str(tmp_path)
        machines = build_fleet(size=4, infected=(2,))
        for __ in range(2):
            with pytest.raises(CoordinatorKilled):
                FleetCoordinator(fleet_dir, machines,
                                 workers=2).run_epoch(kill_after_acks=1)
        aggregate = FleetCoordinator(fleet_dir, machines,
                                     workers=2).run_epoch()
        assert aggregate.summary.machines == 4
        assert len(machine_records(fleet_dir, epoch=1)) == 4

    def test_resume_does_not_rescan_acked_machines(self, tmp_path):
        fleet_dir = str(tmp_path)
        machines = build_fleet(size=3, infected=())
        with pytest.raises(CoordinatorKilled):
            FleetCoordinator(fleet_dir, machines,
                             workers=1).run_epoch(kill_after_acks=2)
        acked_before = set(WorkQueue(fleet_dir).acked_machines())
        assert len(acked_before) == 2
        generations = {name: machines_by_name(machines)[name]
                       .disk.generation for name in acked_before}
        FleetCoordinator(fleet_dir, machines, workers=1).run_epoch()
        # An acked machine's disk was never touched again (a rescan of
        # an infected machine would have rebooted it).
        for name, generation in generations.items():
            assert (machines_by_name(machines)[name].disk.generation
                    == generation)

    def test_worker_death_mid_lease_under_coordinator(self, tmp_path):
        """A lease taken by a worker that dies is reaped by expiry and
        the machine still completes within the same epoch."""
        fleet_dir = str(tmp_path)
        machines = build_fleet(size=2, infected=())
        coordinator = FleetCoordinator(fleet_dir, machines, workers=1,
                                       lease_seconds=50.0)
        # Simulate a dead worker: open the epoch by hand, lease one
        # machine, and never ack it.
        history_epoch = coordinator.next_epoch_number()
        plan = coordinator.scheduler.plan(
            sorted(coordinator.machines), history_epoch,
            __import__("repro.fleet.scheduler",
                       fromlist=["FleetHistory"]).FleetHistory())
        coordinator.queue.open_epoch(
            history_epoch, coordinator.scheduler.assignments(plan))
        orphan = coordinator.queue.lease(worker=9)
        before = global_metrics().snapshot()["counters"].get(
            "fleet.lease_expired", 0)
        aggregate = coordinator.run_epoch()   # resumes the open epoch
        assert aggregate.summary.machines == 2
        assert orphan.machine in {v.machine for v in aggregate.verdicts}
        # recover_leases() requeued the orphan at resume; no expiry wait.
        after = global_metrics().snapshot()["counters"].get(
            "fleet.lease_expired", 0)
        assert after == before


def machines_by_name(machines):
    return {machine.name: machine for machine in machines}


class TestCheckpointProperty:
    """Hypothesis: any kill point yields an identical completed epoch."""

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(kill_after=st.integers(min_value=1, max_value=3),
           infected=st.sets(st.integers(min_value=0, max_value=2),
                            max_size=2),
           kill_in_gap=st.booleans())
    def test_any_kill_point_resumes_identically(self, tmp_path_factory,
                                                kill_after, infected,
                                                kill_in_gap):
        """Die at the N-th ack boundary — or, with ``kill_in_gap``,
        *inside* the checkpoint: after the baseline put and the journal
        record but before the queue ack commits."""
        tmp_path = tmp_path_factory.mktemp("fleet-prop")
        reference = FleetCoordinator(
            str(tmp_path / "ref"),
            build_fleet(size=3, infected=tuple(infected)),
            workers=2).run_epoch()

        fleet_dir = str(tmp_path / "killed")
        machines = build_fleet(size=3, infected=tuple(infected))
        coordinator = FleetCoordinator(fleet_dir, machines, workers=2)
        if kill_in_gap:
            real_ack = coordinator.queue.ack
            calls = {"n": 0}

            def gap_ack(lease, **payload):
                calls["n"] += 1
                if calls["n"] == kill_after:
                    raise CoordinatorKilled("died in the journal→ack gap")
                return real_ack(lease, **payload)

            coordinator.queue.ack = gap_ack
        try:
            coordinator.run_epoch(
                kill_after_acks=None if kill_in_gap else kill_after)
            killed = False
        except CoordinatorKilled:
            killed = True
        if killed:
            resumed = FleetCoordinator(fleet_dir, machines,
                                       workers=2).run_epoch()
        else:
            # kill_after exceeded the roster: the epoch just finished.
            resumed = reference
            fleet_dir = str(tmp_path / "ref")
        assert verdict_key(resumed) == verdict_key(reference)
        records = machine_records(fleet_dir, epoch=1)
        assert len({record["machine"] for record in records}) == 3
        # A gap kill leaves the dying machine journaled twice (the
        # resume re-records it; last wins); every other machine exactly
        # once.
        counts = Counter(record["machine"] for record in records)
        assert sorted(counts.values()) == (
            [1, 1, 2] if killed and kill_in_gap else [1, 1, 1])


class TestChaosInterplay:
    def test_epoch_completes_under_lease_faults(self, tmp_path):
        from repro.faults import context as faults_context
        from repro.faults.plan import (SITE_FLEET_LEASE, FaultPlan,
                                       FaultSpec)

        machines = build_fleet(size=3, infected=(1,))
        coordinator = FleetCoordinator(str(tmp_path), machines, workers=2)
        plan = FaultPlan(seed=99, specs=(
            FaultSpec(SITE_FLEET_LEASE, rate=0.4, kinds=("io_error",)),))
        with faults_context.scoped(plan, clock=coordinator.clock):
            aggregate = coordinator.run_epoch()
        assert aggregate.summary.machines == 3
        assert aggregate.infected_machines() == ["m01"]
        assert plan.fired_count(SITE_FLEET_LEASE) > 0

    def test_chaos_kill_resume_matches_reference(self, tmp_path):
        """The full interplay: scan-site faults active, coordinator
        killed mid-epoch, resumed — verdicts still match the
        uninterrupted chaos run (per-machine fault streams are
        scheduling-independent)."""
        from repro.faults.plan import FaultPlan

        seed = 2026

        def run(fleet_dir, kill_after=None):
            machines = build_fleet(size=3, infected=(0, 2))
            coordinator = FleetCoordinator(
                fleet_dir, machines, workers=2,
                fault_plan=FaultPlan.default(seed, rate=0.02))
            return coordinator.run_epoch(kill_after_acks=kill_after)

        reference = run(str(tmp_path / "ref"))
        chaos_dir = str(tmp_path / "killed")
        with pytest.raises(CoordinatorKilled):
            run(chaos_dir, kill_after=1)
        machines = build_fleet(size=3, infected=(0, 2))
        resumed = FleetCoordinator(
            chaos_dir, machines, workers=2,
            fault_plan=FaultPlan.default(seed, rate=0.02)).run_epoch()
        assert verdict_key(resumed) == verdict_key(reference)
        records = machine_records(chaos_dir, epoch=1)
        assert len(records) == 3


class TestLeaseRecoveryEdgeCases:
    """The queue/checkpoint edge cases distributed mode leans on."""

    def test_ack_after_timeout_is_stale_and_does_not_requeue(
            self, tmp_path):
        clock = SimClock()
        queue = WorkQueue(str(tmp_path), clock=clock, lease_seconds=10.0)
        queue.open_epoch(1, {"m00": 0})
        lease = queue.lease(0)
        clock.advance(10.0)
        with pytest.raises(StaleLease):
            queue.ack(lease, verdict="clean")
        # The refusal has no side effects: not acked, and requeueing is
        # expire_leases()'s job, not the failed ack's.
        assert queue.acked_machines() == {}
        assert queue.pending_machines() == []
        assert queue.expire_leases() == ["m00"]
        assert queue.pending_machines() == ["m00"]

    def test_reclaimed_lease_token_cannot_ack(self, tmp_path):
        clock = SimClock()
        queue = WorkQueue(str(tmp_path), clock=clock, lease_seconds=10.0)
        queue.open_epoch(1, {"m00": 0})
        stale = queue.lease(0)
        clock.advance(11.0)
        assert queue.expire_leases() == ["m00"]
        fresh = queue.lease(1)
        assert fresh.token != stale.token
        with pytest.raises(StaleLease):
            queue.ack(stale, verdict="clean")
        assert queue.acked_machines() == {}
        queue.ack(fresh, verdict="clean")
        assert queue.epoch_drained()

    def test_slow_scan_late_ack_is_surfaced_everywhere(
            self, tmp_path, capsys):
        """A lease shorter than the scan: every fresh verdict goes late,
        the machines complete via the durable-baseline skip path, and
        the waste is visible in the summary, the journal, the metrics,
        and the operator report."""
        reference = FleetCoordinator(
            str(tmp_path / "ref"), build_fleet(size=3, infected=(1,)),
            workers=1).run_epoch()

        fleet_dir = str(tmp_path / "slow")
        before = global_metrics().counter("fleet.ack.late")
        aggregate = FleetCoordinator(
            fleet_dir, build_fleet(size=3, infected=(1,)), workers=1,
            lease_seconds=0.01).run_epoch()
        # Scans landed durably (store.put precedes the ack), so the
        # expiry → requeue → re-lease cycle rides each machine's
        # baseline instead of re-scanning; verdicts are unchanged.
        assert verdict_key(aggregate) == verdict_key(reference)
        assert aggregate.summary.machines == 3
        assert aggregate.summary.skipped == 3
        assert aggregate.summary.late_acks == 3
        assert global_metrics().counter("fleet.ack.late") == before + 3
        # The epoch-end journal record carries the count...
        with open(f"{fleet_dir}/epochs.jsonl", encoding="utf-8") as handle:
            ends = [json.loads(line) for line in handle
                    if '"epoch-end"' in line]
        assert ends[-1]["late_acks"] == 3
        # ...and scan_report renders it for the operator.
        import importlib.util
        from pathlib import Path
        spec = importlib.util.spec_from_file_location(
            "scan_report_late", Path(__file__).resolve().parent.parent
            / "scripts" / "scan_report.py")
        scan_report = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(scan_report)
        assert scan_report.main([f"{fleet_dir}/epochs.jsonl"]) == 0
        assert "3 late ack(s) dropped" in capsys.readouterr().out

    def test_kill_between_journal_and_ack_resumes_identically(
            self, tmp_path):
        """The narrowest crash window: baseline stored, verdict
        journaled, queue ack never committed."""
        reference = FleetCoordinator(
            str(tmp_path / "ref"), build_fleet(size=3, infected=(1,)),
            workers=1).run_epoch()

        fleet_dir = str(tmp_path / "gap")
        machines = build_fleet(size=3, infected=(1,))
        coordinator = FleetCoordinator(fleet_dir, machines, workers=1)
        real_ack = coordinator.queue.ack
        state = {"killed": False}

        def gap_ack(lease, **payload):
            if not state["killed"]:
                state["killed"] = True
                raise CoordinatorKilled("died after journal, before ack")
            return real_ack(lease, **payload)

        coordinator.queue.ack = gap_ack
        with pytest.raises(CoordinatorKilled):
            coordinator.run_epoch()
        resumed = FleetCoordinator(fleet_dir, machines,
                                   workers=1).run_epoch()
        assert verdict_key(resumed) == verdict_key(reference)
        counts = Counter(record["machine"]
                         for record in machine_records(fleet_dir, epoch=1))
        assert sorted(counts.values()) == [1, 1, 2]

    def test_durable_knob_fsyncs_every_append(self, tmp_path,
                                              monkeypatch):
        import os

        import repro.fleet.queue as queue_mod

        counts = {"n": 0}
        real_fsync = os.fsync

        def counting_fsync(fd):
            counts["n"] += 1
            return real_fsync(fd)

        monkeypatch.setattr(queue_mod.os, "fsync", counting_fsync)

        def run_epoch_ops(queue):
            queue.open_epoch(1, {"m00": 0})
            queue.ack(queue.lease(0), verdict="clean")
            queue.close_epoch()

        lazy = WorkQueue(str(tmp_path / "lazy"))
        run_epoch_ops(lazy)
        # Only the epoch boundary records are fsynced by default (the
        # console index pins cursors against the WAL prefix).
        assert counts["n"] == 2

        counts["n"] = 0
        durable = WorkQueue(str(tmp_path / "durable"), durable=True)
        run_epoch_ops(durable)
        assert counts["n"] > 2       # every append hits the platter
        per_op = counts["n"]

        # The knob threads through the coordinator too.
        counts["n"] = 0
        coordinator = FleetCoordinator(
            str(tmp_path / "coord"), build_fleet(size=1, infected=()),
            workers=1, queue_durable=True)
        coordinator.run_epoch()
        assert counts["n"] >= per_op


class TestCliAndReport:
    def test_sweep_epochs_and_fleet_status_cli(self, tmp_path, capsys):
        from repro.__main__ import main

        fleet_dir = str(tmp_path / "fleet")
        assert main(["sweep", "--epochs", "2", "--escalate", "winpe",
                     "--fleet-dir", fleet_dir, "--fleet-size", "3",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["epochs"]) == 2
        assert payload["epochs"][1]["skipped"] == 3

        assert main(["fleet-status", "--fleet-dir", fleet_dir,
                     "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["epochs_completed"] == 2
        assert status["open_epoch"] is None

    def test_scan_report_renders_fleet_journal(self, tmp_path, capsys):
        import importlib.util
        from pathlib import Path

        machines = build_fleet(size=3, infected=(1,))
        FleetCoordinator(str(tmp_path), machines, workers=2).run_epoch()

        spec = importlib.util.spec_from_file_location(
            "scan_report", Path(__file__).resolve().parent.parent
            / "scripts" / "scan_report.py")
        scan_report = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(spec and scan_report)
        assert scan_report.main([str(tmp_path / "epochs.jsonl")]) == 0
        output = capsys.readouterr().out
        assert "confirmed by winpe" in output
        assert "epoch 1:" in output
        assert "m01" in output
