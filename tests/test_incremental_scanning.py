"""Incremental cross-view scanning: journal, cache repair, delta sweeps.

The PR-4 pipeline in one file: the USN-style change journal on the
disk, record-granular MFT namespace repair, hive bin-level delta
parsing, snapshot identity-index patching, the persistent baseline
store, and the delta fleet sweep built on all of them.  The recurring
assertion everywhere is *identity*: whatever the incremental path
produces must equal what a cold full parse/scan produces, and whenever
that cannot be proven the code must fall back — never guess.
"""

from __future__ import annotations

import pytest

from repro.core.baseline import BaselineStore, MachineBaseline
from repro.core.reporting import report_from_dict, report_to_dict
from repro.core.risboot import RisServer
from repro.core.snapshot import FileEntry, ResourceType, ScanSnapshot
from repro.disk import ChangeJournal, Disk, DiskGeometry
from repro.errors import FileExists, FileNotFound, VolumeError
from repro.ghostware import Aphex
from repro.machine import Machine
from repro.ntfs.mft_parser import MftParser
from repro.registry import hive_parser
from repro.registry.hive import Hive
from repro.telemetry.metrics import global_metrics


def _cold_parse(disk):
    """A from-scratch namespace parse that bypasses every shared cache."""
    parser = MftParser(lambda offset, length: disk.read_bytes(offset,
                                                              length))
    return sorted(parser.parse(), key=lambda e: e.record_no)


def _warm_parse(disk):
    parser = MftParser(disk.read_bytes)
    return sorted(parser.parse(), key=lambda e: e.record_no)


def _counter(name):
    return global_metrics().counter(name)


# -- change journal -----------------------------------------------------------

class TestChangeJournal:
    def test_records_every_disk_write(self):
        disk = Disk(DiskGeometry.from_megabytes(1))
        before = len(disk.journal)
        disk.write_bytes(4096, b"first")
        disk.write_bytes(8192, b"second")
        assert len(disk.journal) == before + 2
        newest = disk.journal._records[-1]
        assert newest.generation == disk.generation
        assert newest.kind == "bytes"

    def test_records_since_covers_exact_window(self):
        journal = ChangeJournal()
        for generation in range(1, 6):
            journal.record(generation, generation * 10, 1, "sector")
        window = journal.records_since(2, 5)
        assert [record.generation for record in window] == [3, 4, 5]
        assert journal.records_since(5, 5) == []

    def test_wrap_refuses_coverage(self):
        journal = ChangeJournal(capacity=3)
        for generation in range(1, 7):
            journal.record(generation, generation, 1, "sector")
        assert journal.overflowed
        # Generations 1-3 fell off the ring: unprovable.
        assert journal.records_since(1, 6) is None
        # The retained tail is still answerable.
        assert [r.generation
                for r in journal.records_since(3, 6)] == [4, 5, 6]

    def test_wrap_increments_overflow_counter(self):
        journal = ChangeJournal(capacity=2)
        for generation in range(1, 5):
            journal.record(generation, generation, 1, "sector")
        before = _counter("journal.overflow")
        assert journal.records_since(0, 4) is None
        assert _counter("journal.overflow") == before + 1

    def test_generation_gap_poisons_earlier_coverage(self):
        # A fault injector bumps disk.generation without writing; the
        # next record arrives non-contiguous and the journal must refuse
        # to vouch for anything at or before the gap.
        journal = ChangeJournal()
        journal.record(1, 10, 1, "sector")
        journal.record(3, 30, 1, "sector")     # generation 2 is missing
        assert journal.records_since(1, 3) is None
        assert journal.records_since(2, 3) is not None

    def test_stale_bookmark_refused(self):
        journal = ChangeJournal()
        journal.record(1, 0, 1, "sector")
        # to_generation beyond the newest record → the caller's target
        # state includes unrecorded changes.
        assert journal.records_since(0, 2) is None
        assert journal.records_since(2, 1) is None

    def test_clone_is_independent(self):
        journal = ChangeJournal(capacity=8)
        journal.record(1, 0, 1, "sector")
        copy = journal.clone()
        journal.record(2, 1, 1, "sector")
        assert journal.last_generation == 2
        assert copy.last_generation == 1
        copy.record(2, 99, 1, "sector")
        assert journal._records[-1].first_sector == 1
        assert copy._records[-1].first_sector == 99

    def test_disk_clone_clones_journal(self):
        disk = Disk(DiskGeometry.from_megabytes(1))
        disk.write_bytes(4096, b"seed")
        cloned = disk.clone()
        disk.write_bytes(8192, b"after")
        assert cloned.journal.last_generation < disk.journal.last_generation


# -- record-granular MFT namespace repair -------------------------------------

class TestMftDeltaPatch:
    def _seed(self, volume):
        volume.create_directories("\\data\\sub")
        for index in range(20):
            volume.create_file(f"\\data\\file-{index:02d}.bin",
                               bytes([index]) * 64)
        volume.create_file("\\data\\sub\\inner.bin", b"inner")

    def test_patch_equals_cold_reparse(self, volume, disk):
        self._seed(volume)
        _warm_parse(disk)                       # warm the shared cache
        volume.write_file("\\data\\file-03.bin", b"resized!" * 100)
        volume.create_file("\\data\\new.bin", b"new")
        volume.delete_file("\\data\\file-07.bin")
        volume.rename("\\data\\file-05.bin", "\\data\\renamed.bin")
        before = _counter("journal.records_patched")
        assert _warm_parse(disk) == _cold_parse(disk)
        assert _counter("journal.records_patched") > before

    def test_directory_rename_cascades_paths(self, volume, disk):
        self._seed(volume)
        _warm_parse(disk)
        volume.rename("\\data\\sub", "\\data\\moved")
        entries = _warm_parse(disk)
        paths = {entry.path for entry in entries}
        assert "\\data\\moved\\inner.bin" in paths
        assert not any(path.startswith("\\data\\sub") for path in paths)
        assert entries == _cold_parse(disk)

    def test_ads_change_patches(self, volume, disk):
        self._seed(volume)
        _warm_parse(disk)
        volume.write_stream("\\data\\file-01.bin", "ads", b"hidden")
        entries = _warm_parse(disk)
        entry = next(e for e in entries if e.name == "file-01.bin")
        assert entry.stream_names == ("ads",)
        assert entries == _cold_parse(disk)

    def test_journal_overflow_falls_back_to_full_reparse(self, volume,
                                                         disk):
        self._seed(volume)
        _warm_parse(disk)
        # A tiny journal starting at the warm generation: ten writes
        # wrap it well past the warm bookmark.
        disk.journal = ChangeJournal(capacity=4,
                                     start_generation=disk.generation)
        for index in range(10):
            volume.write_file(f"\\data\\file-{index:02d}.bin", b"x" * 32)
        overflow_before = _counter("journal.overflow")
        patched_before = _counter("journal.records_patched")
        assert _warm_parse(disk) == _cold_parse(disk)
        assert _counter("journal.overflow") > overflow_before
        assert _counter("journal.records_patched") == patched_before

    def test_injected_generation_gap_falls_back(self, volume, disk):
        self._seed(volume)
        _warm_parse(disk)
        volume.write_file("\\data\\file-02.bin", b"touched")
        disk.generation += 1                    # injector-style bare bump
        patched_before = _counter("journal.records_patched")
        assert _warm_parse(disk) == _cold_parse(disk)
        assert _counter("journal.records_patched") == patched_before


# -- volume rename ------------------------------------------------------------

class TestVolumeRename:
    def test_rename_moves_between_directories(self, volume):
        volume.create_directories("\\a")
        volume.create_directories("\\b")
        volume.create_file("\\a\\f.txt", b"payload")
        volume.rename("\\a\\f.txt", "\\b\\g.txt")
        assert volume.read_file("\\b\\g.txt") == b"payload"
        assert not volume.exists("\\a\\f.txt")

    def test_rename_rejects_collision(self, volume):
        volume.create_file("\\one", b"")
        volume.create_file("\\two", b"")
        with pytest.raises(FileExists):
            volume.rename("\\one", "\\two")

    def test_rename_rejects_cycle(self, volume):
        volume.create_directories("\\outer\\inner")
        with pytest.raises(VolumeError):
            volume.rename("\\outer", "\\outer\\inner\\outer")

    def test_rename_missing_source(self, volume):
        with pytest.raises(FileNotFound):
            volume.rename("\\ghost", "\\real")

    def test_rename_root_forbidden(self, volume):
        with pytest.raises(VolumeError):
            volume.rename("\\", "\\newroot")


# -- hive bin-level delta parsing ---------------------------------------------

class TestHiveBinDelta:
    def _hive(self):
        hive = Hive("SOFTWARE")
        for top in ("Alpha", "Beta", "Gamma", "Delta"):
            key = hive.create_key(f"{top}\\Nested\\Deep")
            key.set_value("marker", f"{top}-value")
        return hive

    def test_single_bin_edit_reuses_other_bins(self):
        hive_parser.clear_hive_cache()
        hive = self._hive()
        hive_parser.parse_hive(hive.serialize())
        hive.open_key("Beta\\Nested\\Deep").set_value("marker", "edited")
        blob = hive.serialize()
        reused_before = _counter("hive.delta.bins_reused")
        reparsed_before = _counter("hive.delta.bins_reparsed")
        parsed = hive_parser.parse_hive(blob)
        assert _counter("hive.delta.bins_reused") == reused_before + 3
        assert _counter("hive.delta.bins_reparsed") == reparsed_before + 1
        cold = hive_parser.HiveParser(blob).parse()
        assert parsed == cold

    def test_unaligned_layout_rejected(self):
        # A compact (foreign-writer) layout puts the first top-level nk
        # below its expected bin boundary; the span finder must refuse
        # so the caller cold-parses.
        from repro.registry import cells
        blob = self._hive().serialize()
        assert hive_parser._bin_spans(blob, [cells.HEADER_SIZE]) is None

    def test_structural_surprise_falls_back(self, monkeypatch):
        from repro.errors import HiveFormatError
        hive_parser.clear_hive_cache()
        blob = self._hive().serialize()

        def foreign(blob_, offsets):
            raise HiveFormatError("foreign writer")

        monkeypatch.setattr(hive_parser, "_bin_spans", foreign)
        before = _counter("hive.delta.fallback")
        parsed = hive_parser._parse_blob_incremental(blob)
        assert _counter("hive.delta.fallback") == before + 1
        assert parsed == hive_parser.HiveParser(blob).parse()

    def test_roundtrip_survives_bin_padding(self):
        hive = self._hive()
        blob = hive.serialize()
        rebuilt = Hive.deserialize(blob)
        assert rebuilt.open_key("Gamma\\Nested\\Deep").value(
            "marker").win32_data() == "Gamma-value"


# -- snapshot identity index --------------------------------------------------

class TestSnapshotIdentities:
    def _entry(self, path):
        return FileEntry(path=path, name=path.rsplit("\\", 1)[-1],
                         is_directory=False, size=1)

    def test_list_replacement_invalidates_cache(self):
        snapshot = ScanSnapshot(ResourceType.FILE, "win32-api",
                                entries=[self._entry("\\a")])
        assert "\\a" in snapshot.identities()
        snapshot.entries = [self._entry("\\b")]
        assert "\\b" in snapshot.identities()
        assert "\\a" not in snapshot.identities()

    def test_id_reuse_cannot_alias_the_cache(self):
        # Regression: the old fingerprint was (id(entries), len(entries)).
        # CPython frees the replaced list immediately, so a same-length
        # replacement routinely reuses the exact id and the stale index
        # was served.  The mutation counter makes every assignment a new
        # fingerprint; loop to give the allocator every chance to reuse.
        snapshot = ScanSnapshot(ResourceType.FILE, "raw-mft", entries=[])
        for round_no in range(50):
            snapshot.entries = [self._entry(f"\\round-{round_no}")]
            index = snapshot.identities()
            assert list(index) == [f"\\round-{round_no}"]

    def test_version_counts_every_assignment(self):
        snapshot = ScanSnapshot(ResourceType.FILE, "win32-api")
        first = snapshot._entries_version
        snapshot.entries = []
        snapshot.entries = []
        assert snapshot._entries_version == first + 2

    def test_in_place_growth_still_invalidates(self):
        snapshot = ScanSnapshot(ResourceType.FILE, "win32-api",
                                entries=[self._entry("\\a")])
        snapshot.identities()
        snapshot.entries.append(self._entry("\\b"))
        assert "\\b" in snapshot.identities()

    def test_apply_delta_matches_rebuild(self):
        entries = [self._entry(f"\\f{i}") for i in range(10)]
        snapshot = ScanSnapshot(ResourceType.FILE, "raw-mft",
                                entries=entries)
        patched = snapshot.apply_delta(
            removed_identities=["\\f3", "\\f7"],
            upserted_entries=[self._entry("\\f5"), self._entry("\\new")])
        expected = {e.identity for e in entries
                    if e.identity not in ("\\f3", "\\f7")} | {"\\new"}
        assert set(patched.identities()) == expected
        # The receiver is untouched.
        assert "\\f3" in snapshot.identities()
        assert len(snapshot) == 10

    def test_apply_delta_preseeds_index_cache(self):
        snapshot = ScanSnapshot(ResourceType.FILE, "raw-mft",
                                entries=[self._entry("\\a")])
        patched = snapshot.apply_delta([], [self._entry("\\b")])
        cached_fingerprint, cached_index = patched._identity_cache
        assert patched.identities() is cached_index


# -- report round-trip and baseline store -------------------------------------

class TestBaselineStore:
    def _report(self, name="pc-1"):
        machine = Machine(name, disk_mb=64, max_records=4096)
        machine.boot()
        Aphex().install(machine)
        return RisServer().network_boot_scan(machine), machine

    def test_report_roundtrip_preserves_verdict(self):
        report, _ = self._report()
        document = report_to_dict(report)
        rebuilt = report_from_dict(document)
        assert report_to_dict(rebuilt) == document
        assert rebuilt.is_clean == report.is_clean
        assert len(rebuilt.findings) == len(report.findings)

    def test_put_get_and_persistence(self, tmp_path):
        report, machine = self._report()
        store = BaselineStore(str(tmp_path))
        stored = store.put("pc-1", report, machine.disk.generation,
                           scan_seconds=1.25)
        assert store.get("pc-1").baseline_id == stored.baseline_id
        # A fresh store re-reads the JSONL file.
        reloaded = BaselineStore(str(tmp_path))
        baseline = reloaded.get("pc-1")
        assert baseline.disk_generation == machine.disk.generation
        assert baseline.scan_seconds == 1.25
        rebuilt = baseline.rehydrate(mode="ris-delta-skip")
        assert rebuilt.mode == "ris-delta-skip"
        assert not rebuilt.is_clean

    def test_latest_record_wins(self, tmp_path):
        report, machine = self._report()
        store = BaselineStore(str(tmp_path))
        store.put("pc-1", report, 10)
        store.put("pc-1", report, 20)
        assert BaselineStore(str(tmp_path)).get("pc-1") \
            .disk_generation == 20

    def test_torn_tail_line_skipped(self, tmp_path):
        report, machine = self._report()
        store = BaselineStore(str(tmp_path))
        store.put("pc-1", report, 5, scan_seconds=2.0)
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write('{"machine": "pc-2", "trunc')
        reloaded = BaselineStore(str(tmp_path))
        assert reloaded.machines() == ["pc-1"]
        assert reloaded.scan_seconds("pc-1") == 2.0
        assert reloaded.scan_seconds("pc-2") is None


# -- delta fleet sweeps -------------------------------------------------------

def _fleet(count=5, infected=(2,)):
    machines = []
    for index in range(count):
        machine = Machine(f"client-{index}", disk_mb=64, max_records=4096)
        machine.boot()
        machines.append(machine)
    for index in infected:
        Aphex().install(machines[index])
    return machines


class TestDeltaSweep:
    def test_unchanged_fleet_fully_skipped(self, tmp_path):
        machines = _fleet()
        server = RisServer()
        store = BaselineStore(str(tmp_path))
        full = server.sweep(machines, mode="full", baseline_store=store)
        delta = server.sweep(machines, mode="delta", baseline_store=store)
        assert delta.mode == "delta"
        assert sorted(delta.delta_skipped) == sorted(
            machine.name for machine in machines)
        assert delta.infected_machines == full.infected_machines
        for name in delta.delta_skipped:
            assert delta.reports[name].mode == "ris-delta-skip"
            assert delta.baseline_ids[name] == \
                store.get(name).baseline_id

    def test_changed_machines_rescanned_incrementally(self, tmp_path):
        machines = _fleet()
        server = RisServer()
        store = BaselineStore(str(tmp_path))
        full = server.sweep(machines, mode="full", baseline_store=store)
        machines[1].volume.create_file("\\Temp\\drop.txt", b"x")
        machines[4].volume.create_file("\\Temp\\drop.txt", b"x")
        delta = server.sweep(machines, mode="delta", baseline_store=store)
        assert sorted(delta.delta_skipped) == \
            ["client-0", "client-2", "client-3"]
        assert delta.infected_machines == full.infected_machines
        assert delta.delta_stats["journal.records_patched"] > 0
        # The rescans advanced their baselines: a third sweep skips all.
        third = server.sweep(machines, mode="delta", baseline_store=store)
        assert len(third.delta_skipped) == len(machines)

    def test_findings_identical_to_full_resweep(self, tmp_path):
        machines = _fleet(count=4, infected=(1,))
        server = RisServer()
        store = BaselineStore(str(tmp_path))
        server.sweep(machines, mode="full", baseline_store=store)
        machines[3].volume.create_file("\\Temp\\evil.bin", b"z")
        delta = server.sweep(machines, mode="delta", baseline_store=store)
        full = server.sweep(machines, mode="full")
        assert delta.infected_machines == full.infected_machines
        for name, report in full.reports.items():
            delta_ids = sorted(str(f.entry.identity)
                               for f in delta.reports[name].findings)
            full_ids = sorted(str(f.entry.identity)
                              for f in report.findings)
            assert delta_ids == full_ids

    def test_dispatch_orders_longest_scan_first(self, tmp_path,
                                                monkeypatch):
        machines = _fleet(count=4, infected=())
        store = BaselineStore(str(tmp_path))
        server = RisServer()
        server.sweep(machines, mode="full", baseline_store=store)
        # Rewrite timings (at a stale generation, so everyone rescans)
        # making client-2 historically slowest; client-0 loses its
        # baseline entirely → unknown cost → dispatched first of all.
        for name, seconds in (("client-1", 1.0), ("client-2", 9.0),
                              ("client-3", 3.0)):
            baseline = store.get(name)
            store.put(name, baseline.rehydrate(), 0, scan_seconds=seconds)
        store._baselines.pop("client-0")
        order = []
        original = RisServer.network_boot_scan

        def recording(self, machine, **kwargs):
            order.append(machine.name)
            return original(self, machine, **kwargs)

        monkeypatch.setattr(RisServer, "network_boot_scan", recording)
        server.sweep(machines, mode="delta", baseline_store=store)
        assert order == ["client-0", "client-2", "client-3", "client-1"]

    def test_results_keep_input_order(self, tmp_path):
        machines = _fleet(count=4, infected=())
        store = BaselineStore(str(tmp_path))
        server = RisServer()
        result = server.sweep(machines, mode="delta", baseline_store=store)
        assert list(result.reports) == [m.name for m in machines]

    def test_error_machine_keeps_old_baseline(self, tmp_path):
        from repro.faults.plan import (FaultPlan, FaultSpec,
                                       SITE_RIS_TRANSPORT)
        machines = _fleet(count=3, infected=())
        store = BaselineStore(str(tmp_path))
        RisServer().sweep(machines, mode="full", baseline_store=store)
        old = store.get("client-1").baseline_id
        machines[1].volume.create_file("\\Temp\\touch.txt", b"x")
        plan = FaultPlan(seed=7, specs=(
            FaultSpec(SITE_RIS_TRANSPORT, mode="always",
                      kinds=("machine_death",), mean_delay_s=0.0,
                      scopes=("client-1",)),))
        result = RisServer(fault_plan=plan, max_retries=1).sweep(
            machines, mode="delta", baseline_store=store)
        assert "client-1" in result.quarantined
        # The failed rescan must not overwrite the last good baseline.
        assert store.get("client-1").baseline_id == old

    def test_mode_validation(self, tmp_path):
        machines = _fleet(count=1, infected=())
        server = RisServer()
        with pytest.raises(ValueError):
            server.sweep(machines, mode="delta")
        with pytest.raises(ValueError):
            server.sweep(machines, mode="weekly")

    def test_health_jsonl_carries_delta_provenance(self, tmp_path):
        machines = _fleet(count=3, infected=(0,))
        store = BaselineStore(str(tmp_path))
        server = RisServer()
        server.sweep(machines, mode="full", baseline_store=store)
        machines[2].volume.create_file("\\Temp\\x.txt", b"x")
        delta = server.sweep(machines, mode="delta", baseline_store=store,
                             collect_telemetry=True)
        jsonl = delta.health.to_jsonl()
        assert '"type": "delta"' in jsonl
        assert delta.health.delta["skipped"] == ["client-0", "client-1"]
        assert "client-2" not in delta.health.delta["skipped"]
