"""Tests for scan snapshots and the cross-view diff engine."""

import pytest

from repro.core.diff import DetectionReport, Finding, cross_view_diff
from repro.core.snapshot import (FileEntry, ModuleEntry, ProcessEntry,
                                 RegistryHookEntry, ResourceType,
                                 ScanSnapshot, snapshot_pair_stats)
from repro.errors import ScanError


def file_snapshot(view, paths):
    entries = [FileEntry(path, path.rsplit("\\", 1)[-1], False, 0)
               for path in paths]
    return ScanSnapshot(ResourceType.FILE, view=view, entries=entries)


class TestIdentities:
    def test_file_identity_case_insensitive(self):
        a = FileEntry("\\A\\B.TXT", "B.TXT", False, 1)
        b = FileEntry("\\a\\b.txt", "b.txt", False, 2)
        assert a.identity == b.identity

    def test_process_identity_includes_pid(self):
        assert ProcessEntry(4, "x").identity != ProcessEntry(8, "x").identity

    def test_module_identity_pid_scoped(self):
        a = ModuleEntry(4, "p", "\\m.dll")
        b = ModuleEntry(8, "q", "\\m.dll")
        assert a.identity != b.identity

    def test_registry_identity_includes_data(self):
        a = RegistryHookEntry("run", "HKLM\\Run", "x", "good.exe")
        b = RegistryHookEntry("run", "HKLM\\Run", "x", "evil.exe")
        assert a.identity != b.identity

    def test_registry_describe_escapes_nul(self):
        entry = RegistryHookEntry("run", "HKLM\\Run", "a\x00b", "x")
        assert "\x00" not in entry.describe()
        assert "\\0" in entry.describe()


class TestDiff:
    def test_truth_minus_lie(self):
        lie = file_snapshot("api", ["\\a", "\\b"])
        truth = file_snapshot("raw", ["\\a", "\\b", "\\ghost"])
        findings = cross_view_diff(lie, truth)
        assert len(findings) == 1
        assert findings[0].entry.path == "\\ghost"
        assert findings[0].lie_view == "api"
        assert findings[0].truth_view == "raw"

    def test_equal_views_clean(self):
        lie = file_snapshot("api", ["\\a"])
        truth = file_snapshot("raw", ["\\a"])
        assert cross_view_diff(lie, truth) == []

    def test_extra_in_lie_not_reported(self):
        """Hiding removes entries; an entry only in the lie is not a
        hidden resource (it would be a fabrication, not hiding)."""
        lie = file_snapshot("api", ["\\a", "\\phantom"])
        truth = file_snapshot("raw", ["\\a"])
        assert cross_view_diff(lie, truth) == []

    def test_case_difference_not_a_finding(self):
        lie = file_snapshot("api", ["\\A\\FILE.TXT"])
        truth = file_snapshot("raw", ["\\a\\file.txt"])
        assert cross_view_diff(lie, truth) == []

    def test_mismatched_resource_types_rejected(self):
        files = file_snapshot("api", [])
        procs = ScanSnapshot(ResourceType.PROCESS, view="x")
        with pytest.raises(ScanError):
            cross_view_diff(files, procs)

    def test_empty_truth_clean(self):
        assert cross_view_diff(file_snapshot("a", ["\\x"]),
                               file_snapshot("b", [])) == []

    def test_stats_helper(self):
        lie = file_snapshot("a", ["\\1", "\\2"])
        truth = file_snapshot("b", ["\\2", "\\3"])
        assert snapshot_pair_stats(lie, truth) == (2, 2, 1)


class TestDetectionReport:
    def _finding(self, path="\\g", noise=None):
        return Finding(ResourceType.FILE,
                       FileEntry(path, path[1:], False, 0),
                       "api", "raw", noise_reason=noise)

    def test_clean_report(self):
        report = DetectionReport("m", "inside")
        assert report.is_clean
        assert "CLEAN" in report.summary()

    def test_findings_by_type(self):
        report = DetectionReport("m", "inside",
                                 findings=[self._finding()])
        assert len(report.hidden_files()) == 1
        assert report.hidden_processes() == []
        assert not report.is_clean

    def test_noise_excluded_by_default(self):
        report = DetectionReport("m", "outside",
                                 findings=[self._finding(noise="log churn")])
        assert report.hidden_files() == []
        assert len(report.hidden_files(include_noise=True)) == 1
        assert report.is_clean
        assert len(report.noise()) == 1

    def test_summary_lists_findings(self):
        report = DetectionReport("m", "inside",
                                 findings=[self._finding("\\evil.exe")])
        assert "evil.exe" in report.summary()
        assert "INFECTED" in report.summary()

    def test_total_duration(self):
        report = DetectionReport("m", "inside",
                                 durations={"files": 10.0, "registry": 5.0})
        assert report.total_duration() == 15.0
