"""Tests for the Section-5 extensions: injection, targeting, VM scans,
mass-hiding anomaly, and the cross-time baseline."""

import pytest

from repro.core import (GhostBuster, check_mass_hiding, injected_scan,
                        injected_process_names)
from repro.core.crosstime import ChangeKind, CrossTimeDiffer
from repro.core.injection_ext import install_gb_dll
from repro.core.vmscan import automated_winpe_vm_scan, vm_outside_scan
from repro.ghostware import (GhostBusterAwareGhost, HackerDefender,
                             HideFiles, UtilityTargetedGhost)
from repro.workloads.signatures import SignatureScanner


class TestTargetedGhostware:
    def test_utility_targeted_evades_standard_scan(self, booted):
        UtilityTargetedGhost().install(booted)
        report = GhostBuster(booted).inside_scan(
            resources=("files", "processes"))
        assert report.is_clean   # the scanner never experiences the lie

    def test_utility_targeted_lies_to_taskmgr(self, booted):
        UtilityTargetedGhost().install(booted)
        taskmgr = booted.start_process("\\Windows\\explorer.exe",
                                       name="taskmgr.exe")
        from tests.conftest import task_list
        assert "utghost.exe" not in task_list(taskmgr)

    def test_injection_extension_catches_utility_targeted(self, booted):
        UtilityTargetedGhost().install(booted)
        result = injected_scan(booted)
        assert not result.is_clean
        assert any(name in result.detecting_processes
                   for name in ("taskmgr.exe", "explorer.exe"))

    def test_gb_aware_evades_standard_scan(self, booted):
        GhostBusterAwareGhost().install(booted)
        report = GhostBuster(booted).inside_scan(
            resources=("files", "processes"))
        assert report.is_clean

    def test_injection_extension_catches_gb_aware(self, booted):
        GhostBusterAwareGhost().install(booted)
        result = injected_scan(booted)
        assert not result.is_clean
        paths = {finding.entry.describe() for finding in result.combined}
        assert any("gbaware" in item for item in paths)

    def test_injected_scan_clean_machine(self, booted):
        result = injected_scan(booted)
        assert result.is_clean

    def test_injection_reaches_all_processes(self, booted):
        install_gb_dll(booted)
        names = injected_process_names(booted)
        assert "explorer.exe" in names
        assert "winlogon.exe" in names


class TestEtrustDilemma:
    def test_signatures_blind_while_hidden(self, booted):
        HackerDefender().install(booted)
        scanner = SignatureScanner()
        assert scanner.on_demand_scan(booted) == []

    def test_signatures_fire_when_not_hiding(self, booted):
        """Install the files and hooks but never activate the hiding."""
        ghost = HackerDefender()
        ghost._install_persistent(booted)   # files only, no hooks
        scanner = SignatureScanner()
        hits = scanner.on_demand_scan(booted)
        assert any(hit.malware.startswith("Win32/HackerDefender")
                   for hit in hits)

    def test_combination_restores_detection(self, booted):
        """GhostBuster diff locates hidden paths; signatures name them."""
        HackerDefender().install(booted)
        report = GhostBuster(booted).inside_scan(resources=("files",))
        hidden_paths = [finding.entry.path
                        for finding in report.hidden_files()]
        scanner = SignatureScanner()
        hits = scanner.scan_hidden_candidates(booted, hidden_paths)
        assert any("HackerDefender" in hit.malware for hit in hits)


class TestVmScans:
    def test_vm_outside_scan_detects(self, booted):
        HackerDefender().install(booted)
        report = vm_outside_scan(booted)
        files = {finding.entry.path for finding in report.hidden_files()}
        assert "\\Windows\\hxdef100.exe" in files
        assert booted.powered_on   # powered back up

    def test_vm_outside_scan_zero_fp_on_clean(self, booted):
        report = vm_outside_scan(booted)
        assert report.findings == []

    def test_automated_winpe_vm_flow(self, booted):
        HackerDefender().install(booted)
        report = automated_winpe_vm_scan(booted)
        files = {finding.entry.path for finding in report.hidden_files()}
        assert "\\Windows\\hxdef100.exe" in files

    def test_automated_flow_excludes_own_artifacts(self, booted):
        report = automated_winpe_vm_scan(booted)
        paths = {finding.entry.path.casefold()
                 for finding in report.findings}
        assert "\\gb_scan_result.dat" not in paths


class TestMassHidingAnomaly:
    def test_mass_hiding_flagged(self, booted):
        hider = HideFiles()
        hider.install(booted)
        booted.volume.create_directories("\\Innocent")
        for index in range(40):
            path = f"\\Innocent\\doc{index:03d}.txt"
            booted.volume.create_file(path, b"")
            hider.hide_path(booted, path)
        report = GhostBuster(booted).inside_scan(resources=("files",))
        alert = check_mass_hiding(report)
        assert alert is not None
        assert alert.hidden_count >= 40
        assert "\\Innocent" in alert.top_directories

    def test_small_hiding_not_flagged(self, booted):
        HackerDefender().install(booted)
        report = GhostBuster(booted).inside_scan(resources=("files",))
        assert check_mass_hiding(report) is None

    def test_threshold_parameter(self, booted):
        HackerDefender().install(booted)
        report = GhostBuster(booted).inside_scan(resources=("files",))
        assert check_mass_hiding(report, threshold=2) is not None


class TestCrossTimeBaseline:
    def test_captures_all_changes(self, booted):
        differ = CrossTimeDiffer(booted)
        before = differ.checkpoint()
        booted.volume.create_file("\\Temp\\new.txt", b"x")
        booted.volume.write_file("\\Windows\\explorer.exe", b"patched")
        booted.volume.delete_file("\\Windows\\System32\\user32.dll")
        after = differ.checkpoint()
        findings = differ.diff(before, after)
        kinds = {(finding.kind, finding.path) for finding in findings}
        assert (ChangeKind.ADDED, "\\temp\\new.txt") in kinds
        assert (ChangeKind.MODIFIED, "\\windows\\explorer.exe") in kinds
        assert (ChangeKind.REMOVED,
                "\\windows\\system32\\user32.dll") in kinds

    def test_no_change_no_findings(self, booted):
        differ = CrossTimeDiffer(booted)
        checkpoint = differ.checkpoint()
        assert differ.diff(checkpoint, checkpoint) == []

    def test_legitimate_churn_is_noise_here(self, booted):
        """The A1 point: cross-time flags legitimate activity that the
        cross-view diff (by construction) does not."""
        from repro.workloads import attach_standard_services
        services = attach_standard_services(booted)
        differ = CrossTimeDiffer(booted)
        before = differ.checkpoint()
        booted.run_background(60)
        after = differ.checkpoint()
        assert len(differ.diff(before, after)) >= 1
        del services
