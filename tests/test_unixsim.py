"""Tests for the Unix substrate and the Section-5 Unix experiments."""

import pytest

from repro.errors import UnixError
from repro.unixsim import (Darkside, Superkit, Synapsis, T0rnkit,
                           UnixMachine, clean_cd_scan, ls_recursive,
                           shell_glob, unix_cross_view_scan)
from repro.unixsim.syscalls import UnixSyscall


@pytest.fixture
def unix():
    machine = UnixMachine("testnix")
    machine.populate(80, seed=3)
    return machine


class TestFilesystem:
    def test_base_layout_present(self, unix):
        assert unix.fs.exists("/bin/ls")
        assert unix.fs.exists("/etc/passwd")

    def test_write_read_roundtrip(self, unix):
        unix.fs.write_file("/home/user/note", b"hi")
        assert unix.fs.read_file("/home/user/note") == b"hi"

    def test_mkdir_p(self, unix):
        unix.fs.mkdir_p("/a/b/c")
        assert unix.fs.inode_at("/a/b/c").is_directory

    def test_unlink(self, unix):
        unix.fs.write_file("/tmp/x", b"")
        unix.fs.unlink("/tmp/x")
        assert not unix.fs.exists("/tmp/x")

    def test_unlink_missing(self, unix):
        with pytest.raises(UnixError):
            unix.fs.unlink("/absent")

    def test_relative_paths_rejected(self, unix):
        with pytest.raises(UnixError):
            unix.fs.write_file("relative", b"")

    def test_walk_covers_everything(self, unix):
        paths = {path for path, __ in unix.fs.walk()}
        assert "/bin/ls" in paths
        assert "/etc" in paths

    def test_case_sensitive(self, unix):
        unix.fs.write_file("/tmp/File", b"")
        assert not unix.fs.exists("/tmp/file")


class TestSyscalls:
    def test_getdents(self, unix):
        names = [name for name, __, ___ in
                 unix.syscalls.invoke(UnixSyscall.GETDENTS, "/bin")]
        assert "ls" in names

    def test_hook_and_mechanism_detection(self, unix):
        assert unix.syscalls.hooked_entries() == []
        unix.syscalls.hook(UnixSyscall.GETDENTS,
                           lambda original: lambda path: original(path))
        assert unix.syscalls.hooked_entries() == [UnixSyscall.GETDENTS]

    def test_hook_uninstalled_rejected(self, unix):
        from repro.unixsim.syscalls import SyscallTable
        empty = SyscallTable()
        with pytest.raises(UnixError):
            empty.hook(UnixSyscall.GETDENTS, lambda original: original)

    def test_invoke_unimplemented(self, unix):
        table = type(unix.syscalls)()
        with pytest.raises(UnixError):
            table.invoke(UnixSyscall.OPEN, "/x")


class TestRootkitBehaviour:
    def test_darkside_prefix_hiding(self, unix):
        Darkside().install(unix)
        listing = ls_recursive(unix)
        assert all(".ds_" not in path for path in listing)
        assert unix.fs.exists("/usr/share/.ds_backdoor")

    def test_superkit_hides_dir_and_denies_open(self, unix):
        Superkit().install(unix)
        assert all(".superkit" not in path for path in ls_recursive(unix))
        assert not unix.syscalls.invoke(UnixSyscall.OPEN,
                                        "/usr/share/.superkit/sk")

    def test_synapsis_name_list(self, unix):
        Synapsis().install(unix)
        listing = ls_recursive(unix)
        assert all("synapsisd" not in path for path in listing)
        assert all(".syn_log" not in path for path in listing)

    def test_t0rnkit_trojans_ls_only(self, unix):
        T0rnkit().install(unix)
        assert all(".puta" not in path for path in ls_recursive(unix))
        # the kernel is honest: a shell glob still sees it
        assert any(".puta" in path for path in shell_glob(unix, "/usr/src"))
        assert unix.syscalls.hooked_entries() == []

    def test_lkm_registered(self, unix):
        Darkside().install(unix)
        assert "darkside.ko" in unix.loaded_modules


class TestCrossViewDetection:
    @pytest.mark.parametrize("kit_cls", [Darkside, Superkit, Synapsis,
                                         T0rnkit])
    def test_all_kits_detected(self, kit_cls):
        machine = UnixMachine(flavor=getattr(kit_cls, "flavor", "linux"))
        machine.populate(60)
        kit = kit_cls()
        kit.install(machine)
        report = unix_cross_view_scan(machine)
        hidden = set(report.hidden)
        assert set(kit.hidden_paths) <= hidden

    def test_clean_machine_clean_report(self, unix):
        report = unix_cross_view_scan(unix)
        assert report.is_clean
        assert report.false_positive_count == 0

    def test_daemon_churn_bounded_noise(self, unix):
        Superkit().install(unix)
        report = unix_cross_view_scan(unix, daemon_churn_files=4)
        assert report.false_positive_count <= 4
        assert not report.is_clean

    def test_clean_cd_scan_is_truth(self, unix):
        Darkside().install(unix)
        outside = clean_cd_scan(unix)
        assert "/usr/share/.ds_backdoor" in outside

    def test_report_summary(self, unix):
        Synapsis().install(unix)
        summary = unix_cross_view_scan(unix).summary()
        assert "INFECTED" in summary
        assert "synapsisd" in summary


class TestUnixBaselines:
    def test_kstat_clean_machine(self, unix):
        from repro.unixsim import kstat_check
        assert kstat_check(unix).is_clean

    def test_kstat_catches_lkm_hookers(self, unix):
        from repro.unixsim import kstat_check
        from repro.unixsim.syscalls import UnixSyscall
        Darkside().install(unix)
        report = kstat_check(unix)
        assert UnixSyscall.GETDENTS in report.hooked

    def test_kstat_blind_to_t0rnkit(self, unix):
        from repro.unixsim import kstat_check
        T0rnkit().install(unix)
        assert kstat_check(unix).is_clean   # no kernel state touched

    def test_chkrootkit_blind_when_paths_hidden(self, unix):
        """Superkit is on chkrootkit's list — and hides itself from the
        very syscalls chkrootkit sweeps with."""
        from repro.unixsim import chkrootkit_check
        Superkit().install(unix)
        assert chkrootkit_check(unix).is_clean

    def test_chkrootkit_blind_to_unknown_kits(self, unix):
        from repro.unixsim import chkrootkit_check
        Synapsis().install(unix)   # not on the known-path list
        assert chkrootkit_check(unix).is_clean

    def test_chkrootkit_finds_t0rnkit_dir(self, unix):
        """T0rnkit's trojaned ls hides .puta — but chkrootkit's sweep
        here runs the same trojaned view, so it also misses it; only
        after restoring a clean ls does the known-path check fire."""
        from repro.unixsim import chkrootkit_check
        T0rnkit().install(unix)
        assert chkrootkit_check(unix).is_clean
        del unix.binaries["/bin/ls"]   # restore a clean ls binary
        report = chkrootkit_check(unix)
        assert "/usr/src/.puta" in report.found

    def test_cross_view_needs_no_list_and_no_integrity_truth(self, unix):
        """The diff catches the kit the baselines both miss."""
        from repro.unixsim import chkrootkit_check, kstat_check
        T0rnkit().install(unix)
        assert kstat_check(unix).is_clean
        assert chkrootkit_check(unix).is_clean
        report = unix_cross_view_scan(unix)
        assert not report.is_clean
