"""The console's sidecar journal index: the O(changes) read path.

The load-bearing invariant: an index maintained *incrementally* (one
``update()`` per journal append, sidecars reloaded mid-stream) answers
every query identically to one ``rebuild()``-t from the journals alone
— over arbitrary epoch histories (Hypothesis drives those).  Plus the
retention policy: compaction must not change what queries over the
retained range return.
"""

from __future__ import annotations

import json
import os
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.console import JournalIndex, fleet_status_from_index
from repro.fleet import FleetCoordinator, fleet_status
from repro.machine import Machine
from repro.telemetry.journal_io import append_journal

MACHINES = ["m00", "m01", "m02", "m03"]
IDENTITIES = ["file:hxdef", "file:aphex"]


def build_fleet(size=3, infected=(1,)):
    from repro.ghostware import HackerDefender

    machines = []
    for index in range(size):
        machine = Machine(f"m{index:02d}", disk_mb=256, max_records=8192)
        machine.boot()
        if index in infected:
            HackerDefender().install(machine)
        machines.append(machine)
    return machines


# -- synthetic journal histories ---------------------------------------------------

verdict_st = st.sampled_from(["clean", "infected", "error"])

machine_record_st = st.fixed_dictionaries({
    "machine": st.sampled_from(MACHINES),
    "verdict": verdict_st,
    "findings": st.integers(min_value=0, max_value=3),
    "scanned": st.booleans(),
    "escalated": st.booleans(),
    "finding_ids": st.lists(st.sampled_from(IDENTITIES), max_size=2,
                            unique=True),
})

epoch_st = st.fixed_dictionaries({
    "verdicts": st.lists(machine_record_st, min_size=0, max_size=4),
    "outbreak": st.booleans(),
    "closed": st.booleans(),
})

history_st = st.lists(epoch_st, min_size=1, max_size=5)


def write_history(epochs_path, history):
    """Emit a coordinator-shaped journal; yields after each record."""
    clock = 0.0
    for number, epoch in enumerate(history, start=1):
        clock += 1.0
        yield append_journal(epochs_path, {
            "type": "epoch-start", "epoch": number, "at": clock,
            "machines": sorted({v["machine"] for v in epoch["verdicts"]}),
        })
        for verdict in epoch["verdicts"]:
            clock += 1.0
            record = dict(verdict, type="fleet-machine", epoch=number,
                          at=clock)
            yield append_journal(epochs_path, record)
        if epoch["outbreak"]:
            clock += 1.0
            yield append_journal(epochs_path, {
                "type": "fleet-outbreak", "epoch": number,
                "identity": IDENTITIES[number % len(IDENTITIES)],
                "machines": MACHINES[:2], "threshold": 2, "at": clock})
        if epoch["closed"]:
            clock += 1.0
            yield append_journal(epochs_path, {
                "type": "epoch-end", "epoch": number, "at": clock,
                "machines": len(epoch["verdicts"]),
                "infected": sum(1 for v in epoch["verdicts"]
                                if v["verdict"] == "infected")})


def index_answers(index):
    """Every query surface, as one comparable document."""
    return {
        "status": index.status(),
        "stats": {key: value for key, value in index.stats().items()
                  if key != "torn_skipped"},
        "machines": index.machine_names(),
        "histories": {name: index.machine_history(name)
                      for name in index.machine_names()},
        "latest": index.latest_verdicts(),
        "extents": index.epoch_extents(),
        "outbreaks": index.outbreaks(),
        "query_all": index.query(),
        "query_infected": index.query(verdict="infected"),
        "query_identity": index.query(identity=IDENTITIES[0]),
    }


class TestIncrementalEqualsRebuild:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(history=history_st, reload_every=st.integers(1, 7))
    def test_equivalence_over_random_histories(self, history,
                                               reload_every):
        with tempfile.TemporaryDirectory(prefix="gb-idx-") as fleet_dir:
            epochs_path = os.path.join(fleet_dir, "epochs.jsonl")
            incremental = JournalIndex(fleet_dir)
            for count, __ in enumerate(write_history(epochs_path,
                                                     history), start=1):
                incremental.update()
                if count % reload_every == 0:
                    # Persistence: a console restart mid-history loses
                    # nothing — the sidecars rehydrate the maps.
                    incremental = JournalIndex(fleet_dir)
            incremental.update()

            rebuilt_dir = os.path.join(fleet_dir, "rebuilt")
            os.makedirs(rebuilt_dir)
            os.link(epochs_path, os.path.join(rebuilt_dir,
                                              "epochs.jsonl"))
            rebuilt = JournalIndex(rebuilt_dir)
            rebuilt.rebuild()

            left = index_answers(incremental)
            right = index_answers(rebuilt)
            left["status"].pop("fleet_dir")
            right["status"].pop("fleet_dir")
            left["stats"].pop("fleet_dir")
            right["stats"].pop("fleet_dir")
            assert left == right

    def test_write_time_hook_matches_pull_update(self, tmp_path):
        hook_dir = str(tmp_path / "hooked")
        pull_dir = str(tmp_path / "pulled")
        os.makedirs(hook_dir)
        os.makedirs(pull_dir)
        hooked = JournalIndex(hook_dir)
        records = [
            {"type": "epoch-start", "epoch": 1, "machines": ["m00"]},
            {"type": "fleet-machine", "epoch": 1, "machine": "m00",
             "verdict": "infected", "findings": 2, "scanned": True,
             "finding_ids": [IDENTITIES[0]]},
            {"type": "epoch-end", "epoch": 1, "machines": 1},
        ]
        pulled = JournalIndex(pull_dir)
        for record in records:
            start, end = append_journal(
                os.path.join(hook_dir, "epochs.jsonl"), record)
            hooked.note_epoch_record(record, start, end)
            append_journal(os.path.join(pull_dir, "epochs.jsonl"),
                           record)
        pulled.update()
        assert hooked.query() == pulled.query()
        assert hooked.epoch_extents() == pulled.epoch_extents()

    def test_hook_with_gapped_offset_falls_back_to_update(self, tmp_path):
        fleet_dir = str(tmp_path)
        index = JournalIndex(fleet_dir)
        epochs_path = os.path.join(fleet_dir, "epochs.jsonl")
        append_journal(epochs_path, {"type": "fleet-machine", "epoch": 1,
                                     "machine": "m00",
                                     "verdict": "clean"})
        # The hook arrives with offsets past an unindexed gap: it must
        # not trust them blindly but fold the gap in too.
        record = {"type": "fleet-machine", "epoch": 1, "machine": "m01",
                  "verdict": "infected"}
        start, end = append_journal(epochs_path, record)
        index.note_epoch_record(record, start, end)
        assert sorted(index.machine_names()) == ["m00", "m01"]


class TestStalenessAndCrashSafety:
    def test_owner_compaction_triggers_rebuild(self, tmp_path):
        fleet_dir = str(tmp_path)
        epochs_path = os.path.join(fleet_dir, "epochs.jsonl")
        for epoch in (1, 2):
            append_journal(epochs_path, {"type": "fleet-machine",
                                         "epoch": epoch,
                                         "machine": "m00",
                                         "verdict": "clean"})
        index = JournalIndex(fleet_dir)
        index.update()
        assert len(index.machine_history("m00")) == 2
        # Someone rewrites the journal head under the index.
        with open(epochs_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"type": "fleet-machine", "epoch": 2,
                                     "machine": "m00",
                                     "verdict": "infected"}) + "\n")
        counts = index.update()
        assert counts["rebuilt"] is True
        history = index.machine_history("m00")
        assert len(history) == 1
        assert history[0]["verdict"] == "infected"

    def test_torn_sidecar_tail_self_heals(self, tmp_path):
        fleet_dir = str(tmp_path)
        epochs_path = os.path.join(fleet_dir, "epochs.jsonl")
        append_journal(epochs_path, {"type": "fleet-machine", "epoch": 1,
                                     "machine": "m00",
                                     "verdict": "infected"})
        index = JournalIndex(fleet_dir)
        index.update()
        sidecar = index.machines_path
        size = os.path.getsize(sidecar)
        with open(sidecar, "ab") as handle:  # console killed mid-append
            handle.write(b'{"machine": "m01", "trunc')
        reloaded = JournalIndex(fleet_dir)
        reloaded.update()
        assert reloaded.machine_names() == ["m00"]
        assert os.path.getsize(sidecar) >= size

    def test_unreadable_state_json_recovers(self, tmp_path):
        fleet_dir = str(tmp_path)
        append_journal(os.path.join(fleet_dir, "epochs.jsonl"),
                       {"type": "fleet-machine", "epoch": 1,
                        "machine": "m00", "verdict": "clean"})
        index = JournalIndex(fleet_dir)
        index.update()
        with open(index.state_path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        reloaded = JournalIndex(fleet_dir)
        reloaded.update()
        assert reloaded.machine_names() == ["m00"]


class TestCompaction:
    def test_compaction_preserves_retained_queries(self, tmp_path):
        fleet_dir = str(tmp_path)
        epochs_path = os.path.join(fleet_dir, "epochs.jsonl")
        history = [{"verdicts": [{"machine": name, "verdict": "clean",
                                  "findings": 0, "scanned": True,
                                  "escalated": False, "finding_ids": []}
                                 for name in MACHINES],
                    "outbreak": epoch == 2, "closed": True}
                   for epoch in range(1, 6)]
        for __ in write_history(epochs_path, history):
            pass
        index = JournalIndex(fleet_dir)
        index.update()
        retain = 2
        cutoff = 5 - retain + 1
        before = index.query(epoch_min=cutoff)
        result = index.compact(retain)
        assert result["cutoff_epoch"] == cutoff
        assert result["records_after"] < result["records_before"]
        after = index.query(epoch_min=cutoff)
        # Byte offsets moved (the journal shrank) but the answers over
        # the retained range are identical record-for-record.
        strip = lambda rows: [  # noqa: E731
            {k: v for k, v in row.items() if k not in ("start", "end")}
            for row in rows]
        assert strip(after) == strip(before)
        assert index.query(epoch_max=cutoff - 1) == []
        # And a cold index built from the compacted journal agrees.
        fresh = JournalIndex(fleet_dir)
        fresh.rebuild()
        assert strip(fresh.query(epoch_min=cutoff)) == strip(before)

    def test_coordinator_retention_bounds_journal(self, tmp_path):
        machines = build_fleet(size=3, infected=())
        coordinator = FleetCoordinator(
            str(tmp_path), machines, workers=2,
            compact_every=2, retain_epochs=2)
        for __ in range(4):
            coordinator.run_epoch()
        epochs = {extent["epoch"]
                  for extent in coordinator.index.epoch_extents()}
        assert epochs == {3, 4}


class TestAgainstRealFleet:
    def test_status_matches_journal_replay(self, tmp_path):
        machines = build_fleet(size=4, infected=(1, 2))
        coordinator = FleetCoordinator(str(tmp_path), machines,
                                       workers=2)
        coordinator.run_epoch()
        coordinator.run_epoch()
        indexed = fleet_status_from_index(str(tmp_path))
        replayed = fleet_status(str(tmp_path))
        assert indexed == replayed

    def test_cold_index_matches_live_hooked_index(self, tmp_path):
        machines = build_fleet(size=3, infected=(0,))
        coordinator = FleetCoordinator(str(tmp_path), machines,
                                       workers=2)
        coordinator.run_epoch()
        cold = JournalIndex(str(tmp_path))
        cold.update()
        # The write-time hook covers only the epochs journal; queue and
        # baseline state folds in on the live index's next update().
        coordinator.index.update()
        assert index_answers(cold) == index_answers(coordinator.index)

    def test_console_index_off_means_no_sidecars(self, tmp_path):
        machines = build_fleet(size=2, infected=())
        coordinator = FleetCoordinator(str(tmp_path), machines,
                                       workers=1, console_index=False)
        coordinator.run_epoch()
        assert coordinator.index is None
        assert not os.path.exists(str(tmp_path / "index"))
