"""Tests for kernel object layouts and views."""

import pytest

from repro.errors import CorruptRecord, KernelError
from repro.kernel.crashdump import CrashDump, serialize_regions
from repro.kernel.memory import KernelMemory
from repro.kernel.objects import (EprocessView, EthreadView, ModuleTableView,
                                  PebView, allocate_pointer_table,
                                  attach_module_table, attach_peb,
                                  write_eprocess, write_ethread,
                                  write_module_entry, read_module_entry,
                                  write_driver, DriverView,
                                  MODTABLE_MAGIC, PEB_MAGIC)


@pytest.fixture
def memory():
    return KernelMemory()


class TestEprocess:
    def test_fields_roundtrip(self, memory):
        address = write_eprocess(memory, 1234, "example.exe",
                                 "C:\\example.exe")
        view = EprocessView(memory, address)
        assert view.pid == 1234
        assert view.name == "example.exe"
        assert view.image_path == "C:\\example.exe"
        assert view.alive

    def test_empty_image_path(self, memory):
        view = EprocessView(memory, write_eprocess(memory, 4, "System", ""))
        assert view.image_path == ""

    def test_long_name_truncated_to_field(self, memory):
        view = EprocessView(memory,
                            write_eprocess(memory, 8, "n" * 60, ""))
        assert view.name == "n" * 32

    def test_bad_magic_rejected(self, memory):
        address = memory.alloc(128)
        with pytest.raises(CorruptRecord):
            EprocessView(memory, address)

    def test_set_alive(self, memory):
        view = EprocessView(memory, write_eprocess(memory, 8, "p", ""))
        view.set_alive(False)
        assert not view.alive

    def test_links_writable(self, memory):
        view = EprocessView(memory, write_eprocess(memory, 8, "p", ""))
        view.set_links(0xAAAA, 0xBBBB)
        assert view.flink == 0xAAAA
        assert view.blink == 0xBBBB


class TestEthread:
    def test_fields(self, memory):
        owner = write_eprocess(memory, 8, "p", "")
        view = EthreadView(memory, write_ethread(memory, 44, owner))
        assert view.tid == 44
        assert view.owner_process == owner
        assert view.alive

    def test_set_alive(self, memory):
        owner = write_eprocess(memory, 8, "p", "")
        view = EthreadView(memory, write_ethread(memory, 44, owner))
        view.set_alive(False)
        assert not view.alive


class TestPointerTables:
    def test_append_and_entries(self, memory):
        address = allocate_pointer_table(memory, MODTABLE_MAGIC, 2)
        table = ModuleTableView(memory, address)
        entry = write_module_entry(memory, "C:\\a.dll")
        new_address = table.append(entry)
        assert new_address == address
        assert ModuleTableView(memory, address).entries() == [entry]

    def test_growth_relocates(self, memory):
        address = allocate_pointer_table(memory, MODTABLE_MAGIC, 1)
        table = ModuleTableView(memory, address)
        first = write_module_entry(memory, "a")
        second = write_module_entry(memory, "b")
        address = table.append(first)
        address = ModuleTableView(memory, address).append(second)
        grown = ModuleTableView(memory, address)
        assert grown.entries() == [first, second]
        assert grown.capacity >= 2

    def test_remove(self, memory):
        address = allocate_pointer_table(memory, MODTABLE_MAGIC, 4)
        table = ModuleTableView(memory, address)
        entry = write_module_entry(memory, "x")
        table.append(entry)
        table.remove(entry)
        assert table.entries() == []

    def test_remove_missing_rejected(self, memory):
        address = allocate_pointer_table(memory, MODTABLE_MAGIC, 4)
        with pytest.raises(KernelError):
            ModuleTableView(memory, address).remove(0xDEAD)

    def test_magic_enforced(self, memory):
        address = allocate_pointer_table(memory, PEB_MAGIC, 4)
        with pytest.raises(CorruptRecord):
            ModuleTableView(memory, address)


class TestModuleEntries:
    def test_roundtrip(self, memory):
        entry = write_module_entry(memory, "C:\\Windows\\x.dll")
        assert read_module_entry(memory, entry) == "C:\\Windows\\x.dll"

    def test_peb_blanking(self, memory):
        peb_address = allocate_pointer_table(memory, PEB_MAGIC, 4)
        peb = PebView(memory, peb_address)
        peb.append(write_module_entry(memory, "C:\\good.dll"))
        peb.append(write_module_entry(memory, "C:\\vanquish.dll"))
        blanked = peb.blank_module_path("vanquish")
        assert blanked == 1
        assert peb.module_paths() == ["C:\\good.dll", ""]

    def test_blanking_no_match(self, memory):
        peb = PebView(memory, allocate_pointer_table(memory, PEB_MAGIC, 4))
        assert peb.blank_module_path("absent") == 0


class TestDumpImmutability:
    def test_views_over_dump_are_read_only(self, memory):
        address = write_eprocess(memory, 8, "p", "")
        blob = serialize_regions(list(memory.regions()), 0, 0, 0)
        dump = CrashDump(blob)
        view = EprocessView(dump, address)
        assert view.pid == 8
        with pytest.raises(KernelError):
            view.set_alive(False)

    def test_peb_blanking_rejected_on_dump(self, memory):
        peb_address = allocate_pointer_table(memory, PEB_MAGIC, 4)
        blob = serialize_regions(list(memory.regions()), 0, 0, 0)
        dump = CrashDump(blob)
        with pytest.raises(KernelError):
            PebView(dump, peb_address).blank_module_path("x")


class TestDrivers:
    def test_driver_roundtrip(self, memory):
        address = write_driver(memory, "hxdefdrv.sys")
        assert DriverView(memory, address).name == "hxdefdrv.sys"
