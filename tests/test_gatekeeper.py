"""Tests for the Gatekeeper ASEP monitor and its composition with
GhostBuster."""

import pytest

from repro.core import GatekeeperMonitor, GhostBuster, HookChange
from repro.ghostware import Berbew, HackerDefender
from repro.machine import RUN_KEY


class TestGatekeeper:
    def test_quiet_machine_no_changes(self, booted):
        monitor = GatekeeperMonitor(booted)
        changes = monitor.watch(lambda: None)
        assert changes == []

    def test_new_visible_hook_caught(self, booted):
        monitor = GatekeeperMonitor(booted)
        changes = monitor.watch(
            lambda: booted.registry.set_value(RUN_KEY, "newapp",
                                              "\\app.exe"))
        assert len(changes) == 1
        assert changes[0].change is HookChange.ADDED
        assert changes[0].name == "newapp"

    def test_removed_hook_caught(self, booted):
        booted.registry.set_value(RUN_KEY, "oldapp", "\\app.exe")
        monitor = GatekeeperMonitor(booted)
        changes = monitor.watch(
            lambda: booted.registry.delete_value(RUN_KEY, "oldapp"))
        assert changes[0].change is HookChange.REMOVED

    def test_non_hiding_malware_caught_at_install(self, booted):
        """Berbew does not hide its Run hook: Gatekeeper's cross-time
        watch flags the installation immediately."""
        monitor = GatekeeperMonitor(booted)
        changes = monitor.watch(lambda: Berbew().install(booted))
        assert any(change.name == "berbew_loader" for change in changes)

    def test_hiding_malware_evades_gatekeeper(self, booted):
        """Hacker Defender hides its hooks from the API — Gatekeeper's
        after-checkpoint never sees them, so the watch stays silent."""
        monitor = GatekeeperMonitor(booted)
        changes = monitor.watch(lambda: HackerDefender().install(booted))
        assert all("hackerdefender" not in change.name.casefold()
                   for change in changes)

    def test_composition_covers_both_classes(self, booted):
        """Gatekeeper catches the non-hider; GhostBuster catches the
        hider; together nothing escapes."""
        monitor = GatekeeperMonitor(booted)

        def infect():
            Berbew().install(booted)
            HackerDefender().install(booted)

        gatekeeper_changes = monitor.watch(infect)
        ghostbuster_report = GhostBuster(booted).inside_scan(
            resources=("registry",))

        gatekeeper_names = {change.name for change in gatekeeper_changes}
        ghostbuster_names = {finding.entry.name for finding in
                             ghostbuster_report.hidden_hooks()}
        assert "berbew_loader" in gatekeeper_names
        assert "HackerDefender100" in ghostbuster_names

    def test_describe(self, booted):
        monitor = GatekeeperMonitor(booted)
        changes = monitor.watch(
            lambda: booted.registry.set_value(RUN_KEY, "x", "\\x.exe"))
        assert "added" in changes[0].describe()
