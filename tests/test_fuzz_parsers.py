"""Fuzz regression: raw parsers never leak implementation exceptions.

The exception-taxonomy contract: whatever bytes the disk serves, the
raw parsers raise only :class:`~repro.errors.ReproError` subclasses
(``CorruptRecord`` / ``PermanentCorruption`` / ``HiveFormatError`` and
friends) — never a bare ``struct.error``, ``IndexError``, or
``UnicodeDecodeError`` from their internals.  Seeded ``random.Random``
keeps every run identical, so a failure here is a plain regression,
not flake.
"""

from __future__ import annotations

import random

import pytest

from repro.disk import Disk, DiskGeometry
from repro.errors import ReproError
from repro.ntfs.mft_parser import MftParser, parse_volume
from repro.ntfs.records import MftRecord
from repro.registry import cells
from repro.registry.hive_parser import HiveParser, parse_hive

_ROUNDS = 200


def _blobs(seed: int, size_range=(0, 4096)):
    rng = random.Random(seed)
    for _ in range(_ROUNDS):
        yield rng.randbytes(rng.randrange(*size_range))


def _mutations(seed: int, template: bytes):
    """The template with a few random bytes stomped — near-valid input."""
    rng = random.Random(seed)
    for _ in range(_ROUNDS):
        blob = bytearray(template)
        for _ in range(rng.randrange(1, 8)):
            blob[rng.randrange(len(blob))] = rng.randrange(256)
        yield bytes(blob)


class TestMftFuzz:
    def test_record_from_random_bytes(self):
        for blob in _blobs(seed=1):
            try:
                MftRecord.from_bytes(blob)
            except ReproError:
                pass

    def test_record_from_mutated_valid_record(self):
        from repro.ntfs.records import DataAttribute, FileName
        record = MftRecord(5, file_name=FileName(5, "victim.txt"),
                           data=DataAttribute.make_resident(b"payload"))
        template = record.to_bytes()
        MftRecord.from_bytes(template)   # sanity: the template parses
        for blob in _mutations(seed=2, template=template):
            try:
                MftRecord.from_bytes(blob)
            except ReproError:
                pass

    def test_parser_over_random_disk(self):
        rng = random.Random(3)
        for _ in range(10):
            disk = Disk(DiskGeometry.from_megabytes(1))
            disk.write_bytes(0, rng.randbytes(8192))
            try:
                parse_volume(disk)
            except ReproError:
                pass

    def test_parser_over_zero_disk(self):
        disk = Disk(DiskGeometry.from_megabytes(1))
        with pytest.raises(ReproError):
            MftParser(disk.read_bytes)


class TestHiveFuzz:
    def test_hive_from_random_bytes(self):
        for blob in _blobs(seed=4):
            try:
                parse_hive(blob)
            except ReproError:
                pass

    def test_hive_from_mutated_valid_hive(self):
        from repro.registry.hive import Hive
        hive = Hive("HKLM\\SOFTWARE")
        key = hive.create_key("Microsoft\\Windows\\CurrentVersion\\Run")
        key.set_value("updater", "\\Windows\\updater.exe")
        template = hive.serialize()
        # Sanity: the unmutated template parses.
        parse_hive(template)
        hits = 0
        for blob in _mutations(seed=5, template=template):
            try:
                HiveParser(blob).parse()
            except ReproError:
                hits += 1
        assert hits > 0   # the mutations do exercise the error paths

    def test_cell_helpers_from_random_bytes(self):
        rng = random.Random(6)
        for _ in range(_ROUNDS):
            blob = rng.randbytes(rng.randrange(0, 128))
            attempts = ((cells.read_cell, (blob, rng.randrange(0, 160))),
                        (cells.unpack_nk, (blob,)),
                        (cells.unpack_vk, (blob,)),
                        (cells.unpack_offset_list, (blob, cells.LF_MAGIC)),
                        (cells.unpack_db, (blob,)))
            for unpack, args in attempts:
                try:
                    unpack(*args)
                except ReproError:
                    pass
