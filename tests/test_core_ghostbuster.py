"""Tests for the GhostBuster facade: inside and outside workflows."""

import pytest

from repro.core import GhostBuster
from repro.ghostware import (Aphex, Berbew, FuRootkit, HackerDefender,
                             ProBotSE, Urbin, Vanquish)
from repro.workloads import attach_standard_services


class TestInsideScan:
    def test_clean_machine_is_clean(self, booted):
        report = GhostBuster(booted, advanced=True).inside_scan()
        assert report.is_clean
        assert report.findings == []

    def test_hacker_defender_fully_detected(self, booted):
        HackerDefender().install(booted)
        report = GhostBuster(booted).inside_scan()
        files = {finding.entry.path for finding in report.hidden_files()}
        assert {"\\Windows\\hxdef100.exe", "\\Windows\\hxdefdrv.sys",
                "\\Windows\\hxdef100.ini"} <= files
        hooks = {finding.entry.name for finding in report.hidden_hooks()}
        assert {"HackerDefender100", "HackerDefenderDrv100"} <= hooks
        processes = {finding.entry.name
                     for finding in report.hidden_processes()}
        assert "hxdef100.exe" in processes

    def test_selective_resources(self, booted):
        HackerDefender().install(booted)
        report = GhostBuster(booted).inside_scan(resources=("registry",))
        assert report.hidden_hooks()
        assert report.hidden_files() == []
        assert list(report.durations) == ["registry"]

    def test_fu_needs_advanced_mode(self, booted):
        fu = FuRootkit()
        fu.install(booted)
        victim = booted.start_process("\\Windows\\explorer.exe",
                                      name="victim.exe")
        fu.hide_process(booted, victim.pid)
        standard = GhostBuster(booted, advanced=False).inside_scan(
            resources=("processes",))
        advanced = GhostBuster(booted, advanced=True).inside_scan(
            resources=("processes",))
        assert standard.hidden_processes() == []
        names = {finding.entry.name
                 for finding in advanced.hidden_processes()}
        assert "victim.exe" in names

    def test_findings_deduplicated_across_truths(self, booted):
        """Advanced mode diffs against two truths; one finding per ghost."""
        HackerDefender().install(booted)
        report = GhostBuster(booted, advanced=True).inside_scan(
            resources=("processes",))
        names = [finding.entry.name
                 for finding in report.hidden_processes()]
        assert names.count("hxdef100.exe") == 1

    def test_durations_recorded_per_resource(self, booted):
        report = GhostBuster(booted).inside_scan()
        assert set(report.durations) == {"files", "registry", "processes",
                                         "modules"}
        assert all(value > 0 for value in report.durations.values())

    def test_multi_infection(self, booted):
        for ghost_cls in (HackerDefender, Urbin, Vanquish, Aphex,
                          ProBotSE, Berbew):
            ghost_cls().install(booted)
        report = GhostBuster(booted, advanced=True).inside_scan()
        assert len(report.hidden_files()) >= 9
        assert len(report.hidden_hooks()) >= 6
        assert len(report.hidden_processes()) >= 2


class TestOutsideScan:
    def test_detects_api_hiders(self, booted):
        HackerDefender().install(booted)
        report = GhostBuster(booted).outside_scan(
            resources=("files", "registry"))
        files = {finding.entry.path for finding in report.hidden_files()}
        assert "\\Windows\\hxdef100.exe" in files
        hooks = {finding.entry.name for finding in report.hidden_hooks()}
        assert "HackerDefender100" in hooks

    def test_process_scan_via_dump(self, booted):
        HackerDefender().install(booted)
        report = GhostBuster(booted).outside_scan(resources=("processes",))
        names = {finding.entry.name
                 for finding in report.hidden_processes()}
        assert "hxdef100.exe" in names

    def test_reboots_back_by_default(self, booted):
        report = GhostBuster(booted).outside_scan(resources=("files",))
        assert booted.powered_on
        assert report.durations["winpe-boot"] > 0

    def test_reboot_after_false_leaves_off(self, booted):
        GhostBuster(booted).outside_scan(resources=("files",),
                                         reboot_after=False)
        assert not booted.powered_on

    def test_background_churn_classified_as_noise(self, booted):
        attach_standard_services(booted)
        report = GhostBuster(booted).outside_scan(resources=("files",),
                                                  background_gap=60)
        assert report.is_clean
        assert len(report.noise()) == 2

    def test_winpe_boot_charged(self, booted):
        before = booted.clock.now()
        GhostBuster(booted).outside_scan(resources=("files",))
        assert booted.clock.now() - before > 90   # boot + scans

    def test_crash_dump_written_to_volume(self, booted):
        gb = GhostBuster(booted)
        path = gb.write_crash_dump()
        assert booted.volume.exists(path)
        assert booted.volume.stat(path).size > 0


class TestInsideScanRaceWindow:
    def test_default_has_no_window(self, booted):
        attach_standard_services(booted)
        report = GhostBuster(booted).inside_scan(resources=("files",))
        assert report.findings == []

    def test_widened_window_shows_race_fps(self, booted):
        """Section 2's caveat: files created between the high- and
        low-level scans appear as (benign) diff entries."""
        attach_standard_services(booted)
        ghostbuster = GhostBuster(booted, interleave_gap=60.0)
        report = ghostbuster.inside_scan(resources=("files",))
        assert len(report.findings) >= 1       # the AV log landed mid-scan
        assert report.is_clean                 # ...and was classified noise
        assert all(finding.is_noise for finding in report.findings)

    def test_race_does_not_mask_real_hiding(self, booted):
        attach_standard_services(booted)
        HackerDefender().install(booted)
        report = GhostBuster(booted, interleave_gap=60.0).inside_scan(
            resources=("files",))
        files = {finding.entry.path for finding in report.hidden_files()}
        assert "\\Windows\\hxdef100.exe" in files
