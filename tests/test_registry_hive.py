"""Tests for the in-memory hive tree and serialization."""

import pytest

from repro.errors import KeyNotFound, RegistryError, ValueNotFound
from repro.registry.hive import (Hive, RegType, decode_value, encode_value)


@pytest.fixture
def hive():
    return Hive("SOFTWARE")


class TestValueEncoding:
    def test_sz_roundtrip(self):
        raw = encode_value(RegType.SZ, "hello")
        assert decode_value(RegType.SZ, raw, win32=True) == "hello"

    def test_sz_win32_truncates_at_nul(self):
        raw = "visible\x00secret".encode("utf-16-le")
        assert decode_value(RegType.SZ, raw, win32=True) == "visible"
        assert "secret" in decode_value(RegType.SZ, raw, win32=False)

    def test_dword(self):
        raw = encode_value(RegType.DWORD, 0xDEADBEEF)
        assert decode_value(RegType.DWORD, raw, win32=True) == 0xDEADBEEF

    def test_short_dword_reads_zero(self):
        assert decode_value(RegType.DWORD, b"\x01", win32=True) == 0

    def test_binary(self):
        raw = encode_value(RegType.BINARY, b"\x00\x01\x02")
        assert decode_value(RegType.BINARY, raw, win32=True) == \
            b"\x00\x01\x02"

    def test_multi_sz(self):
        raw = encode_value(RegType.MULTI_SZ, ["a", "b", "c"])
        assert decode_value(RegType.MULTI_SZ, raw, win32=True) == \
            ["a", "b", "c"]

    def test_type_mismatch_rejected(self):
        with pytest.raises(RegistryError):
            encode_value(RegType.SZ, 42)
        with pytest.raises(RegistryError):
            encode_value(RegType.DWORD, "nope")


class TestKeyTree:
    def test_create_and_open(self, hive):
        hive.create_key("A\\B\\C")
        assert hive.open_key("a\\b\\c").name == "C"

    def test_open_missing_raises(self, hive):
        with pytest.raises(KeyNotFound):
            hive.open_key("Nope")

    def test_create_subkey_idempotent(self, hive):
        first = hive.root.create_subkey("K")
        second = hive.root.create_subkey("k")
        assert first is second

    def test_delete_subkey(self, hive):
        hive.create_key("Gone")
        hive.root.delete_subkey("gone")
        assert not hive.root.has_subkey("Gone")

    def test_delete_missing_subkey(self, hive):
        with pytest.raises(KeyNotFound):
            hive.root.delete_subkey("absent")

    def test_subkeys_sorted(self, hive):
        for name in ("zz", "aa", "MM"):
            hive.root.create_subkey(name)
        assert [k.name for k in hive.root.subkeys()] == ["aa", "MM", "zz"]


class TestValues:
    def test_set_get(self, hive):
        hive.root.set_value("Name", "data")
        assert hive.root.value("name").data == "data"

    def test_type_inference(self, hive):
        assert hive.root.set_value("s", "x").reg_type == RegType.SZ
        assert hive.root.set_value("d", 5).reg_type == RegType.DWORD
        assert hive.root.set_value("b", b"x").reg_type == RegType.BINARY
        assert hive.root.set_value("m", ["x"]).reg_type == RegType.MULTI_SZ

    def test_missing_value(self, hive):
        with pytest.raises(ValueNotFound):
            hive.root.value("absent")

    def test_delete_value(self, hive):
        hive.root.set_value("v", "x")
        hive.root.delete_value("V")
        assert not hive.root.has_value("v")

    def test_raw_override_diverges_views(self, hive):
        corrupted = "clean.dll\x00GARBAGE".encode("utf-16-le")
        value = hive.root.set_value("AppInit_DLLs", "clean.dll",
                                    RegType.SZ, raw_override=corrupted)
        assert value.win32_data() == "clean.dll"
        assert "GARBAGE" in str(value.native_data())


class TestSerialization:
    def test_roundtrip_structure(self, hive):
        key = hive.create_key("Microsoft\\Windows\\Run")
        key.set_value("loader", "c:\\x.exe")
        hive.create_key("Classes").set_value("count", 3)
        parsed = Hive.deserialize(hive.serialize())
        run = parsed.open_key("Microsoft\\Windows\\Run")
        assert str(run.value("loader").native_data()) == "c:\\x.exe"
        assert parsed.open_key("Classes").value("count").native_data() == 3

    def test_roundtrip_nul_names(self, hive):
        hive.root.set_value("run\x00hidden", "evil.exe")
        parsed = Hive.deserialize(hive.serialize())
        assert parsed.root.has_value("run\x00hidden")

    def test_roundtrip_long_names(self, hive):
        long_name = "L" * 300
        hive.root.set_value(long_name, "x")
        parsed = Hive.deserialize(hive.serialize())
        assert parsed.root.has_value(long_name)

    def test_roundtrip_empty_hive(self, hive):
        parsed = Hive.deserialize(hive.serialize())
        assert parsed.root.subkey_count() == 0

    def test_hive_name_preserved(self, hive):
        assert Hive.deserialize(hive.serialize()).name == "SOFTWARE"

    def test_large_value_external_cell(self, hive):
        hive.root.set_value("big", b"\xab" * 5000)
        parsed = Hive.deserialize(hive.serialize())
        assert parsed.root.value("big").raw_bytes() == b"\xab" * 5000

    def test_timestamp_preserved(self, hive):
        hive.create_key("Stamped").timestamp_us = 123456
        parsed = Hive.deserialize(hive.serialize())
        assert parsed.open_key("Stamped").timestamp_us == 123456
