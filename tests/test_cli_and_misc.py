"""Tests for the CLI entry point, dir attribute handling, and the
vmscan snapshot serialization."""

import pytest

from repro.__main__ import main as cli_main
from repro.core.snapshot import FileEntry, ResourceType, ScanSnapshot
from repro.core.vmscan import _deserialize_snapshot, _serialize_snapshot
from repro.ntfs.constants import DOS_FLAG_HIDDEN, DOS_FLAG_SYSTEM
from repro.tools import dir_s_b


class TestCli:
    @pytest.mark.parametrize("command", ["demo", "matrix", "sweep",
                                         "unix"])
    def test_commands_run_clean(self, command, capsys):
        assert cli_main([command]) == 0
        assert capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["bogus"])


class TestDirAttributeHandling:
    def test_plain_dir_skips_hidden_attribute(self, booted):
        booted.volume.create_file("\\Windows\\stash.db", b"",
                                  dos_flags=DOS_FLAG_HIDDEN)
        plain = dir_s_b(booted, "\\Windows", show_hidden=False)
        full = dir_s_b(booted, "\\Windows", show_hidden=True)
        assert not any("stash.db" in line for line in plain)
        assert any("stash.db" in line for line in full)

    def test_hidden_system_dir_subtree_skipped(self, booted):
        booted.volume.create_directories("\\Covert")
        # mark the directory itself hidden+system
        record_no = booted.volume.record_for_path("\\Covert")
        record = booted.volume._records[record_no]
        record.std_info.dos_flags = DOS_FLAG_HIDDEN | DOS_FLAG_SYSTEM
        booted.volume._flush(record)
        booted.volume.create_file("\\Covert\\inside.txt", b"")
        plain = dir_s_b(booted, "\\", show_hidden=False)
        assert not any("inside.txt" in line for line in plain)

    def test_attribute_files_are_not_diff_findings(self, booted):
        """GhostBuster's high scan uses /a semantics: the attribute trick
        never produces a cross-view finding (it isn't API hiding)."""
        from repro.core import GhostBuster
        booted.volume.create_file("\\Windows\\stash.db", b"",
                                  dos_flags=DOS_FLAG_HIDDEN)
        report = GhostBuster(booted).inside_scan(resources=("files",))
        assert report.is_clean


class TestVmscanSerialization:
    def _snapshot(self):
        entries = [FileEntry("\\a\\b.txt", "b.txt", False, 12),
                   FileEntry("\\a", "a", True, 0),
                   FileEntry("\\weird name.txt", "weird name.txt",
                             False, 0)]
        return ScanSnapshot(ResourceType.FILE, view="test",
                            entries=entries)

    def test_roundtrip(self):
        original = self._snapshot()
        blob = _serialize_snapshot(original)
        restored = _deserialize_snapshot(blob, view="restored")
        assert set(restored.identities()) == set(original.identities())
        restored_entry = restored.identities()["\\a\\b.txt"]
        assert restored_entry.size == 12
        assert restored_entry.is_directory is False

    def test_empty_snapshot(self):
        empty = ScanSnapshot(ResourceType.FILE, view="x")
        blob = _serialize_snapshot(empty)
        assert _deserialize_snapshot(blob, "y").entries == []

    def test_directory_flag_preserved(self):
        restored = _deserialize_snapshot(
            _serialize_snapshot(self._snapshot()), "v")
        assert restored.identities()["\\a"].is_directory is True
