"""End-to-end chaos acceptance: detection survives injected faults.

The robustness contract in one sweep: five ghostware families plus a
clean control machine scanned through the RIS network-boot path while a
5% fault plan fires transient I/O errors, torn reads, corrupt hive
blobs, spurious ``STATUS_*`` failures, and transport drops — and the
pipeline must (a) raise nothing to the caller, (b) detect every
infected machine exactly as a fault-free sweep does, and (c) account
for anything it *couldn't* recover via quarantine + taxonomy instead of
silence.
"""

from __future__ import annotations

import pytest

from repro.core import GhostBuster, RisServer
from repro.core.baseline import BaselineStore
from repro.core.diff import ScanConfidence
from repro.errors import ReproError
from repro.faults.plan import (FaultPlan, FaultSpec, SITE_DISK_READ,
                               SITE_MFT_PARSE, SITE_RIS_TRANSPORT)
from repro.ghostware import (Aphex, HackerDefender, ProBotSE, Urbin,
                             Vanquish)
from repro.machine import Machine

FAMILIES = (HackerDefender, Aphex, Urbin, Vanquish, ProBotSE)


def _fleet():
    machines = []
    for index, family in enumerate(FAMILIES):
        machine = Machine(f"victim-{index:02d}", disk_mb=256,
                          max_records=8192)
        machine.boot()
        family().install(machine)
        machines.append(machine)
    control = Machine("control-clean", disk_mb=256, max_records=8192)
    control.boot()
    machines.append(control)
    return machines


def _identities(report):
    return sorted((f.resource_type.value, str(f.entry.identity))
                  for f in report.findings if not f.is_noise)


class TestChaosSweep:
    def test_sweep_under_5pct_faults_matches_fault_free(self):
        baseline = RisServer().sweep(_fleet(), max_workers=2)
        assert not baseline.errors

        plan = FaultPlan.default(seed=2026, rate=0.05)
        chaotic = RisServer(fault_plan=plan).sweep(_fleet(), max_workers=2)

        # (a) nothing leaked, nothing quarantined at this rate
        assert not chaotic.errors
        assert not chaotic.quarantined
        # (b) recall unchanged: same infected set, same finding identities
        assert chaotic.infected_machines == baseline.infected_machines
        assert len(chaotic.infected_machines) == len(FAMILIES)
        for name in baseline.reports:
            assert _identities(chaotic.reports[name]) == \
                _identities(baseline.reports[name])
        # (c) the chaos was real, and the log proves it
        assert plan.fired_count() > 0
        assert plan.sequence_digest() != FaultPlan.default(
            seed=2026, rate=0.05).sequence_digest()

    def test_machine_death_quarantined_with_taxonomy(self):
        plan = FaultPlan(seed=9, specs=(
            FaultSpec(SITE_RIS_TRANSPORT, mode="always",
                      kinds=("machine_death",), mean_delay_s=0.0,
                      scopes=("victim-01",)),))
        result = RisServer(fault_plan=plan, max_retries=1).sweep(
            _fleet(), max_workers=2)

        assert "victim-01" in result.quarantined
        assert result.quarantined["victim-01"] == "MachineUnavailable"
        assert result.reports["victim-01"].mode == "ris-error"
        assert "QUARANTINED" in result.summary()
        # The dead machine burned its retry budget...
        assert result.retry_counts.get("victim-01", 0) >= 1
        # ...without costing the rest of the fleet anything.
        assert sorted(result.errors) == ["victim-01"]
        assert len(result.infected_machines) == len(FAMILIES) - 1

    def test_transient_death_recovers_on_retry(self):
        plan = FaultPlan(seed=9, specs=(
            FaultSpec(SITE_RIS_TRANSPORT, mode="one_shot",
                      kinds=("machine_death",), mean_delay_s=0.0,
                      scopes=("victim-00",)),))
        result = RisServer(fault_plan=plan).sweep(_fleet())

        # One death, then the re-dispatch (with a fresh boot) succeeds.
        assert not result.errors
        assert result.retry_counts.get("victim-00") == 1
        assert "victim-00" in result.infected_machines


class TestChaosDeltaInterplay:
    """Faults landing mid-delta-patch must degrade to a full reparse,
    never to a wrong (or missing) verdict."""

    def _seeded_delta(self, tmp_path, label, fault_plan=None,
                      max_workers=1):
        """Seed baselines fault-free, mutate two machines, delta-sweep."""
        fleet = _fleet()
        store = BaselineStore(str(tmp_path / label))
        RisServer().sweep(fleet, mode="full", baseline_store=store)
        fleet[0].volume.create_file("\\Temp\\delta-drop.bin", b"payload")
        fleet[3].volume.create_file("\\Temp\\delta-drop.bin", b"payload")
        server = RisServer(fault_plan=fault_plan)
        return server.sweep(fleet, mode="delta", baseline_store=store,
                            max_workers=max_workers)

    def test_delta_sweep_under_5pct_faults_matches_fault_free(
            self, tmp_path):
        reference = self._seeded_delta(tmp_path, "reference")
        plan = FaultPlan.default(seed=2027, rate=0.05)
        chaotic = self._seeded_delta(tmp_path, "chaotic",
                                     fault_plan=plan, max_workers=2)

        assert not chaotic.errors
        assert chaotic.infected_machines == reference.infected_machines
        assert sorted(chaotic.delta_skipped) == \
            sorted(reference.delta_skipped)
        for name in reference.reports:
            assert _identities(chaotic.reports[name]) == \
                _identities(reference.reports[name])
        assert plan.fired_count() > 0

    def test_torn_read_mid_patch_degrades_to_full_reparse(self,
                                                          tmp_path):
        # A torn read on the one re-scanned machine bumps the disk
        # generation outside the write path; the journal refuses
        # coverage across the gap and the rescan must cold-parse — with
        # the verdict identical to the fault-free rescan.
        reference = self._seeded_delta(tmp_path, "ref-torn")
        plan = FaultPlan(seed=11, specs=(
            FaultSpec(SITE_DISK_READ, mode="one_shot",
                      kinds=("torn_read",), scopes=("victim-00",)),))
        chaotic = self._seeded_delta(tmp_path, "torn", fault_plan=plan)

        assert plan.fired_count() == 1
        assert not chaotic.errors
        assert chaotic.infected_machines == reference.infected_machines
        assert _identities(chaotic.reports["victim-00"]) == \
            _identities(reference.reports["victim-00"])

    def test_parse_fault_mid_patch_self_heals(self, tmp_path):
        reference = self._seeded_delta(tmp_path, "ref-parse")
        plan = FaultPlan(seed=13, specs=(
            FaultSpec(SITE_MFT_PARSE, mode="one_shot",
                      kinds=("transient",), scopes=("victim-03",)),))
        chaotic = self._seeded_delta(tmp_path, "parse", fault_plan=plan)

        assert not chaotic.errors
        assert chaotic.infected_machines == reference.infected_machines
        assert _identities(chaotic.reports["victim-03"]) == \
            _identities(reference.reports["victim-03"])


class TestGracefulDegradation:
    def test_failed_layer_yields_partial_report(self, monkeypatch):
        from repro.core.scanners import files as file_scans

        def broken(machine, **kwargs):
            raise ReproError("scanner hardware gave out")

        monkeypatch.setattr(file_scans, "low_level_file_scan", broken)
        machine = Machine("degraded-pc", disk_mb=256, max_records=8192)
        machine.boot()
        HackerDefender().install(machine)

        report = GhostBuster(machine).inside_scan()

        assert report.confidence["files"] is ScanConfidence.FAILED
        assert "scanner hardware gave out" in report.layer_errors["files"]
        assert report.confidence["registry"] is ScanConfidence.FULL
        assert not report.is_complete
        assert "files" in report.degraded_layers()
        assert "partial evidence" in report.summary()
        # The surviving layers still convict the machine.
        assert not report.is_clean

    def test_clean_scan_is_complete_and_full(self):
        machine = Machine("healthy-pc", disk_mb=256, max_records=8192)
        machine.boot()
        report = GhostBuster(machine).inside_scan()
        assert report.is_complete
        assert report.rounds == 1
        assert all(value is ScanConfidence.FULL
                   for value in report.confidence.values())
        assert not report.layer_errors


class TestScanUntilStable:
    def test_phantom_finding_dropped_by_intersection(self, monkeypatch):
        from repro.core import ghostbuster as gb_module
        from repro.core.scanners import files as file_scans
        from repro.core.snapshot import FileEntry

        real_scan = file_scans.low_level_file_scan
        calls = {"n": 0}

        def glitchy(machine, **kwargs):
            snapshot = real_scan(machine, **kwargs)
            calls["n"] += 1
            if calls["n"] == 1:
                # A file that "appeared hidden" only in round one — the
                # kind of one-round artifact a mid-scan write produces.
                snapshot.entries.append(FileEntry(
                    "\\Temp\\phantom-9f3.dat", "phantom-9f3.dat",
                    False, 64))
            return snapshot

        monkeypatch.setattr(gb_module.file_scans,
                            "low_level_file_scan", glitchy)
        machine = Machine("jittery-pc", disk_mb=256, max_records=8192)
        machine.boot()
        HackerDefender().install(machine)

        report = GhostBuster(machine, stabilize_rounds=3).inside_scan(
            resources=("files",))

        paths = [f.entry.path for f in report.findings]
        assert not any("phantom" in path for path in paths)
        assert report.rounds >= 2
        # The genuine infection survives the intersection.
        assert not report.is_clean

    def test_stable_scan_exits_early(self):
        machine = Machine("stable-pc", disk_mb=256, max_records=8192)
        machine.boot()
        HackerDefender().install(machine)

        single = GhostBuster(machine).inside_scan(resources=("files",))
        stabilized = GhostBuster(machine, stabilize_rounds=5).inside_scan(
            resources=("files",))

        assert _identities(stabilized) == _identities(single)
        # Two agreeing rounds end the loop; five were never needed.
        assert stabilized.rounds == 2

    def test_single_round_report_is_unchanged(self):
        machine = Machine("classic-pc", disk_mb=256, max_records=8192)
        machine.boot()
        HackerDefender().install(machine)
        report = GhostBuster(machine, stabilize_rounds=1).inside_scan()
        assert report.rounds == 1
        assert not report.is_clean
