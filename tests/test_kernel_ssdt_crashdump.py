"""Tests for the SSDT and crash dumps."""

import pytest

from repro.errors import CorruptRecord, KernelError
from repro.kernel import Kernel
from repro.kernel.crashdump import CrashDump, serialize_regions, write_dump
from repro.kernel.ssdt import ServiceDispatchTable, Syscall


class TestSsdt:
    def test_install_and_dispatch(self):
        table = ServiceDispatchTable()
        table.install(Syscall.READ_FILE, lambda pid, path: b"data")
        assert table.dispatch(Syscall.READ_FILE)(4, "\\x") == b"data"

    def test_dispatch_missing(self):
        with pytest.raises(KernelError):
            ServiceDispatchTable().dispatch(Syscall.READ_FILE)

    def test_hook_wraps_current(self):
        table = ServiceDispatchTable()
        table.install(Syscall.READ_FILE, lambda pid, path: b"truth")
        table.hook(Syscall.READ_FILE,
                   lambda original: lambda pid, path: b"lie")
        assert table.dispatch(Syscall.READ_FILE)(4, "\\x") == b"lie"

    def test_hook_returns_displaced_handler(self):
        table = ServiceDispatchTable()
        original = lambda pid: "o"                      # noqa: E731
        table.install(Syscall.READ_FILE, original)
        displaced = table.hook(Syscall.READ_FILE,
                               lambda cur: lambda pid: "h")
        assert displaced is original

    def test_restore_original(self):
        table = ServiceDispatchTable()
        table.install(Syscall.READ_FILE, lambda pid: "o")
        table.hook(Syscall.READ_FILE, lambda cur: lambda pid: "h")
        table.restore_original(Syscall.READ_FILE)
        assert table.dispatch(Syscall.READ_FILE)(4) == "o"

    def test_hooked_entries_detection(self):
        table = ServiceDispatchTable()
        table.install(Syscall.READ_FILE, lambda pid: "o")
        table.install(Syscall.WRITE_FILE, lambda pid: "w")
        assert table.hooked_entries() == []
        table.hook(Syscall.READ_FILE, lambda cur: lambda pid: "h")
        assert table.hooked_entries() == [Syscall.READ_FILE]

    def test_restore_never_installed_rejected(self):
        with pytest.raises(KernelError):
            ServiceDispatchTable().restore_original(Syscall.READ_FILE)

    def test_double_hook_unwinds_in_order(self):
        table = ServiceDispatchTable()
        table.install(Syscall.READ_FILE, lambda pid: ["base"])
        table.hook(Syscall.READ_FILE,
                   lambda cur: lambda pid: cur(pid) + ["first"])
        table.hook(Syscall.READ_FILE,
                   lambda cur: lambda pid: cur(pid) + ["second"])
        assert table.dispatch(Syscall.READ_FILE)(4) == \
            ["base", "first", "second"]


class TestCrashDump:
    def test_roundtrip_regions(self):
        blob = serialize_regions([(0x1000, b"AAAA"), (0x2000, b"BB")],
                                 1, 2, 3)
        dump = CrashDump(blob)
        assert dump.read(0x1000, 4) == b"AAAA"
        assert dump.read(0x2001, 1) == b"B"
        assert dump.active_process_head == 1
        assert dump.thread_table_address == 2
        assert dump.driver_list_head == 3
        assert dump.region_count() == 2

    def test_unknown_address_rejected(self):
        dump = CrashDump(serialize_regions([(0x1000, b"AAAA")], 0, 0, 0))
        with pytest.raises(KernelError):
            dump.read(0x9000, 4)

    def test_cross_region_read_rejected(self):
        dump = CrashDump(serialize_regions([(0x1000, b"AAAA")], 0, 0, 0))
        with pytest.raises(KernelError):
            dump.read(0x1002, 8)

    def test_bad_magic(self):
        with pytest.raises(CorruptRecord):
            CrashDump(b"XXXX" + b"\x00" * 64)

    def test_truncated_dump(self):
        blob = serialize_regions([(0x1000, b"A" * 100)], 0, 0, 0)
        with pytest.raises(CorruptRecord):
            CrashDump(blob[:40])

    def test_live_kernel_dump_contains_processes(self):
        kernel = Kernel()
        kernel.create_process("System")
        kernel.create_process("app.exe", "\\app.exe")
        dump = CrashDump(write_dump(kernel))
        from repro.kernel.process_list import walk_process_list
        from repro.kernel.objects import EprocessView
        names = [EprocessView(dump, address).name for address in
                 walk_process_list(dump, dump.active_process_head)]
        assert names == ["System", "app.exe"]

    def test_crash_filter_scrubs_dump(self):
        kernel = Kernel()
        kernel.create_process("System")
        ghost = kernel.create_process("ghost.exe", "")

        def scrub(regions):
            return [(address, contents) for address, contents in regions
                    if address != ghost.eprocess_address]

        kernel.crash_filters.append(scrub)
        dump = CrashDump(write_dump(kernel))
        with pytest.raises(KernelError):
            dump.read(ghost.eprocess_address, 4)
