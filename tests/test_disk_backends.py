"""Storage-backend equivalence, COW cloning, and filter-token tests.

The flat extent backend must be observably identical to the sparse dict
backend through the whole ``Disk`` contract — reads, views, generations,
journal records, written-sector enumeration — including across clones
and under chaos.  The property test drives both backends with the same
randomized operation sequence and compares everything the API exposes.
"""

import gc
import mmap

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GhostBuster
from repro.core.scanners.files import low_level_file_scan
from repro.disk import Disk, DiskGeometry, FlatExtentBackend
from repro.errors import DiskError
from repro.faults.injectors import DiskFaultInjector
from repro.faults.plan import SITE_DISK_READ, FaultPlan, FaultSpec
from repro.fleet import clone_fleet, fleet_storage_stats
from repro.ghostware import HackerDefender
from repro.kernel.kernel import FilterStack
from repro.machine import Machine
from repro.ntfs.mft_parser import MftParser
from repro.workloads import populate_machine

_GEOM = DiskGeometry.from_megabytes(1)
_MAX = _GEOM.size_bytes

_op_write = st.tuples(st.just("write"), st.integers(0, _MAX - 2049),
                      st.binary(min_size=1, max_size=2048))
_op_sector = st.tuples(st.just("sector"),
                       st.integers(0, _GEOM.sector_count - 1),
                       st.integers(0, 255))
_op_read = st.tuples(st.just("read"), st.integers(0, _MAX - 4097),
                     st.integers(0, 4096))
_op_view = st.tuples(st.just("view"), st.integers(0, _MAX - 4097),
                     st.integers(0, 4096))
_op_clone = st.tuples(st.just("clone"))

_op_sequences = st.lists(
    st.one_of(_op_write, _op_sector, _op_read, _op_view, _op_clone),
    max_size=40)


class TestBackendEquivalence:
    """Same op sequence on both backends ⇒ same observable behaviour."""

    @settings(max_examples=40, deadline=None)
    @given(_op_sequences)
    def test_op_sequences_equivalent(self, ops):
        lineages = [[Disk(_GEOM, backend="sparse")],
                    [Disk(_GEOM, backend="flat")]]
        for op in ops:
            kind = op[0]
            if kind == "clone":
                # COW lineage: every clone must stay pairwise equivalent
                # while later ops keep mutating ancestors AND clones.
                if len(lineages[0]) < 3:
                    for lineage in lineages:
                        lineage.append(lineage[-1].clone())
                continue
            for sparse, flat in zip(*lineages):
                if kind == "write":
                    sparse.write_bytes(op[1], op[2])
                    flat.write_bytes(op[1], op[2])
                elif kind == "sector":
                    data = bytes([op[2]]) * _GEOM.sector_size
                    sparse.write_sector(op[1], data)
                    flat.write_sector(op[1], data)
                elif kind == "read":
                    assert sparse.read_bytes(op[1], op[2]) \
                        == flat.read_bytes(op[1], op[2])
                else:
                    assert bytes(sparse.read_view(op[1], op[2])) \
                        == bytes(flat.read_view(op[1], op[2]))
        for sparse, flat in zip(*lineages):
            assert sparse.generation == flat.generation
            assert list(sparse.written_sectors()) \
                == list(flat.written_sectors())
            window = (0, sparse.generation)
            assert sparse.journal.records_since(*window) \
                == flat.journal.records_since(*window)
            assert sparse.read_bytes(0, _MAX) == flat.read_bytes(0, _MAX)

    @pytest.mark.parametrize("backend", ["sparse", "flat"])
    def test_bounds_errors_identical(self, backend):
        disk = Disk(_GEOM, backend=backend)
        with pytest.raises(DiskError, match="negative read length"):
            disk.read_bytes(0, -1)
        with pytest.raises(DiskError, match="outside disk"):
            disk.read_bytes(_MAX - 10, 11)
        with pytest.raises(DiskError, match="outside disk"):
            disk.read_view(_MAX, 1)
        assert disk.read_bytes(10, 0) == b""
        assert bytes(disk.read_view(10, 0)) == b""

    def test_view_reflects_content_at_call_time(self):
        disk = Disk(_GEOM, backend="flat")
        disk.write_bytes(0, b"A" * 1024)
        view = disk.read_view(0, 1024)
        assert bytes(view) == b"A" * 1024
        # A later write may or may not show through a stale view (the
        # documented lifetime rule) — but the view must stay readable
        # and a fresh read must see the new content.
        disk.write_bytes(_MAX - 4096, b"B" * 4096)
        bytes(view)  # must not raise
        assert disk.read_bytes(_MAX - 4096, 4096) == b"B" * 4096

    def test_detection_reports_identical_across_backends(self):
        identities = {}
        for backend in ("sparse", "flat"):
            machine = Machine("det-" + backend,
                              disk=Disk(DiskGeometry.from_megabytes(64),
                                        backend=backend),
                              max_records=2048)
            machine.boot()
            populate_machine(machine, file_count=40, registry_scale=30,
                             seed=9)
            HackerDefender().install(machine)
            report = GhostBuster(machine).detect()
            identities[backend] = sorted(
                (f.resource_type.value, str(f.entry.identity))
                for f in report.findings if not f.is_noise)
        assert identities["sparse"] == identities["flat"]
        assert identities["flat"]   # the infection was actually found


class TestChaosInterplay:
    """Injected damage is byte-identical on both backends & read paths."""

    @staticmethod
    def _chaos_disk(backend):
        disk = Disk(_GEOM, backend=backend)
        disk.write_bytes(0, bytes(range(256)) * 256)
        plan = FaultPlan(13, (FaultSpec(SITE_DISK_READ, mode="rate",
                                        rate=0.5,
                                        kinds=("torn_read", "bit_flip")),))
        disk.fault_injector = DiskFaultInjector(plan, disk)
        return disk

    def test_same_seed_damage_identical(self):
        outcomes = []
        for backend, use_view in (("sparse", False), ("flat", True)):
            disk = self._chaos_disk(backend)
            reads = []
            for step in range(48):
                offset = (step * 331) % (60 * 1024)
                if use_view:
                    reads.append(bytes(disk.read_view(offset, 160)))
                else:
                    reads.append(disk.read_bytes(offset, 160))
            outcomes.append((reads, disk.generation))
            # Damage was injected into the returned bytes only; the
            # stored image underneath is pristine.
            disk.fault_injector = None
            assert disk.read_bytes(0, 65536) == bytes(range(256)) * 256
        assert outcomes[0] == outcomes[1]

    def test_view_path_draws_match_bytes_path(self):
        # On ONE backend, the same plan seed must damage read_view
        # exactly like read_bytes: the injector routes both through the
        # same filter, one draw per call.
        traces = []
        for use_view in (False, True):
            disk = self._chaos_disk("flat")
            read = ((lambda o, n: bytes(disk.read_view(o, n))) if use_view
                    else disk.read_bytes)
            traces.append([read(step * 613 % 50000, 96)
                           for step in range(32)])
        assert traces[0] == traces[1]


class TestFlatBackendStorage:
    def test_spills_to_mmap_and_preserves_content(self):
        geometry = DiskGeometry.from_megabytes(2)
        backend = FlatExtentBackend(geometry, spill_bytes=128 * 1024)
        disk = Disk(geometry, backend=backend)
        head = bytes(range(256)) * 16
        disk.write_bytes(0, head)
        assert isinstance(backend._buf, bytearray)
        pinned = disk.read_view(0, len(head))
        tail = b"\xab\x51" * 2048
        disk.write_bytes(512 * 1024, tail)    # grows past the threshold
        assert isinstance(backend._buf, mmap.mmap)
        assert disk.read_bytes(0, len(head)) == head
        assert disk.read_bytes(512 * 1024, len(tail)) == tail
        assert disk.read_bytes(100 * 1024, 64) == b"\x00" * 64
        assert bytes(pinned) == head          # stale heap view survives
        # Grow the mmap again with a view exported over it.
        pinned2 = disk.read_view(512 * 1024, 64)
        disk.write_bytes(geometry.size_bytes - 4096, b"z" * 4096)
        assert disk.read_bytes(geometry.size_bytes - 4096, 4096) \
            == b"z" * 4096
        bytes(pinned2)                        # must not raise
        # And COW sealing works over an mmap-backed extent too.
        clone = disk.clone()
        clone.write_bytes(0, b"Q" * 512)
        assert disk.read_bytes(0, 512) == head[:512]
        assert clone.read_bytes(0, 512) == b"Q" * 512

    def test_cow_accounting_and_fleet_stats(self):
        golden = Machine("golden",
                         disk=Disk(DiskGeometry.from_megabytes(64),
                                   backend="flat"),
                         max_records=2048)
        golden.boot()
        populate_machine(golden, file_count=30, registry_scale=20, seed=5)
        fleet = clone_fleet(golden, 4)
        base = golden.disk.storage_stats()
        assert base.base_id is not None
        assert base.shared_bytes > 0
        assert {m.disk.storage_stats().base_id for m in fleet} \
            == {base.base_id}
        for machine in fleet:
            stats = machine.disk.storage_stats()
            assert machine.disk.used_bytes() \
                == stats.shared_bytes + stats.private_bytes
            assert stats.total_bytes == machine.disk.used_bytes()
        totals = fleet_storage_stats([golden] + fleet)
        assert totals["shared_bases"] == 1
        assert totals["machines"] == 5
        naive = sum(m.disk.used_bytes() for m in [golden] + fleet)
        # The shared base is counted once, not once per machine.
        assert totals["total_bytes"] == naive - 4 * base.shared_bytes
        # Divergence is private: one clone's write moves nobody else's
        # accounting and nobody else's bytes.
        sibling_private = fleet[1].disk.storage_stats().private_bytes
        golden_private = golden.disk.storage_stats().private_bytes
        probe = golden.disk.read_bytes(0, 4096)
        fleet[0].volume.create_file("\\diverge.bin", b"D" * 4096)
        assert fleet[0].disk.storage_stats().private_bytes > 0
        assert fleet[1].disk.storage_stats().private_bytes \
            == sibling_private
        assert golden.disk.storage_stats().private_bytes == golden_private
        assert golden.disk.read_bytes(0, 4096) == probe

    def test_fleet_stats_without_cow_count_everything_private(self):
        golden = Machine("golden-s",
                         disk=Disk(DiskGeometry.from_megabytes(64),
                                   backend="sparse"),
                         max_records=1024)
        golden.boot()
        fleet = clone_fleet(golden, 2)
        totals = fleet_storage_stats(fleet)
        assert totals["shared_bases"] == 0
        assert totals["shared_bytes"] == 0
        assert totals["total_bytes"] \
            == sum(m.disk.used_bytes() for m in fleet)

    def test_clone_fleet_requires_infect_callable(self):
        golden = Machine("g", disk_mb=64, max_records=512)
        with pytest.raises(ValueError, match="infect callable"):
            clone_fleet(golden, 2, infected=(0,))


class _NameFilter:
    """Raw-read filter that zeroes FILE records containing ``pattern``.

    ``pattern=None`` is a pass-through.  One class for both roles on
    purpose: freeing one instance and allocating another reliably reuses
    the object identity in CPython, which is exactly the aliasing the
    token-based cache key must survive.
    """

    audit_owner = "test-ghost"

    def __init__(self, pattern=None):
        self.pattern = pattern

    def __call__(self, offset, length, data):
        if self.pattern and data[:4] == b"FILE" and self.pattern in data:
            return b"\x00" * length
        return data


class TestFilterTokens:
    def test_filter_stack_tokens_never_reused(self):
        stack = FilterStack()
        seen = set()

        def check_fresh(expected_new):
            tokens = stack.tokens()
            assert len(tokens) == len(stack)
            assert len(set(tokens)) == len(tokens)
            new = set(tokens) - seen
            assert len(new) == expected_new
            seen.update(new)

        a, b, c = object(), object(), object()
        stack.append(a)
        check_fresh(1)
        stack.extend([b, c])
        check_fresh(2)
        stack.remove(b)
        check_fresh(0)
        stack.insert(0, b)
        check_fresh(1)
        stack.pop()
        check_fresh(0)
        stack[0] = c                 # replacement gets a fresh token
        check_fresh(1)
        stack[0:2] = [a]             # slice assignment reissues
        check_fresh(1)
        stack += [b]
        check_fresh(1)
        del stack[0]
        check_fresh(0)
        stack.clear()
        assert stack.tokens() == ()

    def test_cache_token_survives_filter_id_reuse(self):
        machine = Machine("idreuse", disk_mb=64, max_records=1024)
        machine.boot()
        machine.volume.create_file("\\canary.txt", b"x")
        port = machine.kernel.disk_port
        parser = MftParser(port.read_bytes)
        benign = _NameFilter()
        port.read_filters.append(benign)
        assert "canary.txt" in {item.name for item in parser.parse()}
        token_before = parser._cache_token()

        canary = "canary.txt".encode("utf-16-le")
        old_id = id(benign)
        port.read_filters.remove(benign)
        # Free the filter and immediately allocate its replacement:
        # CPython's allocator hands the freed block straight back, so
        # id(hider) == id(benign) — the exact aliasing an id()-derived
        # cache key cannot distinguish.  (gc.collect() only as fallback;
        # interleaving allocations would steal the slot.)
        del benign
        hider = _NameFilter(canary)
        keep_alive = []
        while id(hider) != old_id and len(keep_alive) < 256:
            keep_alive.append(hider)
            gc.collect()
            hider = _NameFilter(canary)
        assert id(hider) == old_id   # the aliasing scenario really occurred

        port.read_filters.append(hider)
        # Under the old id()-derived key this token would compare equal
        # to token_before and the memoized namespace (with the canary)
        # would be served for a filter that hides it.
        assert parser._cache_token() != token_before
        assert "canary.txt" not in {item.name for item in parser.parse()}

    def test_filtered_port_never_populates_entries_cache(self):
        machine = Machine("a3cache", disk_mb=64, max_records=1024)
        machine.boot()
        machine.volume.create_file("\\seen.txt", b"x")
        machine.disk.raw_cache.clear()
        machine.kernel.disk_port.read_filters.append(_NameFilter())
        low_level_file_scan(machine)
        assert "file-entries" not in machine.disk.raw_cache

    def test_unfiltered_scan_caches_and_reuses_entries(self):
        machine = Machine("cachehit", disk_mb=64, max_records=1024)
        machine.boot()
        machine.volume.create_file("\\seen.txt", b"x")
        machine.disk.raw_cache.clear()
        first = low_level_file_scan(machine)
        cached = machine.disk.raw_cache.get("file-entries")
        assert cached is not None and cached[0] == machine.disk.generation
        second = low_level_file_scan(machine)
        assert [e.identity for e in first.entries] \
            == [e.identity for e in second.entries]
        assert second.identities() is not None
