"""Scenario builders + the full per-ghost removal matrix."""

import pytest

from repro.core import GhostBuster, disinfect
from repro.ghostware import (Aphex, Berbew, BhoSpyware, CmCallbackGhost,
                             HackerDefender, HideFiles, Mersting,
                             ProBotSE, Urbin, Vanquish)
from repro.workloads import (Scenario, build_fleet, build_home_pc,
                             build_kitchen_sink, infect)


class TestScenarioBuilders:
    def test_home_pc_clean_by_default(self):
        scenario = build_home_pc(seed=7)
        assert scenario.infections == []
        report = GhostBuster(scenario.machine,
                             advanced=True).inside_scan()
        assert report.is_clean

    def test_home_pc_with_ghost(self):
        scenario = build_home_pc(ghost=HackerDefender(), seed=7)
        assert scenario.ghost_names == ["Hacker Defender 1.0"]
        report = GhostBuster(scenario.machine).inside_scan(
            resources=("files",))
        assert not report.is_clean

    def test_kitchen_sink_all_infections_active(self):
        scenario = build_kitchen_sink(seed=9)
        assert len(scenario.infections) == 12
        report = GhostBuster(scenario.machine,
                             advanced=True).inside_scan()
        assert len(report.hidden_files()) >= 9
        assert len(report.hidden_hooks()) >= 7
        assert len(report.hidden_processes()) >= 2

    def test_fleet_compromise_map(self):
        fleet = build_fleet(size=4, compromised={2: Aphex})
        verdicts = [GhostBuster(s.machine).inside_scan(
            resources=("files",)).is_clean for s in fleet]
        assert verdicts == [True, True, False, True]

    def test_infect_extends_scenario(self):
        scenario = build_home_pc(seed=11)
        infect(scenario, [Urbin(), Berbew()])
        assert len(scenario.infections) == 2

    def test_deterministic_by_seed(self):
        first = build_home_pc(seed=5, with_services=False)
        second = build_home_pc(seed=5, with_services=False)
        paths_a = {s.path for s in first.machine.volume.walk()}
        paths_b = {s.path for s in second.machine.volume.walk()}
        assert paths_a == paths_b


class TestRemovalMatrix:
    """disinfect() must fully clean every removable corpus member."""

    @pytest.mark.parametrize("ghost_cls", [
        Urbin, Mersting, Vanquish, Aphex, HackerDefender, ProBotSE,
        CmCallbackGhost, BhoSpyware, Berbew,
    ], ids=lambda cls: cls.__name__)
    def test_single_infection_removal(self, ghost_cls):
        scenario = build_home_pc(ghost=ghost_cls(), seed=13,
                                 with_services=False)
        log = disinfect(scenario.machine)
        assert log.verified_clean, f"{ghost_cls.__name__} survived removal"

    def test_file_hider_removal(self):
        scenario = build_home_pc(seed=13, with_services=False)
        machine = scenario.machine
        machine.volume.create_directories("\\Secret")
        machine.volume.create_file("\\Secret\\s.txt", b"")
        HideFiles(hidden_paths=["\\Secret"]).install(machine)
        log = disinfect(machine)
        assert log.verified_clean

    def test_kitchen_sink_removal(self):
        """Even the twelve-strain machine comes out clean in one pass
        (plus one extra pass for strains revealed only after the first
        reboot strips the interceptors)."""
        scenario = build_kitchen_sink(seed=17)
        disinfect(scenario.machine)
        final = GhostBuster(scenario.machine, advanced=True).inside_scan()
        if not final.is_clean:       # second pass for layered stealth
            disinfect(scenario.machine)
            final = GhostBuster(scenario.machine,
                                advanced=True).inside_scan()
        assert final.is_clean
