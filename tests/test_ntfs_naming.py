"""Tests for Win32 vs native naming rules."""

import pytest

from repro.errors import InvalidWin32Name
from repro.ntfs import naming


class TestPathAlgebra:
    def test_split_root(self):
        assert naming.split_path("\\") == []

    def test_split_nested(self):
        assert naming.split_path("\\a\\b\\c") == ["a", "b", "c"]

    def test_split_requires_root(self):
        with pytest.raises(ValueError):
            naming.split_path("a\\b")

    def test_join_inverse_of_split(self):
        path = "\\Windows\\System32\\ntdll.dll"
        assert naming.join_path(naming.split_path(path)) == path

    def test_join_empty_is_root(self):
        assert naming.join_path([]) == "\\"

    def test_parent_and_name(self):
        assert naming.parent_and_name("\\a\\b\\c") == ("\\a\\b", "c")

    def test_parent_of_top_level(self):
        assert naming.parent_and_name("\\a") == ("\\", "a")

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            naming.parent_and_name("\\")

    def test_basename(self):
        assert naming.basename("\\a\\b.txt") == "b.txt"
        assert naming.basename("\\") == ""

    def test_normalize_key_casefolds(self):
        assert naming.normalize_key("\\WINDOWS") == \
            naming.normalize_key("\\windows")


class TestWin32Components:
    @pytest.mark.parametrize("name", ["file.txt", "a", "spaces are ok",
                                      "dots.in.middle", "UPPER.DLL"])
    def test_valid_names(self, name):
        assert naming.is_valid_win32_component(name)

    @pytest.mark.parametrize("name,why", [
        ("file.", "trailing dot"),
        ("file ", "trailing space"),
        ("CON", "reserved"),
        ("con", "reserved, case-insensitive"),
        ("NUL.txt", "reserved with extension"),
        ("COM7", "reserved"),
        ("LPT9.log", "reserved"),
        ("a<b", "invalid char"),
        ('a"b', "invalid char"),
        ("a|b", "invalid char"),
        ("a\x07b", "control char"),
        ("", "empty"),
        (".", "relative"),
        ("..", "relative"),
        ("x" * 256, "too long"),
    ])
    def test_invalid_names(self, name, why):
        assert not naming.is_valid_win32_component(name), why

    def test_validate_raises_with_reason(self):
        with pytest.raises(InvalidWin32Name, match="trailing"):
            naming.validate_win32_component("bad.")

    def test_violations_lists_all_reasons(self):
        violations = naming.win32_component_violations("CON. ")
        assert len(violations) >= 2


class TestWin32Paths:
    def test_normal_path_visible(self):
        assert naming.is_win32_visible_path("\\Windows\\notepad.exe")

    def test_over_max_path_invisible(self):
        deep = "\\" + "\\".join(["d" * 30] * 10)
        assert len(deep) > naming.MAX_PATH
        assert not naming.is_win32_visible_path(deep)

    def test_invalid_component_makes_path_invisible(self):
        assert not naming.is_win32_visible_path("\\Temp\\ghost. ")

    def test_relative_path_invisible(self):
        assert not naming.is_win32_visible_path("relative\\path")


class TestNativeComponents:
    def test_trailing_dot_is_native_legal(self):
        assert naming.is_valid_native_component("ghost.")

    def test_reserved_name_is_native_legal(self):
        assert naming.is_valid_native_component("NUL")

    def test_separator_never_legal(self):
        assert not naming.is_valid_native_component("a\\b")

    def test_nul_byte_never_legal(self):
        assert not naming.is_valid_native_component("a\x00b")

    def test_empty_never_legal(self):
        assert not naming.is_valid_native_component("")
