"""Tests for the four resource scanners."""

import pytest

from repro.core.scanners import files as file_scans
from repro.core.scanners import modules as module_scans
from repro.core.scanners import processes as process_scans
from repro.core.scanners import registry as registry_scans
from repro.core.snapshot import ResourceType
from repro.ghostware import HackerDefender, FuRootkit, Vanquish
from repro.kernel.crashdump import CrashDump, write_dump
from repro.machine import RUN_KEY


class TestFileScanners:
    def test_views_agree_on_clean_machine(self, booted):
        high = file_scans.high_level_file_scan(booted)
        low = file_scans.low_level_file_scan(booted)
        assert set(high.identities()) == set(low.identities())

    def test_snapshot_metadata(self, booted):
        high = file_scans.high_level_file_scan(booted)
        assert high.resource_type is ResourceType.FILE
        assert high.view == "win32-api"
        assert high.duration > 0

    def test_scan_charges_simulated_time(self, booted):
        before = booted.clock.now()
        file_scans.high_level_file_scan(booted)
        assert booted.clock.now() > before

    def test_scanner_process_reused(self, booted):
        file_scans.high_level_file_scan(booted)
        count = len([p for p in booted.user_processes()
                     if p.name == "ghostbuster.exe"])
        file_scans.high_level_file_scan(booted)
        assert len([p for p in booted.user_processes()
                    if p.name == "ghostbuster.exe"]) == count

    def test_outside_scan_reads_disk_directly(self, booted):
        HackerDefender().install(booted)
        outside = file_scans.outside_file_scan(booted.disk)
        assert any("hxdef100.exe" in entry.path
                   for entry in outside.entries)

    def test_outside_raw_mode_sees_naming_ghosts(self, booted):
        booted.volume.create_file("\\Temp\\dot.", b"", native=True)
        win32 = file_scans.outside_file_scan(booted.disk, win32_naming=True)
        raw = file_scans.outside_file_scan(booted.disk, win32_naming=False)
        assert all(entry.name != "dot." for entry in win32.entries)
        assert any(entry.name == "dot." for entry in raw.entries)


class TestRegistryScanners:
    def test_views_agree_on_clean_machine(self, booted):
        high = registry_scans.high_level_asep_scan(booted)
        low = registry_scans.low_level_asep_scan(booted)
        assert set(high.identities()) == set(low.identities())

    def test_low_level_reads_hive_files_raw(self, booted):
        HackerDefender().install(booted)
        low = registry_scans.low_level_asep_scan(booted)
        names = {entry.name for entry in low.entries}
        assert "HackerDefender100" in names

    def test_outside_scan_matches_raw_truth(self, booted):
        booted.registry.set_value(RUN_KEY, "legit", "\\x.exe")
        booted.registry.flush()
        outside = registry_scans.outside_asep_scan(booted.disk)
        assert any(entry.name == "legit" for entry in outside.entries)

    def test_win32_semantics_truncate_in_outside_view(self, booted):
        booted.registry.set_value(RUN_KEY, "a\x00b", "\\x.exe")
        booted.registry.flush()
        win32 = registry_scans.outside_asep_scan(booted.disk,
                                                 win32_semantics=True)
        raw = registry_scans.outside_asep_scan(booted.disk,
                                               win32_semantics=False)
        win32_names = {entry.name for entry in win32.entries}
        raw_names = {entry.name for entry in raw.entries}
        assert "a" in win32_names
        assert "a\x00b" in raw_names


class TestProcessScanners:
    def test_views_agree_on_clean_machine(self, booted):
        high = process_scans.high_level_process_scan(booted)
        low = process_scans.low_level_process_scan(booted)
        assert set(high.identities()) == set(low.identities())

    def test_advanced_matches_list_when_clean(self, booted):
        low = process_scans.low_level_process_scan(booted)
        advanced = process_scans.advanced_process_scan(booted)
        assert set(low.identities()) == set(advanced.identities())

    def test_dkom_visible_only_to_advanced(self, booted):
        fu = FuRootkit()
        fu.install(booted)
        victim = booted.start_process("\\Windows\\explorer.exe",
                                      name="victim.exe")
        fu.hide_process(booted, victim.pid)
        low = process_scans.low_level_process_scan(booted)
        advanced = process_scans.advanced_process_scan(booted)
        low_names = {entry.name for entry in low.entries}
        advanced_names = {entry.name for entry in advanced.entries}
        assert "victim.exe" not in low_names
        assert "victim.exe" in advanced_names

    def test_dump_scans_match_live(self, booted):
        fu = FuRootkit()
        fu.install(booted)
        victim = booted.start_process("\\Windows\\explorer.exe",
                                      name="victim.exe")
        fu.hide_process(booted, victim.pid)
        dump = CrashDump(write_dump(booted.kernel))
        list_scan = process_scans.dump_process_scan(dump)
        advanced_scan = process_scans.dump_process_scan(dump, advanced=True)
        assert "victim.exe" not in {e.name for e in list_scan.entries}
        assert "victim.exe" in {e.name for e in advanced_scan.entries}


class TestModuleScanners:
    def test_views_agree_on_clean_machine(self, booted):
        high = module_scans.high_level_module_scan(booted)
        low = module_scans.low_level_module_scan(booted)
        high_ids = set(high.identities())
        low_ids = {entry.identity for entry in low.entries
                   if entry.pid in high.scanned_pids}
        assert high_ids == low_ids

    def test_vanquish_module_gap(self, booted):
        Vanquish().install(booted)
        high = module_scans.high_level_module_scan(booted)
        low = module_scans.low_level_module_scan(booted)
        gap = set(low.identities()) - set(high.identities())
        assert any("vanquish.dll" in identity[1] for identity in gap)

    def test_driver_scan(self, booted):
        booted.kernel.load_driver("custom.sys")
        assert "custom.sys" in module_scans.driver_scan(booted)
