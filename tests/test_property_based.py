"""Property-based tests (hypothesis) on the binary codecs and the diff."""

import string

from hypothesis import given, settings, strategies as st

from repro.core.diff import cross_view_diff
from repro.core.snapshot import FileEntry, ResourceType, ScanSnapshot
from repro.ntfs import constants as ntfs_constants
from repro.ntfs import naming, runlist
from repro.ntfs.records import (DataAttribute, FileName, MftRecord,
                                StandardInformation)
from repro.registry.hive import Hive, RegType, decode_value, encode_value

# -- strategies ---------------------------------------------------------------

runs_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2**40),
              st.integers(min_value=1, max_value=2**20)),
    max_size=20)

name_alphabet = string.ascii_letters + string.digits + "._- ~$"
component_names = st.text(alphabet=name_alphabet, min_size=1, max_size=40)

value_names = st.text(
    alphabet=string.ascii_letters + string.digits + "\x00_",
    min_size=1, max_size=60)


# -- runlist ------------------------------------------------------------------

@given(runs_strategy)
def test_runlist_roundtrip(runs):
    assert runlist.decode_runlist(runlist.encode_runlist(runs)) == runs


@given(runs_strategy)
def test_runlist_total_preserved(runs):
    decoded = runlist.decode_runlist(runlist.encode_runlist(runs))
    assert runlist.total_clusters(decoded) == runlist.total_clusters(runs)


small_runs_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=500),
              st.integers(min_value=1, max_value=50)),
    max_size=12)


@given(small_runs_strategy)
def test_coalesce_preserves_coverage(runs):
    covered = set()
    for start, count in runs:
        covered.update(range(start, start + count))
    coalesced_cover = set()
    for start, count in runlist.coalesce(runs):
        coalesced_cover.update(range(start, start + count))
    assert covered == coalesced_cover


# -- FILE records ----------------------------------------------------------------

@given(record_no=st.integers(min_value=0, max_value=2**31 - 1),
       sequence=st.integers(min_value=0, max_value=2**16 - 1),
       name=st.text(alphabet=name_alphabet, min_size=1, max_size=100),
       content=st.binary(max_size=ntfs_constants.RESIDENT_DATA_LIMIT),
       dos_flags=st.integers(min_value=0, max_value=7))
@settings(max_examples=60)
def test_mft_record_roundtrip(record_no, sequence, name, content, dos_flags):
    record = MftRecord(
        record_no=record_no, sequence=sequence,
        flags=ntfs_constants.FLAG_IN_USE,
        std_info=StandardInformation(1, 2, 3, dos_flags),
        file_name=FileName(ntfs_constants.make_file_reference(5, 1), name),
        data=DataAttribute.make_resident(content))
    parsed = MftRecord.from_bytes(record.to_bytes())
    assert parsed.record_no == record_no
    assert parsed.sequence == sequence
    assert parsed.file_name.name == name
    assert parsed.data.content == content
    assert parsed.std_info.dos_flags == dos_flags


@given(st.integers(min_value=0, max_value=2**48 - 1),
       st.integers(min_value=0, max_value=2**16 - 1))
def test_file_reference_roundtrip(record_no, sequence):
    reference = ntfs_constants.make_file_reference(record_no, sequence)
    assert ntfs_constants.split_file_reference(reference) == (record_no,
                                                              sequence)


# -- naming -----------------------------------------------------------------------

@given(component_names)
def test_win32_valid_implies_native_valid(name):
    if naming.is_valid_win32_component(name):
        assert naming.is_valid_native_component(name)


@given(st.lists(component_names, min_size=1, max_size=6))
def test_split_join_inverse(components):
    path = naming.join_path(components)
    assert naming.split_path(path) == components


# -- registry values ------------------------------------------------------------------

@given(st.text(alphabet=name_alphabet, max_size=80))
def test_sz_value_roundtrip(text):
    raw = encode_value(RegType.SZ, text)
    assert decode_value(RegType.SZ, raw, win32=False) == text


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_dword_roundtrip(number):
    raw = encode_value(RegType.DWORD, number)
    assert decode_value(RegType.DWORD, raw, win32=False) == number


@given(st.binary(max_size=200))
def test_binary_roundtrip(blob):
    raw = encode_value(RegType.BINARY, blob)
    assert decode_value(RegType.BINARY, raw, win32=False) == blob


@given(st.lists(st.text(alphabet=string.ascii_letters, min_size=1,
                        max_size=10), max_size=8))
def test_multi_sz_roundtrip(strings):
    raw = encode_value(RegType.MULTI_SZ, strings)
    assert decode_value(RegType.MULTI_SZ, raw, win32=False) == strings


@given(value_names, st.text(alphabet=string.ascii_letters, max_size=30))
@settings(max_examples=60)
def test_hive_serialization_roundtrip(name, data):
    hive = Hive("T")
    hive.root.set_value(name, data)
    parsed = Hive.deserialize(hive.serialize())
    assert parsed.root.has_value(name)
    assert decode_value(RegType.SZ,
                        parsed.root.value(name).raw_bytes(),
                        win32=False) == data


@given(st.lists(st.text(alphabet=string.ascii_lowercase, min_size=1,
                        max_size=8), min_size=1, max_size=6, unique=True))
@settings(max_examples=40)
def test_hive_key_tree_roundtrip(segments):
    hive = Hive("T")
    hive.create_key("\\".join(segments))
    parsed = Hive.deserialize(hive.serialize())
    key = parsed.root
    for segment in segments:
        key = key.subkey(segment)
    assert key.name == segments[-1]


# -- cross-view diff invariants ----------------------------------------------------------

paths = st.text(alphabet=string.ascii_lowercase + "\\",
                min_size=1, max_size=20).map(lambda s: "\\" + s)
path_sets = st.sets(paths, max_size=30)


def _snapshot(view, path_set):
    entries = [FileEntry(path, path.rsplit("\\", 1)[-1], False, 0)
               for path in path_set]
    return ScanSnapshot(ResourceType.FILE, view=view, entries=entries)


@given(path_sets)
def test_diff_identical_views_empty(path_set):
    assert cross_view_diff(_snapshot("a", path_set),
                           _snapshot("b", path_set)) == []


@given(path_sets, path_sets)
def test_diff_finds_exactly_truth_minus_lie(lie_set, truth_set):
    findings = cross_view_diff(_snapshot("lie", lie_set),
                               _snapshot("truth", truth_set))
    found = {finding.entry.path for finding in findings}
    expected = {path for path in truth_set
                if path.casefold() not in {p.casefold() for p in lie_set}}
    assert found == expected


@given(path_sets, path_sets)
def test_diff_monotone_in_hiding(lie_set, truth_set):
    """Hiding more entries can only grow the finding set."""
    full = cross_view_diff(_snapshot("lie", lie_set),
                           _snapshot("truth", truth_set))
    smaller_lie = set(list(lie_set)[: len(lie_set) // 2])
    more_hidden = cross_view_diff(_snapshot("lie", smaller_lie),
                                  _snapshot("truth", truth_set))
    assert {finding.entry.path for finding in full} <= \
        {finding.entry.path for finding in more_hidden}


# -- fault-plan determinism ---------------------------------------------------

@given(seed=st.integers(min_value=0, max_value=2**63),
       rate=st.floats(min_value=0.01, max_value=0.9),
       draws=st.integers(min_value=1, max_value=300))
@settings(max_examples=30, deadline=None)
def test_fault_plan_same_seed_same_sequence(seed, rate, draws):
    """Identical seeds produce byte-identical fault sequences."""
    from repro.faults.plan import (FaultPlan, SITE_DISK_READ,
                                  SITE_WINAPI_ENUM)

    logs = []
    for _ in range(2):
        plan = FaultPlan.default(seed=seed, rate=rate)
        for index in range(draws):
            plan.draw(SITE_DISK_READ, "m1")
            if index % 2 == 0:
                plan.draw(SITE_WINAPI_ENUM, "m2")
        logs.append((plan.sequence_digest(), plan.log_dicts()))
    assert logs[0] == logs[1]


@given(seed=st.integers(min_value=0, max_value=2**32))
@settings(max_examples=5, deadline=None)
def test_chaos_scan_is_reproducible(seed):
    """Same chaos seed ⇒ identical DetectionReport, fault for fault."""
    from repro.core import GhostBuster
    from repro.core.reporting import report_to_dict
    from repro.faults.plan import FaultPlan
    from repro.ghostware import HackerDefender
    from repro.machine import Machine

    outcomes = []
    for _ in range(2):
        machine = Machine("prop-pc", disk_mb=256, max_records=8192)
        machine.boot()
        HackerDefender().install(machine)
        plan = FaultPlan.default(seed=seed, rate=0.08)
        report = GhostBuster(machine, fault_plan=plan).inside_scan()
        outcomes.append((report_to_dict(report), plan.sequence_digest()))
    assert outcomes[0] == outcomes[1]
