"""Shared fixtures and helpers for the test suite.

Setting ``REPRO_CHAOS_SEED=<int>`` runs the whole suite under a
low-rate global :class:`~repro.faults.plan.FaultPlan` (the CI chaos
job): parser-level transient faults fire throughout, every test must
still pass, and the fired-fault audit is written to
``fault-audit.jsonl`` (or ``$REPRO_CHAOS_AUDIT``) for artifact upload.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.disk import Disk, DiskGeometry
from repro.machine import Machine
from repro.ntfs import NtfsVolume


@pytest.fixture(autouse=True, scope="session")
def chaos_plan():
    """Install the suite-wide chaos plan when REPRO_CHAOS_SEED is set."""
    seed = os.environ.get("REPRO_CHAOS_SEED")
    if not seed:
        yield None
        return
    from repro.faults import context as faults_context
    from repro.faults.plan import FaultPlan

    plan = FaultPlan.tier1(int(seed))
    faults_context.install_global_plan(plan)
    try:
        yield plan
    finally:
        faults_context.install_global_plan(None)
        audit_path = os.environ.get("REPRO_CHAOS_AUDIT",
                                    "fault-audit.jsonl")
        with open(audit_path, "w", encoding="utf-8") as handle:
            for record in plan.log_dicts():
                handle.write(json.dumps(record, sort_keys=True) + "\n")


@pytest.fixture
def disk() -> Disk:
    return Disk(DiskGeometry.from_megabytes(256))


@pytest.fixture
def volume(disk) -> NtfsVolume:
    return NtfsVolume.format(disk, max_records=4096)


@pytest.fixture
def machine() -> Machine:
    """A fresh, powered-off machine with the standard OS layout."""
    return Machine("testbox", disk_mb=256, max_records=8192)


@pytest.fixture
def booted(machine) -> Machine:
    machine.boot()
    return machine


def win32_ls(process, directory: str):
    """Collect one directory's entries through FindFirst/NextFile."""
    handle, entry = process.call("kernel32", "FindFirstFile", directory)
    names = []
    while entry is not None:
        names.append(entry.name)
        entry = process.call("kernel32", "FindNextFile", handle)
    process.call("kernel32", "FindClose", handle)
    return names


def win32_walk(process, root: str = "\\"):
    """Full recursive Win32 walk; returns paths."""
    paths = []

    def walk(directory: str) -> None:
        handle, entry = process.call("kernel32", "FindFirstFile", directory)
        while entry is not None:
            paths.append(entry.path)
            if entry.is_directory:
                walk(entry.path)
            entry = process.call("kernel32", "FindNextFile", handle)

    walk(root)
    return paths


def task_list(process):
    """Process names through the Toolhelp API."""
    snapshot = process.call("kernel32", "CreateToolhelp32Snapshot")
    names = []
    info = process.call("kernel32", "Process32First", snapshot)
    while info is not None:
        names.append(info.name)
        info = process.call("kernel32", "Process32Next", snapshot)
    return names


@pytest.fixture
def probe(booted):
    """An ordinary process to issue API calls from."""
    return booted.start_process("\\Windows\\explorer.exe", name="probe.exe")
