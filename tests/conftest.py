"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.disk import Disk, DiskGeometry
from repro.machine import Machine
from repro.ntfs import NtfsVolume


@pytest.fixture
def disk() -> Disk:
    return Disk(DiskGeometry.from_megabytes(256))


@pytest.fixture
def volume(disk) -> NtfsVolume:
    return NtfsVolume.format(disk, max_records=4096)


@pytest.fixture
def machine() -> Machine:
    """A fresh, powered-off machine with the standard OS layout."""
    return Machine("testbox", disk_mb=256, max_records=8192)


@pytest.fixture
def booted(machine) -> Machine:
    machine.boot()
    return machine


def win32_ls(process, directory: str):
    """Collect one directory's entries through FindFirst/NextFile."""
    handle, entry = process.call("kernel32", "FindFirstFile", directory)
    names = []
    while entry is not None:
        names.append(entry.name)
        entry = process.call("kernel32", "FindNextFile", handle)
    process.call("kernel32", "FindClose", handle)
    return names


def win32_walk(process, root: str = "\\"):
    """Full recursive Win32 walk; returns paths."""
    paths = []

    def walk(directory: str) -> None:
        handle, entry = process.call("kernel32", "FindFirstFile", directory)
        while entry is not None:
            paths.append(entry.path)
            if entry.is_directory:
                walk(entry.path)
            entry = process.call("kernel32", "FindNextFile", handle)

    walk(root)
    return paths


def task_list(process):
    """Process names through the Toolhelp API."""
    snapshot = process.call("kernel32", "CreateToolhelp32Snapshot")
    names = []
    info = process.call("kernel32", "Process32First", snapshot)
    while info is not None:
        names.append(info.name)
        info = process.call("kernel32", "Process32Next", snapshot)
    return names


@pytest.fixture
def probe(booted):
    """An ordinary process to issue API calls from."""
    return booted.start_process("\\Windows\\explorer.exe", name="probe.exe")
