"""Tests for registry cell binary layouts."""

import pytest

from repro.errors import HiveFormatError
from repro.registry import cells


class TestHeader:
    def test_roundtrip(self):
        blob = cells.pack_header(512, 4096, "SOFTWARE")
        root, length, name = cells.unpack_header(blob)
        assert (root, length, name) == (512, 4096, "SOFTWARE")

    def test_bad_magic(self):
        with pytest.raises(HiveFormatError):
            cells.unpack_header(b"NOPE" + b"\x00" * 508)

    def test_short_header(self):
        with pytest.raises(HiveFormatError):
            cells.unpack_header(b"regf")


class TestCellWriter:
    def test_offsets_start_after_header(self):
        writer = cells.CellWriter()
        first = writer.append(b"payload")
        assert first == cells.HEADER_SIZE

    def test_cells_are_8_aligned(self):
        writer = cells.CellWriter()
        writer.append(b"odd")
        second = writer.append(b"next")
        assert second % 8 == 0

    def test_read_back(self):
        writer = cells.CellWriter()
        offset = writer.append(b"hello cell")
        blob = writer.finish(offset, "TEST")
        assert cells.read_cell(blob, offset)[:10] == b"hello cell"

    def test_read_unallocated_offset(self):
        writer = cells.CellWriter()
        offset = writer.append(b"x")
        blob = writer.finish(offset, "T")
        with pytest.raises(HiveFormatError):
            cells.read_cell(blob, len(blob) + 64)

    def test_read_inside_header_rejected(self):
        writer = cells.CellWriter()
        offset = writer.append(b"x")
        blob = writer.finish(offset, "T")
        with pytest.raises(HiveFormatError):
            cells.read_cell(blob, 0)


class TestNk:
    def test_roundtrip(self):
        payload = cells.pack_nk("MyKey", 100, 2, 200, 3, 300,
                                timestamp_us=777, flags=1)
        nk = cells.unpack_nk(payload)
        assert nk["name"] == "MyKey"
        assert nk["parent"] == 100
        assert nk["subkey_count"] == 2
        assert nk["subkey_list"] == 200
        assert nk["value_count"] == 3
        assert nk["value_list"] == 300
        assert nk["timestamp_us"] == 777
        assert nk["flags"] == 1

    def test_empty_name(self):
        nk = cells.unpack_nk(cells.pack_nk("", 0, 0, 0, 0, 0))
        assert nk["name"] == ""

    def test_wrong_magic(self):
        with pytest.raises(HiveFormatError):
            cells.unpack_nk(b"vk" + b"\x00" * 40)


class TestVk:
    def test_inline_data(self):
        payload = cells.pack_vk("Val", 1, b"tiny")
        vk = cells.unpack_vk(payload)
        assert vk["name"] == "Val"
        assert vk["data"] == b"tiny"
        assert vk["data_cell"] is None

    def test_external_data_reference(self):
        big = b"z" * 100
        payload = cells.pack_vk("Big", 3, big, data_cell_offset=4096)
        vk = cells.unpack_vk(payload)
        assert vk["data"] is None
        assert vk["data_cell"] == 4096
        assert vk["data_length"] == 100

    def test_name_with_embedded_nul(self):
        payload = cells.pack_vk("see\x00hidden", 1, b"")
        assert cells.unpack_vk(payload)["name"] == "see\x00hidden"

    def test_wrong_magic(self):
        with pytest.raises(HiveFormatError):
            cells.unpack_vk(b"nk" + b"\x00" * 20)


class TestLists:
    def test_offset_list_roundtrip(self):
        payload = cells.pack_offset_list(cells.LF_MAGIC, [10, 20, 30])
        assert cells.unpack_offset_list(payload, cells.LF_MAGIC) == \
            [10, 20, 30]

    def test_empty_list(self):
        payload = cells.pack_offset_list(cells.VL_MAGIC, [])
        assert cells.unpack_offset_list(payload, cells.VL_MAGIC) == []

    def test_magic_mismatch(self):
        payload = cells.pack_offset_list(cells.LF_MAGIC, [1])
        with pytest.raises(HiveFormatError):
            cells.unpack_offset_list(payload, cells.VL_MAGIC)


class TestDb:
    def test_roundtrip(self):
        assert cells.unpack_db(cells.pack_db(b"raw data")) == b"raw data"

    def test_truncated(self):
        payload = cells.pack_db(b"raw data")
        with pytest.raises(HiveFormatError):
            cells.unpack_db(payload[:-3])
