"""Tests for the low-level-interference strain (ablation A3's subject)."""

import pytest

from repro.core import GhostBuster
from repro.ghostware import HackerDefender, LowLevelInterferenceGhost
from repro.ntfs.mft_parser import MftParser


class TestLowLevelInterference:
    def test_hidden_from_api(self, booted):
        LowLevelInterferenceGhost().install(booted)
        from tests.conftest import win32_walk
        probe = booted.start_process("\\Windows\\explorer.exe",
                                     name="probe.exe")
        assert all("deepghost" not in path.casefold()
                   for path in win32_walk(probe))

    def test_scrubs_inside_raw_reads(self, booted):
        LowLevelInterferenceGhost().install(booted)
        inside = MftParser(booted.kernel.disk_port.read_bytes).parse()
        assert all("deepghost" not in entry.path.casefold()
                   for entry in inside)

    def test_physical_disk_still_truthful(self, booted):
        LowLevelInterferenceGhost().install(booted)
        outside = MftParser(booted.disk.read_bytes).parse()
        assert any("deepghost" in entry.path.casefold()
                   for entry in outside)

    def test_inside_the_box_scan_defeated(self, booted):
        LowLevelInterferenceGhost().install(booted)
        report = GhostBuster(booted).inside_scan(resources=("files",))
        assert report.is_clean   # the paper's stated limitation

    def test_outside_the_box_scan_catches_it(self, booted):
        LowLevelInterferenceGhost().install(booted)
        report = GhostBuster(booted).outside_scan(resources=("files",))
        files = {finding.entry.path for finding in report.hidden_files()}
        assert "\\Windows\\deepghost.exe" in files

    def test_ordinary_ghost_unaffected_by_scrubber(self, booted):
        """The scrubber only hides its own records; Hacker Defender's
        remain in the inside raw view."""
        LowLevelInterferenceGhost().install(booted)
        HackerDefender().install(booted)
        report = GhostBuster(booted).inside_scan(resources=("files",))
        files = {finding.entry.path for finding in report.hidden_files()}
        assert "\\Windows\\hxdef100.exe" in files
        assert "\\Windows\\deepghost.exe" not in files


class TestRegistryInterference:
    def test_inside_registry_scan_also_defeated(self, booted):
        LowLevelInterferenceGhost().install(booted)
        report = GhostBuster(booted).inside_scan(resources=("registry",))
        assert report.is_clean

    def test_outside_registry_scan_catches_hook(self, booted):
        LowLevelInterferenceGhost().install(booted)
        report = GhostBuster(booted).outside_scan(resources=("registry",))
        names = {finding.entry.name for finding in report.hidden_hooks()}
        assert "DeepGhost" in names
