"""Stateful property tests: random operation sequences keep the two
views of each substrate consistent."""

import string

from hypothesis import given, settings, strategies as st

from repro.disk import Disk, DiskGeometry
from repro.ntfs import NtfsVolume, parse_volume
from repro.registry.hive import Hive
from repro.unixsim import UnixMachine

names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)

file_ops = st.lists(
    st.tuples(st.sampled_from(["create", "delete", "write", "mkdir"]),
              names,
              st.binary(max_size=600)),
    min_size=1, max_size=25)


@given(file_ops)
@settings(max_examples=30, deadline=None)
def test_volume_and_raw_mft_always_agree(operations):
    """After any operation sequence, the API namespace and the raw MFT
    parse describe the same tree — the invariant every cross-view diff
    on a clean machine relies on."""
    disk = Disk(DiskGeometry.from_megabytes(64))
    volume = NtfsVolume.format(disk, max_records=2048)
    for op, name, payload in operations:
        path = f"\\{name}"
        try:
            if op == "create":
                volume.create_file(path, payload)
            elif op == "mkdir":
                volume.create_directory(path)
            elif op == "write":
                volume.write_file(path, payload)
            elif op == "delete":
                volume.delete_file(path)
        except Exception:
            continue   # illegal op for current state; invariant still holds
    api_view = {(entry.path.casefold(), entry.is_directory,
                 entry.size if not entry.is_directory else 0)
                for entry in volume.walk()}
    raw_view = {(entry.path.casefold(), entry.is_directory,
                 entry.size if not entry.is_directory else 0)
                for entry in parse_volume(disk)}
    assert api_view == raw_view


@given(file_ops)
@settings(max_examples=20, deadline=None)
def test_remount_preserves_namespace(operations):
    """Mounting the disk cold reproduces exactly the live namespace."""
    disk = Disk(DiskGeometry.from_megabytes(64))
    volume = NtfsVolume.format(disk, max_records=2048)
    for op, name, payload in operations:
        try:
            if op in ("create", "write"):
                if volume.exists(f"\\{name}"):
                    volume.write_file(f"\\{name}", payload)
                else:
                    volume.create_file(f"\\{name}", payload)
            elif op == "delete" and volume.exists(f"\\{name}"):
                volume.delete_file(f"\\{name}")
        except Exception:
            continue
    live = {entry.path.casefold() for entry in volume.walk()}
    remounted = NtfsVolume.mount(disk)
    cold = {entry.path.casefold() for entry in remounted.walk()}
    assert live == cold


registry_ops = st.lists(
    st.tuples(st.sampled_from(["set", "delete", "mkkey"]), names, names,
              st.text(alphabet=string.ascii_letters, max_size=15)),
    min_size=1, max_size=20)


@given(registry_ops)
@settings(max_examples=30, deadline=None)
def test_hive_serialize_parse_agree(operations):
    """The in-memory hive tree and its raw serialization always agree."""
    from repro.registry.hive_parser import parse_hive

    hive = Hive("PROP")
    for op, key_name, value_name, data in operations:
        key = hive.create_key(key_name)
        try:
            if op == "set":
                key.set_value(value_name, data)
            elif op == "delete":
                key.delete_value(value_name)
            elif op == "mkkey":
                key.create_subkey(value_name)
        except Exception:
            continue
    parsed = parse_hive(hive.serialize())

    def tree_of_live(key):
        return (sorted((v.name, v.raw_bytes()) for v in key.values()),
                {child.name: tree_of_live(child)
                 for child in key.subkeys()})

    def tree_of_parsed(key):
        return (sorted((v.name, v.raw_data) for v in key.values),
                {child.name: tree_of_parsed(child)
                 for child in key.subkeys})

    assert tree_of_live(hive.root) == tree_of_parsed(parsed.root)


unix_ops = st.lists(
    st.tuples(st.sampled_from(["write", "unlink", "mkdir"]), names),
    min_size=1, max_size=20)


@given(unix_ops)
@settings(max_examples=30, deadline=None)
def test_unix_ls_equals_truth_when_clean(operations):
    """On an unhooked Unix machine the inside ls equals the clean-CD
    walk — zero-FP by construction."""
    from repro.unixsim.userland import pristine_ls

    machine = UnixMachine("prop")
    for op, name in operations:
        path = f"/tmp/{name}"
        try:
            if op == "write":
                machine.fs.write_file(path, b"x")
            elif op == "unlink":
                machine.fs.unlink(path)
            elif op == "mkdir":
                machine.fs.mkdir_p(path)
        except Exception:
            continue
    inside = set(pristine_ls(machine, "/"))
    truth = {path for path, __ in machine.fs.walk("/")}
    assert inside == truth
