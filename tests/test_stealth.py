r"""The adversary engine: leveled stealth campaigns and counter-moves.

Covers the PR-10 contract end to end:

* level parsing and capability clamping;
* detection awareness — a scan-aware hider evades a naive single-pass
  diff entirely, and scan-until-stable (``stabilize_rounds >= 2``) with
  the flag-unstable merge recovers every artifact (the Hypothesis
  property: invariant to the sensor's trigger delay and seed);
* the timestamp cloak defeating the recent-write triage probe;
* identity rotation — ground truth stays exact at machine granularity,
  exact finding identities change, fuzzy campaign fingerprints do not;
* the satellite-2 regression: one ``fleet-campaign`` alert per campaign
  across epochs of rotated identities, including across a coordinator
  restart (journal-rebuilt tracker suppresses duplicates);
* kill/resume mid-stealth-campaign is element-identical to an
  uninterrupted run;
* sweep traces record stealth events and replay them verbatim.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ghostbuster import GhostBuster
from repro.errors import CoordinatorKilled
from repro.fleet import FleetCoordinator
from repro.fleet.policy import EscalationPolicy, campaign_fingerprints
from repro.fleet.scheduler import recent_write_probe
from repro.ghostware import FuRootkit, Urbin
from repro.machine import Machine
from repro.stealth import (LEVELS, SensorConfig, StealthManager,
                           attach_stealth, behaviors_for, level_index,
                           parse_level, rotation_token)
from repro.telemetry.journal_io import iter_journal
from repro.workloads import (FleetProfile, FleetWorkload, InfectionWave,
                             load_trace, populate_machine, record_sweep,
                             replay_sweep, verdict_key)

DEFENDED = dict(stabilize_rounds=2, flag_unstable=True)


def small_machine(name: str = "victim", seed: int = 5) -> Machine:
    machine = Machine(name, disk_mb=64, max_records=2048)
    populate_machine(machine, file_count=12, registry_scale=40, seed=seed)
    machine.boot()
    return machine


STEALTH_PROFILE = FleetProfile(
    name="stealth", size=6, seed=23, file_count=(10, 16),
    virtual_files=(2_000, 4_000), registry_kb=(30, 60),
    churn_files=(1, 3), churn_registry=(0, 1),
    waves=(InfectionWave(strain="urbin", onset_epoch=1, initial=2,
                         spread=0.5, level="high"),))


class TestLevels:
    def test_parse_and_order(self):
        assert parse_level("HIGH") == "high"
        assert [level_index(level) for level in LEVELS] == [0, 1, 2, 3, 4]
        with pytest.raises(ValueError):
            parse_level("paranoid")

    def test_capability_clamp(self):
        # FuRootkit can only cloak: every level collapses to at most that.
        assert behaviors_for("maximum", FuRootkit.stealth_capabilities) \
            == frozenset({"cloak"})
        assert behaviors_for("off", Urbin.stealth_capabilities) \
            == frozenset()
        # Urbin supports the full ladder.
        assert behaviors_for("maximum", Urbin.stealth_capabilities) \
            == frozenset({"cloak", "aware", "rotate", "coordinate"})

    def test_attach_off_is_none(self):
        machine = small_machine()
        ghost = Urbin()
        ghost.install(machine)
        assert attach_stealth(ghost, machine, "off") is None
        assert ghost.concealed()   # no manager → always concealing


class TestDetectionAwareness:
    def _infected(self, level="medium", seed="7", config=None):
        machine = small_machine()
        ghost = Urbin()
        ghost.install(machine)
        manager = attach_stealth(ghost, machine, level, seed=seed,
                                 sensor_config=config)
        assert manager is not None
        return machine, ghost, manager

    def test_naive_single_pass_is_evaded(self):
        machine, ghost, __ = self._infected()
        report = GhostBuster(machine).inside_scan(
            resources=("files", "registry"))
        # The sensor unhid during the truth-side sweep too: both views
        # agree, the naive diff reports nothing.
        assert report.is_clean
        assert ghost.report.hidden_files

    def test_scan_until_stable_recovers(self):
        machine, ghost, manager = self._infected()
        report = GhostBuster(machine, **DEFENDED).inside_scan(
            resources=("files", "registry"))
        found = {str(f.entry.identity).casefold()
                 for f in report.hidden_files()}
        assert {path.casefold()
                for path in ghost.report.hidden_files} <= found
        assert report.hidden_hooks()
        assert all(f.unstable for f in report.findings)
        assert report.rounds >= 2
        stats = manager.sensor.stats()
        assert stats["calls_sensed"] > 0
        assert stats["files_episodes"] >= 1

    def test_outside_scan_sees_through(self):
        machine, ghost, __ = self._infected()
        outcome = EscalationPolicy().confirm(
            machine, GhostBuster(machine, **DEFENDED).inside_scan(
                resources=("files", "registry")))
        assert outcome.confirmed
        assert outcome.outside_findings > 0

    @settings(max_examples=12, deadline=None)
    @given(delay=st.integers(min_value=0, max_value=5),
           seed=st.integers(min_value=0, max_value=2**32))
    def test_recovery_invariant_to_unhide_timing(self, delay, seed):
        # The ISSUE's property: whatever the sensor's trigger delay and
        # seed, stabilize_rounds >= 2 plus outside escalation recovers a
        # detection-aware hider.  One round's episode cannot span both
        # rounds, so either the intersection or the unstable merge wins.
        config = SensorConfig(trigger_delay=delay)
        machine, ghost, __ = self._infected(seed=str(seed), config=config)
        report = GhostBuster(machine, **DEFENDED).inside_scan(
            resources=("files", "registry"))
        assert not report.is_clean
        outcome = EscalationPolicy().confirm(machine, report)
        assert outcome.confirmed
        recovered = {str(f.entry.identity).casefold()
                     for f in outcome.outside_report.hidden_files()}
        assert {path.casefold()
                for path in ghost.report.hidden_files} <= recovered


class TestTimestampCloak:
    def test_cloak_defeats_recent_write_probe(self):
        fresh = small_machine("fresh")
        cloaked = small_machine("cloaked")
        for machine in (fresh, cloaked):
            machine.clock.advance(10_000.0)
        Urbin().install(fresh)
        ghost = Urbin()
        ghost.install(cloaked)
        attach_stealth(ghost, cloaked, "low")
        assert recent_write_probe(fresh, horizon_seconds=3600.0)
        assert not recent_write_probe(cloaked, horizon_seconds=3600.0)

    def test_clean_machine_quiet_after_settling(self):
        machine = small_machine("settled")
        machine.clock.advance(10_000.0)
        assert not recent_write_probe(machine, horizon_seconds=3600.0)


class TestIdentityRotation:
    def test_rotation_moves_identities_not_fingerprints(self):
        machine = small_machine()
        ghost = Urbin()
        ghost.install(machine)
        manager = attach_stealth(ghost, machine, "high", seed="3")
        before = GhostBuster(machine, **DEFENDED).inside_scan(
            resources=("files", "registry"))
        manager.rotate(machine, rotation_token("3", "urbin", "victim", 2))
        after = GhostBuster(machine, **DEFENDED).inside_scan(
            resources=("files", "registry"))
        ids = lambda report: {str(f.entry.identity)
                              for f in report.findings}
        assert ids(before) and ids(after)
        assert ids(before) != ids(after)
        assert campaign_fingerprints(before) == campaign_fingerprints(after)
        # Ground truth followed the rotation.
        found = {str(f.entry.identity).casefold()
                 for f in after.hidden_files()}
        assert {path.casefold()
                for path in ghost.report.hidden_files} <= found

    def test_ground_truth_exact_under_rotation(self):
        workload = FleetWorkload(STEALTH_PROFILE)
        infected_by_epoch = [workload.infected_machines(epoch)
                             for epoch in (1, 2, 3)]
        # Membership only ever grows, machine-granular, rotation-free.
        assert infected_by_epoch[0] <= infected_by_epoch[1] \
            <= infected_by_epoch[2]
        events = workload.epoch_events(2)
        assert any(event["action"] == "rotate"
                   for event in events["stealth"])


class TestCampaignDedupe:
    """Satellite 2: one alert per campaign across rotated identities."""

    def _campaign_records(self, coordinator):
        return [line.record
                for line in iter_journal(coordinator.epochs_path)
                if line.record.get("type") == "fleet-campaign"]

    def test_single_alert_across_rotated_epochs(self, tmp_path):
        workload = FleetWorkload(STEALTH_PROFILE)
        coordinator = FleetCoordinator(
            str(tmp_path / "fleet"), workload.machines.values(), workers=2,
            outbreak_threshold=2, console_index=False, lease_seconds=1e6,
            **DEFENDED)
        finding_ids = {}
        for epoch in (1, 2, 3):
            workload.apply_epoch(epoch)
            aggregate = coordinator.run_epoch()
            for verdict in aggregate.verdicts:
                if verdict.finding_ids:
                    finding_ids.setdefault(verdict.machine, []).append(
                        tuple(verdict.finding_ids))
        # Rotation really happened: some machine's exact identities
        # changed between epochs.
        assert any(len(set(seen)) > 1 for seen in finding_ids.values())
        records = self._campaign_records(coordinator)
        fingerprints = [record["fingerprint"] for record in records]
        assert fingerprints
        assert len(fingerprints) == len(set(fingerprints))
        # Each alert subsumes the rotated identities it correlated.
        by_machine_count = {record["fingerprint"]: len(record["machines"])
                            for record in records}
        assert all(count >= 2 for count in by_machine_count.values())

    def test_restart_does_not_realert(self, tmp_path):
        workload = FleetWorkload(STEALTH_PROFILE)
        fleet_dir = str(tmp_path / "fleet")
        coordinator = FleetCoordinator(
            fleet_dir, workload.machines.values(), workers=2,
            outbreak_threshold=2, console_index=False, lease_seconds=1e6,
            **DEFENDED)
        for epoch in (1, 2):
            workload.apply_epoch(epoch)
            coordinator.run_epoch()
        before = self._campaign_records(coordinator)
        assert before
        # A fresh coordinator rebuilds the tracker from the journal;
        # the next (rotated) epoch must not re-alert known campaigns.
        resumed = FleetCoordinator(
            fleet_dir, workload.machines.values(), workers=2,
            outbreak_threshold=2, console_index=False, lease_seconds=1e6,
            **DEFENDED)
        workload.apply_epoch(3)
        resumed.run_epoch()
        after = self._campaign_records(resumed)
        assert [record["fingerprint"] for record in after] \
            == [record["fingerprint"] for record in before]


class TestKillResume:
    def test_mid_campaign_kill_resume_element_identical(self, tmp_path):
        def run(directory, kill):
            workload = FleetWorkload(STEALTH_PROFILE)
            coordinator = FleetCoordinator(
                str(directory), workload.machines.values(), workers=2,
                outbreak_threshold=2, console_index=False,
                lease_seconds=1e6, **DEFENDED)
            workload.apply_epoch(1)
            coordinator.run_epoch()
            workload.apply_epoch(2)   # rotation + rearm mid-campaign
            if kill:
                with pytest.raises(CoordinatorKilled):
                    coordinator.run_epoch(kill_after_acks=2)
                coordinator = FleetCoordinator(
                    str(directory), workload.machines.values(), workers=2,
                    outbreak_threshold=2, console_index=False,
                    lease_seconds=1e6, **DEFENDED)
            return coordinator.run_epoch()

        reference = run(tmp_path / "ref", kill=False)
        resumed = run(tmp_path / "killed", kill=True)
        assert {v.machine: verdict_key(v) for v in reference.verdicts} \
            == {v.machine: verdict_key(v) for v in resumed.verdicts}


class TestStealthTraces:
    def test_record_replay_stealth_events_verbatim(self, tmp_path):
        trace = str(tmp_path / "sweep.trace")
        kwargs = dict(DEFENDED, outbreak_threshold=2)
        recorded = record_sweep(trace, STEALTH_PROFILE,
                                str(tmp_path / "rec"), epochs=3,
                                fault_seed=None, fault_rate=0.0,
                                coordinator_kwargs=kwargs)
        __, epoch_records, __ = load_trace(trace)
        stealth = [event for record in epoch_records
                   for event in record.get("stealth", [])]
        assert any(event["action"] == "rotate" for event in stealth)
        replayed = replay_sweep(trace, str(tmp_path / "rep"),
                                coordinator_kwargs=kwargs)
        assert recorded.verdicts == replayed.verdicts
        assert recorded.infected == replayed.infected
