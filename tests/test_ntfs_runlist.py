"""Tests for NTFS runlist encoding/decoding."""

import pytest

from repro.errors import CorruptRecord
from repro.ntfs import runlist


class TestRoundTrip:
    def test_single_run(self):
        runs = [(100, 5)]
        assert runlist.decode_runlist(runlist.encode_runlist(runs)) == runs

    def test_multiple_runs(self):
        runs = [(100, 5), (50, 3), (10_000, 1)]
        assert runlist.decode_runlist(runlist.encode_runlist(runs)) == runs

    def test_empty_runlist(self):
        assert runlist.decode_runlist(runlist.encode_runlist([])) == []

    def test_large_cluster_numbers(self):
        runs = [(2**40, 2**20)]
        assert runlist.decode_runlist(runlist.encode_runlist(runs)) == runs

    def test_backward_delta(self):
        # Second run starts *before* the first: negative delta encoding.
        runs = [(1000, 2), (10, 4)]
        blob = runlist.encode_runlist(runs)
        assert runlist.decode_runlist(blob) == runs


class TestEncodingErrors:
    def test_zero_length_run_rejected(self):
        with pytest.raises(ValueError):
            runlist.encode_runlist([(10, 0)])

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            runlist.encode_runlist([(-1, 5)])


class TestDecodingErrors:
    def test_missing_terminator(self):
        with pytest.raises(CorruptRecord):
            runlist.decode_runlist(b"")

    def test_truncated_run(self):
        blob = runlist.encode_runlist([(100, 5)])
        with pytest.raises(CorruptRecord):
            runlist.decode_runlist(blob[:2])

    def test_garbage_header(self):
        # header byte claims widths but the terminator is absent
        with pytest.raises(CorruptRecord):
            runlist.decode_runlist(b"\x11\x05")


class TestHelpers:
    def test_total_clusters(self):
        assert runlist.total_clusters([(0, 3), (10, 7)]) == 10

    def test_coalesce_adjacent(self):
        assert runlist.coalesce([(0, 2), (2, 3), (10, 1)]) == [(0, 5),
                                                               (10, 1)]

    def test_coalesce_preserves_gaps(self):
        runs = [(0, 1), (5, 1)]
        assert runlist.coalesce(runs) == runs

    def test_coalesce_empty(self):
        assert runlist.coalesce([]) == []
