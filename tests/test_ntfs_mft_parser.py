"""Tests for the raw MFT parser — the low-level file truth."""

import pytest

from repro.errors import CorruptRecord, FileNotFound
from repro.ntfs import MftParser, parse_volume
from repro.ntfs.constants import NAMESPACE_POSIX


class TestNamespaceReconstruction:
    def test_paths_match_volume_view(self, volume, disk):
        volume.create_directories("\\Windows\\System32")
        volume.create_file("\\Windows\\System32\\x.dll", b"x")
        parsed_paths = {entry.path for entry in parse_volume(disk)}
        volume_paths = {entry.path for entry in volume.walk()}
        assert parsed_paths == volume_paths

    def test_sees_win32_invisible_files(self, volume, disk):
        volume.create_file("\\ghost. ", b"", native=True)
        names = {entry.name for entry in parse_volume(disk)}
        assert "ghost. " in names

    def test_namespace_flag_preserved(self, volume, disk):
        volume.create_file("\\NUL", b"", native=True)
        entry = next(e for e in parse_volume(disk) if e.name == "NUL")
        assert entry.namespace == NAMESPACE_POSIX

    def test_deleted_files_absent(self, volume, disk):
        volume.create_file("\\gone.txt", b"")
        volume.delete_file("\\gone.txt")
        assert all(entry.name != "gone.txt" for entry in parse_volume(disk))

    def test_directory_flag(self, volume, disk):
        volume.create_directories("\\d")
        entry = next(e for e in parse_volume(disk) if e.name == "d")
        assert entry.is_directory

    def test_sizes_reported(self, volume, disk):
        volume.create_file("\\sized", b"12345")
        entry = next(e for e in parse_volume(disk) if e.name == "sized")
        assert entry.size == 5

    def test_empty_volume_parses(self, volume, disk):
        assert parse_volume(disk) == []


class TestBootstrap:
    def test_capacity_from_record_zero(self, volume, disk):
        parser = MftParser(disk.read_bytes)
        assert parser.mft_capacity() == volume.max_records

    def test_not_ntfs_raises(self):
        with pytest.raises(CorruptRecord):
            MftParser(lambda offset, length: b"\x00" * length)

    def test_read_record_out_of_range(self, volume, disk):
        parser = MftParser(disk.read_bytes)
        assert parser.read_record(-1) is None
        assert parser.read_record(volume.max_records + 5) is None

    def test_unallocated_slot_is_none(self, volume, disk):
        parser = MftParser(disk.read_bytes)
        assert parser.read_record(volume.max_records - 1) is None


class TestContentAccess:
    def test_resident_content(self, volume, disk):
        volume.create_file("\\small.txt", b"resident!")
        parser = MftParser(disk.read_bytes)
        assert parser.read_file_content("\\small.txt") == b"resident!"

    def test_nonresident_content(self, volume, disk):
        payload = b"Z" * 20_000
        volume.create_file("\\big.bin", payload)
        parser = MftParser(disk.read_bytes)
        assert parser.read_file_content("\\big.bin") == payload

    def test_case_insensitive_path(self, volume, disk):
        volume.create_file("\\Mixed.Case", b"ok")
        parser = MftParser(disk.read_bytes)
        assert parser.read_file_content("\\MIXED.case") == b"ok"

    def test_missing_path(self, volume, disk):
        parser = MftParser(disk.read_bytes)
        with pytest.raises(FileNotFound):
            parser.read_file_content("\\absent")

    def test_find_by_path(self, volume, disk):
        volume.create_directories("\\a")
        volume.create_file("\\a\\b", b"")
        parser = MftParser(disk.read_bytes)
        assert parser.find_by_path("\\a\\b").record_no > 0


class TestIndependenceFromApiView:
    def test_parser_sees_truth_not_index(self, volume, disk):
        """The parser rebuilds paths from parent refs alone: corrupt the
        in-memory index and the raw view is unaffected."""
        volume.create_directories("\\real")
        volume.create_file("\\real\\file", b"")
        volume._children.clear()   # sabotage the API-side index
        names = {entry.path for entry in parse_volume(disk)}
        assert "\\real\\file" in names
