"""Telemetry core: tracer spans, metrics registry, audit log, context."""

import json
import threading

import pytest

from repro.clock import SimClock
from repro.telemetry import Telemetry
from repro.telemetry import context as telemetry_context
from repro.telemetry.audit import (AuditLog, LAYER_IAT, LAYER_INLINE,
                                   LAYER_SSDT, resource_of)
from repro.telemetry.metrics import (DEFAULT_BUCKETS, MetricsRegistry,
                                     NullMetrics)
from repro.telemetry.tracer import NULL_SPAN, NULL_TRACER, Tracer


# -- tracer -------------------------------------------------------------------


class TestTracer:

    def test_spans_nest_and_record_both_clocks(self):
        clock = SimClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer") as outer:
            clock.advance(10.0)
            with tracer.span("inner", detail="x") as inner:
                clock.advance(2.5)
            outer.set(entries=7)
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.sim_seconds == pytest.approx(2.5)
        assert outer.sim_seconds == pytest.approx(12.5)
        assert outer.wall_seconds >= inner.wall_seconds >= 0.0
        assert outer.attrs["entries"] == 7
        assert inner.attrs["detail"] == "x"

    def test_sibling_ordering_preserved(self):
        tracer = Tracer()
        with tracer.span("root"):
            for index in range(3):
                with tracer.span(f"child-{index}"):
                    pass
        (root,) = tracer.roots()
        assert [child.name for child in root.children] == \
            ["child-0", "child-1", "child-2"]

    def test_exception_unwinds_span_stack(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        with tracer.span("after"):
            pass
        names = [span.name for span in tracer.roots()]
        assert names == ["outer", "after"]
        # both spans were closed despite the exception
        assert all(span.wall_end is not None for span in tracer.spans())

    def test_jsonl_export_parent_links(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        records = [json.loads(line) for line in
                   tracer.to_jsonl().splitlines()]
        by_name = {record["name"]: record for record in records}
        assert by_name["b"]["parent_id"] == by_name["a"]["span_id"]
        assert by_name["a"]["parent_id"] is None

    def test_render_shows_tree(self):
        tracer = Tracer()
        with tracer.span("scan", machine="pc"):
            with tracer.span("parse"):
                pass
        rendered = tracer.render()
        assert "scan" in rendered
        assert "\n  parse" in rendered
        assert "machine=pc" in rendered

    def test_null_tracer_is_inert_and_shared(self):
        assert NULL_TRACER.enabled is False
        span = NULL_TRACER.span("anything", attr=1)
        with span as inner:
            assert inner is NULL_SPAN
        inner.set(foo=1)   # never raises, never stores

    def test_per_thread_stacks_do_not_interleave(self):
        tracer = Tracer()
        barrier = threading.Barrier(4)
        errors = []

        def worker(name):
            try:
                barrier.wait()
                for index in range(20):
                    with tracer.span(f"{name}-outer-{index}"):
                        with tracer.span(f"{name}-inner-{index}"):
                            pass
            except Exception as exc:   # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(f"t{i}",))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        roots = tracer.roots()
        assert len(roots) == 80   # 4 threads x 20 outers, all roots
        for root in roots:
            prefix = root.name.rsplit("-outer-", 1)
            assert len(root.children) == 1
            child = root.children[0]
            # the inner span belongs to the same thread's same iteration
            assert child.name == f"{prefix[0]}-inner-{prefix[1]}"
            assert child.thread == root.thread


# -- metrics ------------------------------------------------------------------


class TestMetrics:

    def test_counters_gauges(self):
        registry = MetricsRegistry()
        registry.incr("a")
        registry.incr("a", 2.5)
        registry.gauge("g", 7.0)
        assert registry.counter("a") == pytest.approx(3.5)
        snap = registry.snapshot()
        assert snap["counters"]["a"] == pytest.approx(3.5)
        assert snap["gauges"]["g"] == 7.0

    def test_counter_handles_fold_into_reads(self):
        registry = MetricsRegistry()
        handle = registry.counter_handle("hot")
        handle.add()
        handle.add(2.0)
        registry.incr("hot", 10.0)
        assert registry.counter("hot") == pytest.approx(13.0)
        assert registry.snapshot()["counters"]["hot"] == pytest.approx(13.0)
        assert registry.counter_handle("hot") is handle

    def test_reset_zeroes_handles_in_place(self):
        registry = MetricsRegistry()
        handle = registry.counter_handle("hot")
        handle.add(5.0)
        registry.reset()
        assert registry.counter("hot") == 0.0
        handle.add()   # old reference still live and counted
        assert registry.counter("hot") == 1.0

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        registry.observe("h", 0.005)
        registry.observe("h", 5.0)
        registry.observe("h", 10_000.0)   # beyond the largest bound
        hist = registry.snapshot()["histograms"]["h"]
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(10_005.005)
        assert hist["counts"][DEFAULT_BUCKETS.index(0.01)] == 1
        assert hist["counts"][DEFAULT_BUCKETS.index(10.0)] == 1
        assert hist["counts"][-1] == 1   # +Inf overflow

    def test_dump_text_prometheus_flavour(self):
        registry = MetricsRegistry()
        registry.incr("c", 2)
        registry.observe("h", 0.5)
        text = registry.dump_text()
        assert "c 2" in text
        assert 'h{le="+Inf"}' in text
        assert "h_count 1" in text

    def test_null_metrics_records_nothing(self):
        registry = NullMetrics()
        registry.incr("a")
        registry.observe("h", 1.0)
        registry.counter_handle("a").add(100)
        assert registry.snapshot()["counters"] == {}

    def test_parallel_incr_is_exact(self):
        registry = MetricsRegistry()

        def worker():
            for __ in range(500):
                registry.incr("shared")

        threads = [threading.Thread(target=worker) for __ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("shared") == 4000


# -- audit --------------------------------------------------------------------


class TestAudit:

    def test_record_and_aggregate(self):
        audit = AuditLog()
        audit.record(LAYER_INLINE, "ntdll!NtQueryDirectoryFile",
                     kind="inline_detour", owner="hxdef", pid=7)
        audit.record(LAYER_INLINE, "ntdll!NtQueryDirectoryFile",
                     kind="inline_detour", owner="hxdef", pid=7)
        audit.record(LAYER_IAT, "kernel32!FindFirstFile",
                     kind="iat", owner="urbin", pid=7)
        assert len(audit) == 3
        aggregated = audit.aggregate()
        assert aggregated[(LAYER_INLINE, "ntdll!NtQueryDirectoryFile",
                           "hxdef", "inline_detour")] == 2
        assert audit.owners() == ["hxdef", "urbin"]

    def test_record_once_dedupes(self):
        audit = AuditLog()
        for __ in range(100):
            audit.record_once("raw-port", "raw-port:read_bytes",
                              owner="scrubber")
        assert len(audit) == 1

    def test_interposed_apis_by_resource(self):
        audit = AuditLog()
        audit.record(LAYER_INLINE, "ntdll!NtQueryDirectoryFile",
                     owner="g")
        audit.record(LAYER_SSDT, "SSDT:enumerate_key", owner="g")
        assert audit.interposed_apis(resource="file") == \
            ["ntdll!NtQueryDirectoryFile"]
        assert audit.interposed_apis(resource="registry") == \
            ["SSDT:enumerate_key"]
        assert len(audit.interposed_apis()) == 2

    def test_resource_of_classification(self):
        assert resource_of("ntdll!NtQueryDirectoryFile") == "file"
        assert resource_of("advapi32!RegEnumValue") == "registry"
        assert resource_of("kernel32!CreateToolhelp32Snapshot") == "process"
        assert resource_of("SSDT:enumerate_key") == "registry"
        assert resource_of("something!Unknown") == ""


# -- context ------------------------------------------------------------------


class TestContext:

    def test_defaults_when_inactive(self):
        assert telemetry_context.current_tracer() is NULL_TRACER
        assert telemetry_context.current_audit() is None

    def test_activation_and_restore(self):
        telemetry = Telemetry.enabled()
        with telemetry.activate():
            assert telemetry_context.current_tracer() is telemetry.tracer
            assert telemetry_context.current_audit() is telemetry.audit
        assert telemetry_context.current_tracer() is NULL_TRACER
        assert telemetry_context.current_audit() is None

    def test_activation_is_reentrant(self):
        outer = Telemetry.enabled()
        inner = Telemetry.enabled()
        with outer.activate():
            with inner.activate():
                assert telemetry_context.current_tracer() is inner.tracer
            assert telemetry_context.current_tracer() is outer.tracer

    def test_activation_is_thread_local(self):
        telemetry = Telemetry.enabled()
        seen = {}

        def other_thread():
            seen["tracer"] = telemetry_context.current_tracer()

        with telemetry.activate():
            thread = threading.Thread(target=other_thread)
            thread.start()
            thread.join()
        assert seen["tracer"] is NULL_TRACER

    def test_disabled_telemetry_is_noop(self):
        telemetry = Telemetry.disabled()
        assert not telemetry.is_enabled
        with telemetry.activate():
            assert telemetry_context.current_tracer() is NULL_TRACER
