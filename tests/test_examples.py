"""Smoke tests: every example script must run to completion.

The examples are executable documentation — these tests keep them from
rotting as the library evolves.  Each one runs in-process via runpy with
stdout captured.
"""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS,
                         ids=[path.stem for path in EXAMPLE_SCRIPTS])
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script.name} should narrate its steps"


def test_examples_directory_is_complete():
    names = {path.stem for path in EXAMPLE_SCRIPTS}
    assert {"quickstart", "enterprise_sweep", "incident_response",
            "keylogger_hunt", "unix_rootkits", "forensics_lab"} <= names
