"""Strider GhostBuster reproduction.

A faithful, laptop-scale reproduction of *Detecting Stealth Software with
Strider GhostBuster* (Wang et al., DSN 2005) on a simulated Windows
substrate: a byte-level NTFS volume, regf-style registry hives, a
pointer-linked simulated kernel, the hookable Win32/Native API stack, the
paper's twelve ghostware programs, and the GhostBuster cross-view diff
detector with its inside- and outside-the-box workflows.

Quickstart::

    from repro import Machine, GhostBuster
    from repro.ghostware import HackerDefender

    machine = Machine("victim")
    machine.boot()
    HackerDefender().install(machine)

    report = GhostBuster(machine, advanced=True).detect()
    print(report.summary())
"""

from repro.clock import SimClock
from repro.disk import Disk, DiskGeometry
from repro.machine import Machine, PerfModel
from repro.core import (DetectionReport, Finding, GhostBuster,
                        ResourceType, ScanSnapshot, WinPEEnvironment,
                        cross_view_diff, disinfect)
from repro.telemetry import (AuditLog, MetricsRegistry, Telemetry,
                             Tracer, global_metrics)

__version__ = "1.0.0"

__all__ = [
    "SimClock", "Disk", "DiskGeometry",
    "Machine", "PerfModel",
    "GhostBuster", "WinPEEnvironment",
    "DetectionReport", "Finding", "ResourceType", "ScanSnapshot",
    "cross_view_diff", "disinfect",
    "Telemetry", "Tracer", "AuditLog", "MetricsRegistry", "global_metrics",
    "__version__",
]
