"""Pluggable disk storage backends.

Two implementations sit behind :class:`repro.disk.disk.Disk`:

* :class:`SparseDictBackend` — the original dict-of-sectors store.  Pays
  per written sector, ideal for tiny fixtures with huge nominal
  geometries, but every byte-range read joins per-sector copies.
* :class:`FlatExtentBackend` — one contiguous extent (a ``bytearray``,
  spilling to an anonymous mmap-backed temp file past a threshold) that
  grows to the highest written offset.  Byte-range reads are single
  slices, and :meth:`FlatExtentBackend.read_view` exposes the underlying
  buffer as a **zero-copy** :class:`memoryview` so batch parsers walk
  disk structures without materializing intermediate ``bytes``.

The flat backend is also where copy-on-write cloning lives: the first
:meth:`~FlatExtentBackend.clone` *seals* the extent into an immutable
shared base, and both the original and every clone switch to overlay
mode — a dict of privately rewritten sectors over the read-only base.
A fleet imaged from one golden disk therefore shares a single extent and
pays only for the sectors each machine actually diverges.

Memoryview lifetime rule: a view returned by ``read_view`` reflects the
disk content *as of the call* and is only guaranteed until the next
write to the disk.  Writes never mutate a sealed base (overlay sectors
shadow it) and never resize a buffer with exported views (growth copies
into a fresh buffer instead), so stale views remain safely readable —
they are just no longer the disk's current content.

Backends hold bytes only.  Bounds checks, the generation counter, the
change journal and the fault-injector hook all stay in ``Disk``; backend
behaviour is byte-for-byte identical across implementations (property
tested in ``tests/test_disk_backends.py``).
"""

from __future__ import annotations

import os
import tempfile
from typing import Dict, Iterator, NamedTuple, Optional, Tuple

try:
    import mmap as _mmap
except ImportError:          # pragma: no cover - mmap is stdlib everywhere
    _mmap = None

from repro.disk.geometry import DiskGeometry

# Extent bytes past which the flat backend spills from a heap bytearray
# to an unlinked mmap-backed temp file (overridable per backend and via
# REPRO_DISK_SPILL_BYTES).
DEFAULT_SPILL_BYTES = 64 * 1024 * 1024
_MIN_EXTENT = 1 << 16


class StorageStats(NamedTuple):
    """Physically materialized storage, split by ownership.

    ``shared_bytes`` is the sealed copy-on-write base this disk reads
    through (the same base object is shared by every clone — sum it once
    per ``base_id``, not once per machine).  ``private_bytes`` is what
    this disk alone pays for: its own extent or overlay sectors.
    """

    shared_bytes: int
    private_bytes: int
    base_id: Optional[int] = None

    @property
    def total_bytes(self) -> int:
        return self.shared_bytes + self.private_bytes


class SparseDictBackend:
    """Dict-of-sectors storage; absent sectors read as zeros."""

    name = "sparse"

    def __init__(self, geometry: DiskGeometry):
        self._geometry = geometry
        self._sectors: Dict[int, bytes] = {}

    def read_sector(self, index: int) -> bytes:
        return self._sectors.get(index,
                                 b"\x00" * self._geometry.sector_size)

    def write_sector(self, index: int, data: bytes) -> None:
        self._sectors[index] = bytes(data)

    def read_range(self, offset: int, length: int) -> bytes:
        sector_size = self._geometry.sector_size
        first = offset // sector_size
        last = (offset + length - 1) // sector_size
        get = self._sectors.get
        zero = b"\x00" * sector_size
        blob = b"".join([get(i, zero) for i in range(first, last + 1)])
        start = offset - first * sector_size
        return blob[start:start + length]

    def read_view(self, offset: int, length: int) -> memoryview:
        # No contiguous buffer exists; the "view" is a one-off copy.
        return memoryview(self.read_range(offset, length))

    def write_range(self, offset: int, data: bytes) -> None:
        sector_size = self._geometry.sector_size
        length = len(data)
        first = offset // sector_size
        last = (offset + length - 1) // sector_size
        blob = bytearray(b"".join(self.read_sector(i)
                                  for i in range(first, last + 1)))
        start = offset - first * sector_size
        blob[start:start + length] = data
        for pos, index in enumerate(range(first, last + 1)):
            self._sectors[index] = bytes(
                blob[pos * sector_size:(pos + 1) * sector_size])

    def written_sectors(self) -> Iterator[Tuple[int, bytes]]:
        for index in sorted(self._sectors):
            yield index, self._sectors[index]

    def storage_stats(self) -> StorageStats:
        return StorageStats(
            0, len(self._sectors) * self._geometry.sector_size)

    def clone(self) -> "SparseDictBackend":
        copy = SparseDictBackend(self._geometry)
        copy._sectors = dict(self._sectors)
        return copy


class _SpillFile:
    """An unlinked temp file backing an mmap extent."""

    def __init__(self) -> None:
        fd, path = tempfile.mkstemp(prefix="repro-disk-")
        os.unlink(path)        # anonymous: vanishes when the fd closes
        self._fd = fd

    def map(self, size: int) -> "_mmap.mmap":
        os.ftruncate(self._fd, size)
        return _mmap.mmap(self._fd, size)

    def __del__(self) -> None:
        try:
            os.close(self._fd)
        except OSError:        # pragma: no cover - already closed
            pass


class _SharedBase:
    """A sealed flat extent, shared read-only by COW overlays."""

    __slots__ = ("buf", "view", "extent", "written", "sector_size",
                 "retired_maps", "spill")

    def __init__(self, buf, extent: int, written: frozenset,
                 sector_size: int, retired_maps, spill) -> None:
        self.buf = buf
        self.view = memoryview(buf)
        self.extent = extent
        self.written = written
        self.sector_size = sector_size
        # Old mmap objects (superseded by growth) that exported views may
        # still reference; kept alive so those views stay readable.
        self.retired_maps = retired_maps
        self.spill = spill

    def read_range(self, offset: int, length: int) -> bytes:
        end = offset + length
        if end <= self.extent:
            return bytes(self.view[offset:end])
        if offset >= self.extent:
            return b"\x00" * length
        head = bytes(self.view[offset:self.extent])
        return head + b"\x00" * (length - len(head))

    def read_view(self, offset: int, length: int) -> memoryview:
        end = offset + length
        if end <= self.extent:
            return self.view[offset:end]
        return memoryview(self.read_range(offset, length))


class FlatExtentBackend:
    """Contiguous extent with zero-copy views and COW cloning.

    Starts in *plain* mode: one growable buffer, writes land in place.
    The first :meth:`clone` seals the buffer into a :class:`_SharedBase`
    and flips this backend (and the clone) to *overlay* mode, where
    writes materialize private whole-sector copies and reads compose
    the overlay over the immutable base.
    """

    name = "flat"

    def __init__(self, geometry: DiskGeometry,
                 spill_bytes: Optional[int] = None):
        self._geometry = geometry
        if spill_bytes is None:
            spill_bytes = int(os.environ.get("REPRO_DISK_SPILL_BYTES",
                                             DEFAULT_SPILL_BYTES))
        self._spill_bytes = spill_bytes
        self._buf = bytearray()
        self._extent = 0
        self._written: set = set()
        self._retired_maps: list = []
        self._spill: Optional[_SpillFile] = None
        # Overlay mode (set by clone): reads fall through to the sealed
        # base for any sector without a private overlay copy.
        self._base: Optional[_SharedBase] = None
        self._overlay: Dict[int, bytes] = {}
        self._overlay_low = 0
        self._overlay_high = -1

    # -- extent management (plain mode) ------------------------------------

    def _ensure(self, end: int) -> None:
        """Grow the extent to cover ``end`` bytes (zero filled)."""
        if end <= self._extent:
            return
        sector_size = self._geometry.sector_size
        target = max(end, self._extent * 2, _MIN_EXTENT)
        target = min(self._geometry.size_bytes,
                     -(-target // sector_size) * sector_size)
        if _mmap is not None and target > self._spill_bytes:
            spill = self._spill or _SpillFile()
            grown = spill.map(target)
            grown[0:self._extent] = self._buf[0:self._extent]
            if self._spill is not None:
                # Superseded mapping: exported views may still hold it.
                self._retired_maps.append(self._buf)
            self._spill = spill
            self._buf = grown
        else:
            try:
                self._buf.extend(b"\x00" * (target - self._extent))
            except BufferError:
                # Exported memoryviews pin the old buffer; copy-on-grow
                # leaves them valid (on the old bytes) and moves on.
                grown = bytearray(target)
                grown[0:self._extent] = self._buf
                self._buf = grown
        self._extent = target

    # -- sector interface ----------------------------------------------------

    def read_sector(self, index: int) -> bytes:
        sector_size = self._geometry.sector_size
        if self._base is not None:
            cached = self._overlay.get(index)
            if cached is not None:
                return cached
            return self._base.read_range(index * sector_size, sector_size)
        offset = index * sector_size
        end = offset + sector_size
        if offset >= self._extent:
            return b"\x00" * sector_size
        if end <= self._extent:
            return bytes(self._buf[offset:end])
        head = bytes(self._buf[offset:self._extent])
        return head + b"\x00" * (sector_size - len(head))

    def write_sector(self, index: int, data: bytes) -> None:
        if self._base is not None:
            self._overlay[index] = bytes(data)
            self._track_overlay(index, index)
            return
        sector_size = self._geometry.sector_size
        offset = index * sector_size
        self._ensure(offset + sector_size)
        self._buf[offset:offset + sector_size] = data
        self._written.add(index)

    # -- byte-range interface ------------------------------------------------

    def _track_overlay(self, first: int, last: int) -> None:
        if self._overlay_high < self._overlay_low:
            self._overlay_low, self._overlay_high = first, last
        else:
            if first < self._overlay_low:
                self._overlay_low = first
            if last > self._overlay_high:
                self._overlay_high = last

    def _overlay_in(self, first: int, last: int) -> bool:
        if not self._overlay or last < self._overlay_low \
                or first > self._overlay_high:
            return False
        if len(self._overlay) > last - first + 1:
            return any(index in self._overlay
                       for index in range(first, last + 1))
        return any(first <= index <= last for index in self._overlay)

    def read_range(self, offset: int, length: int) -> bytes:
        end = offset + length
        if self._base is not None:
            sector_size = self._geometry.sector_size
            first = offset // sector_size
            last = (end - 1) // sector_size
            if not self._overlay_in(first, last):
                return self._base.read_range(offset, length)
            blob = bytearray(self._base.read_range(
                first * sector_size, (last - first + 1) * sector_size))
            for index, data in self._overlay.items():
                if first <= index <= last:
                    position = (index - first) * sector_size
                    blob[position:position + sector_size] = data
            start = offset - first * sector_size
            return bytes(blob[start:start + length])
        if end <= self._extent:
            return bytes(self._buf[offset:end])
        if offset >= self._extent:
            return b"\x00" * length
        head = bytes(self._buf[offset:self._extent])
        return head + b"\x00" * (length - len(head))

    def read_view(self, offset: int, length: int) -> memoryview:
        end = offset + length
        if self._base is not None:
            sector_size = self._geometry.sector_size
            first = offset // sector_size
            last = (end - 1) // sector_size
            if not self._overlay_in(first, last):
                return self._base.read_view(offset, length)
            return memoryview(self.read_range(offset, length))
        # Materialize through the requested end so the view is one real
        # slice of the extent (zero fill is identical content; growth is
        # still capped by the geometry, which Disk bounds-checked).
        self._ensure(end)
        return memoryview(self._buf)[offset:end]

    def write_range(self, offset: int, data: bytes) -> None:
        length = len(data)
        end = offset + length
        sector_size = self._geometry.sector_size
        first = offset // sector_size
        last = (end - 1) // sector_size
        if self._base is not None:
            blob = bytearray(self.read_range(
                first * sector_size, (last - first + 1) * sector_size))
            start = offset - first * sector_size
            blob[start:start + length] = data
            for position, index in enumerate(range(first, last + 1)):
                self._overlay[index] = bytes(
                    blob[position * sector_size:
                         (position + 1) * sector_size])
            self._track_overlay(first, last)
            return
        self._ensure(end)
        self._buf[offset:end] = data
        self._written.update(range(first, last + 1))

    # -- maintenance --------------------------------------------------------

    def written_sectors(self) -> Iterator[Tuple[int, bytes]]:
        if self._base is not None:
            indices = set(self._base.written)
            indices.update(self._overlay)
        else:
            indices = self._written
        for index in sorted(indices):
            yield index, self.read_sector(index)

    def storage_stats(self) -> StorageStats:
        sector_size = self._geometry.sector_size
        if self._base is not None:
            return StorageStats(len(self._base.written) * sector_size,
                                len(self._overlay) * sector_size,
                                base_id=id(self._base))
        return StorageStats(0, len(self._written) * sector_size)

    def clone(self) -> "FlatExtentBackend":
        if self._base is None:
            # Seal: freeze the extent into a shared base and flip this
            # backend to overlay mode.  The buffer is adopted, never
            # copied — from here on nothing writes it.
            self._base = _SharedBase(self._buf, self._extent,
                                     frozenset(self._written),
                                     self._geometry.sector_size,
                                     self._retired_maps, self._spill)
            self._buf = bytearray()
            self._extent = 0
            self._written = set()
            self._retired_maps = []
            self._spill = None
        copy = FlatExtentBackend(self._geometry,
                                 spill_bytes=self._spill_bytes)
        copy._base = self._base
        copy._overlay = dict(self._overlay)
        copy._overlay_low = self._overlay_low
        copy._overlay_high = self._overlay_high
        return copy


BACKENDS = {
    SparseDictBackend.name: SparseDictBackend,
    FlatExtentBackend.name: FlatExtentBackend,
}

DEFAULT_BACKEND = FlatExtentBackend.name


def make_backend(name: Optional[str], geometry: DiskGeometry):
    """Instantiate a backend by name (None → env / default selection)."""
    if name is None:
        name = os.environ.get("REPRO_DISK_BACKEND", DEFAULT_BACKEND)
    factory = BACKENDS.get(name)
    if factory is None:
        raise ValueError(
            f"unknown disk backend {name!r} (have {sorted(BACKENDS)})")
    return factory(geometry)
