"""Disk geometry description."""

from __future__ import annotations

from dataclasses import dataclass

SECTOR_SIZE = 512


@dataclass(frozen=True)
class DiskGeometry:
    """Immutable description of a virtual disk's shape.

    ``sector_count`` bounds the addressable space; storage is sparse, so a
    large nominal geometry costs nothing until sectors are written.
    """

    sector_count: int
    sector_size: int = SECTOR_SIZE

    def __post_init__(self) -> None:
        if self.sector_count <= 0:
            raise ValueError("sector_count must be positive")
        if self.sector_size <= 0 or self.sector_size % 512 != 0:
            raise ValueError("sector_size must be a positive multiple of 512")

    @property
    def size_bytes(self) -> int:
        """Total addressable capacity in bytes."""
        return self.sector_count * self.sector_size

    @classmethod
    def from_megabytes(cls, megabytes: int, sector_size: int = SECTOR_SIZE) -> "DiskGeometry":
        """Build a geometry with at least ``megabytes`` of capacity."""
        if megabytes <= 0:
            raise ValueError("megabytes must be positive")
        return cls(sector_count=(megabytes * 1024 * 1024) // sector_size,
                   sector_size=sector_size)
