"""Virtual disk with byte- and sector-level access.

Unwritten space reads back as zeros.  The disk keeps no notion of
filesystems or partitions — that is the NTFS layer's job — and it has no
hook points: code holding a :class:`Disk` reference reads ground truth.
Interceptable *raw device* access inside a potentially infected OS is
modelled one layer up, by :class:`repro.kernel.kernel.DiskPort`.

Byte storage itself is pluggable (see :mod:`repro.disk.backends`): the
sparse dict-of-sectors backend suits tiny fixtures with huge nominal
geometries; the flat extent backend serves contiguous zero-copy
``memoryview`` reads and copy-on-write clones for fleet imaging.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple, Union

from repro.disk.backends import StorageStats, make_backend
from repro.disk.geometry import DiskGeometry
from repro.disk.journal import ChangeJournal
from repro.errors import DiskError


class Disk:
    """A sector-addressable virtual disk.

    ``generation`` is a monotonic write counter: every mutation bumps it,
    so any derived view of the disk (a parsed MFT namespace, for example)
    can be cached keyed on the generation and dropped the instant the
    underlying bytes change.  ``raw_cache`` is the host for such derived
    views; consumers store ``(generation, payload)`` entries under their
    own key and must revalidate the generation on every lookup.

    ``journal`` records *which sectors* each generation bump touched, so
    a consumer holding a stale cached view can repair just the derived
    state those sectors back — or learn that the journal wrapped and a
    full rebuild is owed (see :mod:`repro.disk.journal`).

    ``backend`` selects the storage implementation by name (``"sparse"``
    or ``"flat"``), by instance, or — when ``None`` — from the
    ``REPRO_DISK_BACKEND`` environment variable (default ``"flat"``).
    """

    def __init__(self, geometry: DiskGeometry,
                 backend: Union[str, None, object] = None):
        self.geometry = geometry
        if backend is None or isinstance(backend, str):
            backend = make_backend(backend, geometry)
        self._backend = backend
        self.generation: int = 0
        self.raw_cache: Dict[str, tuple] = {}
        self.journal = ChangeJournal()
        # Chaos hook: when a fault plan attaches an injector here, every
        # byte-level read flows through it (transient errors, torn
        # sectors, slow reads).  None — the default — costs one check.
        self.fault_injector = None

    @property
    def backend_name(self) -> str:
        return self._backend.name

    # -- sector-level interface -------------------------------------------

    def read_sector(self, index: int) -> bytes:
        """Return one sector; zeros if never written."""
        self._check_sector(index)
        return self._backend.read_sector(index)

    def write_sector(self, index: int, data: bytes) -> None:
        """Write exactly one sector."""
        self._check_sector(index)
        if len(data) != self.geometry.sector_size:
            raise DiskError(
                f"sector write must be exactly {self.geometry.sector_size} "
                f"bytes, got {len(data)}")
        self._backend.write_sector(index, data)
        self.generation += 1
        self.journal.record(self.generation, index, 1, "sector")

    # -- byte-level interface ---------------------------------------------

    def _check_read(self, offset: int, length: int) -> None:
        if length < 0:
            raise DiskError("negative read length")
        if offset < 0 or offset + length > self.geometry.size_bytes:
            raise DiskError(
                f"read [{offset}, {offset + length}) outside disk of "
                f"{self.geometry.size_bytes} bytes")

    def read_bytes(self, offset: int, length: int) -> bytes:
        """Read an arbitrary byte range, crossing sector boundaries."""
        self._check_read(offset, length)
        if length == 0:
            return b""
        data = self._backend.read_range(offset, length)
        if self.fault_injector is not None:
            return self.fault_injector.filter_read(offset, length, data)
        return data

    def read_view(self, offset: int, length: int) -> memoryview:
        """Read a byte range as a memoryview — zero-copy where possible.

        The view reflects disk content *as of this call* and is only
        guaranteed current until the next write; backends never mutate a
        buffer under an exported view, so stale views stay readable.
        With a fault injector attached the read is routed through
        :meth:`read_bytes` so injected damage is byte-identical on both
        paths.
        """
        self._check_read(offset, length)
        if length == 0:
            return memoryview(b"")
        if self.fault_injector is not None:
            return memoryview(self.read_bytes(offset, length))
        return self._backend.read_view(offset, length)

    def write_bytes(self, offset: int, data: bytes) -> None:
        """Write an arbitrary byte range with read-modify-write at the edges."""
        length = len(data)
        if offset < 0 or offset + length > self.geometry.size_bytes:
            raise DiskError(
                f"write [{offset}, {offset + length}) outside disk of "
                f"{self.geometry.size_bytes} bytes")
        if length == 0:
            return
        sector_size = self.geometry.sector_size
        first = offset // sector_size
        last = (offset + length - 1) // sector_size
        self._backend.write_range(offset, data)
        self.generation += 1
        self.journal.record(self.generation, first, last - first + 1, "bytes")

    # -- maintenance --------------------------------------------------------

    def written_sectors(self) -> Iterator[Tuple[int, bytes]]:
        """Iterate (index, data) over sectors that were ever written."""
        return self._backend.written_sectors()

    def storage_stats(self) -> StorageStats:
        """Materialized storage split into shared-base vs private bytes."""
        return self._backend.storage_stats()

    def used_bytes(self) -> int:
        """Bytes of physically materialized storage (for cost accounting).

        Under copy-on-write clones this is shared + private — callers
        accounting for a whole fleet should use :meth:`storage_stats`
        and count each shared base once (see
        :func:`repro.fleet.provision.fleet_storage_stats`).
        """
        stats = self._backend.storage_stats()
        return stats.shared_bytes + stats.private_bytes

    def clone(self) -> "Disk":
        """Copy the disk (used to snapshot a VM's virtual drive).

        On the flat backend this is copy-on-write: the clone and the
        original share one sealed base extent and each pays only for the
        sectors it rewrites.  The clone inherits the generation counter
        and the current cache entries: a fleet of machines imaged from
        one golden disk shares the golden parse until any clone diverges
        (its own writes bump its own generation, which invalidates its
        inherited entries).
        """
        copy = Disk(self.geometry, backend=self._backend.clone())
        copy.generation = self.generation
        copy.raw_cache = dict(self.raw_cache)
        copy.journal = self.journal.clone()
        # A fault injector is bound to one machine's scope; clones get
        # their own (or none) via FaultPlan.attach.
        copy.fault_injector = None
        return copy

    def _check_sector(self, index: int) -> None:
        if index < 0 or index >= self.geometry.sector_count:
            raise DiskError(
                f"sector {index} outside disk of "
                f"{self.geometry.sector_count} sectors")
