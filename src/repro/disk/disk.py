"""Sparse virtual disk with byte- and sector-level access.

Unwritten space reads back as zeros.  The disk keeps no notion of
filesystems or partitions — that is the NTFS layer's job — and it has no
hook points: code holding a :class:`Disk` reference reads ground truth.
Interceptable *raw device* access inside a potentially infected OS is
modelled one layer up, by :class:`repro.kernel.kernel.DiskPort`.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.disk.geometry import DiskGeometry
from repro.disk.journal import ChangeJournal
from repro.errors import DiskError


class Disk:
    """A sparse array of sectors.

    Storage is a dict keyed by sector index; absent sectors are all-zero.
    This lets experiments declare multi-gigabyte nominal geometries while
    only paying for the sectors actually written.

    ``generation`` is a monotonic write counter: every mutation bumps it,
    so any derived view of the disk (a parsed MFT namespace, for example)
    can be cached keyed on the generation and dropped the instant the
    underlying bytes change.  ``raw_cache`` is the host for such derived
    views; consumers store ``(generation, payload)`` entries under their
    own key and must revalidate the generation on every lookup.

    ``journal`` records *which sectors* each generation bump touched, so
    a consumer holding a stale cached view can repair just the derived
    state those sectors back — or learn that the journal wrapped and a
    full rebuild is owed (see :mod:`repro.disk.journal`).
    """

    def __init__(self, geometry: DiskGeometry):
        self.geometry = geometry
        self._sectors: Dict[int, bytes] = {}
        self.generation: int = 0
        self.raw_cache: Dict[str, tuple] = {}
        self.journal = ChangeJournal()
        # Chaos hook: when a fault plan attaches an injector here, every
        # byte-level read flows through it (transient errors, torn
        # sectors, slow reads).  None — the default — costs one check.
        self.fault_injector = None

    # -- sector-level interface -------------------------------------------

    def read_sector(self, index: int) -> bytes:
        """Return one sector; zeros if never written."""
        self._check_sector(index)
        return self._sectors.get(index, b"\x00" * self.geometry.sector_size)

    def write_sector(self, index: int, data: bytes) -> None:
        """Write exactly one sector."""
        self._check_sector(index)
        if len(data) != self.geometry.sector_size:
            raise DiskError(
                f"sector write must be exactly {self.geometry.sector_size} "
                f"bytes, got {len(data)}")
        self._sectors[index] = bytes(data)
        self.generation += 1
        self.journal.record(self.generation, index, 1, "sector")

    # -- byte-level interface ---------------------------------------------

    def read_bytes(self, offset: int, length: int) -> bytes:
        """Read an arbitrary byte range, crossing sector boundaries."""
        if length < 0:
            raise DiskError("negative read length")
        if offset < 0 or offset + length > self.geometry.size_bytes:
            raise DiskError(
                f"read [{offset}, {offset + length}) outside disk of "
                f"{self.geometry.size_bytes} bytes")
        if length == 0:
            return b""
        sector_size = self.geometry.sector_size
        first = offset // sector_size
        last = (offset + length - 1) // sector_size
        chunks = [self.read_sector(i) for i in range(first, last + 1)]
        blob = b"".join(chunks)
        start = offset - first * sector_size
        data = blob[start:start + length]
        if self.fault_injector is not None:
            return self.fault_injector.filter_read(offset, length, data)
        return data

    def write_bytes(self, offset: int, data: bytes) -> None:
        """Write an arbitrary byte range with read-modify-write at the edges."""
        length = len(data)
        if offset < 0 or offset + length > self.geometry.size_bytes:
            raise DiskError(
                f"write [{offset}, {offset + length}) outside disk of "
                f"{self.geometry.size_bytes} bytes")
        if length == 0:
            return
        sector_size = self.geometry.sector_size
        first = offset // sector_size
        last = (offset + length - 1) // sector_size
        blob = bytearray(b"".join(self.read_sector(i)
                                  for i in range(first, last + 1)))
        start = offset - first * sector_size
        blob[start:start + length] = data
        for pos, index in enumerate(range(first, last + 1)):
            self._sectors[index] = bytes(
                blob[pos * sector_size:(pos + 1) * sector_size])
        self.generation += 1
        self.journal.record(self.generation, first, last - first + 1, "bytes")

    # -- maintenance --------------------------------------------------------

    def written_sectors(self) -> Iterator[Tuple[int, bytes]]:
        """Iterate (index, data) over sectors that were ever written."""
        for index in sorted(self._sectors):
            yield index, self._sectors[index]

    def used_bytes(self) -> int:
        """Bytes of physically materialized storage (for cost accounting)."""
        return len(self._sectors) * self.geometry.sector_size

    def clone(self) -> "Disk":
        """Deep-copy the disk (used to snapshot a VM's virtual drive).

        The clone inherits the generation counter and the current cache
        entries: a fleet of machines imaged from one golden disk shares
        the golden parse until any clone diverges (its own writes bump
        its own generation, which invalidates its inherited entries).
        """
        copy = Disk(self.geometry)
        copy._sectors = dict(self._sectors)
        copy.generation = self.generation
        copy.raw_cache = dict(self.raw_cache)
        copy.journal = self.journal.clone()
        # A fault injector is bound to one machine's scope; clones get
        # their own (or none) via FaultPlan.attach.
        copy.fault_injector = None
        return copy

    def _check_sector(self, index: int) -> None:
        if index < 0 or index >= self.geometry.sector_count:
            raise DiskError(
                f"sector {index} outside disk of "
                f"{self.geometry.sector_count} sectors")
