"""Virtual sector-addressable disk.

The disk is the lowest layer of the simulated machine: the NTFS volume
serializes MFT records and file data onto it, and the outside-the-box scan
reads it directly, below every hookable software layer.
"""

from repro.disk.geometry import DiskGeometry
from repro.disk.backends import (FlatExtentBackend, SparseDictBackend,
                                 StorageStats, make_backend)
from repro.disk.disk import Disk
from repro.disk.journal import ChangeJournal, JournalRecord

__all__ = ["DiskGeometry", "Disk", "ChangeJournal", "JournalRecord",
           "SparseDictBackend", "FlatExtentBackend", "StorageStats",
           "make_backend"]
