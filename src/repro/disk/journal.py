"""USN-style change journal: a bounded log of disk writes.

Real NTFS keeps an *update sequence number* journal — a ring buffer of
change records that incremental consumers (indexers, backup agents,
scanners) read instead of re-walking the volume.  When a consumer falls
so far behind that the ring has wrapped past its bookmark, the journal
answers with ``ERROR_JOURNAL_ENTRY_DELETED`` and the consumer must fall
back to a full rescan.  :class:`ChangeJournal` reproduces exactly that
contract on top of the virtual :class:`~repro.disk.Disk`:

* every ``write_sector`` / ``write_bytes`` call appends one
  :class:`JournalRecord` ``(generation, first_sector, sector_count,
  kind)``;
* the ring is bounded — once ``capacity`` records are retained the
  oldest is dropped and the coverage floor advances past it;
* :meth:`records_since` either returns the complete, gap-free list of
  writes in ``(from_generation, to_generation]`` or ``None``, meaning
  "journal wrapped / cannot prove coverage — do a full reparse".

The gap rule is what makes the journal safe under chaos: the fault
injector invalidates possibly-poisoned caches by bumping the disk
generation *without* writing anything, so the next journal record
arrives non-contiguous.  The journal then refuses to vouch for anything
before the gap, and every delta consumer degrades to a cold parse.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, NamedTuple, Optional

from repro.telemetry.metrics import global_metrics

DEFAULT_CAPACITY = 4096


class JournalRecord(NamedTuple):
    """One write, as the journal saw it."""

    generation: int     # disk generation *after* the write
    first_sector: int
    sector_count: int
    kind: str           # "sector" | "bytes"


class ChangeJournal:
    """Bounded ring buffer of write records with wrap/gap semantics."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 start_generation: int = 0):
        if capacity < 1:
            raise ValueError("journal capacity must be positive")
        self.capacity = capacity
        self._records: Deque[JournalRecord] = deque()
        # Nothing at or before the floor generation is reconstructible.
        self._floor = start_generation
        self._last = start_generation
        self.overflowed = False
        self._overflow_counter = global_metrics().counter_handle(
            "journal.overflow")

    def __len__(self) -> int:
        return len(self._records)

    @property
    def last_generation(self) -> int:
        """Generation of the newest recorded write."""
        return self._last

    def record(self, generation: int, first_sector: int,
               sector_count: int, kind: str) -> None:
        """Append one write record (called by the disk on every write)."""
        if generation != self._last + 1:
            # The generation advanced outside the write path — e.g. a
            # fault injector invalidating caches after a torn read.  No
            # record exists for those bumps, so nothing at or before
            # them can ever be proven covered.
            self._floor = generation - 1
        if len(self._records) >= self.capacity:
            dropped = self._records.popleft()
            if dropped.generation > self._floor:
                self._floor = dropped.generation
            self.overflowed = True
        self._records.append(
            JournalRecord(generation, first_sector, sector_count, kind))
        self._last = generation

    def records_since(self, from_generation: int,
                      to_generation: int) -> Optional[List[JournalRecord]]:
        """Complete write list in ``(from, to]``, or None if unprovable.

        ``None`` is the USN-wrap answer: the ring dropped records the
        caller would need (overflow), or generations advanced without a
        record (gap), or the bookmark itself is inconsistent.  The
        caller must treat it as "fall back to full reparse"; the
        ``journal.overflow`` counter tallies every such refusal.
        """
        if to_generation == from_generation:
            return []
        if (to_generation < from_generation
                or from_generation < self._floor
                or to_generation != self._last):
            self._overflow_counter.add()
            return None
        return [record for record in self._records
                if record.generation > from_generation]

    def clone(self) -> "ChangeJournal":
        """Copy the journal alongside its disk (golden-image cloning).

        The clone inherits the retained records, floor and overflow
        state, so a machine imaged from a golden disk can still patch
        the golden parse it inherited through ``raw_cache``.
        """
        copy = ChangeJournal(capacity=self.capacity,
                             start_generation=self._floor)
        copy._records = deque(self._records)
        copy._last = self._last
        copy.overflowed = self.overflowed
        return copy
