r"""The simulated Windows machine.

:class:`Machine` wires the substrates together and gives them boot
semantics:

* **format or attach** — a fresh machine formats its disk, lays down the
  OS file tree and registry hives; a machine built around an existing disk
  re-mounts the volume and re-loads the hives from their files;
* **boot** — builds a *fresh* kernel (hooks and filters do not survive a
  reboot), reloads the registry from disk, starts the system processes,
  then executes the Auto-Start Extensibility Points: SCM services and
  drivers, ``Run``/``RunOnce`` keys, and ``AppInit_DLLs`` injection into
  each new process.  Ghostware persists exactly the way the paper
  describes — through ASEP hooks — so deleting a hidden hook and rebooting
  disables the malware even while its files remain;
* **process model** — every started process gets the standard module set
  (NtDll, Kernel32, Advapi32, User32) as private CodeSites plus kernel-side
  EPROCESS/PEB state.

"Programs" (what an EXE/DLL/driver *does* when started) are registered
callables keyed by image path; an entry only runs while its backing file
exists, so removing the file neuters the registration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.clock import SimClock
from repro.disk import Disk, DiskGeometry
from repro.errors import FileNotFound, MachineStateError
from repro.kernel import Kernel
from repro.ntfs import NtfsVolume
from repro.ntfs.naming import basename
from repro.registry import Hive, Registry
from repro.usermode.injection import inject_dll
from repro.usermode.process import Process
from repro.winapi import advapi32, kernel32, nt
from repro.winapi.iomanager import IoManager
from repro.winapi.services import ServiceControlManager

ProgramEntry = Callable[["Machine", Optional[Process]], None]
ProcessStartHook = Callable[["Machine", Process], None]

APPINIT_KEY = "HKLM\\SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion\\Windows"
RUN_KEY = "HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run"
RUNONCE_KEY = "HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\RunOnce"

HIVE_FILES = {
    "HKLM\\SOFTWARE": "\\Windows\\System32\\config\\SOFTWARE",
    "HKLM\\SYSTEM": "\\Windows\\System32\\config\\SYSTEM",
    "HKU\\.DEFAULT": "\\Documents and Settings\\Default User\\ntuser.dat",
}

SYSTEM_PROCESSES = ("System", "smss.exe", "csrss.exe", "winlogon.exe",
                    "services.exe", "lsass.exe", "svchost.exe",
                    "explorer.exe")
_NO_APPINIT = {"system", "smss.exe", "csrss.exe"}

STANDARD_DLLS = (
    "\\Windows\\System32\\ntdll.dll",
    "\\Windows\\System32\\kernel32.dll",
    "\\Windows\\System32\\advapi32.dll",
    "\\Windows\\System32\\user32.dll",
)

_USER32_EXPORTS: Dict[str, Callable] = {}

BOOT_SECONDS = 45.0


@dataclass
class PerfModel:
    """Hardware parameters for the simulated-clock cost model.

    ``entity_scale`` lets a small populated machine stand in for a big
    one: each simulated file/registry entry represents ``entity_scale``
    real ones when scans charge time.
    """

    cpu_scale: float = 1.0       # 1.0 ≈ the paper's 2.2 GHz desktop
    disk_mbps: float = 50.0
    entity_scale: float = 1.0
    ram_mb: int = 256            # drives crash-dump write time


class Machine:
    """One simulated Windows machine."""

    def __init__(self, name: str = "machine",
                 disk: Optional[Disk] = None,
                 disk_mb: int = 1024,
                 max_records: int = 65536,
                 clock: Optional[SimClock] = None,
                 perf: Optional[PerfModel] = None):
        self.name = name
        self.clock = clock or SimClock()
        self.perf = perf or PerfModel()
        self.disk = disk or Disk(DiskGeometry.from_megabytes(disk_mb))
        attached = disk is not None and self._disk_is_formatted()
        if attached:
            self.volume = NtfsVolume.mount(self.disk, self.clock)
        else:
            self.volume = NtfsVolume.format(self.disk, max_records,
                                            self.clock)
        self.kernel: Kernel = None            # built at boot
        self.io_manager: IoManager = None     # built at boot
        self.registry: Registry = None        # built at boot / setup
        self.scm: ServiceControlManager = None
        self.processes: Dict[int, Process] = {}
        self.programs: Dict[str, ProgramEntry] = {}
        self.process_start_hooks: List[ProcessStartHook] = []
        self.infections: List = []            # installed ghostware objects
        self.background_services: List = []   # always-running FP sources
        self.powered_on = False
        if not attached:
            self._init_system_layout()
        self._mount_registry()

    # -- construction helpers ---------------------------------------------------

    def _disk_is_formatted(self) -> bool:
        from repro.ntfs import constants as ntfs_constants
        boot = self.disk.read_bytes(ntfs_constants.BOOT_MAGIC_OFFSET, 8)
        return boot == ntfs_constants.BOOT_MAGIC

    def _init_system_layout(self) -> None:
        volume = self.volume
        for directory in ("\\Windows", "\\Windows\\System32",
                          "\\Windows\\System32\\config",
                          "\\Windows\\System32\\drivers",
                          "\\Windows\\Prefetch", "\\Windows\\Temp",
                          "\\Temp",
                          "\\Documents and Settings",
                          "\\Documents and Settings\\Default User",
                          "\\Program Files"):
            volume.create_directories(directory)
        for dll in STANDARD_DLLS:
            volume.create_file(dll, b"MZ" + basename(dll).encode())
        volume.create_file("\\Windows\\explorer.exe", b"MZexplorer")

    def _mount_registry(self) -> None:
        """Build the Registry from hive files (or create fresh hives)."""
        from repro.faults.retry import construct_with_retry

        self.registry = Registry(self.volume, self.clock)
        for root_path, hive_file in HIVE_FILES.items():
            if self.volume.exists(hive_file):
                hive = construct_with_retry(
                    f"hive.mount:{hive_file}",
                    lambda path=hive_file: Hive.deserialize(
                        self.volume.read_file(path)),
                    clock=self.clock)
            else:
                hive = Hive(root_path.split("\\")[-1])
            self.registry.mount_hive(root_path, hive, hive_file)
        # Standard keys every Windows install has.
        self.registry.create_key(
            "HKLM\\SYSTEM\\CurrentControlSet\\Services")
        self.registry.create_key(RUN_KEY)
        self.registry.create_key(RUNONCE_KEY)
        appinit = self.registry.create_key(APPINIT_KEY)
        if not appinit.has_value("AppInit_DLLs"):
            self.registry.set_value(APPINIT_KEY, "AppInit_DLLs", "")

    # -- power management ------------------------------------------------------------

    def boot(self) -> None:
        """Power on: fresh kernel, reloaded registry, ASEP execution."""
        if self.powered_on:
            raise MachineStateError(f"{self.name} is already running")
        self.clock.advance(BOOT_SECONDS / self.perf.cpu_scale)
        self.kernel = Kernel(self.clock)
        self.kernel.attach_disk(self.disk)
        self.io_manager = IoManager(self.volume)
        self.kernel.io_manager = self.io_manager
        self._mount_registry()
        self.kernel.registry = self.registry
        self.kernel.install_default_services()
        self.scm = ServiceControlManager(self)
        self.processes = {}
        self.process_start_hooks = []
        self.powered_on = True

        for name in SYSTEM_PROCESSES:
            image = ("" if name == "System"
                     else f"\\Windows\\System32\\{name}")
            if name == "explorer.exe":
                image = "\\Windows\\explorer.exe"
            self.start_process(image or name, name=name)

        self.scm.start_auto_services()
        self._run_run_keys()

    def run_background(self, seconds: float) -> None:
        """Let time pass with the always-running services active.

        This is where outside-the-box false positives come from: the gap
        between the inside high-level scan and the clean-boot truth scan
        is filled with exactly this kind of legitimate file churn.
        """
        self._require_power()
        self.clock.advance(seconds)
        for service in self.background_services:
            service.tick(self, seconds)

    def shutdown(self) -> None:
        if not self.powered_on:
            raise MachineStateError(f"{self.name} is not running")
        for service in self.background_services:
            service.on_shutdown(self)
        self.registry.flush()
        for pid in list(self.processes):
            self._drop_process(pid)
        self.powered_on = False
        self.clock.advance(10.0 / self.perf.cpu_scale)

    def reboot(self) -> None:
        self.shutdown()
        self.boot()

    def _run_run_keys(self) -> None:
        for key_path in (RUN_KEY, RUNONCE_KEY):
            for value in list(self.registry.enum_values(key_path)):
                command = str(value.win32_data())
                if self.volume.exists(command):
                    self.start_process(command)
                if key_path == RUNONCE_KEY:
                    self.registry.delete_value(key_path, value.name)

    # -- processes -----------------------------------------------------------------------

    def start_process(self, image_path: str,
                      name: Optional[str] = None) -> Process:
        """Create a process from an image path and run its program entry."""
        self._require_power()
        display = name or basename(image_path)
        kernel_proc = self.kernel.create_process(display, image_path)
        process = Process(kernel_proc.pid, display, image_path, self.kernel,
                          machine=self)
        self.processes[process.pid] = process

        process.map_module("ntdll", nt.EXPORTS)
        process.map_module("kernel32", kernel32.EXPORTS)
        process.map_module("advapi32", advapi32.EXPORTS)
        process.map_module("user32", _USER32_EXPORTS)
        if display != "System":   # the System process has no user modules
            for dll in STANDARD_DLLS:
                self.kernel.load_module(process.pid, dll)
            if image_path and image_path != "System":
                self.kernel.load_module(process.pid, image_path)

        if display.casefold() not in _NO_APPINIT:
            self._apply_appinit_dlls(process)

        # Injection-style hooks fire at process creation — before the
        # image's own entry point runs, as real loader-time injection does.
        for hook in list(self.process_start_hooks):
            hook(self, process)

        entry = self.program_entry(image_path)
        if entry is not None and self.volume.exists(image_path):
            entry(self, process)
        self.clock.advance(0.05 / self.perf.cpu_scale)
        return process

    def _apply_appinit_dlls(self, process: Process) -> None:
        """The OS-provided injection ASEP (loads with User32)."""
        value = self.registry.get_value(APPINIT_KEY, "AppInit_DLLs")
        dll_list = str(value.win32_data())
        for chunk in dll_list.replace(",", " ").split(" "):
            dll = chunk.strip()
            if not dll:
                continue
            if not dll.startswith("\\"):
                # Bare names resolve against System32, as the loader does.
                dll = f"\\Windows\\System32\\{dll}"
            inject_dll(self, process, dll)

    def terminate_process(self, pid: int) -> None:
        self._require_power()
        self._drop_process(pid)

    def _drop_process(self, pid: int) -> None:
        process = self.processes.pop(pid, None)
        if process is not None:
            process.alive = False
        try:
            self.kernel.terminate_process(pid)
        except Exception:
            pass  # already DKOM-mangled or gone; bookkeeping wins

    def user_processes(self) -> List[Process]:
        return [self.processes[pid] for pid in sorted(self.processes)]

    def process_by_name(self, name: str) -> Optional[Process]:
        wanted = name.casefold()
        for process in self.processes.values():
            if process.name.casefold() == wanted:
                return process
        return None

    # -- programs (binary behaviour registry) ------------------------------------------------

    def register_program(self, image_path: str, entry: ProgramEntry) -> None:
        """Associate behaviour with a binary's path."""
        self.programs[image_path.casefold()] = entry

    def program_entry(self, image_path: str) -> Optional[ProgramEntry]:
        return self.programs.get(image_path.casefold())

    def load_driver_image(self, service_name: str, image_path: str) -> None:
        """SCM driver start: record in the kernel, run the driver entry."""
        self._require_power()
        self.kernel.load_driver(basename(image_path))
        entry = self.program_entry(image_path)
        if entry is not None and self.volume.exists(image_path):
            entry(self, None)

    # -- misc --------------------------------------------------------------------------------

    def charge(self, seconds: float) -> None:
        """Advance the simulated clock (cost-model hook for scanners)."""
        self.clock.advance(seconds)

    def _require_power(self) -> None:
        if not self.powered_on:
            raise MachineStateError(f"{self.name} is powered off")

    def __repr__(self) -> str:
        state = "on" if self.powered_on else "off"
        return f"<Machine {self.name!r} {state}>"
