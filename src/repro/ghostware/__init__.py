"""The ghostware corpus.

One module per real-world program from the paper's evaluation, each
implemented with the interception technique its real counterpart used
(Figures 2 and 5), hiding the resources the paper's result tables list
(Figures 3, 4 and 6).

Installation is two-phase, mirroring reality: :meth:`~Ghostware.install`
drops files and ASEP hooks on a *running* machine; the hooks themselves
re-activate the hiding code on every boot through the SCM / Run /
AppInit_DLLs machinery — so removal (delete the hook, reboot) behaves the
way Section 6's Hacker Defender walkthrough describes.
"""

from repro.ghostware.base import Ghostware, GhostwareReport
from repro.ghostware.urbin import Urbin
from repro.ghostware.mersting import Mersting
from repro.ghostware.vanquish import Vanquish
from repro.ghostware.aphex import Aphex
from repro.ghostware.hacker_defender import HackerDefender
from repro.ghostware.probot import ProBotSE
from repro.ghostware.berbew import Berbew
from repro.ghostware.fu import FuRootkit
from repro.ghostware.file_hiders import (HideFiles, HideFoldersXP,
                                         AdvancedHideFolders,
                                         FileFolderProtector)
from repro.ghostware.naming_exploits import NamingExploitGhost, RegistryNamingGhost
from repro.ghostware.advanced import LowLevelInterferenceGhost
from repro.ghostware.ads_ghost import AdsGhost
from repro.ghostware.bho_spyware import BhoSpyware
from repro.ghostware.cm_callback import CmCallbackGhost
from repro.ghostware.targeted import UtilityTargetedGhost, GhostBusterAwareGhost

ALL_FILE_HIDERS = (Urbin, Mersting, Vanquish, Aphex, HackerDefender,
                   ProBotSE, HideFiles, HideFoldersXP, AdvancedHideFolders,
                   FileFolderProtector)
ALL_REGISTRY_HIDERS = (Urbin, Mersting, HackerDefender, Vanquish, ProBotSE,
                       Aphex)
ALL_PROCESS_HIDERS = (Aphex, HackerDefender, Berbew, FuRootkit)

__all__ = [
    "Ghostware", "GhostwareReport",
    "Urbin", "Mersting", "Vanquish", "Aphex", "HackerDefender", "ProBotSE",
    "Berbew", "FuRootkit",
    "HideFiles", "HideFoldersXP", "AdvancedHideFolders",
    "FileFolderProtector",
    "NamingExploitGhost", "RegistryNamingGhost",
    "LowLevelInterferenceGhost", "AdsGhost", "BhoSpyware",
    "CmCallbackGhost",
    "UtilityTargetedGhost", "GhostBusterAwareGhost",
    "ALL_FILE_HIDERS", "ALL_REGISTRY_HIDERS", "ALL_PROCESS_HIDERS",
]
