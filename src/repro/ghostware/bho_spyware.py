r"""Spyware persisting as a hidden Browser Helper Object.

The paper's ASEP study ([WRV+04], summarized in Section 3) calls out
``...\Explorer\Browser Helper Objects`` as a premier spyware ASEP: a BHO
subkey auto-loads a DLL into Internet Explorer.  This strain plants one
and hides both the CLSID subkey and its DLL with NtDll-level detours —
exercising the SUBKEY_LIST ASEP kind end to end.
"""

from __future__ import annotations

from repro.ghostware.base import (Ghostware, patch_file_enum_ntdll,
                                  patch_registry_enum_ntdll)
from repro.machine import Machine
from repro.usermode.process import Process

BHO_KEY = ("HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion"
           "\\Explorer\\Browser Helper Objects")
CLSID = "{F00DFACE-2005-4DSN-BH00-C0FFEE000001}"
DLL_PATH = "\\Program Files\\Common\\searchhelper.dll"
LOADER_PATH = "\\Program Files\\Common\\bhoload.exe"


class BhoSpyware(Ghostware):
    """Hidden Browser Helper Object + hidden DLL."""

    name = "BhoSpyware"
    technique = "NtDll detours hiding a Browser Helper Object hook"

    def _hide(self, text: str) -> bool:
        folded = text.casefold()
        return "searchhelper" in folded or CLSID.casefold() in folded

    def _install_persistent(self, machine: Machine) -> None:
        machine.volume.create_directories("\\Program Files\\Common")
        machine.volume.create_file(DLL_PATH, b"MZbho")
        machine.volume.create_file(LOADER_PATH, b"MZbholoader")
        key = f"{BHO_KEY}\\{CLSID}"
        machine.registry.create_key(key)
        machine.registry.set_value(key, "DllName", DLL_PATH)
        run_key = "HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run"
        machine.registry.set_value(run_key, "CommonLoader", LOADER_PATH)
        machine.register_program(LOADER_PATH, self._main)
        self.report.hidden_files = [DLL_PATH]
        self.report.hidden_asep_hooks = [f"{BHO_KEY}\\{CLSID} → {DLL_PATH}"]

    def activate(self, machine: Machine) -> None:
        machine.start_process(LOADER_PATH)

    def _main(self, machine: Machine, process: Process) -> None:
        self.infect_everywhere(machine)

    def infect_process(self, machine: Machine, process: Process) -> None:
        patch_file_enum_ntdll(process, self._hide, self.name)
        patch_registry_enum_ntdll(process, self._hide, self.name)
