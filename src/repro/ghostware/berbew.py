r"""Backdoor.Berbew [ZB].

Figure 5: hijacks process-list queries by putting a ``jmp`` instruction
inside the in-memory ``NtDll!NtQuerySystemInformation`` code of every
process — hiding its randomly named EXE's process (Figure 6).  Berbew is a
process hider only: its file and its ``Run`` hook stay visible, which is
what distinguishes a fig-6-only entry from the full-stealth rootkits.
"""

from __future__ import annotations

import random

from repro.ghostware.base import Ghostware, patch_process_enum_ntdll
from repro.machine import Machine, RUN_KEY
from repro.usermode.process import Process

_LETTERS = "bcdfghjklmnpqrstvw"


class Berbew(Ghostware):
    """Berbew: jmp inside NtQuerySystemInformation, process hiding only."""

    name = "Berbew"
    technique = "inline jmp detour in NtDll!NtQuerySystemInformation"
    stealth_capabilities = frozenset({"cloak", "aware", "coordinate"})

    def __init__(self, seed: int = 20040719):
        super().__init__()
        rng = random.Random(seed)
        base = "".join(rng.choice(_LETTERS) for __ in range(7))
        self.exe_name = f"{base}.exe"
        self.exe_path = f"\\Windows\\System32\\{self.exe_name}"

    def _hide(self, text: str) -> bool:
        if not self.concealed():
            return False
        return text.casefold() == self.exe_name.casefold()

    def _install_persistent(self, machine: Machine) -> None:
        machine.volume.create_file(self.exe_path, b"MZberbew")
        machine.registry.set_value(RUN_KEY, "berbew_loader", self.exe_path)
        machine.register_program(self.exe_path, self._main)
        self.report.hidden_processes = [self.exe_name]
        self.report.visible_files = [self.exe_path]

    def activate(self, machine: Machine) -> None:
        machine.start_process(self.exe_path)

    def _main(self, machine: Machine, process: Process) -> None:
        self.infect_everywhere(machine)

    def infect_process(self, machine: Machine, process: Process) -> None:
        patch_process_enum_ntdll(process, self._hide, self.name)
