r"""The four commercial file hiders [ZHF, ZHO, ZAH, ZF].

Figure 2 technique 6: all four use a *filter driver* inserted into the OS
file-system stack, intercepting every file operation.  By examining the
IRP's originating process they can scope the hiding — each product exempts
its own configuration UI so the user can still manage the hidden set.

The products differ in small, documented ways:

* **Hide Files 3.3** — enumeration filtering only.
* **Hide Folders XP** — also hides whole folder subtrees (prefix match is
  inherent to our filter; the distinction here is its default target set).
* **Advanced Hide Folders** — additionally denies opens of hidden paths.
* **File & Folder Protector** — denies opens and scopes hiding per-process.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ghostware.base import FileHidingFilterDriver, Ghostware
from repro.machine import Machine
from repro.usermode.process import Process
from repro.winapi.services import TYPE_DRIVER


class CommercialFileHider(Ghostware):
    """Base: filter-driver product with a user-selected hidden set."""

    product_dir = "hider"
    driver_file = "hider.sys"
    deny_open = False
    technique = "file-system filter driver"
    stealth_capabilities = frozenset({"cloak"})

    def __init__(self, hidden_paths: Optional[List[str]] = None):
        super().__init__()
        self.hidden_paths = list(hidden_paths or [])
        self.filter: Optional[FileHidingFilterDriver] = None
        self.exe_path = (f"\\Program Files\\{self.product_dir}"
                         f"\\{self.product_dir}.exe")
        self.driver_path = f"\\Windows\\System32\\drivers\\{self.driver_file}"

    def _install_persistent(self, machine: Machine) -> None:
        machine.volume.create_directories(
            f"\\Program Files\\{self.product_dir}")
        machine.volume.create_file(self.exe_path, b"MZhiderui")
        machine.volume.create_file(self.driver_path, b"MZhiderdrv")
        service = self.driver_file.rsplit(".", 1)[0]
        key = f"HKLM\\SYSTEM\\CurrentControlSet\\Services\\{service}"
        machine.registry.create_key(key)
        machine.registry.set_value(key, "ImagePath", self.driver_path)
        machine.registry.set_value(key, "Type", TYPE_DRIVER)
        machine.registry.set_value(key, "Start", 2)
        machine.register_program(self.driver_path, self._driver_entry)
        machine.register_program(self.exe_path, self._configuration_ui)
        self.report.hidden_files = list(self.hidden_paths)

    def activate(self, machine: Machine) -> None:
        machine.load_driver_image(self.driver_file, self.driver_path)

    def _driver_entry(self, machine: Machine, process) -> None:
        self.filter = FileHidingFilterDriver(self.name,
                                             deny_open=self.deny_open)
        for path in self.hidden_paths:
            self.filter.hide_path(path)
        machine.io_manager.attach_filter(self.filter)

    def _configuration_ui(self, machine: Machine,
                          process: Process) -> None:
        """The product's own UI is exempted via IRP inspection."""
        if self.filter is not None:
            self.filter.exempt_pids.add(process.pid)

    def hide_path(self, machine: Machine, path: str) -> None:
        """User action: add a file or folder to the hidden set."""
        self.hidden_paths.append(path)
        if self.filter is not None:
            self.filter.hide_path(path)
        if path not in self.report.hidden_files:
            self.report.hidden_files.append(path)


class HideFiles(CommercialFileHider):
    """Hide Files 3.3 [ZHF]."""

    name = "Hide Files 3.3"
    product_dir = "HideFiles"
    driver_file = "hidefiles.sys"


class HideFoldersXP(CommercialFileHider):
    """Hide Folders XP [ZHO]."""

    name = "Hide Folders XP"
    product_dir = "HideFoldersXP"
    driver_file = "hfxp.sys"


class AdvancedHideFolders(CommercialFileHider):
    """Advanced Hide Folders [ZAH] — also blocks opens of hidden paths."""

    name = "Advanced Hide Folders"
    product_dir = "AdvHideFolders"
    driver_file = "ahf.sys"
    deny_open = True


class FileFolderProtector(CommercialFileHider):
    """File & Folder Protector [ZF] — open denial + per-process scoping."""

    name = "File & Folder Protector"
    product_dir = "FFProtector"
    driver_file = "ffprot.sys"
    deny_open = True

    def scope_to_processes(self, pids: List[int]) -> None:
        """Hide only from the given processes (exempt everyone else).

        Implemented by exempting all current non-listed pids; the paper
        notes the IRP lets the filter scope behaviour per process.
        """
        if self.filter is None:
            return
        self.filter.scoped_pids = set(pids)

        original = self.filter.filter_enumeration

        def scoped(irp, entries):
            if irp.requestor_pid not in self.filter.scoped_pids:
                return entries
            return original(irp, entries)

        self.filter.filter_enumeration = scoped
