r"""The Aphex / AFX Windows Rootkit 2003 [ZAF].

Figure 2 technique 3: modifies the in-memory ``Kernel32!FindFirst(Next)File``
code with a *jmp detour* into the trojan plus a jump back past the detour —
stealthier than Vanquish because the trojan edits the return path and stays
out of naive call-stack traces (``INLINE_DETOUR``).

Hides (Figure 3) any file whose name matches a configurable prefix
(default ``~``); hides its ``Run`` key hook (Figure 4) via a detour on the
Advapi32 registry enumeration; and hides any similarly prefixed *process*
by IAT-hooking ``NtDll!NtQuerySystemInformation`` (Figure 5 / Figure 6).
"""

from __future__ import annotations

from repro.ghostware.base import (Ghostware, hook_process_enum_iat,
                                  patch_file_enum_kernel32,
                                  patch_registry_enum_advapi)
from repro.machine import Machine, RUN_KEY
from repro.usermode.process import Process
from repro.winapi.hooks import PatchKind


class Aphex(Ghostware):
    """Aphex: kernel32 jmp detours + NtQuerySystemInformation IAT hook."""

    name = "Aphex"
    technique = "inline jmp detour in Kernel32 + IAT hook in NtDll"
    stealth_capabilities = frozenset(
        {"cloak", "aware", "rotate", "coordinate"})

    def __init__(self, prefix: str = "~", run_value_name: str = "backdoor"):
        super().__init__()
        self.prefix = prefix
        self.run_value_name = run_value_name
        self.exe_path = f"\\Windows\\System32\\{prefix}aphex.exe"

    def _hide(self, text: str) -> bool:
        if not self.concealed():
            return False
        name = text.rsplit("\\", 1)[-1]
        return name.startswith(self.prefix) or \
            name.casefold() == self.run_value_name.casefold()

    def rotate_identity(self, machine: Machine, token: str) -> None:
        """New exe stem + Run value name; the running process keeps its
        original (still prefix-hidden) name."""
        new_path = f"\\Windows\\System32\\{self.prefix}{token}.exe"
        machine.volume.rename(self.exe_path, new_path)
        machine.registry.delete_value(RUN_KEY, self.run_value_name)
        machine.registry.set_value(RUN_KEY, token, new_path)
        self.exe_path = new_path
        self.run_value_name = token
        machine.register_program(self.exe_path, self._main)
        self.report.hidden_files = [self.exe_path]
        self.report.hidden_asep_hooks = [
            f"{RUN_KEY}\\{self.run_value_name} → {self.exe_path}"]

    def _install_persistent(self, machine: Machine) -> None:
        machine.volume.create_file(self.exe_path, b"MZaphex")
        machine.registry.set_value(RUN_KEY, self.run_value_name,
                                   self.exe_path)
        machine.register_program(self.exe_path, self._main)

        self.report.hidden_files = [self.exe_path]
        self.report.hidden_asep_hooks = [
            f"{RUN_KEY}\\{self.run_value_name} → {self.exe_path}"]
        self.report.hidden_processes = [f"{self.prefix}aphex.exe"]

    def activate(self, machine: Machine) -> None:
        machine.start_process(self.exe_path)

    def _main(self, machine: Machine, process: Process) -> None:
        self.infect_everywhere(machine)

    def infect_process(self, machine: Machine, process: Process) -> None:
        patch_file_enum_kernel32(process, self._hide, self.name,
                                 PatchKind.INLINE_DETOUR)
        patch_registry_enum_advapi(process, self._hide, self.name,
                                   PatchKind.INLINE_DETOUR)
        hook_process_enum_iat(process, self._hide, self.name)
