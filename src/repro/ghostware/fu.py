r"""The FU rootkit [ZFU].

Figure 5's unique entry: **Direct Kernel Object Manipulation**.  FU hides a
process by unlinking its EPROCESS from the Active Process List — no API is
hooked anywhere.  Because the list is only a truth *approximation* (a
process can own schedulable threads while absent from it), the hidden
process keeps running, and even GhostBuster's list-walking low-level scan
misses it; only the advanced mode (thread-table traversal) recovers it
(Figure 6).

FU makes no attempt to hide its own files or its driver's ASEP hook — the
``fu -ph <pid>`` command is a tool applied to *other* processes, including
other ghostware ("one can even use FU to hide the other process-hiding
ghostware programs to increase their stealth").
"""

from __future__ import annotations

from typing import List

from repro.errors import NoSuchProcess
from repro.ghostware.base import Ghostware
from repro.machine import Machine
from repro.winapi.services import TYPE_DRIVER

EXE_PATH = "\\Windows\\System32\\fu.exe"
DRIVER_PATH = "\\Windows\\System32\\drivers\\msdirectx.sys"
SERVICE_NAME = "msdirectx"


class FuRootkit(Ghostware):
    """FU: DKOM process hiding via the msdirectx.sys driver."""

    name = "FU"
    technique = "Direct Kernel Object Manipulation (process-list unlink)"
    stealth_capabilities = frozenset({"cloak"})

    def __init__(self) -> None:
        super().__init__()
        self.hidden_pids: List[int] = []

    def _install_persistent(self, machine: Machine) -> None:
        machine.volume.create_file(EXE_PATH, b"MZfu")
        machine.volume.create_file(DRIVER_PATH, b"MZmsdirectx")
        key = f"HKLM\\SYSTEM\\CurrentControlSet\\Services\\{SERVICE_NAME}"
        machine.registry.create_key(key)
        machine.registry.set_value(key, "ImagePath", DRIVER_PATH)
        machine.registry.set_value(key, "Type", TYPE_DRIVER)
        machine.registry.set_value(key, "Start", 2)
        self.report.visible_files = [EXE_PATH, DRIVER_PATH]

    def activate(self, machine: Machine) -> None:
        machine.kernel.load_driver("msdirectx.sys")

    def hide_process(self, machine: Machine, pid: int) -> None:
        """``fu -ph <pid>``: unlink the process from the Active Process List."""
        kernel = machine.kernel
        try:
            proc = kernel.process(pid)
        except NoSuchProcess:
            raise
        kernel.process_list.unlink(proc.eprocess_address)
        self.hidden_pids.append(pid)
        name = proc.name
        if name not in self.report.hidden_processes:
            self.report.hidden_processes.append(name)

    def hide_driver(self, machine: Machine, driver_name: str) -> bool:
        """``fu -phd``: unlink a driver from the loaded-driver list."""
        kernel = machine.kernel
        head = kernel.driver_list_head
        from repro.kernel.objects import DriverView
        from repro.kernel.memory import read_u64
        current = read_u64(kernel.memory, head + 4)
        while current != head:
            view = DriverView(kernel.memory, current)
            if view.name.casefold() == driver_name.casefold():
                kernel.unlink_driver(current)
                return True
            current = view.flink
        return False
