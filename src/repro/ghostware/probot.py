r"""ProBot SE [ZP] — a commercial key-logger.

Figure 2 technique 5: hijacks kernel-mode file-query APIs by modifying
their dispatch entries in the Service Dispatch Table — a centralized,
kernel-mode interception that needs no per-process memory modification.

Hides (Figure 3) its four randomly named binaries — an EXE and a DLL in
``System32`` plus two ``.sys`` drivers — and (Figure 4) three ASEP hooks:
two ``Services`` driver entries and one ``Run`` value, all via SSDT hooks
on the registry-enumeration services.

The random names are drawn from a seeded RNG so experiments reproduce
bit-for-bit.
"""

from __future__ import annotations

import random
from typing import List

from repro.ghostware.base import (Ghostware, hook_ssdt_file_enum,
                                  hook_ssdt_registry_enum)
from repro.machine import Machine, RUN_KEY
from repro.usermode.process import Process
from repro.winapi.services import TYPE_DRIVER

_CONSONANTS = "bcdfghjklmnpqrstvwxz"


def _random_name(rng: random.Random, length: int = 6) -> str:
    return "".join(rng.choice(_CONSONANTS) for __ in range(length))


class ProBotSE(Ghostware):
    """ProBot SE: SSDT-hooking key-logger with randomized artifact names."""

    name = "ProBot SE"
    technique = "Service Dispatch Table entry modification"
    stealth_capabilities = frozenset(
        {"cloak", "aware", "rotate", "coordinate"})

    def __init__(self, seed: int = 20050621):
        super().__init__()
        rng = random.Random(seed)
        base = _random_name(rng)
        self.exe_path = f"\\Windows\\System32\\{base}.exe"
        self.dll_path = f"\\Windows\\System32\\{_random_name(rng)}.dll"
        self.driver_path = \
            f"\\Windows\\System32\\drivers\\{_random_name(rng)}.sys"
        self.kbd_driver_path = \
            f"\\Windows\\System32\\drivers\\{_random_name(rng)}.sys"
        self.run_value = base
        self.log_path = f"\\Windows\\System32\\{base}.log"

    def _artifacts(self) -> List[str]:
        return [self.exe_path, self.dll_path, self.driver_path,
                self.kbd_driver_path]

    def _hide(self, text: str) -> bool:
        if not self.concealed():
            return False
        folded = text.casefold()
        names = [path.rsplit("\\", 1)[-1].casefold()
                 for path in self._artifacts()]
        names.append(self.run_value.casefold())
        token = folded.rsplit("\\", 1)[-1]
        return token in names or any(name in folded for name in names)

    def _install_persistent(self, machine: Machine) -> None:
        for path in self._artifacts():
            machine.volume.create_file(path, b"MZprobot")

        services = "HKLM\\SYSTEM\\CurrentControlSet\\Services"
        for path in (self.driver_path, self.kbd_driver_path):
            driver_name = path.rsplit("\\", 1)[-1].rsplit(".", 1)[0]
            key = f"{services}\\{driver_name}"
            machine.registry.create_key(key)
            machine.registry.set_value(key, "ImagePath", path)
            machine.registry.set_value(key, "Type", TYPE_DRIVER)
            machine.registry.set_value(key, "Start", 2)
        machine.registry.set_value(RUN_KEY, self.run_value, self.exe_path)
        machine.register_program(self.driver_path, self._driver_entry)
        machine.register_program(self.exe_path, self._logger_main)

        self.report.hidden_files = list(self._artifacts())
        self.report.hidden_asep_hooks = [
            f"{services}\\{self.driver_path.rsplit(chr(92), 1)[-1][:-4]}"
            f" → {self.driver_path}",
            f"{services}\\{self.kbd_driver_path.rsplit(chr(92), 1)[-1][:-4]}"
            f" → {self.kbd_driver_path}",
            f"{RUN_KEY}\\{self.run_value} → {self.exe_path}"]

    def rotate_identity(self, machine: Machine, token: str) -> None:
        """Re-draw all four artifact names from a token-seeded RNG."""
        rng = random.Random(f"probot:{token}")
        taken = {p.rsplit("\\", 1)[-1].split(".", 1)[0]
                 for p in self._artifacts()}

        def fresh_name() -> str:
            while True:
                name = _random_name(rng)
                if name not in taken:
                    taken.add(name)
                    return name

        services = "HKLM\\SYSTEM\\CurrentControlSet\\Services"
        for path in (self.driver_path, self.kbd_driver_path):
            machine.registry.delete_key(
                f"{services}\\{path.rsplit(chr(92), 1)[-1][:-4]}")
        machine.registry.delete_value(RUN_KEY, self.run_value)

        base = fresh_name()
        renames = {
            "exe_path": f"\\Windows\\System32\\{base}.exe",
            "dll_path": f"\\Windows\\System32\\{fresh_name()}.dll",
            "driver_path":
                f"\\Windows\\System32\\drivers\\{fresh_name()}.sys",
            "kbd_driver_path":
                f"\\Windows\\System32\\drivers\\{fresh_name()}.sys",
            "log_path": f"\\Windows\\System32\\{base}.log",
        }
        for attr, new_path in renames.items():
            old_path = getattr(self, attr)
            if machine.volume.exists(old_path):
                machine.volume.rename(old_path, new_path)
            setattr(self, attr, new_path)
        self.run_value = base

        for path in (self.driver_path, self.kbd_driver_path):
            driver_name = path.rsplit("\\", 1)[-1].rsplit(".", 1)[0]
            key = f"{services}\\{driver_name}"
            machine.registry.create_key(key)
            machine.registry.set_value(key, "ImagePath", path)
            machine.registry.set_value(key, "Type", TYPE_DRIVER)
            machine.registry.set_value(key, "Start", 2)
        machine.registry.set_value(RUN_KEY, self.run_value, self.exe_path)
        machine.register_program(self.driver_path, self._driver_entry)
        machine.register_program(self.exe_path, self._logger_main)

        self.report.hidden_files = list(self._artifacts())
        if machine.volume.exists(self.log_path):
            self.report.hidden_files.append(self.log_path)
        self.report.hidden_asep_hooks = [
            f"{services}\\{self.driver_path.rsplit(chr(92), 1)[-1][:-4]}"
            f" → {self.driver_path}",
            f"{services}\\{self.kbd_driver_path.rsplit(chr(92), 1)[-1][:-4]}"
            f" → {self.kbd_driver_path}",
            f"{RUN_KEY}\\{self.run_value} → {self.exe_path}"]

    def activate(self, machine: Machine) -> None:
        machine.load_driver_image("probot_fsdrv", self.driver_path)
        machine.start_process(self.exe_path)

    def _driver_entry(self, machine: Machine, process) -> None:
        """The .sys driver installs the SSDT hooks, exempting nothing."""
        hook_ssdt_file_enum(machine, self._hide, owner=self.name)
        hook_ssdt_registry_enum(machine, self._hide, owner=self.name)

    def _logger_main(self, machine: Machine, process: Process) -> None:
        """The user-mode EXE arms the logger; keystrokes arrive later.

        The log file is only created once :meth:`log_keystrokes` runs, so
        a freshly infected machine shows exactly the four hidden binaries
        of Figure 3; the key-logger examples then exercise the hidden log.
        """

    def log_keystrokes(self, machine: Machine, text: str) -> None:
        """Append keystrokes through the normal file API path."""
        if machine.volume.exists(self.log_path):
            machine.volume.append_file(self.log_path, text.encode())
        else:
            machine.volume.create_file(self.log_path, text.encode())
            self.report.hidden_files.append(self.log_path)
