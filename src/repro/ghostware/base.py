"""Ghostware base class and layer-specific hooking helpers.

The helpers encode the six file-hiding and four process-hiding techniques
of Figures 2 and 5 as reusable operations, each installing at the same
layer its real-world counterpart uses:

========================  =============================================
helper                     technique (paper example)
========================  =============================================
hook_file_enum_iat         IAT redirection of FindFirst(Next)File
                           (Urbin, Mersting)
patch_file_enum_kernel32   in-memory patch of Kernel32 code
                           (Vanquish: call style; Aphex: jmp detour)
patch_file_enum_ntdll      detour inside NtDll!NtQueryDirectoryFile
                           (Hacker Defender)
hook_ssdt_file_enum        Service Dispatch Table entry replacement
                           (ProBot SE)
FileHidingFilterDriver     file-system filter driver (commercial hiders)
hook_registry_enum_*       the RegEnumValue / NtEnumerateKey analogues
hook_process_enum_iat      IAT hook of NtQuerySystemInformation (Aphex)
patch_process_enum_ntdll   jmp inside NtQuerySystemInformation
                           (Hacker Defender, Berbew)
========================  =============================================

FU's DKOM lives in :mod:`repro.ghostware.fu` since it touches no API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.machine import Machine
from repro.usermode.process import Process
from repro.winapi.hooks import PatchKind
from repro.winapi.iomanager import FilterDriver, Irp
from repro.kernel.ssdt import Syscall

NamePredicate = Callable[[str], bool]


@dataclass
class GhostwareReport:
    """What one ghostware program planted (ground truth for experiments)."""

    name: str
    hidden_files: List[str] = field(default_factory=list)
    hidden_asep_hooks: List[str] = field(default_factory=list)
    hidden_processes: List[str] = field(default_factory=list)
    hidden_modules: List[str] = field(default_factory=list)
    visible_files: List[str] = field(default_factory=list)


class Ghostware:
    """Base class: install persistently, activate per boot."""

    name = "ghostware"
    technique = "unspecified"

    #: Which :mod:`repro.stealth` behaviors this strain can run
    #: ("cloak", "aware", "rotate", "coordinate").  The seed-era strains
    #: hide statically; a :class:`~repro.stealth.manager.StealthManager`
    #: attached as ``self.stealth`` composes leveled counter-detection
    #: on top, clamped to this set.
    stealth_capabilities: frozenset = frozenset()

    def __init__(self) -> None:
        self.report = GhostwareReport(self.name)
        self.stealth = None

    def concealed(self) -> bool:
        """Gate consulted by hiding predicates on every enumeration call.

        ``True`` (filter normally) for unmanaged ghosts; a scan-aware
        stealth manager returns ``False`` mid-episode so the hooks tell
        the truth while a scan is looking.
        """
        stealth = getattr(self, "stealth", None)
        return stealth is None or stealth.concealing()

    def rotate_identity(self, machine: Machine, token: str) -> None:
        """Re-randomize on-disk/ASEP identity (rotate-capable strains)."""
        raise NotImplementedError(
            f"{self.name} does not support identity rotation")

    # -- lifecycle --------------------------------------------------------------

    def install(self, machine: Machine) -> None:
        """Drop files / ASEP hooks and activate on the running machine.

        Subclasses implement :meth:`_install_persistent` (files + hooks +
        program registration) — activation then happens through the same
        program-entry machinery a boot would use, or immediately via
        :meth:`activate` for install-time activation.
        """
        self._install_persistent(machine)
        if machine.powered_on:
            self.activate(machine)
        if self not in machine.infections:
            machine.infections.append(self)

    def _install_persistent(self, machine: Machine) -> None:
        raise NotImplementedError

    def activate(self, machine: Machine) -> None:
        """Install the hiding hooks on the live machine (default: none)."""

    # -- per-process infection pattern ---------------------------------------------

    def infect_everywhere(self, machine: Machine,
                          skip: Optional[Callable[[Process], bool]] = None
                          ) -> None:
        """Apply :meth:`infect_process` to all current and future processes."""
        def should_skip(process: Process) -> bool:
            return bool(skip and skip(process))

        for process in machine.user_processes():
            if not should_skip(process):
                self.infect_process(machine, process)

        def on_start(mach: Machine, process: Process) -> None:
            if not should_skip(process):
                self.infect_process(mach, process)

        machine.process_start_hooks.append(on_start)

    def infect_process(self, machine: Machine, process: Process) -> None:
        """Per-process hook installation (default: none)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} ({self.technique})>"


# --------------------------------------------------------------------------
# file-enumeration interception helpers
# --------------------------------------------------------------------------

def _current_target(process: Process, module: str, function: str):
    """The callable a new IAT hook should chain to.

    A real IAT hook saves the table's *current* pointer — which may
    already be another ghostware's trojan — so multiple IAT hookers
    compose instead of clobbering each other.
    """
    entry = process.iat.get((module.casefold(), function))
    if entry is not None:
        target = entry.target
        return lambda proc, *args: target(proc, *args)
    site = process.code_site(module, function)
    return lambda proc, *args: site.call(proc, *args)


def _filtering_find_pair(process: Process, hide: NamePredicate,
                         call_first, call_next):
    """Build FindFirstFile/FindNextFile trojans over given originals."""

    def skip_hidden(handle, entry):
        while entry is not None and hide(entry.name):
            entry = call_next(process, handle)
        return entry

    def trojan_first(proc, directory):
        handle, entry = call_first(proc, directory)
        return handle, skip_hidden(handle, entry)

    def trojan_next(proc, handle):
        return skip_hidden(handle, call_next(proc, handle))

    return trojan_first, trojan_next


def hook_file_enum_iat(process: Process, hide: NamePredicate,
                       owner: str) -> None:
    """Technique 1 (Urbin/Mersting): IAT entries point at trojan imports."""
    call_first = _current_target(process, "kernel32", "FindFirstFile")
    call_next = _current_target(process, "kernel32", "FindNextFile")
    trojan_first, trojan_next = _filtering_find_pair(
        process, hide, call_first, call_next)
    process.hook_iat("kernel32", "FindFirstFile", trojan_first, owner)
    process.hook_iat("kernel32", "FindNextFile", trojan_next, owner)


def patch_file_enum_kernel32(process: Process, hide: NamePredicate,
                             owner: str, kind: PatchKind) -> None:
    """Techniques 2-3 (Vanquish call-style / Aphex detour) in Kernel32."""
    next_site = process.code_site("kernel32", "FindNextFile")

    def wrap_first(original):
        def patched(proc, directory):
            handle, entry = original(proc, directory)
            while entry is not None and hide(entry.name):
                entry = next_site.call(proc, handle)
            return handle, entry
        return patched

    def wrap_next(original):
        def patched(proc, handle):
            entry = original(proc, handle)
            while entry is not None and hide(entry.name):
                entry = original(proc, handle)
            return entry
        return patched

    process.code_site("kernel32", "FindFirstFile").patch_inline(
        wrap_first, kind, owner)
    next_site.patch_inline(wrap_next, kind, owner)


def patch_file_enum_ntdll(process: Process, hide: NamePredicate,
                          owner: str,
                          kind: PatchKind = PatchKind.INLINE_DETOUR) -> None:
    """Technique 4 (Hacker Defender): detour NtDll!NtQueryDirectoryFile."""
    def wrap(original):
        def patched(proc, path):
            return [entry for entry in original(proc, path)
                    if not hide(entry.name)]
        return patched

    process.code_site("ntdll", "NtQueryDirectoryFile").patch_inline(
        wrap, kind, owner)


def hook_ssdt_file_enum(machine: Machine, hide: NamePredicate,
                        exempt_pids: Optional[List[int]] = None,
                        owner: str = "?") -> None:
    """Technique 5 (ProBot SE): replace the SSDT dispatch entry."""
    exempt = set(exempt_pids or ())

    def make_wrapper(original):
        def hooked(requestor_pid, path):
            entries = original(requestor_pid, path)
            if requestor_pid in exempt:
                return entries
            return [entry for entry in entries if not hide(entry.name)]
        return hooked

    machine.kernel.ssdt.hook(Syscall.QUERY_DIRECTORY_FILE, make_wrapper,
                             owner=owner)


class FileHidingFilterDriver(FilterDriver):
    """Technique 6 (commercial hiders): a file-system filter driver.

    Hides any entry whose full path starts with a hidden prefix (so whole
    folders disappear), can deny opens of hidden paths, and can exempt the
    hider's own configuration process by inspecting the IRP's requestor.
    """

    def __init__(self, name: str, deny_open: bool = False):
        self.name = name
        self.hidden_prefixes: List[str] = []
        self.exempt_pids: set = set()
        self.deny_open = deny_open

    def hide_path(self, path: str) -> None:
        self.hidden_prefixes.append(path.casefold())

    def _is_hidden(self, path: str) -> bool:
        folded = path.casefold()
        return any(folded == prefix or folded.startswith(prefix + "\\")
                   for prefix in self.hidden_prefixes)

    def filter_enumeration(self, irp: Irp, entries):
        if irp.requestor_pid in self.exempt_pids:
            return entries
        return [entry for entry in entries if not self._is_hidden(entry.path)]

    def pre_operation(self, irp: Irp) -> None:
        from repro.errors import AccessDenied
        from repro.winapi.iomanager import IrpOperation
        if not self.deny_open:
            return
        if irp.requestor_pid in self.exempt_pids:
            return
        if irp.operation == IrpOperation.ENUMERATE_DIRECTORY:
            return
        if self._is_hidden(irp.path):
            raise AccessDenied(f"{self.name}: {irp.path} is protected")


# --------------------------------------------------------------------------
# registry-enumeration interception helpers
# --------------------------------------------------------------------------

def hook_registry_enum_iat(process: Process, hide: NamePredicate,
                           owner: str) -> None:
    """IAT hook of Advapi32!RegEnumValue / RegEnumKey / RegQueryValue.

    ``hide`` is applied to value names *and* to textual data, so hooks
    whose data names a ghost binary (AppInit_DLLs → msvsres.dll) are
    scrubbed from query results too.
    """
    call_enum_value = _current_target(process, "advapi32", "RegEnumValue")
    call_enum_key = _current_target(process, "advapi32", "RegEnumKey")
    call_query = _current_target(process, "advapi32", "RegQueryValue")

    def trojan_enum_value(proc, key_path):
        out = []
        for view in call_enum_value(proc, key_path):
            if hide(view.name):
                continue
            if hide(view.data):
                view = _scrub_view(view, hide)
            out.append(view)
        return out

    def trojan_enum_key(proc, key_path):
        return [name for name in call_enum_key(proc, key_path)
                if not hide(name)]

    def trojan_query(proc, key_path, name):
        view = call_query(proc, key_path, name)
        if view is None or hide(view.name):
            return None
        if hide(view.data):
            view = _scrub_view(view, hide)
        return view

    process.hook_iat("advapi32", "RegEnumValue", trojan_enum_value, owner)
    process.hook_iat("advapi32", "RegEnumKey", trojan_enum_key, owner)
    process.hook_iat("advapi32", "RegQueryValue", trojan_query, owner)


def _scrub_view(view, hide: NamePredicate):
    """Remove hidden tokens from list-like value data (DLL lists)."""
    from repro.registry.asep import ValueView
    kept = [token for token in view.data.replace(",", " ").split(" ")
            if token and not hide(token)]
    return ValueView(view.name, view.reg_type, " ".join(kept))


def patch_registry_enum_advapi(process: Process, hide: NamePredicate,
                               owner: str, kind: PatchKind) -> None:
    """Inline patch of the Advapi32 registry enumeration code."""
    def wrap_enum_value(original):
        def patched(proc, key_path):
            out = []
            for view in original(proc, key_path):
                if hide(view.name):
                    continue
                if hide(view.data):
                    view = _scrub_view(view, hide)
                out.append(view)
            return out
        return patched

    def wrap_enum_key(original):
        def patched(proc, key_path):
            return [name for name in original(proc, key_path)
                    if not hide(name)]
        return patched

    def wrap_query(original):
        def patched(proc, key_path, name):
            view = original(proc, key_path, name)
            if view is None or hide(view.name):
                return None
            if hide(view.data):
                view = _scrub_view(view, hide)
            return view
        return patched

    process.code_site("advapi32", "RegEnumValue").patch_inline(
        wrap_enum_value, kind, owner)
    process.code_site("advapi32", "RegEnumKey").patch_inline(
        wrap_enum_key, kind, owner)
    process.code_site("advapi32", "RegQueryValue").patch_inline(
        wrap_query, kind, owner)


def patch_registry_enum_ntdll(process: Process, hide: NamePredicate,
                              owner: str,
                              kind: PatchKind = PatchKind.INLINE_DETOUR
                              ) -> None:
    """Detour NtDll!NtEnumerateKey / NtEnumerateValueKey / NtQueryValueKey."""
    def wrap_enum_key(original):
        def patched(proc, key_path):
            return [name for name in original(proc, key_path)
                    if not hide(name)]
        return patched

    def wrap_enum_value(original):
        def patched(proc, key_path):
            return [value for value in original(proc, key_path)
                    if not hide(value.name)
                    and not hide(str(value.win32_data()))]
        return patched

    def wrap_query(original):
        def patched(proc, key_path, name):
            value = original(proc, key_path, name)
            if value is None or hide(value.name) \
                    or hide(str(value.win32_data())):
                return None
            return value
        return patched

    process.code_site("ntdll", "NtEnumerateKey").patch_inline(
        wrap_enum_key, kind, owner)
    process.code_site("ntdll", "NtEnumerateValueKey").patch_inline(
        wrap_enum_value, kind, owner)
    process.code_site("ntdll", "NtQueryValueKey").patch_inline(
        wrap_query, kind, owner)


def hook_ssdt_registry_enum(machine: Machine, hide: NamePredicate,
                            exempt_pids: Optional[List[int]] = None,
                            owner: str = "?") -> None:
    """Kernel-level registry interception via the dispatch table."""
    exempt = set(exempt_pids or ())

    def make_enum_key(original):
        def hooked(requestor_pid, key_path):
            names = original(requestor_pid, key_path)
            if requestor_pid in exempt:
                return names
            return [name for name in names if not hide(name)]
        return hooked

    def make_enum_value(original):
        def hooked(requestor_pid, key_path):
            values = original(requestor_pid, key_path)
            if requestor_pid in exempt:
                return values
            return [value for value in values if not hide(value.name)
                    and not hide(str(value.win32_data()))]
        return hooked

    def make_query(original):
        def hooked(requestor_pid, key_path, name):
            value = original(requestor_pid, key_path, name)
            if requestor_pid in exempt or value is None:
                return value
            if hide(value.name) or hide(str(value.win32_data())):
                from repro.errors import ValueNotFound
                raise ValueNotFound(name)
            return value
        return hooked

    machine.kernel.ssdt.hook(Syscall.ENUMERATE_KEY, make_enum_key,
                             owner=owner)
    machine.kernel.ssdt.hook(Syscall.ENUMERATE_VALUE_KEY, make_enum_value,
                             owner=owner)
    machine.kernel.ssdt.hook(Syscall.QUERY_VALUE_KEY, make_query,
                             owner=owner)


def register_cm_callback(machine: Machine, hide: NamePredicate,
                         owner: str = "?") -> None:
    """Kernel registry-callback interception (the paper's alternative)."""
    def callback(key_path: str, results):
        out = []
        for item in results:
            name = item if isinstance(item, str) else item.name
            if hide(name):
                continue
            out.append(item)
        return out
    callback.audit_owner = owner
    machine.kernel.cm_callbacks.append(callback)


# --------------------------------------------------------------------------
# process-enumeration interception helpers
# --------------------------------------------------------------------------

def hook_process_enum_iat(process: Process, hide: NamePredicate,
                          owner: str) -> None:
    """Aphex: IAT hook of NtDll!NtQuerySystemInformation."""
    call_query = _current_target(process, "ntdll",
                                 "NtQuerySystemInformation")

    def trojan(proc):
        return [info for info in call_query(proc) if not hide(info.name)]

    process.hook_iat("ntdll", "NtQuerySystemInformation", trojan, owner)


def patch_process_enum_ntdll(process: Process, hide: NamePredicate,
                             owner: str,
                             kind: PatchKind = PatchKind.INLINE_DETOUR
                             ) -> None:
    """Hacker Defender / Berbew: jmp inside NtQuerySystemInformation."""
    def wrap(original):
        def patched(proc):
            return [info for info in original(proc) if not hide(info.name)]
        return patched

    process.code_site("ntdll", "NtQuerySystemInformation").patch_inline(
        wrap, kind, owner)
