r"""The Vanquish rootkit [ZV].

Figure 2 technique 2: directly modifies loaded in-memory API code so that
its function is called and then calls the next OS function — the trojan
frames therefore *do* appear in a debugger's call-stack trace
(``INLINE_CALL`` in our patch taxonomy).

Hides (Figure 3) ``vanquish.exe``, ``vanquish.dll``, ``vanquish.log`` and
any other ``*vanquish*`` file; hides its service ASEP hook (Figure 4); and
blanks the ``vanquish.dll`` pathname out of the PEB module list of every
process it infects (Figure 6 — module hiding), while the kernel's own
module table still shows the truth.
"""

from __future__ import annotations

from repro.ghostware.base import (Ghostware, patch_file_enum_kernel32,
                                  patch_registry_enum_advapi)
from repro.machine import Machine
from repro.usermode.process import Process
from repro.winapi.hooks import PatchKind
from repro.winapi.services import TYPE_SERVICE

EXE_PATH = "\\Windows\\vanquish.exe"
DLL_PATH = "\\Windows\\vanquish.dll"
LOG_PATH = "\\vanquish.log"
SERVICE_NAME = "Vanquish"


class Vanquish(Ghostware):
    """Vanquish: in-memory API code modification + PEB module blanking."""

    name = "Vanquish"
    technique = "in-memory API code modification (call-through)"
    stealth_capabilities = frozenset({"cloak", "aware", "coordinate"})

    def _hide(self, text: str) -> bool:
        if not self.concealed():
            return False
        return "vanquish" in text.casefold()

    def _install_persistent(self, machine: Machine) -> None:
        machine.volume.create_file(EXE_PATH, b"MZvanquish")
        machine.volume.create_file(DLL_PATH, b"MZvanquishdll")
        machine.volume.create_file(LOG_PATH, b"captured passwords\n")
        self._register_service_offline(machine)
        machine.register_program(EXE_PATH, self._service_main)
        machine.register_program(DLL_PATH, self._dll_main)

        self.report.hidden_files = [EXE_PATH, DLL_PATH, LOG_PATH]
        self.report.hidden_asep_hooks = [
            f"HKLM\\SYSTEM\\CurrentControlSet\\Services\\{SERVICE_NAME}"
            f" → {EXE_PATH}"]
        self.report.hidden_modules = [DLL_PATH]

    def _register_service_offline(self, machine: Machine) -> None:
        key = f"HKLM\\SYSTEM\\CurrentControlSet\\Services\\{SERVICE_NAME}"
        machine.registry.create_key(key)
        machine.registry.set_value(key, "ImagePath", EXE_PATH)
        machine.registry.set_value(key, "Type", TYPE_SERVICE)
        machine.registry.set_value(key, "Start", 2)

    def activate(self, machine: Machine) -> None:
        machine.start_process(EXE_PATH)

    def _service_main(self, machine: Machine, process: Process) -> None:
        """vanquish.exe: inject vanquish.dll into every process."""
        from repro.usermode.injection import inject_into_all
        inject_into_all(machine, DLL_PATH)

        def on_start(mach: Machine, new_process: Process) -> None:
            from repro.usermode.injection import inject_dll
            inject_dll(mach, new_process, DLL_PATH)

        machine.process_start_hooks.append(on_start)

    def _dll_main(self, machine: Machine, process: Process) -> None:
        """vanquish.dll inside one process: patch code, blank the PEB."""
        patch_file_enum_kernel32(process, self._hide, self.name,
                                 PatchKind.INLINE_CALL)
        patch_registry_enum_advapi(process, self._hide, self.name,
                                   PatchKind.INLINE_CALL)
        machine.kernel.peb_view(process.pid).blank_module_path("vanquish.dll")
