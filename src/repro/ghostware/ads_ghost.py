r"""ADS-based stealth (the paper's future-work hiding class, realized).

Hides an executable payload in an alternate data stream of an innocent
system file (``\Windows\win.ini:msupd.exe``) and auto-starts it from a
``Run``-key value referencing the stream path — the classic real-world
ADS persistence trick.  No API is hooked anywhere: the host file looks
completely normal to every tool, and pre-Vista Windows has no stream
enumeration API at all.

Detection requires the ADS scanner (:mod:`repro.core.ads`), not the
regular file diff — which is exactly why the paper lists ADS as beyond
the original tool's scope.
"""

from __future__ import annotations

from repro.ghostware.base import Ghostware
from repro.machine import Machine, RUN_KEY

HOST_FILE = "\\Windows\\win.ini"
STREAM_NAME = "msupd.exe"


class AdsGhost(Ghostware):
    """Payload inside an alternate stream of an innocent file."""

    name = "AdsGhost"
    technique = "alternate data stream (no enumeration API exists)"

    def __init__(self, host_file: str = HOST_FILE,
                 stream_name: str = STREAM_NAME):
        super().__init__()
        self.host_file = host_file
        self.stream_name = stream_name

    @property
    def stream_path(self) -> str:
        return f"{self.host_file}:{self.stream_name}"

    def _install_persistent(self, machine: Machine) -> None:
        volume = machine.volume
        if not volume.exists(self.host_file):
            volume.create_file(self.host_file, b"[fonts]\n")
        volume.write_stream(self.host_file, self.stream_name,
                            b"MZads-payload")
        machine.registry.set_value(RUN_KEY, "msupd", self.stream_path)
        # Nothing in report.hidden_files: the regular file diff sees the
        # (innocent) host file in both views.  The artifact lives in
        # visible_files as the host + a stream only the ADS scan finds.
        self.report.visible_files = [self.host_file]
