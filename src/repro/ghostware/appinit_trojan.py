r"""Shared implementation for the two in-the-wild AppInit_DLLs Trojans.

Urbin and Mersting (both captured from infected machines, per the paper)
share a structure: a single DLL dropped into ``System32``, hooked into
``AppInit_DLLs`` so every process that loads User32.dll loads the trojan,
whose DllMain installs per-process IAT hooks hiding (a) the DLL file and
(b) the AppInit_DLLs hook itself.
"""

from __future__ import annotations

from repro.ghostware.base import (Ghostware, hook_file_enum_iat,
                                  hook_registry_enum_iat)
from repro.machine import APPINIT_KEY, Machine
from repro.usermode.process import Process


class AppInitTrojan(Ghostware):
    """Base for Urbin / Mersting: IAT hooks delivered via AppInit_DLLs."""

    dll_name = "trojan.dll"
    technique = "IAT hook of file/registry enumeration (via AppInit_DLLs)"
    stealth_capabilities = frozenset(
        {"cloak", "aware", "rotate", "coordinate"})

    @property
    def dll_path(self) -> str:
        return f"\\Windows\\System32\\{self.dll_name}"

    def _hide(self, text: str) -> bool:
        if not self.concealed():
            return False
        return self.dll_name.casefold() in text.casefold()

    def rotate_identity(self, machine: Machine, token: str) -> None:
        """New DLL name: rename the file, rewrite the AppInit hook."""
        old_name, old_path = self.dll_name, self.dll_path
        new_name = f"{token}.dll"
        self.dll_name = new_name
        machine.volume.rename(old_path, self.dll_path)
        appinit = machine.registry.get_value(APPINIT_KEY, "AppInit_DLLs")
        parts = [new_name if p.casefold() == old_name.casefold() else p
                 for p in str(appinit.win32_data()).split()]
        machine.registry.set_value(APPINIT_KEY, "AppInit_DLLs",
                                   " ".join(parts))
        machine.register_program(self.dll_path, self._dll_main)
        self.report.hidden_files = [self.dll_path]
        self.report.hidden_asep_hooks = [
            f"{APPINIT_KEY}\\AppInit_DLLs → {self.dll_name}"]

    def _install_persistent(self, machine: Machine) -> None:
        machine.volume.create_file(self.dll_path,
                                   b"MZ" + self.dll_name.encode())
        appinit = machine.registry.get_value(APPINIT_KEY, "AppInit_DLLs")
        existing = str(appinit.win32_data())
        hooked = f"{existing} {self.dll_name}".strip()
        machine.registry.set_value(APPINIT_KEY, "AppInit_DLLs", hooked)
        machine.register_program(self.dll_path, self._dll_main)

        self.report.hidden_files = [self.dll_path]
        self.report.hidden_asep_hooks = [
            f"{APPINIT_KEY}\\AppInit_DLLs → {self.dll_name}"]

    def activate(self, machine: Machine) -> None:
        """Install-time activation: load the DLL everywhere immediately."""
        from repro.usermode.injection import inject_into_all
        inject_into_all(machine, self.dll_path)

    def _dll_main(self, machine: Machine, process: Process) -> None:
        """Runs inside every process the DLL is loaded into."""
        self.infect_process(machine, process)

    def infect_process(self, machine: Machine, process: Process) -> None:
        hook_file_enum_iat(process, self._hide, self.name)
        hook_registry_enum_iat(process, self._hide, self.name)
