"""The Urbin Trojan [ZU] — captured from an infected machine.

Hides ``msvsres.dll`` (Figure 3) and its ``AppInit_DLLs`` hook (Figure 4)
by altering per-process Import Address Table entries of the file- and
registry-enumeration APIs — the highest-level interception in Figure 2.
"""

from __future__ import annotations

from repro.ghostware.appinit_trojan import AppInitTrojan


class Urbin(AppInitTrojan):
    """Urbin: AppInit_DLLs-delivered IAT hooker hiding msvsres.dll."""

    name = "Urbin"
    dll_name = "msvsres.dll"
