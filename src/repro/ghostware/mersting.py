"""The Mersting Trojan — captured from an infected machine.

Structurally Urbin's twin: hides ``kbddfl.dll`` (Figure 3) and its
``AppInit_DLLs`` hook (Figure 4) through per-process IAT modification.
"""

from __future__ import annotations

from repro.ghostware.appinit_trojan import AppInitTrojan


class Mersting(AppInitTrojan):
    """Mersting: AppInit_DLLs-delivered IAT hooker hiding kbddfl.dll."""

    name = "Mersting"
    dll_name = "kbddfl.dll"
