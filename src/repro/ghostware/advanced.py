r"""The Section-2 caveat made concrete: interfering with the low-level scan.

"A ghostware program running with sufficient privilege can always try to
defeat the [inside-the-box] solution by interfering with the low-level
scan."  This strain does exactly that: besides Hacker-Defender-style NtDll
detours, its driver filters the kernel's *raw disk port* — the path the
inside-the-box MFT scan reads through — and zeroes any MFT record whose
bytes mention its artifacts.  The inside-the-box diff then comes back
clean, and only the outside-the-box scan (which reads the physical disk
from a clean OS, below the compromised kernel) exposes it.

This is ablation A3's subject.
"""

from __future__ import annotations

from repro.ghostware.base import (Ghostware, patch_file_enum_ntdll,
                                  patch_registry_enum_ntdll)
from repro.machine import Machine
from repro.ntfs.constants import MFT_RECORD_SIZE
from repro.usermode.process import Process
from repro.winapi.services import TYPE_SERVICE

EXE_PATH = "\\Windows\\deepghost.exe"
SERVICE_NAME = "DeepGhost"
TOKEN = "deepghost"


class LowLevelInterferenceGhost(Ghostware):
    """Hides from the API *and* from inside-the-box raw disk reads."""

    name = "DeepGhost"
    technique = "NtDll detours + raw-disk-read interception"

    def _hide(self, text: str) -> bool:
        return TOKEN in text.casefold()

    def _install_persistent(self, machine: Machine) -> None:
        machine.volume.create_file(EXE_PATH, b"MZdeepghost")
        key = f"HKLM\\SYSTEM\\CurrentControlSet\\Services\\{SERVICE_NAME}"
        machine.registry.create_key(key)
        machine.registry.set_value(key, "ImagePath", EXE_PATH)
        machine.registry.set_value(key, "Type", TYPE_SERVICE)
        machine.registry.set_value(key, "Start", 2)
        machine.register_program(EXE_PATH, self._main)
        self.report.hidden_files = [EXE_PATH]
        self.report.hidden_asep_hooks = [f"{key} → {EXE_PATH}"]

    def activate(self, machine: Machine) -> None:
        machine.start_process(EXE_PATH)

    def _main(self, machine: Machine, process: Process) -> None:
        self.infect_everywhere(machine)
        self._intercept_raw_reads(machine)

    def infect_process(self, machine: Machine, process: Process) -> None:
        patch_file_enum_ntdll(process, self._hide, self.name)
        patch_registry_enum_ntdll(process, self._hide, self.name)

    def _intercept_raw_reads(self, machine: Machine) -> None:
        """Scrub our traces out of raw reads through the disk port.

        Two filters: MFT records mentioning our artifacts are zeroed
        (hiding the files from the inside raw file scan), and hive-file
        reads are re-serialized without our Services key (hiding the ASEP
        hook from the inside raw registry scan).  The physical disk —
        what the outside-the-box scan reads — is untouched.
        """
        self._scrub_mft_reads(machine)
        self._scrub_hive_reads(machine)

    def _scrub_mft_reads(self, machine: Machine) -> None:
        volume = machine.volume
        mft_start = volume.mft_offset
        mft_end = mft_start + volume.max_records * MFT_RECORD_SIZE
        needle = TOKEN.encode("utf-16-le")
        needle_upper = TOKEN.capitalize().encode("utf-16-le")

        def scrub(offset: int, length: int, data: bytes) -> bytes:
            if offset >= mft_end or offset + length <= mft_start:
                return data
            view = bytearray(data)
            # Walk record-aligned slices overlapping the MFT region.
            first_record = max(0, (offset - mft_start) // MFT_RECORD_SIZE)
            last_record = (offset + length - 1 - mft_start) \
                // MFT_RECORD_SIZE
            for record_no in range(first_record, last_record + 1):
                record_offset = mft_start + record_no * MFT_RECORD_SIZE
                lo = max(record_offset, offset)
                hi = min(record_offset + MFT_RECORD_SIZE, offset + length)
                if lo >= hi:
                    continue
                chunk = bytes(view[lo - offset:hi - offset])
                if needle in chunk.lower() or needle_upper in chunk:
                    view[lo - offset:hi - offset] = b"\x00" * (hi - lo)
            return bytes(view)

        scrub.audit_owner = self.name
        machine.kernel.disk_port.read_filters.append(scrub)

    def _scrub_hive_reads(self, machine: Machine) -> None:
        """Rewrite hive-file reads with our Services key edited out.

        Works when the read delivers the hive from its first byte (the
        common contiguous-file case); fragmented hives would partially
        escape — interference is best-effort, exactly the paper's point
        about the low-level scan being only a truth approximation.
        """
        from repro.registry.hive import Hive

        def scrub(offset: int, length: int, data: bytes) -> bytes:
            if data[:4] != b"regf":
                return data
            try:
                hive = Hive.deserialize(data)
                services = hive.open_key("CurrentControlSet\\Services")
            except Exception:
                return data
            if not services.has_subkey(SERVICE_NAME):
                return data
            services.delete_subkey(SERVICE_NAME)
            rebuilt = hive.serialize()
            if len(rebuilt) > len(data):
                return data
            return rebuilt + b"\x00" * (len(data) - len(rebuilt))

        scrub.audit_owner = self.name
        machine.kernel.disk_port.read_filters.append(scrub)
