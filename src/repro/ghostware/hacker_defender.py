r"""Hacker Defender 1.0 [ZH] — "the most popular Windows rootkit today"
(per the paper's Product Support Service engineers).

Figure 2 technique 4: jmp detours inside the *NtDll* layer
(``NtQueryDirectoryFile`` for files, ``NtEnumerateKey`` /
``NtEnumerateValueKey`` for the registry, ``NtQuerySystemInformation`` for
processes) installed in every process.

Hides (Figures 3, 4, 6):

* files ``hxdef100.exe``, ``hxdefdrv.sys``, ``hxdef100.ini`` plus anything
  matching the patterns in its INI's ``[Hidden Table]``;
* both of its service ASEP hooks (``HackerDefender100`` and
  ``HackerDefenderDrv100``);
* its process and any process matching the INI patterns.

It does *not* hide its driver from the loaded-driver list — which is why
the paper notes AskStrider can spot an infection via the unhidden
``hxdefdrv.sys`` today.
"""

from __future__ import annotations

import fnmatch
from typing import List

from repro.ghostware.base import (Ghostware, patch_file_enum_ntdll,
                                  patch_process_enum_ntdll,
                                  patch_registry_enum_ntdll)
from repro.machine import Machine
from repro.usermode.process import Process
from repro.winapi.services import TYPE_DRIVER, TYPE_SERVICE

EXE_PATH = "\\Windows\\hxdef100.exe"
DRIVER_PATH = "\\Windows\\hxdefdrv.sys"
INI_PATH = "\\Windows\\hxdef100.ini"

DEFAULT_INI = """[Hidden Table]
hxdef*
[Hidden Processes]
hxdef*
[Hidden RegKeys]
HackerDefender100
HackerDefenderDrv100
[Settings]
ServiceName=HackerDefender100
DriverName=HackerDefenderDrv100
"""


def parse_ini(text: str) -> dict:
    """Parse the hxdef INI dialect: bare patterns under bracket headers."""
    sections: dict = {}
    current: List[str] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith(";"):
            continue
        if line.startswith("[") and line.endswith("]"):
            current = sections.setdefault(line[1:-1], [])
        else:
            current.append(line)
    return sections


class HackerDefender(Ghostware):
    """Hacker Defender: NtDll-level detours, INI-driven hiding patterns."""

    name = "Hacker Defender 1.0"
    technique = "inline jmp detour in NtDll (files, registry, processes)"
    stealth_capabilities = frozenset(
        {"cloak", "aware", "rotate", "coordinate"})

    def __init__(self, extra_patterns: List[str] = ()):
        super().__init__()
        self.extra_patterns = list(extra_patterns)
        self._patterns: List[str] = []
        self._reg_patterns: List[str] = []
        self.exe_path = EXE_PATH
        self.driver_path = DRIVER_PATH
        self.ini_path = INI_PATH
        self.service_name = "HackerDefender100"
        self.driver_service = "HackerDefenderDrv100"

    def _hide(self, text: str) -> bool:
        if not self.concealed():
            return False
        name = text.rsplit("\\", 1)[-1].casefold()
        return any(fnmatch.fnmatch(name, pattern.casefold())
                   for pattern in self._patterns)

    def _hide_reg(self, text: str) -> bool:
        if not self.concealed():
            return False
        name = text.rsplit("\\", 1)[-1].casefold()
        return self._hide(text) or any(
            fnmatch.fnmatch(name, pattern.casefold())
            for pattern in self._reg_patterns)

    def _install_persistent(self, machine: Machine) -> None:
        ini_text = DEFAULT_INI
        for pattern in self.extra_patterns:
            head, sep, tail = ini_text.partition("[Hidden Processes]")
            ini_text = head + pattern + "\n" + sep + tail
        machine.volume.create_file(self.exe_path, b"MZhxdef")
        machine.volume.create_file(self.driver_path, b"MZhxdefdrv")
        machine.volume.create_file(self.ini_path, ini_text.encode())

        services = "HKLM\\SYSTEM\\CurrentControlSet\\Services"
        for service, image, kind in (
                (self.service_name, self.exe_path, TYPE_SERVICE),
                (self.driver_service, self.driver_path, TYPE_DRIVER)):
            key = f"{services}\\{service}"
            machine.registry.create_key(key)
            machine.registry.set_value(key, "ImagePath", image)
            machine.registry.set_value(key, "Type", kind)
            machine.registry.set_value(key, "Start", 2)
        machine.register_program(self.exe_path, self._service_main)

        self.report.hidden_files = [self.exe_path, self.driver_path,
                                    self.ini_path]
        self.report.hidden_asep_hooks = [
            f"{services}\\HackerDefender100 → hxdef100.exe",
            f"{services}\\HackerDefenderDrv100 → hxdefdrv.sys"]
        self.report.hidden_processes = ["hxdef100.exe"]
        # driver list stays honest
        self.report.visible_files = [self.driver_path]

    def activate(self, machine: Machine) -> None:
        machine.kernel.load_driver("hxdefdrv.sys")
        machine.start_process(self.exe_path)

    def _service_main(self, machine: Machine, process: Process) -> None:
        """hxdef100.exe: load patterns from the INI, hook everything."""
        ini = parse_ini(machine.volume.read_file(self.ini_path).decode())
        self._patterns = (ini.get("Hidden Table", [])
                          + ini.get("Hidden Processes", []))
        self._reg_patterns = [line.split("=")[0] for line
                              in ini.get("Hidden RegKeys", [])]
        self.infect_everywhere(machine)

    def rotate_identity(self, machine: Machine, token: str) -> None:
        """New stem for files, patterns and both service ASEP hooks.

        The already-running ``hxdef100.exe`` process keeps its old name,
        which the new patterns no longer match — after rotation it is
        equally visible in both views (and drops off the ground-truth
        hidden-process list).
        """
        stem = token.casefold()
        services = "HKLM\\SYSTEM\\CurrentControlSet\\Services"
        for service in (self.service_name, self.driver_service):
            machine.registry.delete_key(f"{services}\\{service}")

        renames = {"exe_path": f"\\Windows\\{stem}100.exe",
                   "driver_path": f"\\Windows\\{stem}drv.sys",
                   "ini_path": f"\\Windows\\{stem}100.ini"}
        for attr, new_path in renames.items():
            machine.volume.rename(getattr(self, attr), new_path)
            setattr(self, attr, new_path)
        self.service_name = f"{stem.capitalize()}100"
        self.driver_service = f"{stem.capitalize()}Drv100"

        ini_text = "\n".join(
            ["[Hidden Table]", f"{stem}*", "[Hidden Processes]", f"{stem}*",
             *self.extra_patterns,
             "[Hidden RegKeys]", self.service_name, self.driver_service,
             "[Settings]", f"ServiceName={self.service_name}",
             f"DriverName={self.driver_service}", ""])
        machine.volume.write_file(self.ini_path, ini_text.encode())

        for service, image, kind in (
                (self.service_name, self.exe_path, TYPE_SERVICE),
                (self.driver_service, self.driver_path, TYPE_DRIVER)):
            key = f"{services}\\{service}"
            machine.registry.create_key(key)
            machine.registry.set_value(key, "ImagePath", image)
            machine.registry.set_value(key, "Type", kind)
            machine.registry.set_value(key, "Start", 2)
        machine.register_program(self.exe_path, self._service_main)

        # Live hooks read these lists on every call: retarget in place.
        ini = parse_ini(ini_text)
        self._patterns = (ini.get("Hidden Table", [])
                          + ini.get("Hidden Processes", []))
        self._reg_patterns = [line.split("=")[0] for line
                              in ini.get("Hidden RegKeys", [])]

        exe_name = self.exe_path.rsplit("\\", 1)[-1]
        drv_name = self.driver_path.rsplit("\\", 1)[-1]
        self.report.hidden_files = [self.exe_path, self.driver_path,
                                    self.ini_path]
        self.report.hidden_asep_hooks = [
            f"{services}\\{self.service_name} → {exe_name}",
            f"{services}\\{self.driver_service} → {drv_name}"]
        self.report.hidden_processes = []
        self.report.visible_files = [self.driver_path]

    def infect_process(self, machine: Machine, process: Process) -> None:
        patch_file_enum_ntdll(process, self._hide, self.name)
        patch_registry_enum_ntdll(process, self._hide_reg, self.name)
        patch_process_enum_ntdll(process, self._hide, self.name)
