r"""Hacker Defender 1.0 [ZH] — "the most popular Windows rootkit today"
(per the paper's Product Support Service engineers).

Figure 2 technique 4: jmp detours inside the *NtDll* layer
(``NtQueryDirectoryFile`` for files, ``NtEnumerateKey`` /
``NtEnumerateValueKey`` for the registry, ``NtQuerySystemInformation`` for
processes) installed in every process.

Hides (Figures 3, 4, 6):

* files ``hxdef100.exe``, ``hxdefdrv.sys``, ``hxdef100.ini`` plus anything
  matching the patterns in its INI's ``[Hidden Table]``;
* both of its service ASEP hooks (``HackerDefender100`` and
  ``HackerDefenderDrv100``);
* its process and any process matching the INI patterns.

It does *not* hide its driver from the loaded-driver list — which is why
the paper notes AskStrider can spot an infection via the unhidden
``hxdefdrv.sys`` today.
"""

from __future__ import annotations

import fnmatch
from typing import List

from repro.ghostware.base import (Ghostware, patch_file_enum_ntdll,
                                  patch_process_enum_ntdll,
                                  patch_registry_enum_ntdll)
from repro.machine import Machine
from repro.usermode.process import Process
from repro.winapi.services import TYPE_DRIVER, TYPE_SERVICE

EXE_PATH = "\\Windows\\hxdef100.exe"
DRIVER_PATH = "\\Windows\\hxdefdrv.sys"
INI_PATH = "\\Windows\\hxdef100.ini"

DEFAULT_INI = """[Hidden Table]
hxdef*
[Hidden Processes]
hxdef*
[Hidden RegKeys]
HackerDefender100
HackerDefenderDrv100
[Settings]
ServiceName=HackerDefender100
DriverName=HackerDefenderDrv100
"""


def parse_ini(text: str) -> dict:
    """Parse the hxdef INI dialect: bare patterns under bracket headers."""
    sections: dict = {}
    current: List[str] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith(";"):
            continue
        if line.startswith("[") and line.endswith("]"):
            current = sections.setdefault(line[1:-1], [])
        else:
            current.append(line)
    return sections


class HackerDefender(Ghostware):
    """Hacker Defender: NtDll-level detours, INI-driven hiding patterns."""

    name = "Hacker Defender 1.0"
    technique = "inline jmp detour in NtDll (files, registry, processes)"

    def __init__(self, extra_patterns: List[str] = ()):
        super().__init__()
        self.extra_patterns = list(extra_patterns)
        self._patterns: List[str] = []
        self._reg_patterns: List[str] = []

    def _hide(self, text: str) -> bool:
        name = text.rsplit("\\", 1)[-1].casefold()
        return any(fnmatch.fnmatch(name, pattern.casefold())
                   for pattern in self._patterns)

    def _hide_reg(self, text: str) -> bool:
        name = text.rsplit("\\", 1)[-1].casefold()
        return self._hide(text) or any(
            fnmatch.fnmatch(name, pattern.casefold())
            for pattern in self._reg_patterns)

    def _install_persistent(self, machine: Machine) -> None:
        ini_text = DEFAULT_INI
        for pattern in self.extra_patterns:
            head, sep, tail = ini_text.partition("[Hidden Processes]")
            ini_text = head + pattern + "\n" + sep + tail
        machine.volume.create_file(EXE_PATH, b"MZhxdef")
        machine.volume.create_file(DRIVER_PATH, b"MZhxdefdrv")
        machine.volume.create_file(INI_PATH, ini_text.encode())

        services = "HKLM\\SYSTEM\\CurrentControlSet\\Services"
        for service, image, kind in (
                ("HackerDefender100", EXE_PATH, TYPE_SERVICE),
                ("HackerDefenderDrv100", DRIVER_PATH, TYPE_DRIVER)):
            key = f"{services}\\{service}"
            machine.registry.create_key(key)
            machine.registry.set_value(key, "ImagePath", image)
            machine.registry.set_value(key, "Type", kind)
            machine.registry.set_value(key, "Start", 2)
        machine.register_program(EXE_PATH, self._service_main)

        self.report.hidden_files = [EXE_PATH, DRIVER_PATH, INI_PATH]
        self.report.hidden_asep_hooks = [
            f"{services}\\HackerDefender100 → hxdef100.exe",
            f"{services}\\HackerDefenderDrv100 → hxdefdrv.sys"]
        self.report.hidden_processes = ["hxdef100.exe"]
        self.report.visible_files = [DRIVER_PATH]  # driver list stays honest

    def activate(self, machine: Machine) -> None:
        machine.kernel.load_driver("hxdefdrv.sys")
        machine.start_process(EXE_PATH)

    def _service_main(self, machine: Machine, process: Process) -> None:
        """hxdef100.exe: load patterns from the INI, hook everything."""
        ini = parse_ini(machine.volume.read_file(INI_PATH).decode())
        self._patterns = (ini.get("Hidden Table", [])
                          + ini.get("Hidden Processes", []))
        self._reg_patterns = [line.split("=")[0] for line
                              in ini.get("Hidden RegKeys", [])]
        self.infect_everywhere(machine)

    def infect_process(self, machine: Machine, process: Process) -> None:
        patch_file_enum_ntdll(process, self._hide, self.name)
        patch_registry_enum_ntdll(process, self._hide_reg, self.name)
        patch_process_enum_ntdll(process, self._hide, self.name)
