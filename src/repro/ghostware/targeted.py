r"""Section 5's targeting issues: ghostware that picks its victims.

* :class:`UtilityTargetedGhost` hides only from named OS utilities (Task
  Manager, tlist, Explorer).  A GhostBuster process that is *not* on the
  target list experiences no hiding, so its high-level scan equals the
  truth and the diff is empty — the tool "cannot experience the hiding
  behavior".
* :class:`GhostBusterAwareGhost` inverts the trick: it hides from every
  process *except* one named like the GhostBuster scanner, feeding the
  detector the truth while lying to everyone else.

Both are defeated by the DLL-injection extension
(:mod:`repro.core.injection_ext`): when every process — Task Manager,
Explorer, the AV scanner — *is* a GhostBuster, there is no safe process
left to lie to.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.ghostware.base import (Ghostware, patch_file_enum_ntdll,
                                  patch_process_enum_ntdll)
from repro.machine import Machine, RUN_KEY
from repro.usermode.process import Process

DEFAULT_TARGETS = ("taskmgr.exe", "tlist.exe", "explorer.exe")


class _SelectiveGhost(Ghostware):
    """Shared machinery: NtDll detours installed in selected processes."""

    exe_name = "selective.exe"

    def __init__(self) -> None:
        super().__init__()
        self.exe_path = f"\\Windows\\System32\\{self.exe_name}"

    def _hide(self, text: str) -> bool:
        return self.exe_name.casefold() in text.casefold()

    def _should_infect(self, process: Process) -> bool:
        raise NotImplementedError

    def _install_persistent(self, machine: Machine) -> None:
        machine.volume.create_file(self.exe_path, b"MZselective")
        machine.registry.set_value(RUN_KEY, self.exe_name.split(".")[0],
                                   self.exe_path)
        machine.register_program(self.exe_path, self._main)
        self.report.hidden_files = [self.exe_path]
        self.report.hidden_processes = [self.exe_name]

    def activate(self, machine: Machine) -> None:
        machine.start_process(self.exe_path)

    def _main(self, machine: Machine, process: Process) -> None:
        self.infect_everywhere(
            machine, skip=lambda proc: not self._should_infect(proc))

    def infect_process(self, machine: Machine, process: Process) -> None:
        patch_file_enum_ntdll(process, self._hide, self.name)
        patch_process_enum_ntdll(process, self._hide, self.name)


class UtilityTargetedGhost(_SelectiveGhost):
    """Hides only from specific OS utilities."""

    name = "UtilityTargeted"
    technique = "NtDll detours installed only in targeted utilities"
    exe_name = "utghost.exe"

    def __init__(self, targets: Iterable[str] = DEFAULT_TARGETS):
        super().__init__()
        self.targets: Set[str] = {name.casefold() for name in targets}

    def _should_infect(self, process: Process) -> bool:
        return process.name.casefold() in self.targets


class GhostBusterAwareGhost(_SelectiveGhost):
    """Hides from everything except the GhostBuster scanner process."""

    name = "GhostBusterAware"
    technique = "NtDll detours in every process except the scanner's"
    exe_name = "gbaware.exe"

    def __init__(self, scanner_names: Iterable[str] = ("ghostbuster.exe",)):
        super().__init__()
        self.scanner_names: Set[str] = {n.casefold() for n in scanner_names}

    def _should_infect(self, process: Process) -> bool:
        return process.name.casefold() not in self.scanner_names
