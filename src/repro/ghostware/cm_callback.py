r"""Registry hiding via kernel registry callbacks.

Section 3's alternative mechanism: "ghostware programs can use the
kernel-level Registry callback functionality to intercept and filter
Registry query results."  Unlike per-process hooks, one callback
registration lies to every process — but the raw-hive file parse never
passes through the configuration manager, so the cross-view diff is
untouched.
"""

from __future__ import annotations

from repro.ghostware.base import Ghostware, register_cm_callback
from repro.machine import Machine, RUN_KEY
from repro.usermode.process import Process
from repro.winapi.services import TYPE_DRIVER

DRIVER_PATH = "\\Windows\\System32\\drivers\\cmfilt.sys"
SERVICE_NAME = "cmfilt"
RUN_VALUE = "cmghost"
EXE_PATH = "\\Windows\\System32\\cmghost.exe"


class CmCallbackGhost(Ghostware):
    """Hides its Run hook through a CmRegisterCallback-style filter."""

    name = "CmCallbackGhost"
    technique = "kernel registry callback filtering"
    stealth_capabilities = frozenset({"cloak", "aware", "coordinate"})

    def _hide(self, text: str) -> bool:
        if not self.concealed():
            return False
        return "cmghost" in text.casefold()

    def _install_persistent(self, machine: Machine) -> None:
        machine.volume.create_file(EXE_PATH, b"MZcmghost")
        machine.volume.create_file(DRIVER_PATH, b"MZcmfilt")
        key = f"HKLM\\SYSTEM\\CurrentControlSet\\Services\\{SERVICE_NAME}"
        machine.registry.create_key(key)
        machine.registry.set_value(key, "ImagePath", DRIVER_PATH)
        machine.registry.set_value(key, "Type", TYPE_DRIVER)
        machine.registry.set_value(key, "Start", 2)
        machine.registry.set_value(RUN_KEY, RUN_VALUE, EXE_PATH)
        machine.register_program(DRIVER_PATH, self._driver_entry)
        self.report.hidden_asep_hooks = [
            f"{RUN_KEY}\\{RUN_VALUE} → {EXE_PATH}"]
        self.report.visible_files = [EXE_PATH, DRIVER_PATH]

    def activate(self, machine: Machine) -> None:
        machine.load_driver_image(SERVICE_NAME, DRIVER_PATH)

    def _driver_entry(self, machine: Machine, process) -> None:
        register_cm_callback(machine, self._hide, owner=self.name)
