"""User-mode process model: IAT, loaded module code, API call resolution."""

from repro.usermode.process import Process, IatEntry
from repro.usermode.injection import inject_dll, inject_into_all

__all__ = ["Process", "IatEntry", "inject_dll", "inject_into_all"]
