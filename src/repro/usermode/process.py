"""User-mode processes.

A :class:`Process` is the *caller's* side of the API stack: its Import
Address Table and its private copies of loaded module code (CodeSites).
``process.call("kernel32", "FindFirstFile", path)`` resolves exactly the
way a real call does — IAT first, then the module's in-memory code — so
per-process interception (IAT hooks, inline patches) affects this process
and only this process.

Processes are created by the :class:`~repro.machine.Machine`, which pairs
each one with its kernel-side EPROCESS/PEB and populates the standard
module set (ntdll, kernel32, advapi32, user32).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ApiError
from repro.telemetry import context as telemetry_context
from repro.telemetry.audit import LAYER_IAT
from repro.winapi.hooks import ApiImpl, CodeSite, ModuleCode


@dataclass
class IatEntry:
    """One redirected import: the trojan target plus attribution."""

    target: ApiImpl
    owner: str


class Process:
    """One user-mode process and its private API-resolution state."""

    def __init__(self, pid: int, name: str, image_path: str, kernel,
                 machine=None):
        self.pid = pid
        self.name = name
        self.image_path = image_path
        self.kernel = kernel
        self.machine = machine
        self.iat: Dict[Tuple[str, str], IatEntry] = {}
        self.modules: Dict[str, ModuleCode] = {}
        self._handles: Dict[int, List] = {}
        self._handle_positions: Dict[int, int] = {}
        self._next_handle = 1
        self.alive = True

    # -- module management -----------------------------------------------------

    def map_module(self, name: str, exports: Dict[str, ApiImpl]) -> ModuleCode:
        """Map a DLL image into this process (private code copy)."""
        module = ModuleCode(name, exports)
        self.modules[name.casefold()] = module
        return module

    def module(self, name: str) -> ModuleCode:
        module = self.modules.get(name.casefold())
        if module is None:
            raise ApiError(f"{name} is not loaded in {self.name}")
        return module

    def code_site(self, module: str, function: str) -> CodeSite:
        return self.module(module).site(function)

    # -- API call resolution ------------------------------------------------------

    def call(self, module: str, function: str, *args):
        """Invoke an API the way compiled code would.

        Resolution order is the real one: the process's IAT entry for this
        import, else the module's in-memory code.
        """
        entry = self.iat.get((module.casefold(), function))
        if entry is not None:
            audit = telemetry_context.current_audit()
            if audit is not None:
                audit.record(LAYER_IAT, f"{module}!{function}",
                             kind="iat", owner=entry.owner,
                             pid=self.pid, process=self.name)
            return entry.target(self, *args)
        return self.code_site(module, function).call(self, *args)

    # -- IAT manipulation ------------------------------------------------------------

    def hook_iat(self, module: str, function: str, target: ApiImpl,
                 owner: str) -> None:
        """Redirect an import to a trojan function (Urbin/Mersting style)."""
        self.iat[(module.casefold(), function)] = IatEntry(target, owner)

    def unhook_iat(self, module: str, function: str) -> None:
        self.iat.pop((module.casefold(), function), None)

    # -- enumeration handles -------------------------------------------------------------

    def open_handle(self, items: List) -> int:
        """Back a FindFirstFile / Toolhelp-style enumeration."""
        handle = self._next_handle
        self._next_handle += 1
        self._handles[handle] = list(items)
        self._handle_positions[handle] = 0
        return handle

    def advance_handle(self, handle: int):
        """Next item for a handle, or None when exhausted."""
        if handle not in self._handles:
            raise ApiError(f"invalid handle {handle}")
        position = self._handle_positions[handle]
        items = self._handles[handle]
        if position >= len(items):
            return None
        self._handle_positions[handle] = position + 1
        return items[position]

    def close_handle(self, handle: int) -> None:
        self._handles.pop(handle, None)
        self._handle_positions.pop(handle, None)

    def __repr__(self) -> str:
        return f"<Process pid={self.pid} {self.name!r}>"


ProcessStartHook = Callable[[Process], None]
