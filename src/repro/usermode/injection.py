"""DLL injection.

Used by three different actors in the paper:

* the OS itself — ``AppInit_DLLs`` loads a DLL into every process that
  loads User32.dll (Urbin's and Mersting's persistence vector);
* ghostware — per-process hooks (IAT, inline patches) must be installed in
  *every* process, so user-mode rootkits inject themselves everywhere;
* GhostBuster's Section-5 extension — injecting the scanner DLL into every
  running process turns each of them into a GhostBuster, defeating
  utility-targeted and GhostBuster-targeted hiding.
"""

from __future__ import annotations

from typing import List

from repro.usermode.process import Process


def inject_dll(machine, process: Process, dll_path: str) -> bool:
    """Load a DLL image into one process and run its entry point.

    Returns False when the DLL file does not exist on the volume (the
    image to map is gone), which is what neuters ghostware whose files
    were removed.
    """
    if process.pid == 4:
        return False   # the System process has no user address space
    if not machine.volume.exists(dll_path):
        return False
    machine.kernel.load_module(process.pid, dll_path)
    entry = machine.program_entry(dll_path)
    if entry is not None:
        entry(machine, process)
    return True


def inject_into_all(machine, dll_path: str,
                    skip_pids: List[int] = ()) -> int:
    """Inject a DLL into every running user process; returns the count."""
    injected = 0
    for process in machine.user_processes():
        if process.pid in skip_pids:
            continue
        if inject_dll(machine, process, dll_path):
            injected += 1
    return injected
