"""Exception hierarchy for the GhostBuster reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can distinguish simulation faults from programming errors.  The
Windows-flavoured subclasses mirror the NTSTATUS / Win32 error conditions
that the real GhostBuster tool would encounter.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the reproduction."""


class DiskError(ReproError):
    """Raised for out-of-range or malformed disk accesses."""


class VolumeError(ReproError):
    """Raised for filesystem-level failures on the simulated NTFS volume."""


class FileNotFound(VolumeError):
    """The requested path does not exist on the volume."""


class FileExists(VolumeError):
    """A file or directory already exists at the requested path."""


class NotADirectory(VolumeError):
    """A path component that must be a directory is a regular file."""


class DirectoryNotEmpty(VolumeError):
    """Attempted to delete a directory that still has children."""


class InvalidWin32Name(VolumeError):
    """The name violates Win32 naming restrictions (but may be NT-legal)."""


class TransientIoError(ReproError):
    """A read failed in a way that may succeed if simply retried.

    The transient/permanent split is the heart of the recovery policy:
    :class:`TransientIoError` is the *retryable* branch (media glitches,
    injected chaos, timeouts), while :class:`CorruptRecord` and its
    subclasses are *permanent* — the bytes themselves are wrong, and
    re-reading them yields the same garbage.
    """


class RetryExhausted(TransientIoError):
    """A retry budget ran out while the underlying fault stayed transient.

    Subclasses :class:`TransientIoError` on purpose: a caller one level
    up (say, the sweep scheduler re-dispatching a whole machine) may
    legitimately retry the operation with a fresh budget.
    """

    def __init__(self, operation: str, attempts: int, last_error: Exception):
        super().__init__(
            f"{operation} still failing after {attempts} attempts: "
            f"{type(last_error).__name__}: {last_error}")
        self.operation = operation
        self.attempts = attempts
        self.last_error = last_error


class CorruptRecord(ReproError):
    """A low-level parser found a structurally invalid on-disk record."""


class PermanentCorruption(CorruptRecord):
    """Structurally hopeless input: retrying can never help.

    Raised where a parser has positively established that the bytes are
    garbage (as opposed to the read having failed) — typically wrapping
    a leaked ``struct.error`` / ``IndexError`` / ``UnicodeDecodeError``
    from hostile input.
    """


class RegistryError(ReproError):
    """Raised for registry-level failures."""


class KeyNotFound(RegistryError):
    """The requested registry key does not exist."""


class ValueNotFound(RegistryError):
    """The requested registry value does not exist."""


class HiveFormatError(RegistryError, PermanentCorruption):
    """A raw hive parse encountered malformed cells."""


class KernelError(ReproError):
    """Raised for simulated-kernel failures."""


class NoSuchProcess(KernelError):
    """The referenced process does not exist (or is terminated)."""

    def __init__(self, pid: int):
        super().__init__(f"no such process: pid {pid}")
        self.pid = pid


class AccessDenied(ReproError):
    """The caller lacks the privilege required for the operation."""


class ApiError(ReproError):
    """A simulated Win32/Native API call failed."""


class ServiceError(ReproError):
    """Service Control Manager failure (bad image path, duplicate name...)."""


class MachineStateError(ReproError):
    """Operation invalid for the machine's current power/boot state."""


class ScanError(ReproError):
    """A GhostBuster scan could not be completed."""


class CircuitOpen(ReproError):
    """A circuit breaker refused the call without attempting it."""

    def __init__(self, scope: str, failures: int):
        super().__init__(
            f"circuit open for {scope!r} after {failures} consecutive "
            f"failures")
        self.scope = scope
        self.failures = failures


class MachineUnavailable(ReproError):
    """The target machine died or dropped off the network mid-scan.

    Retryable at the sweep level: the scheduler may power the machine
    back on and re-dispatch, subject to the circuit breaker.
    """


class FleetError(ReproError):
    """Raised by the fleet orchestration service (repro.fleet)."""


class StaleLease(FleetError):
    """A worker acted on a lease that expired or was superseded.

    The queue re-leased the machine to another worker (or the epoch
    moved on); honouring the stale ack would double-count the machine.
    The late worker drops its result — the current lease holder's scan
    is the one that lands.
    """

    def __init__(self, machine: str, token: int, reason: str):
        super().__init__(
            f"stale lease #{token} for {machine!r}: {reason}")
        self.machine = machine
        self.token = token


class TransportError(FleetError):
    """A fleet wire-protocol exchange failed mid-flight.

    Covers the whole family a real network shows the agent loop: the
    peer closed the connection, a frame arrived torn, or an injected
    ``fleet.transport.*`` fault dropped the exchange.  Always retryable
    at the connection level — the agent's reconnect loop re-dials and
    replays its last unacked work (acks are idempotent server-side).
    """


class TransportTimeout(TransportError):
    """A framed receive hit its deadline with the peer still connected.

    Distinct from :class:`TransportError` proper so a server loop can
    treat it as "poll again" rather than "the connection died".
    """


class AgentAuthError(TransportError):
    """The controller rejected an agent's HMAC hello.

    Not retryable with the same credentials: the agent's shared secret
    does not match the controller's, so backing off and re-dialling
    would only produce the same rejection.
    """


class CoordinatorKilled(FleetError):
    """Deterministic SIGKILL stand-in for checkpoint-soundness tests.

    Raised by the coordinator at an ack boundary when a test asked for
    ``kill_after_acks``; nothing is flushed beyond what the WAL already
    made durable, exactly like a real kill -9.
    """


class UnixError(ReproError):
    """Raised by the Unix substrate (repro.unixsim)."""
