"""The Unix syscall table — the LKM hook point.

Linux/Unix ghostware commonly intercepts system calls via a Loadable
Kernel Module: "some rootkits are known to hook read, write, close, and
the getdents (get directory entries) system calls" (Section 5).  The
table records its boot-time entries, so a KSTAT-style mechanism checker
could diff them — but GhostBuster's behaviour-based diff needs no such
knowledge.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List

from repro.errors import UnixError

Handler = Callable[..., object]


class UnixSyscall(enum.IntEnum):
    """Syscall numbers (a stable subset)."""

    GETDENTS = 78
    OPEN = 5
    READ = 3
    WRITE = 4
    UNLINK = 10
    STAT = 106


class SyscallTable:
    """Hookable syscall-number → handler mapping."""

    def __init__(self) -> None:
        self._entries: Dict[int, Handler] = {}
        self._originals: Dict[int, Handler] = {}

    def install(self, syscall: UnixSyscall, handler: Handler) -> None:
        self._entries[int(syscall)] = handler
        self._originals[int(syscall)] = handler

    def invoke(self, syscall: UnixSyscall, *args):
        handler = self._entries.get(int(syscall))
        if handler is None:
            raise UnixError(f"unimplemented syscall {syscall!r}")
        return handler(*args)

    def hook(self, syscall: UnixSyscall,
             make_wrapper: Callable[[Handler], Handler]) -> Handler:
        """LKM-style interception: wrap the current handler."""
        current = self._entries.get(int(syscall))
        if current is None:
            raise UnixError(f"cannot hook uninstalled syscall {syscall!r}")
        self._entries[int(syscall)] = make_wrapper(current)
        return current

    def hooked_entries(self) -> List[UnixSyscall]:
        """KSTAT-style mechanism check: entries differing from boot."""
        return [UnixSyscall(number) for number, handler
                in self._entries.items()
                if self._originals.get(number) is not handler]
