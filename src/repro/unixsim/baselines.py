"""Unix detection baselines the paper cites — and their blind spots.

* :func:`kstat_check` — KSTAT-style ([YKS]) syscall-table integrity
  check: reports entries whose handlers differ from boot time.  Catches
  LKM hookers; blind to trojanized binaries (T0rnkit) because no kernel
  state changed.
* :func:`chkrootkit_check` — chkrootkit-style ([YC]) signature sweep:
  looks for *known* rootkit paths through the normal (lied-to) view.
  Blind to anything not in its list, and blind even to listed artifacts
  when the rootkit hides them from ``ls``'s own syscalls.

The cross-view diff (`repro.unixsim.detector`) needs neither a signature
list nor kernel-integrity ground truth — which is the paper's point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.unixsim.machine import UnixMachine
from repro.unixsim.syscalls import UnixSyscall
from repro.unixsim.userland import ls_recursive

# chkrootkit's idea of "known rootkit paths" — deliberately includes
# the corpus members that existed when such lists were compiled.
KNOWN_ROOTKIT_PATHS = (
    "/usr/src/.puta",             # T0rnkit
    "/usr/share/.superkit",       # Superkit
    "/dev/ptyxx",                 # older kits, never present here
    "/usr/lib/.fx",
)


@dataclass
class KstatReport:
    """Syscall-table integrity findings."""

    hooked: List[UnixSyscall] = field(default_factory=list)

    @property
    def is_clean(self) -> bool:
        return not self.hooked


def kstat_check(machine: UnixMachine) -> KstatReport:
    """Diff the syscall table against its boot-time entries."""
    return KstatReport(hooked=machine.syscalls.hooked_entries())


@dataclass
class ChkrootkitReport:
    """Known-path sweep findings."""

    found: List[str] = field(default_factory=list)
    checked: int = 0

    @property
    def is_clean(self) -> bool:
        return not self.found


def chkrootkit_check(machine: UnixMachine) -> ChkrootkitReport:
    """Sweep the known-path list through the (possibly lying) ls view."""
    visible = set(ls_recursive(machine, "/"))
    report = ChkrootkitReport(checked=len(KNOWN_ROOTKIT_PATHS))
    for path in KNOWN_ROOTKIT_PATHS:
        if path in visible:
            report.found.append(path)
    return report
