"""Unix/Linux substrate for the Section-5 experiments.

A small Unix machine — inode-backed filesystem, hookable syscall table,
trojanizable userland binaries — plus the four rootkits the paper tested
(Darkside for FreeBSD; Superkit and Synapsis for Linux; T0rnkit's
trojanized utilities) and the cross-view detector: the inside ``ls -R``
scan versus the clean-bootable-CD scan of the same partitions.
"""

from repro.unixsim.filesystem import UnixFilesystem, Inode
from repro.unixsim.syscalls import SyscallTable, UnixSyscall
from repro.unixsim.machine import UnixMachine
from repro.unixsim.userland import ls_recursive, shell_glob
from repro.unixsim.rootkits import (Darkside, Superkit, Synapsis, T0rnkit,
                                    UnixRootkit)
from repro.unixsim.detector import (unix_cross_view_scan, clean_cd_scan,
                                    UnixScanReport)
from repro.unixsim.baselines import (ChkrootkitReport, KstatReport,
                                     chkrootkit_check, kstat_check)

__all__ = [
    "UnixFilesystem", "Inode",
    "SyscallTable", "UnixSyscall",
    "UnixMachine",
    "ls_recursive", "shell_glob",
    "UnixRootkit", "Darkside", "Superkit", "Synapsis", "T0rnkit",
    "unix_cross_view_scan", "clean_cd_scan", "UnixScanReport",
    "kstat_check", "KstatReport", "chkrootkit_check", "ChkrootkitReport",
]
