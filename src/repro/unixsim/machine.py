"""The Unix machine: filesystem + syscall table + userland binaries.

Binaries are callables keyed by path, so T0rnkit-style trojanization is a
plain replacement of ``/bin/ls``'s behaviour — no kernel involvement —
while LKM rootkits leave the binaries alone and hook the syscall table.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.clock import SimClock
from repro.unixsim.filesystem import UnixFilesystem
from repro.unixsim.syscalls import SyscallTable, UnixSyscall

BASE_LAYOUT = ("/bin", "/sbin", "/etc", "/usr/bin", "/usr/sbin",
               "/usr/share", "/usr/src", "/var/log", "/var/run",
               "/var/spool/ftp", "/tmp", "/home/user", "/lib/modules")

BASE_FILES = {
    "/bin/ls": b"ELF ls",
    "/bin/ps": b"ELF ps",
    "/bin/sh": b"ELF sh",
    "/bin/login": b"ELF login",
    "/usr/bin/top": b"ELF top",
    "/usr/sbin/sshd": b"ELF sshd",
    "/etc/passwd": b"root:x:0:0::/root:/bin/sh\n",
    "/etc/inetd.conf": b"ftp stream tcp nowait root in.ftpd\n",
    "/var/log/messages": b"kernel: booted\n",
}


class UnixMachine:
    """One simulated Linux/FreeBSD host."""

    def __init__(self, name: str = "unixbox", flavor: str = "linux",
                 clock: Optional[SimClock] = None):
        self.name = name
        self.flavor = flavor
        self.clock = clock or SimClock()
        self.fs = UnixFilesystem()
        self.syscalls = SyscallTable()
        self.binaries: Dict[str, Callable] = {}
        self.loaded_modules: List[str] = []   # LKM names
        self.rootkits: List = []
        self._install_base_system()
        self._install_syscalls()

    # -- setup ------------------------------------------------------------------

    def _install_base_system(self) -> None:
        for directory in BASE_LAYOUT:
            self.fs.mkdir_p(directory)
        for path, content in BASE_FILES.items():
            self.fs.write_file(path, content)

    def _install_syscalls(self) -> None:
        self.syscalls.install(UnixSyscall.GETDENTS, self._sys_getdents)
        self.syscalls.install(UnixSyscall.OPEN, self._sys_open)
        self.syscalls.install(UnixSyscall.READ, self._sys_read)
        self.syscalls.install(UnixSyscall.WRITE, self._sys_write)
        self.syscalls.install(UnixSyscall.UNLINK, self._sys_unlink)
        self.syscalls.install(UnixSyscall.STAT, self._sys_stat)

    # -- pristine syscall handlers ---------------------------------------------------

    def _sys_getdents(self, path: str):
        return [(name, inode.is_directory, inode.size)
                for name, inode in self.fs.list_directory(path)]

    def _sys_open(self, path: str) -> bool:
        return self.fs.exists(path)

    def _sys_read(self, path: str) -> bytes:
        return self.fs.read_file(path)

    def _sys_write(self, path: str, content: bytes) -> None:
        self.fs.append_file(path, content)

    def _sys_unlink(self, path: str) -> None:
        self.fs.unlink(path)

    def _sys_stat(self, path: str):
        inode = self.fs.inode_at(path)
        return {"inode": inode.number, "size": inode.size,
                "is_directory": inode.is_directory, "mtime": inode.mtime}

    # -- userland -----------------------------------------------------------------------

    def run_binary(self, path: str, *args):
        """Execute a binary: trojanized behaviour wins if registered."""
        entry = self.binaries.get(path)
        if entry is not None:
            return entry(self, *args)
        raise KeyError(f"no behaviour registered for {path}")

    def load_module(self, name: str) -> None:
        self.loaded_modules.append(name)

    # -- workload -------------------------------------------------------------------------

    def populate(self, file_count: int = 250, seed: int = 7) -> None:
        """Deterministic population of user and system files."""
        rng = random.Random(seed)
        buckets = ("/home/user", "/usr/share", "/var/log", "/etc",
                   "/usr/src", "/tmp")
        for index in range(file_count):
            bucket = rng.choice(buckets)
            name = "".join(rng.choice("abcdefghijklmnopqrstuvwxyz")
                           for __ in range(7))
            self.fs.write_file(f"{bucket}/{name}{index:04d}",
                               b"x" * rng.choice((0, 80, 700)))

    def daemon_churn(self, count: int = 2) -> List[str]:
        """FTP/syslog daemons writing files — the paper's Unix FP source."""
        created = []
        for index in range(count):
            if index % 2 == 0:
                path = f"/var/spool/ftp/xfer{index:03d}.tmp"
            else:
                path = f"/var/log/daemon{index:03d}.log"
            self.fs.write_file(path, b"daemon activity\n")
            created.append(path)
        return created
