"""The Section-5 Unix rootkits.

* **Darkside 0.2.3** (FreeBSD) — LKM hooking ``getdents``, hiding files
  by configurable prefix;
* **Superkit** (Linux) — syscall hooks for ``getdents`` and ``open``,
  hiding its ``/usr/share/.superkit`` payload directory and backdoor;
* **Synapsis** (Linux) — LKM hiding an explicit name list and its own
  module;
* **T0rnkit** — no kernel code at all: replaces ``/bin/ls`` (and
  ``/bin/ps``) with trojanized versions that skip its ``/usr/src/.puta``
  directory, exactly the class the classic ``ls`` vs ``echo *`` check
  catches.
"""

from __future__ import annotations

from typing import Callable, List

from repro.unixsim.machine import UnixMachine
from repro.unixsim.syscalls import UnixSyscall
from repro.unixsim.userland import pristine_ls


class UnixRootkit:
    """Base: install files, then hide them."""

    name = "rootkit"
    flavor = "linux"

    def __init__(self) -> None:
        self.hidden_paths: List[str] = []

    def install(self, machine: UnixMachine) -> None:
        self._drop_files(machine)
        self._activate(machine)
        machine.rootkits.append(self)

    def _drop_files(self, machine: UnixMachine) -> None:
        raise NotImplementedError

    def _activate(self, machine: UnixMachine) -> None:
        raise NotImplementedError


def _hook_getdents(machine: UnixMachine,
                   hide: Callable[[str], bool]) -> None:
    def make_wrapper(original):
        def hooked(path: str):
            return [entry for entry in original(path)
                    if not hide(entry[0])]
        return hooked
    machine.syscalls.hook(UnixSyscall.GETDENTS, make_wrapper)


class Darkside(UnixRootkit):
    """Darkside 0.2.3 [ZD] — FreeBSD LKM, prefix-based hiding."""

    name = "Darkside 0.2.3"
    flavor = "freebsd"
    PREFIX = ".ds_"

    def _drop_files(self, machine: UnixMachine) -> None:
        self.hidden_paths = [f"/usr/share/{self.PREFIX}backdoor",
                             f"/var/run/{self.PREFIX}pid"]
        for path in self.hidden_paths:
            machine.fs.write_file(path, b"darkside payload")

    def _activate(self, machine: UnixMachine) -> None:
        machine.load_module("darkside.ko")
        _hook_getdents(machine,
                       lambda name: name.startswith(self.PREFIX))


class Superkit(UnixRootkit):
    """Superkit [ZS] — Linux, getdents + open interception."""

    name = "Superkit"
    HIDDEN_DIR = "/usr/share/.superkit"

    def _drop_files(self, machine: UnixMachine) -> None:
        machine.fs.mkdir_p(self.HIDDEN_DIR)
        self.hidden_paths = [self.HIDDEN_DIR,
                             f"{self.HIDDEN_DIR}/sk",
                             f"{self.HIDDEN_DIR}/backdoor.conf"]
        machine.fs.write_file(f"{self.HIDDEN_DIR}/sk", b"superkit binary")
        machine.fs.write_file(f"{self.HIDDEN_DIR}/backdoor.conf",
                              b"port=666\n")

    def _activate(self, machine: UnixMachine) -> None:
        machine.load_module("superkit.o")
        _hook_getdents(machine, lambda name: name == ".superkit")

        def make_open(original):
            def hooked(path: str):
                if path.startswith(self.HIDDEN_DIR):
                    return False
                return original(path)
            return hooked
        machine.syscalls.hook(UnixSyscall.OPEN, make_open)


class Synapsis(UnixRootkit):
    """Synapsis — Linux LKM hiding an explicit name list."""

    name = "Synapsis"
    HIDDEN_NAMES = ("synapsisd", ".syn_log")

    def _drop_files(self, machine: UnixMachine) -> None:
        self.hidden_paths = ["/usr/sbin/synapsisd", "/var/log/.syn_log"]
        machine.fs.write_file("/usr/sbin/synapsisd", b"synapsis daemon")
        machine.fs.write_file("/var/log/.syn_log", b"captured\n")

    def _activate(self, machine: UnixMachine) -> None:
        machine.load_module("synapsis.o")
        hidden = set(self.HIDDEN_NAMES)
        _hook_getdents(machine, lambda name: name in hidden)


class T0rnkit(UnixRootkit):
    """T0rnkit [ZT] — trojanized OS utilities, no kernel hooks."""

    name = "T0rnkit"
    HIDDEN_DIR = "/usr/src/.puta"

    def _drop_files(self, machine: UnixMachine) -> None:
        machine.fs.mkdir_p(self.HIDDEN_DIR)
        self.hidden_paths = [self.HIDDEN_DIR,
                             f"{self.HIDDEN_DIR}/t0rns",
                             f"{self.HIDDEN_DIR}/t0rnsb"]
        machine.fs.write_file(f"{self.HIDDEN_DIR}/t0rns", b"sniffer")
        machine.fs.write_file(f"{self.HIDDEN_DIR}/t0rnsb", b"log cleaner")
        # Replace the ls binary on disk (its hash changes — Tripwire
        # would see that; GhostBuster sees the behaviour instead).
        machine.fs.write_file("/bin/ls", b"ELF t0rn-ls")

    def _activate(self, machine: UnixMachine) -> None:
        def trojan_ls(mach: UnixMachine, path: str = "/") -> List[str]:
            return [entry for entry in pristine_ls(mach, path)
                    if ".puta" not in entry]
        machine.binaries["/bin/ls"] = trojan_ls
