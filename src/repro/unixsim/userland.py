"""Unix userland: the ``ls`` walk and the shell-glob comparison.

The paper's inside-the-box high-level Unix scan is literally "the ``ls``
command over all mounted partitions".  ``ls`` may itself be trojanized
(T0rnkit), in which case its *binary's* behaviour lies even though the
syscalls underneath are honest — while a shell's builtin glob (``echo *``,
Brumley's classic check [B99]) reaches ``getdents`` directly.
"""

from __future__ import annotations

from typing import List

from repro.unixsim.machine import UnixMachine
from repro.unixsim.syscalls import UnixSyscall


def _getdents_ls(machine: UnixMachine, path: str,
                 out: List[str]) -> None:
    for name, is_directory, __ in machine.syscalls.invoke(
            UnixSyscall.GETDENTS, path):
        child = f"{path.rstrip('/')}/{name}"
        out.append(child)
        if is_directory:
            _getdents_ls(machine, child, out)


def pristine_ls(machine: UnixMachine, path: str = "/") -> List[str]:
    """A clean ls: recursive getdents through the (hookable) syscalls."""
    out: List[str] = []
    _getdents_ls(machine, path, out)
    return out


def ls_recursive(machine: UnixMachine, path: str = "/") -> List[str]:
    """Run the machine's actual ``/bin/ls`` (possibly trojanized)."""
    if "/bin/ls" in machine.binaries:
        return machine.run_binary("/bin/ls", path)
    return pristine_ls(machine, path)


def shell_glob(machine: UnixMachine, path: str = "/") -> List[str]:
    """``echo *``: the shell's own glob, immune to a trojaned ls binary
    (but not to LKM syscall hooks, which sit below both)."""
    return [f"{path.rstrip('/')}/{name}" for name, __, ___ in
            machine.syscalls.invoke(UnixSyscall.GETDENTS, path)]
