"""Inode-backed Unix filesystem.

Paths are ``/``-separated, case-sensitive.  Directories map names to
inode numbers; the inode table is the ground truth a clean-CD boot reads
directly, while running programs go through the (hookable) syscall table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import UnixError


@dataclass
class Inode:
    """One filesystem object."""

    number: int
    is_directory: bool
    content: bytes = b""
    entries: Dict[str, int] = field(default_factory=dict)  # dirs only
    mtime: float = 0.0

    @property
    def size(self) -> int:
        return len(self.content)


class UnixFilesystem:
    """Mountable single-volume Unix filesystem."""

    def __init__(self) -> None:
        self._inodes: Dict[int, Inode] = {}
        self._next_inode = 2
        self.root = self._allocate(is_directory=True)

    def _allocate(self, is_directory: bool, content: bytes = b"") -> Inode:
        inode = Inode(self._next_inode, is_directory, content)
        self._inodes[inode.number] = inode
        self._next_inode += 1
        return inode

    # -- path resolution -----------------------------------------------------

    @staticmethod
    def _split(path: str) -> List[str]:
        if not path.startswith("/"):
            raise UnixError(f"paths must be absolute: {path!r}")
        return [part for part in path.split("/") if part]

    def _resolve(self, path: str) -> Optional[Inode]:
        inode = self.root
        for part in self._split(path):
            if not inode.is_directory:
                return None
            child_number = inode.entries.get(part)
            if child_number is None:
                return None
            inode = self._inodes[child_number]
        return inode

    def inode_at(self, path: str) -> Inode:
        inode = self._resolve(path)
        if inode is None:
            raise UnixError(f"no such file or directory: {path}")
        return inode

    def exists(self, path: str) -> bool:
        return self._resolve(path) is not None

    # -- mutation ---------------------------------------------------------------

    def mkdir_p(self, path: str) -> Inode:
        inode = self.root
        for part in self._split(path):
            child_number = inode.entries.get(part)
            if child_number is None:
                child = self._allocate(is_directory=True)
                inode.entries[part] = child.number
                inode = child
            else:
                inode = self._inodes[child_number]
                if not inode.is_directory:
                    raise UnixError(f"{part} is not a directory in {path}")
        return inode

    def write_file(self, path: str, content: bytes,
                   mtime: float = 0.0) -> Inode:
        parts = self._split(path)
        parent = self.mkdir_p("/" + "/".join(parts[:-1])) if parts[:-1] \
            else self.root
        name = parts[-1]
        existing = parent.entries.get(name)
        if existing is not None:
            inode = self._inodes[existing]
            if inode.is_directory:
                raise UnixError(f"{path} is a directory")
            inode.content = content
            inode.mtime = mtime
            return inode
        inode = self._allocate(is_directory=False, content=content)
        inode.mtime = mtime
        parent.entries[name] = inode.number
        return inode

    def append_file(self, path: str, content: bytes) -> None:
        if self.exists(path):
            inode = self.inode_at(path)
            inode.content += content
        else:
            self.write_file(path, content)

    def read_file(self, path: str) -> bytes:
        inode = self.inode_at(path)
        if inode.is_directory:
            raise UnixError(f"{path} is a directory")
        return inode.content

    def unlink(self, path: str) -> None:
        parts = self._split(path)
        if not parts:
            raise UnixError("cannot unlink /")
        parent = self._resolve("/" + "/".join(parts[:-1]))
        if parent is None or parts[-1] not in parent.entries:
            raise UnixError(f"no such file: {path}")
        number = parent.entries.pop(parts[-1])
        del self._inodes[number]

    # -- enumeration (truth) -----------------------------------------------------

    def list_directory(self, path: str) -> List[Tuple[str, Inode]]:
        inode = self.inode_at(path)
        if not inode.is_directory:
            raise UnixError(f"{path} is not a directory")
        return [(name, self._inodes[number])
                for name, number in sorted(inode.entries.items())]

    def walk(self, start: str = "/") -> Iterator[Tuple[str, Inode]]:
        """Ground-truth recursive traversal (what the clean CD sees)."""
        base = start.rstrip("/")
        for name, inode in self.list_directory(start or "/"):
            path = f"{base}/{name}"
            yield path, inode
            if inode.is_directory:
                yield from self.walk(path)

    def file_count(self) -> int:
        return sum(1 for __ in self.walk())
