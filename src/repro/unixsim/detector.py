"""Cross-view detection on the Unix substrate (Section 5).

Inside scan: the machine's own ``ls`` over all mounted partitions —
through trojanized binaries and hooked syscalls alike.  Outside scan: the
same partitions listed from a clean, bootable CD distribution of the OS,
i.e. the filesystem truth.  The diff exposes every rootkit class; daemons
writing in the gap contribute the paper's "four or less" false positives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.unixsim.machine import UnixMachine
from repro.unixsim.userland import ls_recursive

# Benign-churn signatures: daemon transfer/temp logs.  Deliberately
# narrow — a rootkit dropping under /var/run must still be reported.
_NOISE_MARKERS = ("/var/spool/ftp/", "/var/log/daemon", "/tmp/daemon")


@dataclass
class UnixScanReport:
    """Hidden paths plus classified noise."""

    machine_name: str
    hidden: List[str] = field(default_factory=list)
    noise: List[str] = field(default_factory=list)

    @property
    def is_clean(self) -> bool:
        return not self.hidden

    @property
    def false_positive_count(self) -> int:
        return len(self.noise)

    def summary(self) -> str:
        state = "CLEAN" if self.is_clean else "INFECTED"
        lines = [f"unix cross-view scan of {self.machine_name!r}: {state}"]
        lines.extend(f"  hidden: {path}" for path in self.hidden)
        lines.extend(f"  noise:  {path}" for path in self.noise)
        return "\n".join(lines)


def clean_cd_scan(machine: UnixMachine, path: str = "/") -> List[str]:
    """The outside view: walk the filesystem truth from the clean CD."""
    return [entry_path for entry_path, __ in machine.fs.walk(path)]


def unix_cross_view_scan(machine: UnixMachine,
                         daemon_churn_files: int = 0) -> UnixScanReport:
    """Inside ``ls`` vs clean-CD listing of the same partitions.

    ``daemon_churn_files`` simulates FTP/syslog daemons writing between
    the two scans (the CD boot takes minutes), producing the benign
    additions the paper reports as its only Unix false positives.
    """
    inside = set(ls_recursive(machine, "/"))
    if daemon_churn_files:
        machine.daemon_churn(daemon_churn_files)
    outside = clean_cd_scan(machine, "/")

    report = UnixScanReport(machine.name)
    for path in outside:
        if path in inside:
            continue
        if any(marker in path for marker in _NOISE_MARKERS):
            report.noise.append(path)
        else:
            report.hidden.append(path)
    return report
