"""Command-line demos:  ``python -m repro <command>``.

Commands
--------
demo          infect a machine with Hacker Defender, detect, disinfect
matrix        print the Figure-2/5 technique × detection matrix
sweep         RIS network-boot sweep over a small fleet; with
              ``--epochs``/``--continuous`` it becomes a checkpointed
              fleet-service run with optional ``--escalate`` confirmation
unix          the Section-5 Unix rootkit experiments
fleet-status  inspect a ``--fleet-dir``: queue depth, leases, last epoch
              (answered from the console index; ``--json`` also reports
              index-vs-replay agreement)
serve         operator console: HTTP dashboard + query API over a
              ``--fleet-dir`` (token auth; see docs/operator_console.md)

Output goes through :mod:`logging` (logger ``repro.cli``) so embedders
can redirect or silence it; ``--json`` switches ``demo`` and ``sweep``
to machine-readable output on stdout.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import tempfile

LOGGER_NAME = "repro.cli"


def _configure_logging(verbose: bool, to_stderr: bool = False
                       ) -> logging.Logger:
    """Bind the CLI logger to the *current* stdout, replacing handlers.

    A fresh handler per invocation matters: test harnesses swap
    ``sys.stdout`` between calls, and a handler captured at import time
    would keep writing to the old stream.  ``--json`` routes the log to
    stderr so stdout carries nothing but the JSON document.
    """
    logger = logging.getLogger(LOGGER_NAME)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr if to_stderr
                                    else sys.stdout)
    handler.setFormatter(logging.Formatter("%(message)s"))
    logger.addHandler(handler)
    logger.setLevel(logging.DEBUG if verbose else logging.INFO)
    logger.propagate = False
    return logger


def _emit_json(payload: dict) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def _chaos_plan(options):
    """Build the FaultPlan the ``--chaos-seed`` flag asks for (or None)."""
    if options.chaos_seed is None:
        return None
    from repro.faults.plan import FaultPlan
    return FaultPlan.default(options.chaos_seed, rate=options.chaos_rate)


def cmd_demo(options) -> int:
    from repro import GhostBuster, Machine, disinfect
    from repro.core.reporting import report_to_dict
    from repro.telemetry import Telemetry

    from repro.ghostware import HackerDefender

    log = logging.getLogger(LOGGER_NAME)
    machine = Machine("demo-pc", disk_mb=512)
    machine.boot()
    HackerDefender().install(machine)

    telemetry = Telemetry.enabled(clock=machine.clock) if options.trace \
        else Telemetry.disabled()
    log.info("infected demo-pc with Hacker Defender 1.0\n")
    report = GhostBuster(machine, advanced=True,
                         telemetry=telemetry,
                         fault_plan=_chaos_plan(options),
                         max_retries=options.max_retries,
                         stabilize_rounds=options.stabilize_rounds).detect()
    cleanup = disinfect(machine, report)

    if options.json:
        payload = {"report": report_to_dict(report),
                   "disinfection": {"summary": cleanup.summary(),
                                    "verified_clean": cleanup.verified_clean}}
        if telemetry.is_enabled:
            payload["spans"] = [span.to_dict()
                                for span in telemetry.tracer.spans()]
            payload["audit"] = telemetry.audit.to_dicts()
            payload["attributions"] = [
                {"finding": attribution.finding.describe(),
                 "apis": attribution.apis}
                for attribution in telemetry.attribute(report)]
        _emit_json(payload)
    else:
        log.info(report.summary())
        log.info("")
        if telemetry.is_enabled:
            log.info("span tree:\n%s", telemetry.tracer.render())
            log.info("audit log:\n%s", telemetry.audit.summary())
        log.info("disinfection: %s", cleanup.summary())
    return 0 if cleanup.verified_clean else 1


def cmd_matrix(options) -> int:
    from repro.core import GhostBuster
    from repro.ghostware import (Aphex, HackerDefender, HideFoldersXP,
                                 NamingExploitGhost, ProBotSE, Urbin,
                                 Vanquish)
    from repro.machine import Machine

    log = logging.getLogger(LOGGER_NAME)
    techniques = (
        ("IAT modification (Urbin)", Urbin),
        ("in-memory code patch (Vanquish)", Vanquish),
        ("kernel32 jmp detour (Aphex)", Aphex),
        ("ntdll jmp detour (Hacker Defender)", HackerDefender),
        ("SSDT replacement (ProBot SE)", ProBotSE),
        ("filter driver (Hide Folders XP)",
         lambda: HideFoldersXP(hidden_paths=["\\Temp"])),
        ("naming exploit (no hooks)", NamingExploitGhost),
    )
    rows = []
    for label, factory in techniques:
        machine = Machine("matrix", disk_mb=256, max_records=8192)
        machine.boot()
        factory().install(machine)
        report = GhostBuster(machine).inside_scan(resources=("files",))
        rows.append((label, not report.is_clean))
    if options.json:
        _emit_json({"matrix": [{"technique": label, "detected": hit}
                               for label, hit in rows]})
        return 0
    log.info(f"{'technique':<42} detected")
    log.info("-" * 52)
    for label, hit in rows:
        log.info(f"{label:<42} {'yes' if hit else 'NO'}")
    return 0


def _fleet_sweep(options) -> int:
    """The ``--epochs``/``--continuous`` path: a checkpointed fleet
    service run instead of a one-shot RIS sweep."""
    from repro.fleet import EscalationPolicy, FleetCoordinator
    from repro.ghostware import Aphex, HackerDefender
    from repro.workloads.scenarios import build_fleet, build_home_pc

    log = logging.getLogger(LOGGER_NAME)
    fleet_dir = options.fleet_dir or tempfile.mkdtemp(prefix="gb-fleet-")
    size = max(2, options.fleet_size)
    agents = max(0, options.agents)
    plan = _chaos_plan(options)
    policy = EscalationPolicy(confirm_with=options.escalate or "winpe",
                              escalate=options.escalate is not None,
                              fault_plan=plan)
    epochs = max(1, options.epochs or (10 if options.continuous else 1))
    compromised = {1: HackerDefender, size - 1: Aphex}
    summaries = []

    if agents:
        # Distributed mode: the roster travels by name; each forked
        # agent builds (the same) machines from this factory, so the
        # parse-heavy scans run outside this process's GIL.
        def machine_factory(name):
            index = int(name.rsplit("-", 1)[1])
            ghost_cls = compromised.get(index)
            return build_home_pc(name,
                                 ghost_cls() if ghost_cls else None,
                                 files=80, seed=3 + index,
                                 with_services=False).machine

        roster = [f"client-{index:02d}" for index in range(size)]
        coordinator = FleetCoordinator(fleet_dir, roster, workers=agents,
                                       policy=policy, compact_every=4)
        aggregates = coordinator.run_distributed(
            epochs, machine_factory, agents=agents,
            fault_seed=options.chaos_seed,
            fault_rate=options.chaos_rate)
        for aggregate in aggregates:
            summary = aggregate.summary
            summaries.append(summary.to_dict())
            if not options.json:
                log.info("epoch %d: %d machines (%d scanned, %d skipped)"
                         " infected=%d escalated=%d confirmed=%d "
                         "outbreaks=%d",
                         summary.epoch, summary.machines, summary.scanned,
                         summary.skipped, summary.infected,
                         summary.escalated, summary.confirmed,
                         summary.outbreaks)
        if options.json:
            _emit_json({"fleet_dir": fleet_dir, "agents": agents,
                        "epochs": summaries})
        else:
            log.info("fleet state in %s (%d agent processes)",
                     fleet_dir, agents)
        return 0

    scenarios = build_fleet(size=size, compromised=compromised)
    coordinator = FleetCoordinator(fleet_dir,
                                   [s.machine for s in scenarios],
                                   workers=2, policy=policy,
                                   fault_plan=plan, compact_every=4)
    for __ in range(epochs):
        aggregate = coordinator.run_epoch()
        summary = aggregate.summary
        summaries.append(summary.to_dict())
        if not options.json:
            log.info("epoch %d: %d machines (%d scanned, %d skipped) "
                     "infected=%d escalated=%d confirmed=%d outbreaks=%d",
                     summary.epoch, summary.machines, summary.scanned,
                     summary.skipped, summary.infected, summary.escalated,
                     summary.confirmed, summary.outbreaks)
        if options.continuous and summary.scanned == 0:
            # Steady state: the whole fleet rode its baselines.
            break
    if options.json:
        _emit_json({"fleet_dir": fleet_dir, "epochs": summaries})
    else:
        log.info("fleet state in %s", fleet_dir)
    return 0


def cmd_sweep(options) -> int:
    from repro.core import RisServer
    from repro.ghostware import Aphex
    from repro.machine import Machine

    if options.epochs or options.continuous or options.fleet_dir:
        return _fleet_sweep(options)

    log = logging.getLogger(LOGGER_NAME)
    machines = []
    for index in range(4):
        machine = Machine(f"client-{index}", disk_mb=256, max_records=8192)
        machine.boot()
        machines.append(machine)
    Aphex().install(machines[2])
    store = None
    if options.baseline_dir or options.delta:
        from repro.core.baseline import BaselineStore
        directory = options.baseline_dir or tempfile.mkdtemp(
            prefix="gb-baselines-")
        store = BaselineStore(directory)
    server = RisServer(fault_plan=_chaos_plan(options),
                       max_retries=options.max_retries)
    if options.delta:
        # Two sweeps in one sitting: a full pass seeds the baselines,
        # then one client changes, and the delta pass skips the rest.
        server.sweep(machines, mode="full", baseline_store=store)
        machines[1].volume.create_file("\\Temp\\dropped.txt", b"payload")
        log.info("seeded baselines in %s; client-1 changed on disk\n",
                 store.directory)
    result = server.sweep(machines, collect_telemetry=options.trace,
                          mode="delta" if options.delta else "full",
                          baseline_store=store)
    if options.json:
        payload = {
            "machines": {name: {"findings": len(report.findings),
                                "clean": report.is_clean}
                         for name, report in result.reports.items()},
            "errors": result.errors,
            "quarantined": result.quarantined,
            "retries": result.retry_counts,
            "infected": result.infected_machines,
            "wall_seconds": result.wall_seconds,
            "mode": result.mode,
        }
        if result.mode == "delta":
            payload["delta"] = {"skipped": result.delta_skipped,
                                "baseline_ids": result.baseline_ids,
                                "stats": result.delta_stats}
        if result.health is not None:
            payload["health"] = [health.to_dict()
                                 for health in result.health.machines]
        _emit_json(payload)
        return 0
    log.info(result.summary())
    if result.health is not None:
        log.info(result.health.summary())
    return 0


def cmd_unix(options) -> int:
    from repro.unixsim import (Darkside, Superkit, Synapsis, T0rnkit,
                               UnixMachine, unix_cross_view_scan)

    log = logging.getLogger(LOGGER_NAME)
    rows = []
    for kit_cls in (Darkside, Superkit, Synapsis, T0rnkit):
        machine = UnixMachine(flavor=getattr(kit_cls, "flavor", "linux"))
        machine.populate(120)
        kit = kit_cls()
        kit.install(machine)
        report = unix_cross_view_scan(machine, daemon_churn_files=3)
        rows.append((kit.name, len(report.hidden),
                     report.false_positive_count))
    if options.json:
        _emit_json({"unix": [{"rootkit": name, "hidden": hidden, "fps": fps}
                             for name, hidden, fps in rows]})
        return 0
    for name, hidden, fps in rows:
        log.info(f"{name:<16} hidden={hidden} FPs={fps}")
    return 0


def cmd_fleet_status(options) -> int:
    from repro.console import fleet_status_from_index

    log = logging.getLogger(LOGGER_NAME)
    if not options.fleet_dir:
        log.info("fleet-status needs --fleet-dir DIR")
        return 2
    status = fleet_status_from_index(options.fleet_dir)
    if options.json:
        # Cross-check the O(changes) index answer against the full
        # journal replay; disagreement means the index (a cache) is
        # wrong and should be rebuilt — surface it, don't hide it.
        from repro.fleet import fleet_status

        replayed = fleet_status(options.fleet_dir)
        disagreements = sorted(
            key for key in set(status) | set(replayed)
            if status.get(key) != replayed.get(key))
        status["index_replay_agreement"] = {
            "agree": not disagreements,
            "disagreements": disagreements,
        }
        _emit_json(status)
        return 0 if not disagreements else 1
    log.info("fleet directory: %s", status["fleet_dir"])
    if status["open_epoch"] is not None:
        log.info("open epoch %d: %d pending, %d leased, %d acked",
                 status["open_epoch"], status["pending"],
                 status["leased"], status["acked"])
        for machine in status.get("leased_machines", []):
            log.info("  leased: %s", machine)
    else:
        log.info("no epoch open")
    log.info("epochs completed: %d", status["epochs_completed"])
    last = status["last_summary"]
    if last:
        log.info("last epoch %d: %d machines (%d scanned, %d skipped) "
                 "infected=%d escalated=%d confirmed=%d",
                 last.get("epoch", 0), last.get("machines", 0),
                 last.get("scanned", 0), last.get("skipped", 0),
                 last.get("infected", 0), last.get("escalated", 0),
                 last.get("confirmed", 0))
        if last.get("sampled"):
            log.info("sampling: %d sampled scan(s), %d escalated by "
                     "sampling, estimated recall %.1f%%",
                     last.get("sampled", 0),
                     last.get("sampling_escalations", 0),
                     last.get("estimated_recall", 1.0) * 100)
    for outbreak in status["outbreaks"]:
        log.info("OUTBREAK epoch %d: %s on %d machines",
                 outbreak.get("epoch", 0), outbreak.get("identity"),
                 len(outbreak.get("machines", [])))
    return 0


def cmd_serve(options) -> int:
    from repro.console import ConsoleServer

    log = logging.getLogger(LOGGER_NAME)
    if not options.fleet_dir:
        log.info("serve needs --fleet-dir DIR")
        return 2
    server = ConsoleServer(options.fleet_dir, token=options.token,
                           host=options.host, port=options.port)
    log.info("console at %s (fleet %s)", server.url, options.fleet_dir)
    if options.token is None:
        # Print the generated token exactly once; it is never logged
        # again and never written to disk.
        log.info("token: %s", server.token)
    log.info("dashboard: %s/?token=%s", server.url, server.token)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        log.info("console stopped")
    finally:
        server.stop()
    return 0


COMMANDS = {"demo": cmd_demo, "matrix": cmd_matrix, "serve": cmd_serve,
            "sweep": cmd_sweep, "unix": cmd_unix,
            "fleet-status": cmd_fleet_status}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Strider GhostBuster reproduction demos")
    parser.add_argument("command", choices=sorted(COMMANDS),
                        help="which demo to run")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")
    parser.add_argument("--trace", action="store_true",
                        help="enable scan tracing + interception audit "
                             "(demo and sweep)")
    parser.add_argument("--verbose", action="store_true",
                        help="debug-level logging")
    parser.add_argument("--chaos-seed", type=int, default=None,
                        metavar="N",
                        help="run under deterministic fault injection "
                             "seeded with N (demo and sweep)")
    parser.add_argument("--chaos-rate", type=float, default=0.05,
                        metavar="R",
                        help="per-site fault probability for --chaos-seed "
                             "(default 0.05)")
    parser.add_argument("--max-retries", type=int, default=2,
                        metavar="N",
                        help="per-layer / per-client retry budget "
                             "(default 2)")
    parser.add_argument("--stabilize-rounds", type=int, default=1,
                        metavar="N",
                        help="scan-until-stable rounds for demo "
                             "(default 1 = single scan)")
    parser.add_argument("--baseline-dir", default=None, metavar="DIR",
                        help="persist per-machine scan baselines in DIR "
                             "(sweep; seeds later --delta sweeps)")
    parser.add_argument("--delta", action="store_true",
                        help="demo a delta sweep: seed baselines with a "
                             "full pass, change one client, then re-sweep "
                             "skipping the unchanged ones")
    parser.add_argument("--epochs", type=int, default=0, metavar="N",
                        help="run N checkpointed fleet epochs instead of "
                             "a one-shot sweep (sweep)")
    parser.add_argument("--continuous", action="store_true",
                        help="keep running epochs (resuming any "
                             "interrupted one) until the fleet reaches "
                             "steady state or --epochs is exhausted")
    parser.add_argument("--escalate", choices=("winpe", "vmscan"),
                        default=None,
                        help="confirm inside findings with an "
                             "outside-the-box pass of this kind (sweep "
                             "--epochs)")
    parser.add_argument("--fleet-dir", default=None, metavar="DIR",
                        help="durable fleet state directory (queue WAL, "
                             "epochs journal, baselines); also the "
                             "target of fleet-status")
    parser.add_argument("--agents", type=int, default=0, metavar="N",
                        help="run the fleet sweep distributed: a scan "
                             "controller in this process plus N forked "
                             "scan-agent processes (sweep with "
                             "--epochs/--continuous)")
    parser.add_argument("--fleet-size", type=int, default=6, metavar="N",
                        help="machines in the demo fleet for sweep "
                             "--epochs (default 6)")
    parser.add_argument("--host", default="127.0.0.1", metavar="ADDR",
                        help="console bind address for serve "
                             "(default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8337, metavar="N",
                        help="console port for serve (default 8337; "
                             "0 picks an ephemeral port)")
    parser.add_argument("--token", default=None, metavar="TOKEN",
                        help="console bearer token for serve "
                             "(default: generate and print one)")
    options = parser.parse_args(argv)
    _configure_logging(options.verbose, to_stderr=options.json)
    return COMMANDS[options.command](options)


if __name__ == "__main__":
    sys.exit(main())
