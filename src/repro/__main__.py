"""Command-line demos:  ``python -m repro <command>``.

Commands
--------
demo      infect a machine with Hacker Defender, detect, disinfect
matrix    print the Figure-2/5 technique × detection matrix
sweep     RIS network-boot sweep over a small fleet
unix      the Section-5 Unix rootkit experiments
"""

from __future__ import annotations

import argparse
import sys


def cmd_demo() -> int:
    from repro import GhostBuster, Machine, disinfect
    from repro.ghostware import HackerDefender

    machine = Machine("demo-pc", disk_mb=512)
    machine.boot()
    HackerDefender().install(machine)
    print("infected demo-pc with Hacker Defender 1.0\n")
    report = GhostBuster(machine, advanced=True).detect()
    print(report.summary())
    print()
    log = disinfect(machine, report)
    print(f"disinfection: {log.summary()}")
    return 0 if log.verified_clean else 1


def cmd_matrix() -> int:
    from repro.core import GhostBuster
    from repro.ghostware import (Aphex, HackerDefender, HideFoldersXP,
                                 NamingExploitGhost, ProBotSE, Urbin,
                                 Vanquish)
    from repro.machine import Machine

    techniques = (
        ("IAT modification (Urbin)", Urbin),
        ("in-memory code patch (Vanquish)", Vanquish),
        ("kernel32 jmp detour (Aphex)", Aphex),
        ("ntdll jmp detour (Hacker Defender)", HackerDefender),
        ("SSDT replacement (ProBot SE)", ProBotSE),
        ("filter driver (Hide Folders XP)",
         lambda: HideFoldersXP(hidden_paths=["\\Temp"])),
        ("naming exploit (no hooks)", NamingExploitGhost),
    )
    print(f"{'technique':<42} detected")
    print("-" * 52)
    for label, factory in techniques:
        machine = Machine("matrix", disk_mb=256, max_records=8192)
        machine.boot()
        factory().install(machine)
        report = GhostBuster(machine).inside_scan(resources=("files",))
        print(f"{label:<42} {'yes' if not report.is_clean else 'NO'}")
    return 0


def cmd_sweep() -> int:
    from repro.core import RisServer
    from repro.ghostware import Aphex
    from repro.machine import Machine

    machines = []
    for index in range(4):
        machine = Machine(f"client-{index}", disk_mb=256, max_records=8192)
        machine.boot()
        machines.append(machine)
    Aphex().install(machines[2])
    result = RisServer().sweep(machines)
    print(result.summary())
    return 0


def cmd_unix() -> int:
    from repro.unixsim import (Darkside, Superkit, Synapsis, T0rnkit,
                               UnixMachine, unix_cross_view_scan)

    for kit_cls in (Darkside, Superkit, Synapsis, T0rnkit):
        machine = UnixMachine(flavor=getattr(kit_cls, "flavor", "linux"))
        machine.populate(120)
        kit = kit_cls()
        kit.install(machine)
        report = unix_cross_view_scan(machine, daemon_churn_files=3)
        print(f"{kit.name:<16} hidden={len(report.hidden)} "
              f"FPs={report.false_positive_count}")
    return 0


COMMANDS = {"demo": cmd_demo, "matrix": cmd_matrix, "sweep": cmd_sweep,
            "unix": cmd_unix}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Strider GhostBuster reproduction demos")
    parser.add_argument("command", choices=sorted(COMMANDS),
                        help="which demo to run")
    arguments = parser.parse_args(argv)
    return COMMANDS[arguments.command]()


if __name__ == "__main__":
    sys.exit(main())
