"""The per-ghost stealth manager: levels composed onto a strain.

:class:`StealthManager` wraps one installed
:class:`~repro.ghostware.base.Ghostware` instance with the behaviors its
stealth level unlocks (clamped to the strain's capabilities).  The
coupling to the strain is deliberately thin — the manager is attached as
``ghost.stealth`` and the strain's hiding predicates consult
``ghost.concealed()`` on every enumeration call, so awareness gates the
*existing* hooks rather than installing parallel ones.  Attaching after
``install`` works because every hook captured a bound method whose
instance attributes are read at call time.
"""

from __future__ import annotations

import random
from typing import FrozenSet, Iterable, Optional

from repro.machine import Machine
from repro.stealth.levels import (AWARE, CLOAK, COORDINATE, ROTATE,
                                  behaviors_for, parse_level)
from repro.stealth.sensor import (ScanActivitySensor, SensorConfig,
                                  ensure_scan_sensor_taps)

#: Artifact timestamps are backdated to this OS-install-era file.
CLOAK_REFERENCE = "\\Windows\\explorer.exe"


class StealthManager:
    """Composable counter-detection behaviors for one ghost."""

    def __init__(self, ghost, level: str, seed: str = "0",
                 sensor_config: Optional[SensorConfig] = None):
        self.ghost = ghost
        self.level = parse_level(level)
        self.seed = str(seed)
        self.behaviors: FrozenSet[str] = behaviors_for(
            self.level, type(ghost).stealth_capabilities)
        self.sensor: Optional[ScanActivitySensor] = None
        if AWARE in self.behaviors:
            if sensor_config is None:
                rng = random.Random(f"{self.seed}:sensor")
                sensor_config = SensorConfig(trigger_delay=rng.randint(0, 2))
            self.sensor = ScanActivitySensor(sensor_config)
        self._forced_exposed = False
        self.rotations = 0

    # -- the gate the strain predicates consult -------------------------

    def concealing(self) -> bool:
        """Should the ghost's hooks filter right now?"""
        if self._forced_exposed:
            return False
        if self.sensor is not None and self.sensor.any_exposed():
            return False
        return True

    # -- lifecycle -------------------------------------------------------

    def attach(self, machine: Machine) -> "StealthManager":
        """Bind to the (already installed) ghost on ``machine``."""
        self.ghost.stealth = self
        if self.sensor is not None:
            ensure_scan_sensor_taps(machine, self.sensor,
                                    f"stealth:{self.ghost.name}")
        if CLOAK in self.behaviors:
            self.apply_cloak(machine)
        return self

    def rearm(self, machine: Machine) -> None:
        """New-epoch reset: re-arm the sensor, re-ensure volatile taps."""
        if self.sensor is not None:
            self.sensor.rearm()
            ensure_scan_sensor_taps(machine, self.sensor,
                                    f"stealth:{self.ghost.name}")

    def rotate(self, machine: Machine, token: str) -> None:
        """Rotate the ghost's on-disk/ASEP identity, re-cloaking after."""
        if ROTATE not in self.behaviors:
            return
        self.ghost.rotate_identity(machine, token)
        self.rotations += 1
        if CLOAK in self.behaviors:
            self.apply_cloak(machine)

    def conceal(self) -> None:
        """Campaign order: hide this epoch (normal operation)."""
        self._forced_exposed = False

    def expose(self) -> None:
        """Campaign order: tell the truth this epoch (stay under K)."""
        if COORDINATE in self.behaviors:
            self._forced_exposed = True

    # -- FS cloak --------------------------------------------------------

    def artifact_paths(self) -> Iterable[str]:
        report = self.ghost.report
        return list(report.hidden_files) + list(report.visible_files)

    def apply_cloak(self, machine: Machine) -> None:
        """Backdate artifact (and parent-dir) timestamps to install era.

        Defeats recent-write triage
        (:func:`repro.fleet.scheduler.recent_write_probe`) and the
        cross-time MODIFIED signal; the artifacts' *presence* in the raw
        MFT is untouched, which is all the cross-view diff needs.
        """
        if CLOAK not in self.behaviors:
            return
        volume = machine.volume
        try:
            ref = volume.stat(CLOAK_REFERENCE)
        except Exception:
            return
        created = int(round(ref.created * 1e6))
        modified = int(round(ref.modified * 1e6))
        accessed = int(round(ref.accessed * 1e6))
        targets = []
        for path in self.artifact_paths():
            targets.append(path)
            parent = path.rpartition("\\")[0]
            while parent:
                targets.append(parent)
                parent = parent.rpartition("\\")[0]
        for path in dict.fromkeys(targets):
            try:
                volume.set_times(path, created_us=created,
                                 modified_us=modified, accessed_us=accessed)
            except Exception:
                continue

    # -- introspection ---------------------------------------------------

    def describe(self) -> dict:
        out = {"level": self.level,
               "behaviors": sorted(self.behaviors),
               "rotations": self.rotations,
               "exposed_by_order": self._forced_exposed}
        if self.sensor is not None:
            out["sensor"] = self.sensor.stats()
        return out


def attach_stealth(ghost, machine: Machine, level: str, seed: str = "0",
                   sensor_config: Optional[SensorConfig] = None
                   ) -> Optional[StealthManager]:
    """Attach a leveled stealth manager to an installed ghost.

    Returns ``None`` when the level (clamped to the strain's
    capabilities) unlocks nothing — the ghost then behaves exactly as
    the static seed-era strain.
    """
    level = parse_level(level)
    if level == "off":
        return None
    manager = StealthManager(ghost, level, seed=seed,
                             sensor_config=sensor_config)
    if not manager.behaviors:
        return None
    return manager.attach(machine)
