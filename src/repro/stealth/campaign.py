"""Fleet-wide stealth campaigns: seeded, leveled, deterministic.

A :class:`StealthCampaign` is the adversary's *controller*: given the
infection waves' stealth levels and the current per-strain membership,
it emits one epoch's worth of **stealth events** — plain JSON dicts that
:func:`repro.workloads.fleetgen.apply_stealth` applies to the installed
ghosts.  Events live alongside ops/infections in
:class:`~repro.workloads.fleetgen.FleetWorkload` epochs and in recorded
sweep traces, so replay re-applies the exact same adversary moves.

Event actions
-------------

``rearm``
    Re-arm a ghost's scan sensor (new epoch, new evasion episode) and
    re-ensure its volatile IAT taps after any reboot.
``rotate``
    Re-randomize the ghost's file/ASEP identity with the event's token.
``conceal`` / ``expose``
    Cross-machine coordination: at ``maximum`` level at most
    ``conceal_budget`` members per strain hide in any one epoch; the
    rest hold their lie in reserve (exposed ghosts are visible in both
    scan views, so they produce no cross-view finding — and no outbreak
    count).

All randomness is drawn from streams keyed on
``{seed}:{purpose}:{strain}:{machine}:{epoch}``, so event lists are
order-independent and identical across runs and disk backends.
"""

from __future__ import annotations

import random
import string
from typing import Dict, Iterable, List, Sequence, Set

from repro.machine import Machine
from repro.stealth.levels import (AWARE, COORDINATE, ROTATE, behaviors_for,
                                  parse_level)

STEALTH_ACTIONS = ("rearm", "rotate", "conceal", "expose")


def rotation_token(seed: str, strain: str, machine: str, epoch: int,
                   length: int = 8) -> str:
    """The deterministic identity-rotation token for one (strain,
    machine, epoch) — lowercase letters, order-independent stream."""
    rng = random.Random(f"{seed}:rotate:{strain}:{machine}:{epoch}")
    return "".join(rng.choice(string.ascii_lowercase)
                   for _ in range(length))


class StealthCampaign:
    """Generates per-epoch stealth events for leveled infection waves."""

    def __init__(self, seed, capabilities: Dict[str, frozenset]):
        self.seed = str(seed)
        self.capabilities = dict(capabilities)

    def wave_behaviors(self, wave) -> frozenset:
        caps = self.capabilities.get(wave.strain, frozenset())
        return behaviors_for(getattr(wave, "level", "off"), caps)

    def epoch_events(self, epoch: int, waves: Sequence,
                     members: Dict[str, Iterable[str]],
                     new_members: Dict[str, Set[str]]) -> List[dict]:
        """One epoch's stealth events.

        ``members`` is the cumulative per-strain membership *including*
        this epoch's new infections; ``new_members`` the subset infected
        this very epoch (their managers were just attached — no rearm or
        rotation needed yet).
        """
        events: List[dict] = []
        for wave in waves:
            level = parse_level(getattr(wave, "level", "off"))
            if level == "off":
                continue
            behaviors = self.wave_behaviors(wave)
            if not behaviors:
                continue
            crew = sorted(members.get(wave.strain, ()))
            if not crew:
                continue
            fresh = new_members.get(wave.strain, set())
            veterans = [name for name in crew if name not in fresh]
            if AWARE in behaviors:
                for name in veterans:
                    events.append({"machine": name, "strain": wave.strain,
                                   "action": "rearm"})
            if ROTATE in behaviors:
                for name in veterans:
                    events.append({
                        "machine": name, "strain": wave.strain,
                        "action": "rotate",
                        "token": rotation_token(self.seed, wave.strain,
                                                name, epoch)})
            if COORDINATE in behaviors:
                budget = max(0, int(getattr(wave, "conceal_budget", 0)))
                rng = random.Random(
                    f"{self.seed}:coordinate:{wave.strain}:{epoch}")
                concealed = set(rng.sample(crew, min(budget, len(crew))))
                for name in crew:
                    action = "conceal" if name in concealed else "expose"
                    events.append({"machine": name, "strain": wave.strain,
                                   "action": action})
        return events


def apply_stealth_event(ghost, machine: Machine, event: dict) -> None:
    """Apply one stealth event to an installed, stealth-managed ghost."""
    manager = getattr(ghost, "stealth", None)
    if manager is None:
        return
    action = event["action"]
    if action == "rearm":
        manager.rearm(machine)
    elif action == "rotate":
        manager.rotate(machine, event["token"])
    elif action == "conceal":
        manager.conceal()
    elif action == "expose":
        manager.expose()
    else:
        raise ValueError(f"unknown stealth action {action!r}")
