"""Scan-activity sensing: the "detection awareness" behavior.

A scan-aware ghost does not hold its lie unconditionally.  It taps the
same WinAPI entry points GhostBuster's high-level scan enumerates
through (``FindFirstFile``/``FindNextFile``, the ``advapi32`` registry
readers, ``NtQuerySystemInformation``) and — when it senses a scan
sweeping the *sensitive region* where its artifacts live — temporarily
stops filtering.  The high-level "lie" view then equals the truth, the
cross-view diff is empty, and a naive single-pass scan reports a clean
machine.

The sensor keeps one independent *channel* per API family, because the
scanner enumerates one layer at a time (files, then registry, then
processes): a single shared unhide budget would expire before the
registry pass even started.  Each channel is a tiny state machine::

    ARMED --(trigger call)--> EXPOSED --(leave region / budget)--> SPENT

* ``files`` triggers on a ``FindFirstFile`` whose directory argument is
  under :attr:`SensorConfig.sensitive_prefix` (artifacts live under
  ``\\Windows``), and ends as soon as the walk leaves the subtree — the
  next ``FindFirstFile`` outside the prefix, or any registry call.
* ``registry`` triggers on the first registry read and ends when file
  enumeration resumes (the *next* scan round's walk).
* ``processes`` triggers on ``NtQuerySystemInformation`` and covers a
  single snapshot call.

An episode therefore covers exactly one pass over the sensitive region
and is *spent* afterwards: a second scan round sees the ghost hiding
again.  That asymmetry is what scan-until-stable exploits — the two
rounds disagree, the scan is flagged unstable, and the union of rounds
resurfaces the artifacts (see :mod:`repro.core.ghostbuster`).  The taps
live in process IAT entries, so they do not survive a reboot; an
explicit ``rearm`` stealth event resets the channels between epochs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

from repro.machine import Machine
from repro.usermode.process import Process

FAMILY_FILES = "files"
FAMILY_REGISTRY = "registry"
FAMILY_PROCESSES = "processes"

FAMILIES: Tuple[str, ...] = (FAMILY_FILES, FAMILY_REGISTRY, FAMILY_PROCESSES)

# Signals fed to a channel by the taps.
_SENSITIVE = "sensitive"   # a call that can trigger / sustain an episode
_NEUTRAL = "neutral"       # sustains an episode but never triggers one
_PLAIN = "plain"           # a call outside the sensitive region: ends it

_ARMED = "armed"
_EXPOSED = "exposed"
_SPENT = "spent"


@dataclass(frozen=True)
class SensorConfig:
    """Tuning knobs for one ghost's scan sensor.

    ``trigger_delay`` sensitive calls are ignored before an episode
    starts (an adversary hedging against honeypot probes); the budgets
    are fail-safes bounding an episode in calls.  Detection by the
    defended configuration is invariant to all of these — see the
    Hypothesis property in ``tests/test_stealth.py``.
    """

    sensitive_prefix: str = "\\windows"
    trigger_delay: int = 0
    file_budget: int = 4096
    registry_budget: int = 4096
    process_budget: int = 1

    def budget(self, family: str) -> int:
        return {FAMILY_FILES: self.file_budget,
                FAMILY_REGISTRY: self.registry_budget,
                FAMILY_PROCESSES: self.process_budget}[family]


@dataclass
class _Channel:
    status: str = _ARMED
    seen: int = 0
    delay_left: int = 0
    episodes: int = 0


class ScanActivitySensor:
    """Per-ghost scan-activity state machine (one channel per family)."""

    def __init__(self, config: SensorConfig = None):
        self.config = config or SensorConfig()
        self._channels: Dict[str, _Channel] = {}
        self.calls_sensed = 0
        self.rearm()

    # -- state ---------------------------------------------------------

    def rearm(self) -> None:
        """Reset every channel to ARMED (a new epoch's worth of evasion)."""
        episodes = {f: self._channels[f].episodes for f in self._channels}
        self._channels = {
            family: _Channel(delay_left=self.config.trigger_delay,
                             episodes=episodes.get(family, 0))
            for family in FAMILIES
        }

    def exposed(self, family: str) -> bool:
        return self._channels[family].status == _EXPOSED

    def any_exposed(self) -> bool:
        return any(c.status == _EXPOSED for c in self._channels.values())

    def stats(self) -> Dict[str, int]:
        out = {"calls_sensed": self.calls_sensed}
        for family, channel in self._channels.items():
            out[f"{family}_episodes"] = channel.episodes
        return out

    # -- sensing -------------------------------------------------------

    def sense(self, family: str, signal: str) -> None:
        """Feed one API call into the sensor (called from the IAT taps).

        Runs *before* the call's own enumeration filters consult
        :meth:`any_exposed`, so the triggering call itself is already
        inside the episode.
        """
        self.calls_sensed += 1
        # A call on one layer means the scanner has moved on: any other
        # family's in-flight episode is over.
        for other, channel in self._channels.items():
            if other != family and channel.status == _EXPOSED:
                channel.status = _SPENT
        channel = self._channels[family]
        if channel.status == _ARMED and signal == _SENSITIVE:
            if channel.delay_left > 0:
                channel.delay_left -= 1
                return
            channel.status = _EXPOSED
            channel.episodes += 1
            channel.seen = 1
            return
        if channel.status == _EXPOSED:
            if signal == _PLAIN:
                channel.status = _SPENT
                return
            channel.seen += 1
            if channel.seen >= self.config.budget(family):
                channel.status = _SPENT


# -- taps ---------------------------------------------------------------

#: (module, function, family, classifier) — classifier maps the call's
#: positional args to a channel signal.
def _classify_find_first(sensor: ScanActivitySensor, args) -> str:
    directory = str(args[0]) if args else ""
    prefix = sensor.config.sensitive_prefix.casefold()
    return _SENSITIVE if directory.casefold().startswith(prefix) else _PLAIN


_SENSED_APIS: Tuple[Tuple[str, str, str, Callable], ...] = (
    ("kernel32", "FindFirstFile", FAMILY_FILES, _classify_find_first),
    ("kernel32", "FindNextFile", FAMILY_FILES, lambda sensor, args: _NEUTRAL),
    ("advapi32", "RegEnumKey", FAMILY_REGISTRY,
     lambda sensor, args: _SENSITIVE),
    ("advapi32", "RegEnumValue", FAMILY_REGISTRY,
     lambda sensor, args: _SENSITIVE),
    ("advapi32", "RegQueryValue", FAMILY_REGISTRY,
     lambda sensor, args: _SENSITIVE),
    ("advapi32", "RegKeyExists", FAMILY_REGISTRY,
     lambda sensor, args: _SENSITIVE),
    ("ntdll", "NtQuerySystemInformation", FAMILY_PROCESSES,
     lambda sensor, args: _SENSITIVE),
)


def tap_process(process: Process, sensor: ScanActivitySensor,
                owner: str) -> None:
    """Install pass-through IAT taps for the sensed APIs in one process.

    Idempotent per (process, owner): a marker attribute prevents
    double-tapping when taps are re-ensured across epochs.
    """
    from repro.ghostware.base import _current_target

    marker = f"_stealth_tap__{owner}"
    if getattr(process, marker, False):
        return
    setattr(process, marker, True)
    for module, function, family, classify in _SENSED_APIS:
        inner = _current_target(process, module, function)

        def tap(proc, *args, _inner=inner, _family=family,
                _classify=classify):
            sensor.sense(_family, _classify(sensor, args))
            return _inner(proc, *args)

        process.hook_iat(module, function, tap, owner)


def ensure_scan_sensor_taps(machine: Machine, sensor: ScanActivitySensor,
                            owner: str):
    """Tap the sensed APIs in every current and future process.

    Pass-through hooks: they observe, never filter.  Like any IAT hook
    they are volatile — a reboot sheds them (and the start hook) until
    the next ``rearm`` stealth event calls this again.  Returns the
    start hook so callers can keep re-ensuring idempotently.
    """
    for process in machine.user_processes():
        tap_process(process, sensor, owner)

    def on_start(mach: Machine, process: Process) -> None:
        tap_process(process, sensor, owner)

    hook_marker = f"_stealth_sensor_hook__{owner}"
    hooks = machine.process_start_hooks
    if not any(getattr(h, hook_marker, False) for h in hooks):
        setattr(on_start, hook_marker, True)
        hooks.append(on_start)
    return on_start
