"""The leveled adversary engine (ROADMAP item 3).

Wraps the static seed-era :mod:`repro.ghostware` strains with composable
counter-detection behaviors graded ``off → low → medium → high →
maximum``:

* **timestamp/FS cloak** (``low``+) — :mod:`repro.stealth.manager`
* **detection awareness** (``medium``+) — :mod:`repro.stealth.sensor`
* **identity rotation** (``high``+) — per-strain ``rotate_identity``
* **cross-machine coordination** (``maximum``) —
  :mod:`repro.stealth.campaign`

See ``docs/adversary.md`` for the level table and the measured
precision/recall-per-level curve (``BENCH_PR10.json``).
"""

from repro.stealth.levels import (ALL_BEHAVIORS, AWARE, CLOAK, COORDINATE,
                                  LEVELS, LEVEL_BEHAVIORS, ROTATE,
                                  behaviors_for, level_index, parse_level)
from repro.stealth.sensor import (FAMILIES, ScanActivitySensor, SensorConfig,
                                  ensure_scan_sensor_taps)
from repro.stealth.manager import StealthManager, attach_stealth
from repro.stealth.campaign import (STEALTH_ACTIONS, StealthCampaign,
                                    apply_stealth_event, rotation_token)

__all__ = [
    "ALL_BEHAVIORS", "AWARE", "CLOAK", "COORDINATE", "ROTATE",
    "LEVELS", "LEVEL_BEHAVIORS", "behaviors_for", "level_index",
    "parse_level",
    "FAMILIES", "ScanActivitySensor", "SensorConfig",
    "ensure_scan_sensor_taps",
    "StealthManager", "attach_stealth",
    "STEALTH_ACTIONS", "StealthCampaign", "apply_stealth_event",
    "rotation_token",
]
