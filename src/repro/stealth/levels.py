"""Stealth levels and the behaviors they unlock.

The adversary engine grades counter-detection effort on a five-step
scale (``off → low → medium → high → maximum``), mirroring the leveled
stealth managers shipped by real evasive toolkits (Herzog et al. 2020;
Mazurczyk & Caviglione 2015).  Each level is a *set of behaviors*; a
strain only ever runs the intersection of the level's behaviors with its
own :attr:`~repro.ghostware.base.Ghostware.stealth_capabilities`, so a
process-only hider never pretends to rotate files it does not have.

Behaviors
---------

``cloak``
    Timestamp / file-system cloak: artifact mtimes (and their parent
    directories') are backdated to blend with the OS install, defeating
    recent-write triage heuristics (:func:`repro.fleet.scheduler.recent_write_probe`).
``aware``
    Detection awareness: a :class:`~repro.stealth.sensor.ScanActivitySensor`
    taps the WinAPI layers the scanner enumerates through and temporarily
    *unhides* while a scan pass is sweeping the sensitive region —
    a naive single-pass diff sees the truth twice and reports nothing.
``rotate``
    Identity rotation: files / ASEP value names are re-randomized across
    epochs so exact-identity tracking never sees the same ghost twice.
``coordinate``
    Cross-machine coordination: a campaign controller staggers hiding so
    at most ``conceal_budget`` machines per strain lie in any one epoch,
    staying under the fleet's outbreak threshold K.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

CLOAK = "cloak"
AWARE = "aware"
ROTATE = "rotate"
COORDINATE = "coordinate"

ALL_BEHAVIORS: FrozenSet[str] = frozenset((CLOAK, AWARE, ROTATE, COORDINATE))

#: Canonical level order, least to most evasive.
LEVELS: Tuple[str, ...] = ("off", "low", "medium", "high", "maximum")

LEVEL_BEHAVIORS = {
    "off": frozenset(),
    "low": frozenset({CLOAK}),
    "medium": frozenset({CLOAK, AWARE}),
    "high": frozenset({CLOAK, AWARE, ROTATE}),
    "maximum": frozenset({CLOAK, AWARE, ROTATE, COORDINATE}),
}


def parse_level(level: str) -> str:
    """Validate and canonicalize a stealth level name."""
    name = str(level).strip().casefold()
    if name not in LEVEL_BEHAVIORS:
        raise ValueError(f"unknown stealth level {level!r}; "
                         f"expected one of {', '.join(LEVELS)}")
    return name


def level_index(level: str) -> int:
    """A level's position on the canonical scale (``off`` = 0)."""
    return LEVELS.index(parse_level(level))


def behaviors_for(level: str, capabilities: FrozenSet[str]) -> FrozenSet[str]:
    """The behaviors a strain actually runs at ``level``.

    Clamped to the strain's capability set so levels degrade gracefully:
    asking a non-rotatable strain for ``high`` yields ``medium``-grade
    behavior without error.
    """
    return LEVEL_BEHAVIORS[parse_level(level)] & frozenset(capabilities)
