"""Recovery policies: retry with deterministic backoff, circuit breaking.

All waiting happens on the :class:`~repro.clock.SimClock` axis — a
retrying scan *charges* its backoff to the machine's simulated clock
exactly like any other scan cost, and never sleeps host time.  Jitter
is derived from a seeded hash of the attempt number, so identical runs
back off identically.
"""

from __future__ import annotations

import random
import threading
from typing import Callable, Dict, List, Optional, Tuple, Type

from repro.errors import (CircuitOpen, CorruptRecord, RetryExhausted,
                          TransientIoError)
from repro.telemetry.metrics import global_metrics


class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``run`` retries ``fn`` on the ``retryable`` exception tuple up to
    ``max_attempts`` total attempts, charging each backoff delay to the
    supplied clock (no clock → no delay, just the attempts).
    ``deadline_s`` bounds the *simulated* time budget: once the clock
    has advanced past it, no further attempts are made.
    """

    def __init__(self, max_attempts: int = 3, base_delay_s: float = 0.05,
                 max_delay_s: float = 2.0,
                 deadline_s: Optional[float] = None,
                 retryable: Tuple[Type[BaseException], ...] =
                 (TransientIoError,),
                 jitter_seed: int = 0):
        if max_attempts < 1:
            raise ValueError("need at least one attempt")
        self.max_attempts = max_attempts
        self.base_delay_s = base_delay_s
        self.max_delay_s = max_delay_s
        self.deadline_s = deadline_s
        self.retryable = retryable
        self.jitter_seed = jitter_seed

    def delay_for(self, attempt: int) -> float:
        """Backoff before attempt ``attempt + 1`` (attempts are 1-based)."""
        delay = min(self.base_delay_s * (2 ** (attempt - 1)),
                    self.max_delay_s)
        jitter = random.Random(
            f"{self.jitter_seed}:{attempt}").random() * 0.25 * delay
        return delay + jitter

    def run(self, operation: str, fn: Callable, clock=None):
        start = clock.now() if clock is not None else 0.0
        last: Optional[BaseException] = None
        attempt = 0
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except self.retryable as exc:   # noqa: PERF203 — the policy
                last = exc
                global_metrics().incr("faults.retries")
                if attempt == self.max_attempts:
                    break
                if (self.deadline_s is not None and clock is not None
                        and clock.now() - start >= self.deadline_s):
                    break
                if clock is not None:
                    clock.advance(self.delay_for(attempt))
        raise RetryExhausted(operation, attempt, last)


class CircuitBreaker:
    """Per-scope consecutive-failure breaker.

    After ``failure_threshold`` consecutive failures for a scope,
    :meth:`allow` raises :class:`CircuitOpen` — the caller quarantines
    the scope instead of retrying forever.  With ``recovery_after_s``
    and a clock, an open circuit half-opens after that much simulated
    time: one probe attempt is allowed through; success closes the
    circuit, failure re-opens it.
    """

    def __init__(self, failure_threshold: int = 3,
                 recovery_after_s: Optional[float] = None, clock=None):
        if failure_threshold < 1:
            raise ValueError("threshold must be positive")
        self.failure_threshold = failure_threshold
        self.recovery_after_s = recovery_after_s
        self.clock = clock
        self._lock = threading.Lock()
        self._failures: Dict[str, int] = {}
        self._opened_at: Dict[str, float] = {}

    def allow(self, scope: str) -> None:
        with self._lock:
            failures = self._failures.get(scope, 0)
            if failures < self.failure_threshold:
                return
            if (self.recovery_after_s is not None and self.clock is not None
                    and self.clock.now() - self._opened_at.get(scope, 0.0)
                    >= self.recovery_after_s):
                # Half-open: admit one probe; a failure re-opens.
                self._failures[scope] = self.failure_threshold - 1
                return
        raise CircuitOpen(scope, failures)

    def record_success(self, scope: str) -> None:
        with self._lock:
            self._failures.pop(scope, None)
            self._opened_at.pop(scope, None)

    def record_failure(self, scope: str) -> None:
        with self._lock:
            count = self._failures.get(scope, 0) + 1
            self._failures[scope] = count
            if count == self.failure_threshold:
                self._opened_at[scope] = (self.clock.now()
                                          if self.clock is not None else 0.0)

    def state(self, scope: str) -> str:
        with self._lock:
            open_ = self._failures.get(scope, 0) >= self.failure_threshold
        return "open" if open_ else "closed"

    def open_scopes(self) -> List[str]:
        with self._lock:
            return sorted(scope for scope, count in self._failures.items()
                          if count >= self.failure_threshold)


def construct_with_retry(operation: str, factory: Callable,
                         attempts: int = 3, clock=None):
    """Build a parser whose constructor reads (possibly faulty) media.

    Transient I/O faults always retry.  :class:`CorruptRecord` retries
    *only while a fault plan is active* — an injected torn read can
    garble the boot sector into structural garbage, and the re-read is
    clean; with no chaos active, corruption is genuine and propagates
    immediately, preserving the parser's error contract.
    """
    from repro.faults import context as faults_context

    last: Optional[BaseException] = None
    for attempt in range(1, attempts + 1):
        try:
            return factory()
        except TransientIoError as exc:
            last = exc
        except CorruptRecord as exc:
            if faults_context.active_plan() is None:
                raise
            last = exc
        global_metrics().incr("faults.retries")
        if attempt < attempts and clock is not None:
            clock.advance(0.01 * attempt)
    raise last
