"""Thread-local fault activation, mirroring the telemetry context.

The instrumented sites (scanner walks, parser entry points, the RIS
transport) cannot take a :class:`~repro.faults.plan.FaultPlan` as a
parameter without threading it through every signature in the system.
A scan *activates* a plan on the current thread instead — with the
machine name as the draw scope and the machine's clock for delay
charging — and the sites look it up here via :func:`maybe_inject`.

Two activation levels exist: a per-thread scope (set by
:func:`scoped`, used by ``GhostBuster``/``RisServer`` so parallel sweep
workers draw from independent per-machine streams) and a process-wide
plan (set by :func:`install_global_plan`, used by the CI chaos job via
``REPRO_CHAOS_SEED``).  The thread scope wins.  With neither active the
fast path is one ``getattr`` plus one global check.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional

from repro.errors import ApiError, MachineUnavailable, TransientIoError
from repro.faults.plan import FaultPlan

_tls = threading.local()

_global_plan: Optional[FaultPlan] = None
_global_active: Optional["ActiveFaults"] = None


@dataclass(frozen=True)
class ActiveFaults:
    """What an instrumented site needs: the plan, scope, and clock."""

    plan: FaultPlan
    scope: str = "global"
    clock: object = None


def install_global_plan(plan: Optional[FaultPlan]
                        ) -> Optional[FaultPlan]:
    """Set (or clear, with None) the process-wide fallback plan."""
    global _global_plan, _global_active
    previous = _global_plan
    _global_plan = plan
    _global_active = ActiveFaults(plan) if plan is not None else None
    return previous


def global_plan() -> Optional[FaultPlan]:
    """The process-wide fallback plan, or None when chaos is off."""
    return _global_plan


def active() -> Optional[ActiveFaults]:
    """The thread's fault activation, falling back to the global plan."""
    scope = getattr(_tls, "scope", None)
    if scope is not None:
        return scope
    return _global_active


def active_plan() -> Optional[FaultPlan]:
    """The plan behind :func:`active`, or None with no chaos active."""
    ctx = active()
    return None if ctx is None else ctx.plan


@contextmanager
def scoped(plan: FaultPlan, scope: str = "global", clock=None):
    """Activate ``plan`` on this thread for the duration (re-entrant)."""
    previous = getattr(_tls, "scope", None)
    _tls.scope = ActiveFaults(plan, scope, clock)
    try:
        yield
    finally:
        _tls.scope = previous


def maybe_inject(site: str, clock=None, scope: Optional[str] = None):
    """Draw at ``site``; translate a fired fault into its failure mode.

    * ``transient`` / ``io_error`` / ``timeout`` → :class:`TransientIoError`
      (timeout additionally charges its delay to the clock first);
    * ``status_failure`` → :class:`ApiError` (a spurious ``STATUS_*``);
    * ``drop`` / ``machine_death`` → :class:`MachineUnavailable`, with
      the fired fault attached as ``exc.fault`` so the RIS layer can
      model the machine actually dying;
    * ``slow_read`` / ``hang`` → the delay is charged to the clock and
      the fault is returned (the operation proceeds, late).

    Returns None when nothing fired.
    """
    ctx = active()
    if ctx is None:
        return None
    fault = ctx.plan.draw(site, scope if scope is not None else ctx.scope)
    if fault is None:
        return None
    clock = clock if clock is not None else ctx.clock
    if fault.delay_s and clock is not None:
        clock.advance(fault.delay_s)
    kind = fault.kind
    if kind in ("transient", "io_error", "timeout"):
        raise TransientIoError(
            f"injected {kind} at {site} ({fault.detail})")
    if kind == "status_failure":
        raise ApiError(
            f"STATUS_DEVICE_NOT_READY: injected at {site} ({fault.detail})")
    if kind in ("drop", "machine_death"):
        error = MachineUnavailable(
            f"injected {kind} at {site} ({fault.detail})")
        error.fault = fault
        raise error
    return fault


def filter_blob(site: str, blob: bytes,
                scope: Optional[str] = None) -> bytes:
    """Draw at a blob-filtering site; corrupt the blob if a fault fired.

    Used by the hive readers: a fired ``truncate``/``corrupt`` fault
    damages the just-read hive bytes, which the (validating) hive parser
    then rejects, driving the caller's re-read-and-retry path.
    """
    ctx = active()
    if ctx is None:
        return blob
    fault = ctx.plan.draw(site, scope if scope is not None else ctx.scope)
    if fault is None:
        return blob
    from repro.faults.injectors import corrupt_blob
    return corrupt_blob(blob, fault)
