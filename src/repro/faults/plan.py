"""Seed-deterministic fault plans.

A :class:`FaultPlan` is the single source of chaos for a run: every
instrumented site asks it ("should this read fail?") and the plan
answers from a seeded RNG.  Two properties make the answers usable in
tests and benchmarks:

* **Determinism under parallelism.**  Draws come from a per-``(site,
  scope)`` stream — ``random.Random(f"{seed}:{site}:{scope}")`` — so a
  machine's fault sequence depends only on the seed and on *its own*
  draw order, never on how the thread pool interleaved other machines.
  :meth:`FaultPlan.sequence_digest` canonicalizes the fired-fault log
  (sorted by stream, not by wall-clock arrival) so two runs of the same
  workload compare byte-identical.
* **Observability.**  Every fired fault is appended to ``plan.log``,
  counted in the global metrics registry (``faults.injected`` and
  ``faults.injected.<site>``), and recorded to the active telemetry
  audit log under the ``fault-injection`` layer — tests assert exactly
  what fired, and the CI chaos job uploads the log as an artifact.
"""

from __future__ import annotations

import hashlib
import random
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.telemetry import context as telemetry_context
from repro.telemetry.audit import LAYER_FAULT
from repro.telemetry.metrics import global_metrics

# The instrumented sites.
SITE_DISK_READ = "disk.read"          # Disk.read_bytes (via DiskFaultInjector)
SITE_HIVE_READ = "hive.read"          # hive blob reads in the ASEP scanners
SITE_WINAPI_ENUM = "winapi.enum"      # high-level enumeration walks
SITE_RIS_TRANSPORT = "ris.transport"  # the RIS network-boot transport
SITE_MFT_PARSE = "mft.parse"          # raw namespace build (self-healing)
SITE_HIVE_PARSE = "hive.parse"        # raw hive parse (self-healing)
SITE_FLEET_LEASE = "fleet.lease"      # work-queue lease acquisition
SITE_FLEET_SEND = "fleet.transport.send"  # controller/agent frame send
SITE_FLEET_RECV = "fleet.transport.recv"  # controller/agent frame receive

MODES = ("rate", "burst", "one_shot", "always")

# Kinds whose fault carries a simulated-time delay.
_DELAY_KINDS = frozenset({"slow_read", "hang", "timeout", "delay"})

_FAULT_OWNER = "fault-plan"


@dataclass(frozen=True)
class FaultSpec:
    """One site's fault behaviour.

    ``mode`` selects when draws fire: ``rate`` (independent Bernoulli at
    ``rate``), ``burst`` (Bernoulli entry, then ``burst_length``
    consecutive fires), ``one_shot`` (first draw only), ``always``
    (every draw).  ``max_fires`` caps total fires per ``(site, scope)``
    stream; ``scopes`` restricts the spec to named machines (empty =
    all).  ``mean_delay_s`` sizes the simulated delay of slow/hang/
    timeout kinds.
    """

    site: str
    rate: float = 0.0
    mode: str = "rate"
    kinds: Tuple[str, ...] = ("io_error",)
    burst_length: int = 3
    max_fires: Optional[int] = None
    mean_delay_s: float = 0.2
    scopes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown fault mode {self.mode!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if not self.kinds:
            raise ValueError("a fault spec needs at least one kind")

    def applies_to(self, scope: str) -> bool:
        return not self.scopes or scope in self.scopes


@dataclass(frozen=True)
class InjectedFault:
    """One fault that fired."""

    site: str
    kind: str
    scope: str
    stream_seq: int            # 1-based sequence within the (site, scope) stream
    delay_s: float = 0.0
    detail: str = ""

    def key(self) -> Tuple:
        """Scheduling-independent identity, for the sequence digest."""
        return (self.site, self.scope, self.stream_seq, self.kind,
                f"{self.delay_s:.9f}", self.detail)

    def to_dict(self) -> dict:
        return {"site": self.site, "kind": self.kind, "scope": self.scope,
                "seq": self.stream_seq, "delay_s": round(self.delay_s, 9),
                "detail": self.detail}


class _Stream:
    """Mutable per-(site, scope) draw state."""

    __slots__ = ("rng", "draws", "fires", "burst_left")

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.draws = 0
        self.fires = 0
        self.burst_left = 0


class FaultPlan:
    """A seeded set of fault specs plus the log of what fired."""

    def __init__(self, seed: int, specs: Sequence[FaultSpec]):
        self.seed = int(seed)
        self.specs = tuple(specs)
        self._by_site: Dict[str, List[FaultSpec]] = {}
        for spec in self.specs:
            self._by_site.setdefault(spec.site, []).append(spec)
        self._streams: Dict[Tuple[str, str], _Stream] = {}
        self._lock = threading.Lock()
        self.log: List[InjectedFault] = []

    # -- construction shorthands -------------------------------------------------

    @classmethod
    def default(cls, seed: int, rate: float = 0.05,
                scopes: Tuple[str, ...] = (),
                mean_delay_s: float = 0.2) -> "FaultPlan":
        """The standard chaos mix: transient faults at every scan site.

        Every kind here is either detectable-and-retryable (io_error,
        torn_read, truncate, corrupt, status_failure, drop, timeout) or
        purely latency (slow_read, hang), so a resilient pipeline must
        produce the same findings as a fault-free run.
        """
        return cls(seed, (
            FaultSpec(SITE_DISK_READ, rate=rate, scopes=scopes,
                      kinds=("io_error", "slow_read", "torn_read"),
                      mean_delay_s=mean_delay_s),
            FaultSpec(SITE_HIVE_READ, rate=rate, scopes=scopes,
                      kinds=("truncate", "corrupt")),
            FaultSpec(SITE_WINAPI_ENUM, rate=rate, scopes=scopes,
                      kinds=("status_failure", "hang"),
                      mean_delay_s=mean_delay_s),
            FaultSpec(SITE_RIS_TRANSPORT, rate=rate, scopes=scopes,
                      kinds=("drop", "timeout"),
                      mean_delay_s=mean_delay_s),
            FaultSpec(SITE_FLEET_LEASE, rate=rate, scopes=scopes,
                      kinds=("io_error",), mean_delay_s=0.0),
            # The fleet wire: partitions, latency, replayed and torn
            # frames.  Only the distributed agent/controller path draws
            # here, and its streams are keyed by agent id, so adding
            # these specs never perturbs the per-machine scan streams.
            FaultSpec(SITE_FLEET_SEND, rate=rate, scopes=scopes,
                      kinds=("drop", "delay", "duplicate", "torn_frame"),
                      mean_delay_s=mean_delay_s),
            FaultSpec(SITE_FLEET_RECV, rate=rate, scopes=scopes,
                      kinds=("drop", "delay", "torn_frame"),
                      mean_delay_s=mean_delay_s),
        ))

    @classmethod
    def tier1(cls, seed: int, rate: float = 0.01) -> "FaultPlan":
        """The CI chaos profile: low-rate faults at the self-healing
        parser sites only, with no simulated delay, so the tier-1 suite
        (which asserts timings, cache counters, and exact findings) must
        pass unchanged with the plan installed globally."""
        return cls(seed, (
            FaultSpec(SITE_MFT_PARSE, rate=rate, kinds=("transient",),
                      mean_delay_s=0.0),
            FaultSpec(SITE_HIVE_PARSE, rate=rate, kinds=("transient",),
                      mean_delay_s=0.0),
        ))

    # -- drawing ------------------------------------------------------------------

    def sites(self) -> List[str]:
        return sorted(self._by_site)

    def draw(self, site: str, scope: str = "global"
             ) -> Optional[InjectedFault]:
        """One draw at ``site`` for ``scope``; the fired fault or None."""
        specs = self._by_site.get(site)
        if not specs:
            return None
        fault = None
        with self._lock:
            key = (site, scope)
            stream = self._streams.get(key)
            if stream is None:
                stream = self._streams[key] = _Stream(
                    random.Random(f"{self.seed}:{site}:{scope}"))
            stream.draws += 1
            for spec in specs:
                if not spec.applies_to(scope):
                    continue
                fault = self._fire(spec, stream, site, scope)
                if fault is not None:
                    self.log.append(fault)
                    break
        if fault is not None:
            metrics = global_metrics()
            metrics.incr("faults.injected")
            metrics.incr(f"faults.injected.{site}")
            audit = telemetry_context.current_audit()
            if audit is not None:
                audit.record(LAYER_FAULT, api=site, kind=fault.kind,
                             owner=_FAULT_OWNER,
                             detail=f"scope={scope} seq={fault.stream_seq}"
                                    + (f" delay={fault.delay_s:.3f}s"
                                       if fault.delay_s else ""))
        return fault

    @staticmethod
    def _fire(spec: FaultSpec, stream: _Stream, site: str,
              scope: str) -> Optional[InjectedFault]:
        if spec.max_fires is not None and stream.fires >= spec.max_fires:
            return None
        if spec.mode == "always":
            fires = True
        elif spec.mode == "one_shot":
            fires = stream.fires == 0
        elif spec.mode == "burst":
            if stream.burst_left > 0:
                stream.burst_left -= 1
                fires = True
            elif stream.rng.random() < spec.rate:
                stream.burst_left = max(spec.burst_length - 1, 0)
                fires = True
            else:
                fires = False
        else:
            fires = stream.rng.random() < spec.rate
        if not fires:
            return None
        stream.fires += 1
        kind = stream.rng.choice(spec.kinds)
        delay = 0.0
        if kind in _DELAY_KINDS and spec.mean_delay_s > 0:
            delay = spec.mean_delay_s * (0.5 + stream.rng.random())
        return InjectedFault(site=site, kind=kind, scope=scope,
                             stream_seq=stream.fires, delay_s=delay,
                             detail=f"draw#{stream.draws}")

    # -- wiring -------------------------------------------------------------------

    def attach(self, machine):
        """Install a disk-read injector on the machine's physical disk."""
        from repro.faults.injectors import DiskFaultInjector
        injector = DiskFaultInjector(self, machine.disk, clock=machine.clock,
                                     scope=machine.name)
        machine.disk.fault_injector = injector
        return injector

    @staticmethod
    def detach(machine) -> None:
        machine.disk.fault_injector = None

    # -- inspection ---------------------------------------------------------------

    def fired(self, site: Optional[str] = None,
              scope: Optional[str] = None) -> List[InjectedFault]:
        with self._lock:
            return [fault for fault in self.log
                    if (site is None or fault.site == site)
                    and (scope is None or fault.scope == scope)]

    def fired_count(self, site: Optional[str] = None,
                    scope: Optional[str] = None) -> int:
        return len(self.fired(site, scope))

    def sequence_digest(self) -> str:
        """A scheduling-independent digest of every fault that fired.

        Entries are sorted by their per-stream identity before hashing,
        so parallel sweeps whose workers interleave differently still
        produce the same digest when the same faults fired.
        """
        with self._lock:
            keys = sorted(fault.key() for fault in self.log)
        digest = hashlib.sha256()
        for key in keys:
            digest.update(repr(key).encode("utf-8"))
        return digest.hexdigest()

    def log_dicts(self) -> List[dict]:
        """The fired-fault log in canonical (stream-sorted) order."""
        with self._lock:
            faults = sorted(self.log, key=InjectedFault.key)
        return [fault.to_dict() for fault in faults]
