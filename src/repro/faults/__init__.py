"""``repro.faults`` — deterministic fault injection and recovery policies.

GhostBuster's premise is reading *hostile* state: raw MFT records and
hive files that malware may be actively corrupting, over devices and
transports that fail.  This package provides the two halves of staying
correct under that pressure:

* **Injection** — a :class:`FaultPlan` holds seeded per-site fault
  specs; instrumented sites (the :class:`~repro.disk.Disk` read path,
  the hive reader, the WinAPI enumeration walks, the RIS transport, and
  the parser entry points) draw from it and fail in controlled,
  *reproducible* ways.  Per-``(site, scope)`` RNG streams make the fault
  sequence independent of thread scheduling, so a parallel RIS sweep
  injects byte-identical faults run after run.
* **Recovery** — :class:`RetryPolicy` (capped exponential backoff with
  deterministic jitter, charged to the :class:`~repro.clock.SimClock`),
  :class:`CircuitBreaker` (per-machine quarantine), scan-until-stable
  rounds in :class:`~repro.core.ghostbuster.GhostBuster`, and per-layer
  graceful degradation (:class:`~repro.core.diff.ScanConfidence`).

Everything is zero-dependency and inert by default: with no plan active
the instrumented sites pay one attribute lookup.  Activate per scan via
``faults.context.scoped(plan, ...)`` / ``FaultPlan.attach(machine)``,
or process-wide via ``faults.context.install_global_plan(plan)`` (the
CI chaos job does this through the ``REPRO_CHAOS_SEED`` env var).

See ``docs/robustness.md`` for the site/kind catalog and the
determinism guarantees.
"""

from __future__ import annotations

from repro.faults import context
from repro.faults.context import (active_plan, filter_blob,
                                  install_global_plan, maybe_inject, scoped)
from repro.faults.injectors import DiskFaultInjector, corrupt_blob
from repro.faults.plan import (FaultPlan, FaultSpec, InjectedFault,
                               SITE_DISK_READ, SITE_HIVE_PARSE,
                               SITE_HIVE_READ, SITE_MFT_PARSE,
                               SITE_RIS_TRANSPORT, SITE_WINAPI_ENUM)
from repro.faults.retry import (CircuitBreaker, RetryPolicy,
                                construct_with_retry)

__all__ = [
    "FaultPlan", "FaultSpec", "InjectedFault",
    "SITE_DISK_READ", "SITE_HIVE_READ", "SITE_WINAPI_ENUM",
    "SITE_RIS_TRANSPORT", "SITE_MFT_PARSE", "SITE_HIVE_PARSE",
    "RetryPolicy", "CircuitBreaker", "construct_with_retry",
    "DiskFaultInjector", "corrupt_blob",
    "context", "scoped", "maybe_inject", "filter_blob",
    "install_global_plan", "active_plan",
]
