"""Fault injectors that damage data in flight.

The corruption helpers derive their RNG from the *fired fault's*
identity (site, scope, stream sequence), not from the plan's live
streams — so what gets corrupted is a pure function of which fault
fired, independent of call interleaving.
"""

from __future__ import annotations

import random

from repro.errors import TransientIoError
from repro.faults.plan import FaultPlan, InjectedFault, SITE_DISK_READ
from repro.telemetry.metrics import global_metrics

# How many times the simulated disk driver re-issues a faulted read
# before surfacing the error.  Real controllers retry sector reads at
# this layer too; without it a 5% per-read fault rate makes any
# thousands-of-reads namespace parse statistically certain to die.
_READ_ATTEMPTS = 4


def _fault_rng(fault: InjectedFault) -> random.Random:
    return random.Random(
        f"{fault.site}:{fault.scope}:{fault.stream_seq}:{fault.kind}")


def corrupt_blob(blob: bytes, fault: InjectedFault) -> bytes:
    """Damage a whole just-read blob (hive file bytes).

    ``truncate`` chops a tail; ``corrupt`` zeroes a window; ``bit_flip``
    flips one bit.  All are *detectable* damage for the validating hive
    parser — header-length checks and cell magics reject the blob, so
    the caller re-reads and retries.
    """
    if not blob:
        return blob
    rng = _fault_rng(fault)
    if fault.kind == "truncate":
        return blob[:rng.randrange(len(blob))]
    out = bytearray(blob)
    if fault.kind == "corrupt":
        start = rng.randrange(len(out))
        end = min(len(out), start + max(16, len(out) // 64))
        out[start:end] = b"\x00" * (end - start)
    elif fault.kind == "bit_flip":
        index = rng.randrange(len(out))
        out[index] ^= 1 << rng.randrange(8)
    return bytes(out)


def corrupt_read(data: bytes, fault: InjectedFault) -> bytes:
    """Damage one read's result, preserving its length.

    ``Disk.read_bytes`` must return exactly the requested length, so
    ``torn_read`` zeroes the tail half (the write that never made it to
    the platter) instead of truncating.
    """
    if not data:
        return data
    out = bytearray(data)
    rng = _fault_rng(fault)
    if fault.kind == "torn_read":
        cut = len(out) // 2
        out[cut:] = b"\x00" * (len(out) - cut)
    elif fault.kind == "bit_flip":
        index = rng.randrange(len(out))
        out[index] ^= 1 << rng.randrange(8)
    return bytes(out)


class DiskFaultInjector:
    """The ``disk.read`` site: wraps every ``Disk.read_bytes`` result.

    Kinds: ``io_error`` raises :class:`TransientIoError` after the
    driver-level retries (``_READ_ATTEMPTS``) are also all faulted;
    ``slow_read`` charges a simulated delay;
    ``torn_read`` / ``bit_flip`` return damaged bytes *and bump the
    disk's write generation*, so any namespace parsed from the damaged
    read is dropped from the generation-keyed caches on its next
    revalidation instead of serving the corruption forever.
    """

    def __init__(self, plan: FaultPlan, disk, clock=None,
                 scope: str = "global"):
        self.plan = plan
        self.disk = disk
        self.clock = clock
        self.scope = scope

    def filter_read(self, offset: int, length: int, data: bytes) -> bytes:
        fault = self.plan.draw(SITE_DISK_READ, self.scope)
        if fault is None:
            return data
        if fault.kind == "io_error":
            # Driver-level retry: re-issue the read (a fresh draw each
            # time); only a run of consecutive faults surfaces.
            for _ in range(_READ_ATTEMPTS - 1):
                global_metrics().incr("faults.retries")
                fault = self.plan.draw(SITE_DISK_READ, self.scope)
                if fault is None or fault.kind != "io_error":
                    break
            if fault is not None and fault.kind == "io_error":
                raise TransientIoError(
                    f"injected disk I/O error reading "
                    f"[{offset}, {offset + length}) ({fault.detail})")
            if fault is None:
                return data
        if fault.kind == "slow_read":
            if self.clock is not None and fault.delay_s:
                self.clock.advance(fault.delay_s)
            return data
        damaged = corrupt_read(data, fault)
        self.disk.generation += 1
        return damaged
