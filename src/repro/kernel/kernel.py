"""The kernel facade.

Owns the simulated kernel memory and every structure GhostBuster's
low-level scans traverse, plus the service layer that syscalls dispatch
into.  The kernel itself never lies; ghostware lies by hooking the
dispatch table, registering configuration-manager callbacks, filtering the
I/O stack, mutating kernel objects (DKOM), or intercepting the raw disk
port — all of which are modelled as explicit, inspectable hook points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.clock import SimClock
from repro.errors import KernelError, NoSuchProcess
from repro.kernel.memory import KernelMemory, read_u64
from repro.kernel.objects import (DriverView, ModuleTableView, PebView,
                                  allocate_pointer_table, attach_module_table,
                                  attach_peb, write_driver, write_eprocess,
                                  write_ethread, write_module_entry,
                                  EprocessView, MODTABLE_MAGIC, PEB_MAGIC)
from repro.kernel.process_list import ActiveProcessList, walk_process_list
from repro.kernel.scheduler import ThreadTable
from repro.kernel.ssdt import ServiceDispatchTable, Syscall
from repro.telemetry import context as telemetry_context
from repro.telemetry.audit import (LAYER_CM_CALLBACK, LAYER_RAW_PORT,
                                   LAYER_SSDT)

DRIVER_HEAD_MAGIC = b"DLst"
_DRV_FLINK = 4
_DRV_BLINK = 12

RawReadFilter = Callable[[int, int, bytes], bytes]
CrashFilter = Callable[[List[Tuple[int, bytes]]], List[Tuple[int, bytes]]]
CmCallback = Callable[[str, List], List]


@dataclass(frozen=True)
class ProcessInfo:
    """One row of a process enumeration."""

    pid: int
    name: str
    image_path: str = ""


@dataclass
class KernelProcess:
    """Bookkeeping handle for one process (not itself a scan source)."""

    pid: int
    name: str
    image_path: str
    eprocess_address: int
    peb_address: int
    module_table_address: int
    threads: List[int] = field(default_factory=list)
    alive: bool = True
    allocations: List[int] = field(default_factory=list)


class FilterStack(list):
    """A filter list whose members carry monotonic registration tokens.

    Cache keys derived from the installed filters must survive object
    churn: ``id()`` of a garbage-collected filter can be reused by a new,
    different filter, silently revalidating a stale cache entry.  Every
    mutation here assigns fresh tokens from a monotonic counter, so two
    distinct registrations never share a token even if the interpreter
    reuses the object identity.  ``tokens()`` is the cache-key view.
    """

    def __init__(self, iterable=()):
        super().__init__(iterable)
        self._next = 0
        self._tokens = [self._issue() for __ in range(len(self))]

    def _issue(self) -> int:
        token = self._next
        self._next = token + 1
        return token

    def tokens(self) -> tuple:
        return tuple(self._tokens)

    # -- every mutator keeps the token list in lockstep --------------------

    def append(self, item):
        super().append(item)
        self._tokens.append(self._issue())

    def extend(self, iterable):
        items = list(iterable)
        super().extend(items)
        self._tokens.extend(self._issue() for __ in items)

    def insert(self, index, item):
        # list.insert clamps out-of-range indices identically on both
        # same-length lists, so the token stays aligned with its filter.
        super().insert(index, item)
        self._tokens.insert(index, self._issue())

    def remove(self, item):
        index = self.index(item)
        del self[index]

    def pop(self, index=-1):
        item = super().pop(index)
        self._tokens.pop(index)
        return item

    def clear(self):
        super().clear()
        self._tokens.clear()

    def __delitem__(self, index):
        super().__delitem__(index)
        del self._tokens[index]

    def __setitem__(self, index, item):
        super().__setitem__(index, item)
        if isinstance(index, slice):
            # May resize; conservatively reissue everything.
            self._tokens = [self._issue() for __ in range(len(self))]
        else:
            self._tokens[index] = self._issue()

    def __iadd__(self, iterable):
        self.extend(iterable)
        return self


class DiskPort:
    """The kernel's raw-device read path.

    Inside-the-box low-level file scans read the disk through this port;
    a sufficiently privileged ghostware strain can interpose filters here
    (the paper's caveat about interference with the low-level scan, tested
    by ablation A3).  Outside-the-box scans hold the Disk itself and never
    pass through the port.
    """

    def __init__(self, disk):
        self._disk = disk
        self.read_filters: List[RawReadFilter] = FilterStack()

    @property
    def disk(self):
        return self._disk

    @property
    def generation(self) -> int:
        """The backing disk's write generation (cache-invalidation key).

        Raw-parse caches key on this plus the identity of the installed
        read filters: a filtered port never shares cache entries with the
        unfiltered view (A3 interference must stay observable).
        """
        return getattr(self._disk, "generation", 0)

    def read_bytes(self, offset: int, length: int) -> bytes:
        data = self._disk.read_bytes(offset, length)
        if self.read_filters:
            audit = telemetry_context.current_audit()
            for read_filter in self.read_filters:
                if audit is not None:
                    # Once per filter per scan: a raw parse issues
                    # thousands of reads through the same interposition.
                    audit.record_once(
                        LAYER_RAW_PORT, "raw-port:read_bytes",
                        kind="raw_read_filter",
                        owner=getattr(read_filter, "audit_owner", "?"))
                data = read_filter(offset, length, data)
        return data


class Kernel:
    """Simulated NT kernel: processes, threads, drivers, services."""

    def __init__(self, clock: Optional[SimClock] = None):
        self.clock = clock or SimClock()
        self.memory = KernelMemory()
        self.process_list = ActiveProcessList(self.memory)
        self.thread_table = ThreadTable(self.memory)
        self.driver_list_head = self._make_driver_head()
        self.ssdt = ServiceDispatchTable()
        self.cm_callbacks: List[CmCallback] = []
        self.crash_filters: List[CrashFilter] = []
        self.disk_port: Optional[DiskPort] = None
        self.io_manager = None   # attached by the Machine
        self.registry = None     # attached by the Machine
        self._procs: Dict[int, KernelProcess] = {}
        self._next_pid = 4       # System gets pid 4, as on Windows
        self._next_tid = 4

    # -- process lifecycle ------------------------------------------------------

    def create_process(self, name: str,
                       image_path: str = "") -> KernelProcess:
        pid = self._next_pid
        self._next_pid += 4
        eprocess = write_eprocess(self.memory, pid, name, image_path)
        peb = allocate_pointer_table(self.memory, PEB_MAGIC, 8)
        attach_peb(self.memory, eprocess, peb)
        module_table = allocate_pointer_table(self.memory, MODTABLE_MAGIC, 8)
        attach_module_table(self.memory, eprocess, module_table)
        self.process_list.insert_tail(eprocess)
        proc = KernelProcess(pid=pid, name=name, image_path=image_path,
                             eprocess_address=eprocess, peb_address=peb,
                             module_table_address=module_table)
        self._procs[pid] = proc
        self.add_thread(pid)
        return proc

    def add_thread(self, pid: int) -> int:
        proc = self._require(pid)
        tid = self._next_tid
        self._next_tid += 4
        ethread = write_ethread(self.memory, tid, proc.eprocess_address)
        self.thread_table.add(ethread)
        proc.threads.append(ethread)
        view = EprocessView(self.memory, proc.eprocess_address)
        view.set_thread_count(len(proc.threads))
        return tid

    def terminate_process(self, pid: int) -> None:
        """Normal termination: threads retired, EPROCESS delinked and freed."""
        proc = self._require(pid)
        for ethread in proc.threads:
            self.thread_table.remove(ethread)
            self.memory.free(ethread)
        proc.threads.clear()
        self.process_list.unlink(proc.eprocess_address)
        EprocessView(self.memory, proc.eprocess_address).set_alive(False)
        self.memory.free(proc.eprocess_address)
        self.memory.free(proc.peb_address)
        self.memory.free(proc.module_table_address)
        for address in proc.allocations:
            if self.memory.is_allocated(address):
                self.memory.free(address)
        proc.alive = False
        del self._procs[pid]

    def process(self, pid: int) -> KernelProcess:
        return self._require(pid)

    def find_process(self, name: str) -> Optional[KernelProcess]:
        wanted = name.casefold()
        for proc in self._procs.values():
            if proc.name.casefold() == wanted:
                return proc
        return None

    def processes(self) -> List[KernelProcess]:
        """Bookkeeping enumeration (machine-internal; not a scan source)."""
        return [self._procs[pid] for pid in sorted(self._procs)]

    # -- modules ---------------------------------------------------------------

    def load_module(self, pid: int, path: str) -> None:
        """Record a module in both the kernel truth table and the PEB.

        Two *separate* entry allocations back the two views: tampering with
        the PEB copy (Vanquish) leaves the kernel truth intact.
        """
        proc = self._require(pid)
        kernel_entry = write_module_entry(self.memory, path)
        peb_entry = write_module_entry(self.memory, path)
        proc.allocations.extend([kernel_entry, peb_entry])

        table = ModuleTableView(self.memory, proc.module_table_address)
        new_table = table.append(kernel_entry)
        if new_table != proc.module_table_address:
            proc.module_table_address = new_table
            attach_module_table(self.memory, proc.eprocess_address, new_table)

        peb = PebView(self.memory, proc.peb_address)
        new_peb = peb.append(peb_entry)
        if new_peb != proc.peb_address:
            proc.peb_address = new_peb
            attach_peb(self.memory, proc.eprocess_address, new_peb)

    def peb_view(self, pid: int) -> PebView:
        return PebView(self.memory, self._require(pid).peb_address)

    def module_table_view(self, pid: int) -> ModuleTableView:
        return ModuleTableView(self.memory,
                               self._require(pid).module_table_address)

    # -- drivers ------------------------------------------------------------------

    def _make_driver_head(self) -> int:
        head = self.memory.alloc(24)
        self.memory.write(head, DRIVER_HEAD_MAGIC)
        self.memory.write_u64(head + _DRV_FLINK, head)
        self.memory.write_u64(head + _DRV_BLINK, head)
        return head

    def load_driver(self, name: str) -> int:
        """Append a driver record to the loaded-driver list."""
        address = write_driver(self.memory, name)
        head = self.driver_list_head
        tail = self.memory.read_u64(head + _DRV_BLINK)
        self.memory.write_u64(address + _DRV_FLINK, head)
        self.memory.write_u64(address + _DRV_BLINK, tail)
        self.memory.write_u64(tail + _DRV_FLINK, address)
        self.memory.write_u64(head + _DRV_BLINK, address)
        return address

    def unlink_driver(self, address: int) -> None:
        """DKOM-style removal from the loaded-driver list."""
        flink = self.memory.read_u64(address + _DRV_FLINK)
        blink = self.memory.read_u64(address + _DRV_BLINK)
        self.memory.write_u64(blink + _DRV_FLINK, flink)
        self.memory.write_u64(flink + _DRV_BLINK, blink)
        self.memory.write_u64(address + _DRV_FLINK, address)
        self.memory.write_u64(address + _DRV_BLINK, blink)

    def drivers(self, reader=None, head_address: Optional[int] = None
                ) -> List[str]:
        """Walk the loaded-driver list (live memory or a dump)."""
        reader = reader or self.memory
        head = head_address if head_address is not None \
            else self.driver_list_head
        names: List[str] = []
        seen = set()
        current = read_u64(reader, head + _DRV_FLINK)
        while current != head:
            if current in seen:
                raise KernelError("cycle in the loaded-driver list")
            seen.add(current)
            names.append(DriverView(reader, current).name)
            current = read_u64(reader, current + _DRV_FLINK)
        return names

    # -- kernel services (SSDT targets) ----------------------------------------------

    def install_default_services(self) -> None:
        """Populate the SSDT with the pristine NT services.

        Called by the Machine once the I/O manager and registry are
        attached.  These closures are the boot-time originals the SSDT
        remembers for mechanism-detection baselines.
        """
        self.ssdt.install(Syscall.QUERY_DIRECTORY_FILE,
                          self._svc_query_directory_file)
        self.ssdt.install(Syscall.CREATE_FILE, self._svc_create_file)
        self.ssdt.install(Syscall.READ_FILE, self._svc_read_file)
        self.ssdt.install(Syscall.WRITE_FILE, self._svc_write_file)
        self.ssdt.install(Syscall.DELETE_FILE, self._svc_delete_file)
        self.ssdt.install(Syscall.ENUMERATE_KEY, self._svc_enumerate_key)
        self.ssdt.install(Syscall.ENUMERATE_VALUE_KEY,
                          self._svc_enumerate_value_key)
        self.ssdt.install(Syscall.QUERY_VALUE_KEY, self._svc_query_value_key)
        self.ssdt.install(Syscall.QUERY_SYSTEM_INFORMATION,
                          self._svc_query_system_information)
        self.ssdt.install(Syscall.QUERY_INFORMATION_PROCESS,
                          self._svc_query_information_process)

    def _svc_query_directory_file(self, requestor_pid: int, path: str):
        return self.io_manager.enumerate_directory(requestor_pid, path)

    def _svc_create_file(self, requestor_pid: int, path: str,
                         content: bytes = b"", dos_flags: int = 0):
        return self.io_manager.create_file(requestor_pid, path, content,
                                           dos_flags)

    def _svc_read_file(self, requestor_pid: int, path: str) -> bytes:
        return self.io_manager.read_file(requestor_pid, path)

    def _svc_write_file(self, requestor_pid: int, path: str,
                        content: bytes) -> None:
        return self.io_manager.write_file(requestor_pid, path, content)

    def _svc_delete_file(self, requestor_pid: int, path: str) -> None:
        return self.io_manager.delete_file(requestor_pid, path)

    def _audit_cm_callbacks(self, api: str, requestor_pid: int,
                            key_path: str) -> None:
        """Record registered CM callbacks firing on a registry query."""
        audit = telemetry_context.current_audit()
        if audit is None:
            return
        for callback in self.cm_callbacks:
            audit.record(LAYER_CM_CALLBACK, api, kind="cm_callback",
                         owner=getattr(callback, "audit_owner", "?"),
                         pid=requestor_pid, detail=key_path)

    def _svc_enumerate_key(self, requestor_pid: int,
                           key_path: str) -> List[str]:
        names = self.registry.enum_subkeys(key_path)
        if self.cm_callbacks:
            self._audit_cm_callbacks("CM:enumerate_key", requestor_pid,
                                     key_path)
            for callback in self.cm_callbacks:
                names = callback(key_path, names)
        return names

    def _svc_enumerate_value_key(self, requestor_pid: int, key_path: str):
        values = self.registry.enum_values(key_path)
        if self.cm_callbacks:
            self._audit_cm_callbacks("CM:enumerate_value_key",
                                     requestor_pid, key_path)
            for callback in self.cm_callbacks:
                values = callback(key_path, values)
        return values

    def _svc_query_value_key(self, requestor_pid: int, key_path: str,
                             name: str):
        value = self.registry.get_value(key_path, name)
        filtered = [value]
        if self.cm_callbacks:
            self._audit_cm_callbacks("CM:query_value_key", requestor_pid,
                                     key_path)
            for callback in self.cm_callbacks:
                filtered = callback(key_path, filtered)
        return filtered[0] if filtered else None

    def _svc_query_system_information(self,
                                      requestor_pid: int) -> List[ProcessInfo]:
        """Walk the Active Process List — the truth approximation."""
        out: List[ProcessInfo] = []
        for address in walk_process_list(self.memory,
                                         self.process_list.head_address):
            view = EprocessView(self.memory, address)
            if view.alive:
                out.append(ProcessInfo(view.pid, view.name, view.image_path))
        return out

    def _svc_query_information_process(self, requestor_pid: int,
                                       pid: int) -> List[str]:
        """Module list as reported via the PEB (the user-mode approximation)."""
        proc = self._require(pid)
        peb = PebView(self.memory, proc.peb_address)
        return [path for path in peb.module_paths() if path]

    # -- syscall gateway -------------------------------------------------------------

    def syscall(self, number: Syscall, requestor_pid: int, *args):
        """Enter the kernel through the (hookable) dispatch table."""
        if self.ssdt.is_hooked(number):
            audit = telemetry_context.current_audit()
            if audit is not None:
                audit.record(LAYER_SSDT, f"SSDT:{number.name}",
                             kind="ssdt", owner=self.ssdt.hook_owner(number),
                             pid=requestor_pid)
        return self.ssdt.dispatch(number)(requestor_pid, *args)

    # -- misc --------------------------------------------------------------------------

    def attach_disk(self, disk) -> DiskPort:
        self.disk_port = DiskPort(disk)
        return self.disk_port

    def _require(self, pid: int) -> KernelProcess:
        proc = self._procs.get(pid)
        if proc is None:
            raise NoSuchProcess(pid)
        return proc
