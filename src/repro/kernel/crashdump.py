"""Kernel crash dumps — persisting volatile truth for outside-the-box scans.

The paper's outside-the-box process scan cannot use DMA hardware (Copilot's
PCI card), so GhostBuster induces a blue screen, writes kernel memory to a
dump file, and pointer-chases the dump from the clean OS.  We reproduce
that: :func:`write_dump` serializes every allocated kernel-memory region
plus the global anchor addresses; :class:`CrashDump` implements the
:class:`~repro.kernel.memory.MemoryReader` protocol over the blob, so the
*same* walkers used by the live driver scan run unchanged on the dump.

The paper notes this is only a truth approximation — future ghostware
could trap the blue screen and scrub itself; :meth:`Kernel.crash_filters`
models exactly that attack for the ablation experiments.
"""

from __future__ import annotations

import struct
from bisect import bisect_right
from typing import List, Tuple

from repro.errors import CorruptRecord, KernelError

DUMP_MAGIC = b"KDMP"
_HEADER = struct.Struct("<4sIQQQ")   # magic, region_count, anchors x3
_REGION = struct.Struct("<QI")       # address, length


def serialize_regions(regions: List[Tuple[int, bytes]],
                      active_process_head: int,
                      thread_table: int,
                      driver_list_head: int) -> bytes:
    """Pack memory regions and global anchors into a dump blob."""
    out = bytearray()
    out += _HEADER.pack(DUMP_MAGIC, len(regions), active_process_head,
                        thread_table, driver_list_head)
    for address, contents in regions:
        out += _REGION.pack(address, len(contents))
        out += contents
    return bytes(out)


def write_dump(kernel) -> bytes:
    """Blue-screen the kernel: serialize its memory image.

    Any registered crash filters (a ghostware anti-forensics hook) get to
    rewrite the region list before it is packed — modelling the paper's
    caveat that a dump is a truth approximation.
    """
    regions = list(kernel.memory.regions())
    for crash_filter in kernel.crash_filters:
        regions = crash_filter(regions)
    return serialize_regions(regions,
                             kernel.process_list.head_address,
                             kernel.thread_table.address,
                             kernel.driver_list_head)


class CrashDump:
    """MemoryReader over a dump blob.

    Regions are kept as zero-copy memoryviews into the single dump
    buffer — the blob is walked flat, never re-sliced per region — and
    reads locate their region by bisection over the sorted base
    addresses instead of a linear scan (a pointer chase over a large
    dump issues thousands of small reads).
    """

    def __init__(self, blob: bytes):
        if len(blob) < _HEADER.size:
            raise CorruptRecord("dump too short for its header")
        magic, region_count, process_head, thread_table, driver_head = \
            _HEADER.unpack_from(blob)
        if magic != DUMP_MAGIC:
            raise CorruptRecord("bad crash-dump magic")
        self.active_process_head = process_head
        self.thread_table_address = thread_table
        self.driver_list_head = driver_head
        whole = memoryview(blob)
        # Dict first so a duplicate base address keeps the last region,
        # exactly as the previous dict-backed store did.
        regions = {}
        cursor = _HEADER.size
        for __ in range(region_count):
            if cursor + _REGION.size > len(blob):
                raise CorruptRecord("dump truncated in region table")
            address, length = _REGION.unpack_from(blob, cursor)
            cursor += _REGION.size
            if cursor + length > len(blob):
                raise CorruptRecord("dump truncated in region contents")
            regions[address] = whole[cursor:cursor + length]
            cursor += length
        self._bases = sorted(regions)
        self._views = [regions[address] for address in self._bases]

    def read(self, address: int, size: int) -> bytes:
        """Service a pointer-chase read from the dumped regions."""
        position = bisect_right(self._bases, address) - 1
        if position >= 0:
            contents = self._views[position]
            offset = address - self._bases[position]
            if offset < len(contents):
                if offset + size > len(contents):
                    raise KernelError(
                        f"dump read [{address:#x}, +{size}) crosses region")
                return bytes(contents[offset:offset + size])
        raise KernelError(f"address {address:#x} not present in dump")

    def region_count(self) -> int:
        return len(self._bases)
