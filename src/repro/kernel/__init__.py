"""Simulated Windows kernel.

Kernel state lives in a flat, byte-addressed :class:`KernelMemory`:
EPROCESS blocks linked into the Active Process List, ETHREAD entries in a
scheduler thread table, PEB module lists, and a loaded-driver list.  Every
GhostBuster low-level scan is a genuine pointer-chase through these bytes —
over live memory for the inside-the-box driver scan, or over a serialized
crash dump for the outside-the-box scan — so Direct Kernel Object
Manipulation (the FU rootkit's unlink) has exactly the paper's semantics:
the process disappears from the list yet its threads keep running.
"""

from repro.kernel.memory import KernelMemory, MemoryReader
from repro.kernel.objects import (EprocessView, EthreadView, PebView,
                                  ModuleTableView, DriverView)
from repro.kernel.process_list import ActiveProcessList, walk_process_list
from repro.kernel.scheduler import ThreadTable, walk_thread_table
from repro.kernel.ssdt import ServiceDispatchTable, Syscall
from repro.kernel.crashdump import CrashDump, write_dump
from repro.kernel.kernel import Kernel, KernelProcess, DiskPort

__all__ = [
    "KernelMemory", "MemoryReader",
    "EprocessView", "EthreadView", "PebView", "ModuleTableView", "DriverView",
    "ActiveProcessList", "walk_process_list",
    "ThreadTable", "walk_thread_table",
    "ServiceDispatchTable", "Syscall",
    "CrashDump", "write_dump",
    "Kernel", "KernelProcess", "DiskPort",
]
